// graph_convert — convert graphs between the text formats (whitespace
// edge list, DIMACS .gr) and the binary memory-mappable .pcsr format,
// and inspect .pcsr headers without loading the adjacency.
//
// Usage:
//   graph_convert --in graph.txt --out graph.pcsr [--compress]
//   graph_convert --in graph.gr  --out graph.pcsr
//   graph_convert --in graph.pcsr --out graph.txt
//   graph_convert --info graph.pcsr          # header summary only (O(1))
//   graph_convert --selftest                 # round-trip smoke (ctest)
//
// Formats are picked by extension: ".pcsr" binary, ".gr" DIMACS (input
// only), anything else the text edge list of graph/io.hpp. Conversions
// go through the in-memory Graph, so every path gets the same strict
// validation the library readers apply; --compress re-encodes the
// adjacency as delta varints before writing (decoded transparently by
// every algorithm, bit-identical results).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/pcsr.hpp"
#include "util/cli.hpp"

namespace {

using namespace parsh;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

Graph read_any(const std::string& path) {
  if (ends_with(path, ".pcsr")) return load_pcsr_file(path);
  if (ends_with(path, ".gr")) return read_dimacs_file(path);
  return read_edge_list_file(path);
}

void write_any(const std::string& path, const Graph& g, bool compress) {
  if (ends_with(path, ".pcsr")) {
    PcsrWriteOptions opt;
    opt.compress = compress;
    write_pcsr_file(path, g, opt);
    return;
  }
  if (ends_with(path, ".gr")) {
    std::fprintf(stderr, "graph_convert: DIMACS output is not supported "
                         "(use an edge-list or .pcsr path)\n");
    std::exit(2);
  }
  if (compress) {
    std::fprintf(stderr, "graph_convert: --compress only applies to .pcsr output\n");
    std::exit(2);
  }
  write_edge_list_file(path, g);
}

void print_info(const std::string& path) {
  const PcsrInfo info = read_pcsr_info(path);
  std::printf("%s\n", path.c_str());
  std::printf("  version    %u\n", info.version);
  std::printf("  vertices   %llu\n", static_cast<unsigned long long>(info.num_vertices));
  std::printf("  arcs       %llu  (undirected edges: %llu)\n",
              static_cast<unsigned long long>(info.num_arcs),
              static_cast<unsigned long long>(info.num_arcs / 2));
  std::printf("  weighted   %s\n", info.weighted ? "yes" : "no");
  std::printf("  adjacency  %s, %llu bytes (%.3f bytes/arc)\n",
              info.compressed ? "delta-varint compressed" : "flat u32 targets",
              static_cast<unsigned long long>(info.adjacency_bytes),
              static_cast<double>(info.adjacency_bytes) /
                  static_cast<double>(info.num_arcs ? info.num_arcs : 1));
  std::printf("  file       %llu bytes\n",
              static_cast<unsigned long long>(info.file_bytes));
}

/// End-to-end smoke for ctest: text -> .pcsr (flat and compressed) ->
/// text, checking the graph survives each hop bit-identically.
int selftest() {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = std::string(dir && *dir ? dir : "/tmp") + "/parsh_convert_";
  const std::string txt = base + "in.txt";
  const std::string flat = base + "a.pcsr";
  const std::string comp = base + "b.pcsr";
  const std::string back = base + "out.txt";
  // A small weighted graph with hubs and parallel-edge merges.
  std::vector<Edge> edges;
  for (vid v = 1; v < 200; ++v) {
    edges.push_back({0, v, static_cast<weight_t>(1 + v % 7)});
    edges.push_back({v, static_cast<vid>((v * 13) % 200), static_cast<weight_t>(2 + v % 3)});
  }
  const Graph g0 = Graph::from_edges(200, edges);
  write_edge_list_file(txt, g0);
  auto check = [&](const Graph& a, const Graph& b, const char* what) {
    if (a.num_vertices() != b.num_vertices() || a.num_arcs() != b.num_arcs() ||
        a.undirected_edges() != b.undirected_edges()) {
      std::fprintf(stderr, "selftest: %s mismatch\n", what);
      std::exit(1);
    }
  };
  write_any(flat, read_any(txt), false);
  check(read_any(flat), g0, "text -> flat pcsr");
  write_any(comp, read_any(flat), true);
  const Graph gc = read_any(comp);
  if (!gc.compressed()) {
    std::fprintf(stderr, "selftest: --compress output is not compressed\n");
    return 1;
  }
  check(gc, g0, "flat pcsr -> compressed pcsr");
  write_any(back, gc, false);
  check(read_any(back), g0, "compressed pcsr -> text");
  print_info(comp);
  for (const std::string& p : {txt, flat, comp, back}) std::remove(p.c_str());
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.get_bool("selftest", false)) return selftest();
    const std::string info = cli.get("info", "");
    if (!info.empty()) {
      print_info(info);
      return 0;
    }
    const std::string in = cli.get("in", "");
    const std::string out = cli.get("out", "");
    if (in.empty() || out.empty()) {
      std::fprintf(stderr,
                   "usage: graph_convert --in <file> --out <file> [--compress]\n"
                   "       graph_convert --info <file.pcsr>\n"
                   "       graph_convert --selftest\n"
                   "formats by extension: .pcsr binary, .gr DIMACS (input only),\n"
                   "otherwise text edge list\n");
      return 2;
    }
    const bool compress = cli.get_bool("compress", false);
    const Graph g = read_any(in);
    write_any(out, g, compress);
    std::printf("%s: n=%u, %llu undirected edges -> %s\n", in.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_arcs() / 2), out.c_str());
    if (ends_with(out, ".pcsr")) print_info(out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graph_convert: %s\n", e.what());
    return 1;
  }
}
