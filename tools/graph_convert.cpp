// graph_convert — convert graphs between the text formats (whitespace
// edge list, DIMACS .gr) and the binary memory-mappable .pcsr format,
// and inspect .pcsr headers without loading the adjacency.
//
// Usage:
//   graph_convert --in graph.txt --out graph.pcsr [--compress]
//   graph_convert --in graph.gr  --out graph.pcsr
//   graph_convert --in graph.pcsr --out graph.txt
//   graph_convert --in g.pcsr --delta d.txt --out g2.pcsr   # apply an edge delta
//   graph_convert --info graph.pcsr          # header summary only (O(1))
//   graph_convert --selftest                 # round-trip smoke (ctest)
//
// --delta applies a text edge delta ("+ u v [w]" inserts, "- u v"
// removals, '#' comments — the graph/io.hpp delta format) to the input
// graph before writing, and reports what it effectively did (inserted /
// removed / reweighted / no-ops). The merge is Graph::apply_delta, the
// same code path the dynamic serving layer uses, so a converted file is
// bit-identical to what a running server would have published.
//
// Formats are picked by extension: ".pcsr" binary, ".gr" DIMACS (input
// only), anything else the text edge list of graph/io.hpp. Conversions
// go through the in-memory Graph, so every path gets the same strict
// validation the library readers apply; --compress re-encodes the
// adjacency as delta varints before writing (decoded transparently by
// every algorithm, bit-identical results).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/pcsr.hpp"
#include "util/cli.hpp"

namespace {

using namespace parsh;

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t len = std::char_traits<char>::length(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

Graph read_any(const std::string& path) {
  if (ends_with(path, ".pcsr")) return load_pcsr_file(path);
  if (ends_with(path, ".gr")) return read_dimacs_file(path);
  return read_edge_list_file(path);
}

void write_any(const std::string& path, const Graph& g, bool compress) {
  if (ends_with(path, ".pcsr")) {
    PcsrWriteOptions opt;
    opt.compress = compress;
    write_pcsr_file(path, g, opt);
    return;
  }
  if (ends_with(path, ".gr")) {
    std::fprintf(stderr, "graph_convert: DIMACS output is not supported "
                         "(use an edge-list or .pcsr path)\n");
    std::exit(2);
  }
  if (compress) {
    std::fprintf(stderr, "graph_convert: --compress only applies to .pcsr output\n");
    std::exit(2);
  }
  write_edge_list_file(path, g);
}

void print_info(const std::string& path) {
  const PcsrInfo info = read_pcsr_info(path);
  std::printf("%s\n", path.c_str());
  std::printf("  version    %u\n", info.version);
  std::printf("  vertices   %llu\n", static_cast<unsigned long long>(info.num_vertices));
  std::printf("  arcs       %llu  (undirected edges: %llu)\n",
              static_cast<unsigned long long>(info.num_arcs),
              static_cast<unsigned long long>(info.num_arcs / 2));
  std::printf("  weighted   %s\n", info.weighted ? "yes" : "no");
  std::printf("  adjacency  %s, %llu bytes (%.3f bytes/arc)\n",
              info.compressed ? "delta-varint compressed" : "flat u32 targets",
              static_cast<unsigned long long>(info.adjacency_bytes),
              static_cast<double>(info.adjacency_bytes) /
                  static_cast<double>(info.num_arcs ? info.num_arcs : 1));
  std::printf("  file       %llu bytes\n",
              static_cast<unsigned long long>(info.file_bytes));
}

/// End-to-end smoke for ctest: text -> .pcsr (flat and compressed) ->
/// text, checking the graph survives each hop bit-identically.
int selftest() {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = std::string(dir && *dir ? dir : "/tmp") + "/parsh_convert_";
  const std::string txt = base + "in.txt";
  const std::string flat = base + "a.pcsr";
  const std::string comp = base + "b.pcsr";
  const std::string back = base + "out.txt";
  // A small weighted graph with hubs and parallel-edge merges.
  std::vector<Edge> edges;
  for (vid v = 1; v < 200; ++v) {
    edges.push_back({0, v, static_cast<weight_t>(1 + v % 7)});
    edges.push_back({v, static_cast<vid>((v * 13) % 200), static_cast<weight_t>(2 + v % 3)});
  }
  const Graph g0 = Graph::from_edges(200, edges);
  write_edge_list_file(txt, g0);
  auto check = [&](const Graph& a, const Graph& b, const char* what) {
    if (a.num_vertices() != b.num_vertices() || a.num_arcs() != b.num_arcs() ||
        a.undirected_edges() != b.undirected_edges()) {
      std::fprintf(stderr, "selftest: %s mismatch\n", what);
      std::exit(1);
    }
  };
  write_any(flat, read_any(txt), false);
  check(read_any(flat), g0, "text -> flat pcsr");
  write_any(comp, read_any(flat), true);
  const Graph gc = read_any(comp);
  if (!gc.compressed()) {
    std::fprintf(stderr, "selftest: --compress output is not compressed\n");
    return 1;
  }
  check(gc, g0, "flat pcsr -> compressed pcsr");
  write_any(back, gc, false);
  check(read_any(back), g0, "compressed pcsr -> text");

  // Delta round-trip: write a mixed delta, read it back, apply through
  // the file path and directly — the results must agree edge-for-edge.
  const std::string dtxt = base + "delta.txt";
  GraphDelta d;
  d.insert.push_back({3, 198, 2.5});
  d.insert.push_back({0, 9, 1.0});  // weight-1 insert exercises the short form
  d.remove.push_back({0, 1, 1.0});
  d.remove.push_back({7, 7, 1.0});  // self loop: a counted no-op
  write_delta_file(dtxt, d);
  const GraphDelta d2 = read_delta_file(dtxt);
  if (d2.insert.size() != d.insert.size() || d2.remove.size() != d.remove.size()) {
    std::fprintf(stderr, "selftest: delta text round-trip lost changes\n");
    return 1;
  }
  const DeltaResult ra = g0.apply_delta(d);
  const DeltaResult rb = g0.apply_delta(d2);
  if (ra.changes != rb.changes ||
      ra.graph.undirected_edges() != rb.graph.undirected_edges() ||
      ra.noops != 1) {
    std::fprintf(stderr, "selftest: delta apply mismatch after round-trip\n");
    return 1;
  }
  // A malformed delta line must throw IoError, not half-apply.
  {
    std::ofstream bad(dtxt);
    bad << "+ 1 2\n* what\n";
  }
  try {
    (void)read_delta_file(dtxt);
    std::fprintf(stderr, "selftest: malformed delta was accepted\n");
    return 1;
  } catch (const IoError& e) {
    if (e.line() != 2) {
      std::fprintf(stderr, "selftest: wrong IoError line %zu\n", e.line());
      return 1;
    }
  }

  print_info(comp);
  for (const std::string& p : {txt, flat, comp, back, dtxt}) std::remove(p.c_str());
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.get_bool("selftest", false)) return selftest();
    const std::string info = cli.get("info", "");
    if (!info.empty()) {
      print_info(info);
      return 0;
    }
    const std::string in = cli.get("in", "");
    const std::string out = cli.get("out", "");
    if (in.empty() || out.empty()) {
      std::fprintf(stderr,
                   "usage: graph_convert --in <file> --out <file> [--compress]\n"
                   "       graph_convert --in <file> --delta <d.txt> --out <file>\n"
                   "       graph_convert --info <file.pcsr>\n"
                   "       graph_convert --selftest\n"
                   "formats by extension: .pcsr binary, .gr DIMACS (input only),\n"
                   "otherwise text edge list\n");
      return 2;
    }
    const bool compress = cli.get_bool("compress", false);
    Graph g = read_any(in);
    const std::string delta_path = cli.get("delta", "");
    if (!delta_path.empty()) {
      const GraphDelta d = read_delta_file(delta_path);
      DeltaResult r = g.apply_delta(d);
      std::printf("%s: %llu inserted, %llu removed, %llu reweighted, %llu no-ops\n",
                  delta_path.c_str(), static_cast<unsigned long long>(r.inserted),
                  static_cast<unsigned long long>(r.removed),
                  static_cast<unsigned long long>(r.reweighted),
                  static_cast<unsigned long long>(r.noops));
      g = std::move(r.graph);
    }
    write_any(out, g, compress);
    std::printf("%s: n=%u, %llu undirected edges -> %s\n", in.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_arcs() / 2), out.c_str());
    if (ends_with(out, ".pcsr")) print_info(out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graph_convert: %s\n", e.what());
    return 1;
  }
}
