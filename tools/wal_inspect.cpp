// wal_inspect — dump and verify the durability layer's on-disk state:
// WAL segments, checkpoint manifests, and whole durability directories.
//
// Usage:
//   wal_inspect --dir state/                # everything: checkpoints + segments
//   wal_inspect --wal state/wal-....log     # one segment: records + tail verdict
//   wal_inspect --manifest state/ckpt-....manifest
//   wal_inspect --verify --dir state/       # exit 1 on any corruption
//   wal_inspect --selftest                  # round-trip smoke (ctest)
//
// Per segment it prints the record count, per-record (epoch, client,
// sequence, delta sizes) lines under --verbose, and the tail verdict —
// "clean" or the torn-tail reason and how many bytes recovery would
// truncate. Per manifest: the checkpoint epoch, WAL position, and each
// client's applied-sequence high-water mark. --verify makes any torn
// tail, checksum mismatch, or undecodable manifest a nonzero exit so a
// cron job can watch a serving directory's health.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "server/checkpoint.hpp"
#include "server/wal.hpp"
#include "util/cli.hpp"

namespace {

using namespace parsh;
using namespace parsh::server;

int g_problems = 0;

void print_segment(const std::string& path, bool verbose) {
  WalScan scan;
  const Status s = scan_wal_segment(path, &scan);
  std::printf("%s\n", path.c_str());
  if (!s.ok()) {
    std::printf("  INVALID: %s\n", s.message.c_str());
    ++g_problems;
    return;
  }
  std::printf("  first epoch  %llu\n",
              static_cast<unsigned long long>(scan.first_epoch));
  std::printf("  records      %zu\n", scan.records.size());
  std::printf("  bytes        %llu valid / %llu total\n",
              static_cast<unsigned long long>(scan.valid_bytes),
              static_cast<unsigned long long>(scan.file_bytes));
  if (scan.torn) {
    std::printf("  tail         TORN (%s): %llu bytes to truncate\n",
                scan.torn_reason.c_str(),
                static_cast<unsigned long long>(scan.file_bytes - scan.valid_bytes));
    ++g_problems;
  } else {
    std::printf("  tail         clean\n");
  }
  if (verbose) {
    for (const WalRecord& r : scan.records) {
      std::printf("  epoch %-6llu client %016llx seq %-6llu  +%zu -%zu  %s\n",
                  static_cast<unsigned long long>(r.epoch),
                  static_cast<unsigned long long>(r.client_id),
                  static_cast<unsigned long long>(r.sequence),
                  r.delta.insert.size(), r.delta.remove.size(),
                  status_name(r.result.status));
    }
  }
}

void print_manifest(const std::string& path) {
  Manifest m;
  const Status s = read_manifest_file(path, &m);
  std::printf("%s\n", path.c_str());
  if (!s.ok()) {
    std::printf("  INVALID: %s\n", s.message.c_str());
    ++g_problems;
    return;
  }
  std::printf("  epoch        %llu\n", static_cast<unsigned long long>(m.epoch));
  std::printf("  wal resumes  %llu\n",
              static_cast<unsigned long long>(m.wal_first_epoch));
  std::printf("  clients      %zu\n", m.table.size());
  for (const auto& [client, entry] : m.table) {
    std::printf("  client %016llx  last seq %-6llu  epoch %llu  %s\n",
                static_cast<unsigned long long>(client),
                static_cast<unsigned long long>(entry.sequence),
                static_cast<unsigned long long>(entry.result.epoch),
                status_name(entry.result.status));
  }
}

void print_dir(const std::string& dir, bool verbose) {
  std::vector<std::string> manifests;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t e = 0;
    if (parse_checkpoint_manifest_name(entry.path().filename().string(), &e)) {
      manifests.push_back(entry.path().string());
    }
  }
  std::sort(manifests.begin(), manifests.end());
  for (const std::string& m : manifests) print_manifest(m);
  for (const std::string& seg : list_wal_segments(dir)) print_segment(seg, verbose);
  if (manifests.empty() && list_wal_segments(dir).empty()) {
    std::printf("%s: no durability state\n", dir.c_str());
  }
}

/// End-to-end smoke for ctest: build a durability dir with real updates,
/// inspect it, corrupt it, and check every verdict this tool prints is
/// earned.
int selftest() {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp && *tmp ? tmp : "/tmp") + "/parsh_wal_inspect";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // A small durable engine: a few updates, one checkpoint, a few more.
  Graph g = with_uniform_weights(make_random_graph(60, 180, /*seed=*/7), 1, 16, 7);
  DynamicApproxShortestPaths::Params params;
  params.epsilon = 0.5;
  params.hopset.k_hops = 12;
  DurabilityOptions opt;
  opt.dir = dir;
  opt.wal.fsync = FsyncPolicy::kOff;
  std::unique_ptr<Durability> d;
  if (Status s = Durability::open(g, params, opt, &d); !s.ok()) {
    std::fprintf(stderr, "selftest: open: %s\n", s.to_string().c_str());
    return 1;
  }
  auto push = [&](std::uint64_t seq, vid u, vid v, double w) {
    UpdateRequest req;
    req.client_id = 0xabcdef;
    req.sequence = seq;
    req.insert.push_back({u, v, w});
    UpdateResponse resp;
    d->handle_update(req, &resp);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "selftest: update %llu failed\n",
                   static_cast<unsigned long long>(seq));
      std::exit(1);
    }
  };
  push(1, 0, 59, 2.5);
  push(2, 1, 58, 1.25);
  if (Status s = d->checkpoint_now(); !s.ok()) {
    std::fprintf(stderr, "selftest: checkpoint: %s\n", s.to_string().c_str());
    return 1;
  }
  push(3, 2, 57, 3.75);

  // The clean directory must inspect clean.
  g_problems = 0;
  print_dir(dir, /*verbose=*/true);
  if (g_problems != 0) {
    std::fprintf(stderr, "selftest: clean dir reported %d problems\n", g_problems);
    return 1;
  }

  // A duplicate must replay, not re-apply.
  {
    UpdateRequest req;
    req.client_id = 0xabcdef;
    req.sequence = 3;
    req.insert.push_back({5, 6, 9.0});  // different delta, same sequence
    UpdateResponse resp;
    d->handle_update(req, &resp);
    if (resp.status != StatusCode::kOk ||
        (resp.flags & kUpdateFlagDuplicate) == 0) {
      std::fprintf(stderr, "selftest: duplicate was not deduped\n");
      return 1;
    }
  }

  // Tear the newest segment's tail by appending garbage; the scan must
  // call it torn and name the reason.
  const std::vector<std::string> segs = list_wal_segments(dir);
  if (segs.empty()) {
    std::fprintf(stderr, "selftest: no segments written\n");
    return 1;
  }
  {
    std::FILE* f = std::fopen(segs.back().c_str(), "ab");
    const char junk[] = "WALR\x01\x02torn";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  g_problems = 0;
  print_segment(segs.back(), /*verbose=*/false);
  if (g_problems != 1) {
    std::fprintf(stderr, "selftest: torn tail not detected\n");
    return 1;
  }

  // A flipped manifest byte must fail its checksum.
  std::string man;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::uint64_t e = 0;
    if (parse_checkpoint_manifest_name(entry.path().filename().string(), &e)) {
      man = entry.path().string();
    }
  }
  if (man.empty()) {
    std::fprintf(stderr, "selftest: no manifest written\n");
    return 1;
  }
  {
    std::FILE* f = std::fopen(man.c_str(), "r+b");
    std::fseek(f, 20, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  g_problems = 0;
  print_manifest(man);
  if (g_problems != 1) {
    std::fprintf(stderr, "selftest: corrupt manifest not detected\n");
    return 1;
  }

  d.reset();
  std::filesystem::remove_all(dir, ec);
  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    if (cli.get_bool("selftest", false)) return selftest();
    const bool verbose = cli.get_bool("verbose", false);
    const bool verify = cli.get_bool("verify", false);
    const std::string dir = cli.get("dir", "");
    const std::string wal = cli.get("wal", "");
    const std::string manifest = cli.get("manifest", "");
    if (dir.empty() && wal.empty() && manifest.empty()) {
      std::fprintf(stderr,
                   "usage: wal_inspect --dir <state-dir> [--verify] [--verbose]\n"
                   "       wal_inspect --wal <segment.log> [--verbose]\n"
                   "       wal_inspect --manifest <ckpt.manifest>\n"
                   "       wal_inspect --selftest\n");
      return 2;
    }
    if (!dir.empty()) print_dir(dir, verbose);
    if (!wal.empty()) print_segment(wal, verbose);
    if (!manifest.empty()) print_manifest(manifest);
    if (verify && g_problems != 0) {
      std::fprintf(stderr, "wal_inspect: %d problem(s) found\n", g_problems);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wal_inspect: %s\n", e.what());
    return 2;
  }
}
