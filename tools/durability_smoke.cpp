// durability_smoke — the crash-recovery differential harness as a
// standalone process pair, so CI can use a REAL kill -9 instead of an
// in-process fault seam.
//
//   durability_smoke --serve   --dir state/ --seed 42 --updates 400
//   (kill -9 it mid-stream)
//   durability_smoke --recover --dir state/ --seed 42
//
// Both modes derive the SAME deterministic update stream from --seed
// (--n, --updates must match too). --serve opens a durable engine on
// --dir and applies the stream one batch at a time, printing an
// `applied <seq> epoch <epoch>` line per acknowledged batch; whatever
// instant the kill lands — between batches, inside a WAL append, inside
// a checkpoint — is the crash image --recover starts from.
//
// --recover opens the directory (checkpoint load + WAL replay), reads
// the recovered epoch E, then builds an uninterrupted twin IN PROCESS by
// applying the first E batches of the same stream to a fresh durable
// engine in a scratch directory, and compares:
//   * graph digests of the published snapshots,
//   * distance digests over a fixed deterministic query set,
//   * the per-client exactly-once tables (sequence + stored verdict).
// Any mismatch prints the differing digests and exits 1; the CI lane
// fails. Exit 0 means the recovered server is bit-identical to one that
// never crashed.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/digest.hpp"
#include "graph/generators.hpp"
#include "random/rng.hpp"
#include "server/checkpoint.hpp"
#include "util/cli.hpp"

namespace {

using namespace parsh;
using namespace parsh::server;

struct StreamConfig {
  std::uint64_t seed = 42;
  vid n = 200;
  std::uint64_t updates = 400;
  std::uint64_t checkpoint_every = 32;
  double sleep_ms = 0;
};

Graph base_graph(const StreamConfig& sc) {
  return with_uniform_weights(
      make_random_graph(sc.n, static_cast<eid>(sc.n) * 3, sc.seed), 1, 16,
      sc.seed + 1);
}

std::uint64_t stream_client_id(const StreamConfig& sc) {
  return Rng(sc.seed).split(0x1d).bits(0) | 1;
}

/// Batch `seq` (1-based) of the stream: a few inserts and an occasional
/// remove, all a pure function of (seed, seq).
void make_batch(const StreamConfig& sc, std::uint64_t seq, UpdateRequest* req) {
  Rng rng = Rng(sc.seed).split(0x600d).split(seq);
  req->client_id = stream_client_id(sc);
  req->sequence = seq;
  req->insert.clear();
  req->remove.clear();
  std::uint64_t d = 0;
  for (int i = 0; i < 3; ++i) {
    Edge e;
    e.u = static_cast<vid>(rng.uniform_int(d++, sc.n));
    e.v = static_cast<vid>(rng.uniform_int(d++, sc.n));
    e.w = static_cast<weight_t>(1 + rng.uniform_int(d++, 16));
    if (e.u != e.v) req->insert.push_back(e);
  }
  if (seq % 4 == 0) {
    // Remove an edge a previous batch plausibly inserted (removing a
    // non-edge is a recorded noop — still deterministic).
    Rng old = Rng(sc.seed).split(0x600d).split(1 + (seq / 2) % seq);
    Edge e;
    e.u = static_cast<vid>(old.uniform_int(0, sc.n));
    e.v = static_cast<vid>(old.uniform_int(1, sc.n));
    if (e.u != e.v) req->remove.push_back(e);
  }
}

Status open_durable(const StreamConfig& sc, const std::string& dir,
                    std::unique_ptr<Durability>* out) {
  DynamicApproxShortestPaths::Params params;
  params.epsilon = 0.5;
  params.hopset.k_hops = 12;
  DurabilityOptions opt;
  opt.dir = dir;
  opt.checkpoint_every = sc.checkpoint_every;
  opt.wal.fsync = FsyncPolicy::kEveryBatch;
  return Durability::open(base_graph(sc), params, opt, out);
}

/// Fold a fixed query set's distance estimates into one u64.
std::uint64_t query_digest(Durability& d, const StreamConfig& sc) {
  auto snap = d.engine().snapshot();
  std::uint64_t h = kFnv64Offset;
  Rng rng = Rng(sc.seed).split(0xd16e57);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * i, sc.n));
    const vid t = static_cast<vid>(rng.uniform_int(2 * i + 1, sc.n));
    const auto r = snap->engine.query(s, t);
    h = fnv1a_f64(h, r.estimate);
  }
  return h;
}

std::uint64_t table_digest(const ClientTable& t) {
  std::uint64_t h = kFnv64Offset;
  for (const auto& [client, entry] : t) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, entry.sequence);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(entry.result.status));
    h = fnv1a_u64(h, entry.result.epoch);
    h = fnv1a_u64(h, entry.result.inserted);
    h = fnv1a_u64(h, entry.result.removed);
    h = fnv1a_u64(h, entry.result.noops);
  }
  return h;
}

int serve(const StreamConfig& sc, const std::string& dir) {
  std::unique_ptr<Durability> d;
  if (Status s = open_durable(sc, dir, &d); !s.ok()) {
    std::fprintf(stderr, "serve: open: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("serving from epoch %" PRIu64 " (replayed %" PRIu64 ")\n",
              d->engine().epoch(), d->recovery().replayed);
  std::fflush(stdout);
  UpdateRequest req;
  for (std::uint64_t seq = 1; seq <= sc.updates; ++seq) {
    make_batch(sc, seq, &req);
    UpdateResponse resp;
    d->handle_update(req, &resp);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "serve: batch %" PRIu64 " failed: %u\n", seq,
                   static_cast<unsigned>(resp.status));
      return 1;
    }
    std::printf("applied %" PRIu64 " epoch %" PRIu64 "%s\n", seq, resp.epoch,
                (resp.flags & kUpdateFlagDuplicate) ? " (duplicate)" : "");
    std::fflush(stdout);
    if (sc.sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sc.sleep_ms));
    }
  }
  std::printf("serve done: epoch %" PRIu64 "\n", d->engine().epoch());
  return 0;
}

int recover(const StreamConfig& sc, const std::string& dir) {
  std::unique_ptr<Durability> d;
  if (Status s = open_durable(sc, dir, &d); !s.ok()) {
    std::fprintf(stderr, "recover: open: %s\n", s.to_string().c_str());
    return 1;
  }
  const RecoveryReport& rep = d->recovery();
  const std::uint64_t epoch = d->engine().epoch();
  std::printf("recovered: epoch %" PRIu64 " ckpt %s@%" PRIu64
              " replayed %" PRIu64 " skipped %" PRIu64 " torn %" PRIu64
              "B rejected %" PRIu64 " in %.1f ms\n",
              epoch, rep.checkpoint_loaded ? "yes" : "no", rep.checkpoint_epoch,
              rep.replayed, rep.skipped, rep.torn_bytes, rep.rejected_checkpoints,
              rep.recovery_ms);

  // The uninterrupted twin: same stream, first `epoch` batches, no crash.
  const std::string twin_dir = dir + ".twin";
  std::error_code ec;
  std::filesystem::remove_all(twin_dir, ec);
  std::unique_ptr<Durability> twin;
  if (Status s = open_durable(sc, twin_dir, &twin); !s.ok()) {
    std::fprintf(stderr, "recover: twin open: %s\n", s.to_string().c_str());
    return 1;
  }
  UpdateRequest req;
  for (std::uint64_t seq = 1; seq <= epoch; ++seq) {
    make_batch(sc, seq, &req);
    UpdateResponse resp;
    twin->handle_update(req, &resp);
    if (resp.status != StatusCode::kOk) {
      std::fprintf(stderr, "recover: twin batch %" PRIu64 " failed\n", seq);
      return 1;
    }
  }

  int bad = 0;
  const std::uint64_t g1 = graph_digest(d->engine().snapshot()->graph);
  const std::uint64_t g2 = graph_digest(twin->engine().snapshot()->graph);
  if (g1 != g2) {
    std::fprintf(stderr, "FAIL graph digest %016" PRIx64 " != %016" PRIx64 "\n",
                 g1, g2);
    ++bad;
  }
  const std::uint64_t q1 = query_digest(*d, sc);
  const std::uint64_t q2 = query_digest(*twin, sc);
  if (q1 != q2) {
    std::fprintf(stderr, "FAIL query digest %016" PRIx64 " != %016" PRIx64 "\n",
                 q1, q2);
    ++bad;
  }
  const std::uint64_t t1 = table_digest(d->client_table());
  const std::uint64_t t2 = table_digest(twin->client_table());
  if (t1 != t2) {
    std::fprintf(stderr, "FAIL client table %016" PRIx64 " != %016" PRIx64 "\n",
                 t1, t2);
    ++bad;
  }

  // A duplicate of the newest applied batch must replay, not re-apply.
  if (epoch > 0) {
    make_batch(sc, epoch, &req);
    UpdateResponse resp;
    d->handle_update(req, &resp);
    if (resp.status != StatusCode::kOk ||
        (resp.flags & kUpdateFlagDuplicate) == 0 ||
        d->engine().epoch() != epoch) {
      std::fprintf(stderr, "FAIL duplicate of batch %" PRIu64
                           " was not answered from the table\n",
                   epoch);
      ++bad;
    }
  }

  std::filesystem::remove_all(twin_dir, ec);
  if (bad != 0) return 1;
  std::printf("recover OK: graph %016" PRIx64 " queries %016" PRIx64
              " table %016" PRIx64 " match uninterrupted twin\n",
              g1, q1, t1);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  try {
    StreamConfig sc;
    sc.seed = cli.get_seed("seed", 42);
    sc.n = static_cast<vid>(cli.get_int("n", 200));
    sc.updates = static_cast<std::uint64_t>(cli.get_int("updates", 400));
    sc.checkpoint_every =
        static_cast<std::uint64_t>(cli.get_int("checkpoint-every", 32));
    sc.sleep_ms = cli.get_double("sleep-ms", 0);
    const std::string dir = cli.get("dir", "");
    const bool serve_mode = cli.get_bool("serve", false);
    const bool recover_mode = cli.get_bool("recover", false);
    if (dir.empty() || serve_mode == recover_mode) {
      std::fprintf(stderr,
                   "usage: durability_smoke --serve   --dir D [--seed S] [--n N]"
                   " [--updates U] [--checkpoint-every C] [--sleep-ms MS]\n"
                   "       durability_smoke --recover --dir D [same stream flags]\n");
      return 2;
    }
    return serve_mode ? serve(sc, dir) : recover(sc, dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "durability_smoke: %s\n", e.what());
    return 2;
  }
}
