// Randomized differential harness for the dynamic (epoch-swapped)
// serving layer, pinning its central claim: an incrementally maintained
// engine is indistinguishable from one rebuilt from scratch.
//
// The harness maintains three views of the same evolving graph:
//   * an edge-map oracle (std::map, the delta semantics written longhand),
//   * an organic DynamicApproxShortestPaths (incremental rebuilds),
//   * a forced-full twin (every apply rebuilds every scale).
// Each round draws a seed-deterministic delta batch — inserts, removals,
// reweights, duplicates, self loops, removals of absent edges — applies
// it everywhere, and checks (a) the CSR's edge list equals the oracle
// exactly, (b) organic and forced-full answer sampled queries
// bit-identically (estimate, rounds, relaxations, scale), and
// periodically (c) a from-scratch ApproxShortestPaths over the current
// graph agrees too. The whole run is hashed into a digest and repeated at
// 1 and 4 OpenMP threads: equal digests pin thread-count determinism of
// the rebuild path end to end.
//
// Every round is wrapped in SCOPED_TRACE carrying (topology, seed,
// round), so a failure message is a replayable repro recipe on its own.
//
// The *Swap*/*Lifetime* tests are intentionally small and named for the
// TSan lane filter (.github/workflows/ci.yml): the full 200-round harness
// is a release-build job, the concurrency and snapshot-lifetime shapes
// race-check under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/pcsr.hpp"
#include "parallel/parallel_for.hpp"
#include "random/rng.hpp"
#include "sssp/dynamic_approx.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

DynamicApproxShortestPaths::Params harness_params() {
  DynamicApproxShortestPaths::Params p;
  p.epsilon = 0.25;
  p.hopset.k_hops = 12;  // small hop budget keeps a rebuild ~1ms at n=100
  return p;
}

// ---- the oracle: delta semantics written longhand ---------------------------

using EdgeMap = std::map<std::pair<vid, vid>, weight_t>;

std::pair<vid, vid> canon(vid u, vid v) {
  return u < v ? std::pair(u, v) : std::pair(v, u);
}

/// Mirror the documented apply_delta semantics on a plain map: removals
/// before inserts, duplicate inserts keep the minimum weight, self loops
/// and absent removals are no-ops.
void oracle_apply(EdgeMap& edges, const GraphDelta& d) {
  for (const Edge& e : d.remove) {
    if (e.u == e.v) continue;
    edges.erase(canon(e.u, e.v));
  }
  EdgeMap pending;
  for (const Edge& e : d.insert) {
    if (e.u == e.v) continue;
    const auto key = canon(e.u, e.v);
    const auto it = pending.find(key);
    if (it == pending.end() || e.w < it->second) pending[key] = e.w;
  }
  for (const auto& [key, w] : pending) edges[key] = w;
}

EdgeMap edge_map_of(const Graph& g) {
  EdgeMap out;
  for (const Edge& e : g.undirected_edges()) out[canon(e.u, e.v)] = e.w;
  return out;
}

// ---- seed-deterministic batch generation ------------------------------------

/// One round's delta: a mix of inserts (fresh pairs, existing pairs at a
/// new weight, restated weights, in-batch duplicates), removals (present
/// and absent), and the odd self loop. Deterministic in (rng, round).
GraphDelta random_delta(const Rng& rng, std::uint64_t round, vid n,
                        const EdgeMap& current) {
  const Rng r = rng.split(round);
  GraphDelta d;
  std::vector<std::pair<vid, vid>> present(current.size());
  std::size_t i = 0;
  for (const auto& [key, w] : current) present[i++] = key;

  const std::uint64_t ops = 4 + r.uniform_int(0, 8);
  for (std::uint64_t k = 0; k < ops; ++k) {
    const std::uint64_t kind = r.uniform_int(10 * k + 1, 100);
    const vid u = static_cast<vid>(r.uniform_int(10 * k + 2, n));
    const vid v = static_cast<vid>(r.uniform_int(10 * k + 3, n));
    const auto w = static_cast<weight_t>(1 + r.uniform_int(10 * k + 4, 9));
    if (kind < 45) {
      d.insert.push_back({u, v, w});  // fresh insert / reweight / self loop
    } else if (kind < 55 && !present.empty()) {
      // Reweight (or restate) a currently-present edge.
      const auto [a, b] = present[r.uniform_int(10 * k + 5, present.size())];
      d.insert.push_back({a, b, w});
    } else if (kind < 60) {
      d.insert.push_back({u, v, w});
      d.insert.push_back({u, v, static_cast<weight_t>(1 + (w > 4 ? w - 3 : w))});
    } else if (kind < 90 && !present.empty()) {
      const auto [a, b] = present[r.uniform_int(10 * k + 6, present.size())];
      d.remove.push_back({a, b, 1});
    } else {
      d.remove.push_back({u, v, 1});  // probably absent
    }
  }
  return d;
}

// ---- the differential harness -----------------------------------------------

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

std::uint64_t bits_of(double d) {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(d));
  std::memcpy(&out, &d, sizeof(out));
  return out;
}

struct HarnessOutcome {
  std::uint64_t digest = 0;
  bool saw_partial_rebuild = false;  ///< some organic apply left scales clean
  bool saw_partial_clusters = false;  ///< dirty_clusters < total_clusters once
  std::uint64_t rounds_run = 0;
};

/// Run `rounds` rounds of the differential harness over `start`. Every
/// check fires inside; out->digest folds in every sampled answer so two
/// runs can be compared bit-for-bit across thread counts. (Out-param
/// because ASSERT_* needs a void-returning function.)
void run_harness(const char* topology, const Graph& start, std::uint64_t seed,
                 std::uint64_t rounds, HarnessOutcome* result) {
  const Rng rng = Rng(seed).split(0xd1f);
  const vid n = start.num_vertices();
  DynamicApproxShortestPaths organic(start, harness_params());
  DynamicApproxShortestPaths forced(start, harness_params());
  forced.set_force_full_rebuild(true);
  EdgeMap oracle = edge_map_of(start);

  HarnessOutcome& out = *result;
  out = HarnessOutcome{};
  SsspWorkspace ws_a, ws_b, ws_c;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE(std::string("topology=") + topology + " seed=" +
                 std::to_string(seed) + " round=" + std::to_string(round) +
                 " (replay: run_harness(\"" + topology + "\", g, seed, round+1))");
    const GraphDelta d = random_delta(rng, round, n, oracle);
    oracle_apply(oracle, d);
    const auto ra = organic.apply(d);
    const auto rb = forced.apply(d);

    // Delta bookkeeping is identical on both paths…
    ASSERT_EQ(ra.epoch, rb.epoch);
    ASSERT_EQ(ra.inserted, rb.inserted);
    ASSERT_EQ(ra.removed, rb.removed);
    ASSERT_EQ(ra.reweighted, rb.reweighted);
    ASSERT_EQ(ra.noops, rb.noops);
    // …and the forced twin really did rebuild everything.
    ASSERT_TRUE(rb.hopset.full_rebuild);
    ASSERT_EQ(rb.hopset.dirty_scales, rb.hopset.total_scales);
    if (!ra.hopset.full_rebuild) {
      if (ra.hopset.dirty_scales < ra.hopset.total_scales) {
        out.saw_partial_rebuild = true;
      }
      if (ra.hopset.dirty_clusters < ra.hopset.total_clusters) {
        out.saw_partial_clusters = true;
      }
    }

    const auto snap_a = organic.snapshot();
    const auto snap_b = forced.snapshot();

    // (a) The CSR agrees with the longhand oracle, edge for edge.
    ASSERT_EQ(edge_map_of(snap_a->graph), oracle);
    ASSERT_EQ(edge_map_of(snap_b->graph), oracle);

    // (b) Organic and forced-full engines answer bit-identically.
    const Rng qr = rng.split(0x51u + round);
    for (int q = 0; q < 6; ++q) {
      const vid s = static_cast<vid>(qr.uniform_int(2 * q, n));
      const vid t = static_cast<vid>(qr.uniform_int(2 * q + 1, n));
      const auto qa = snap_a->engine.query(s, t, ws_a);
      const auto qb = snap_b->engine.query(s, t, ws_b);
      ASSERT_EQ(bits_of(qa.estimate), bits_of(qb.estimate)) << s << "->" << t;
      ASSERT_EQ(qa.rounds, qb.rounds);
      ASSERT_EQ(qa.relaxations, qb.relaxations);
      ASSERT_EQ(qa.scale_used, qb.scale_used);
      hash_mix(out.digest, bits_of(qa.estimate));
      hash_mix(out.digest, qa.rounds);
      hash_mix(out.digest, qa.relaxations);
      hash_mix(out.digest, qa.scale_used);
    }

    // (c) Periodically, a from-scratch engine over the current graph
    // agrees with the incrementally maintained one.
    if ((round + 1) % 50 == 0) {
      const ApproxShortestPaths fresh(snap_a->graph, organic.params());
      for (int q = 0; q < 4; ++q) {
        const vid s = static_cast<vid>(qr.uniform_int(100 + 2 * q, n));
        const vid t = static_cast<vid>(qr.uniform_int(101 + 2 * q, n));
        const auto qa = snap_a->engine.query(s, t, ws_a);
        const auto qf = fresh.query(s, t, ws_c);
        ASSERT_EQ(bits_of(qa.estimate), bits_of(qf.estimate)) << s << "->" << t;
        ASSERT_EQ(qa.rounds, qf.rounds);
        ASSERT_EQ(qa.relaxations, qf.relaxations);
      }
    }
    ++out.rounds_run;
  }
}

struct Topology {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph make_rmat_topology(std::uint64_t seed) {
  return with_uniform_weights(ensure_connected(make_rmat_heavy(100, 300, seed)), 1,
                              9, seed + 17);
}
Graph make_hub_topology(std::uint64_t seed) {
  return with_uniform_weights(make_hubs(100, 3, seed), 1, 9, seed + 17);
}
Graph make_grid_topology(std::uint64_t seed) {
  return with_uniform_weights(make_grid(10, 10), 1, 9, seed + 17);
}

class DynamicDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicDifferential, TwoHundredRoundsPerTopologyAcrossThreadCounts) {
  constexpr std::uint64_t kRounds = 200;
  const Topology topologies[] = {{"rmat", make_rmat_topology},
                                 {"hub", make_hub_topology},
                                 {"grid", make_grid_topology}};
  const std::uint64_t seed = GetParam();
  for (const Topology& topo : topologies) {
    const Graph g = topo.make(seed);
    HarnessOutcome one, many;
    at_threads(1, [&] {
      run_harness(topo.name, g, seed, kRounds, &one);
      return 0;
    });
    ASSERT_EQ(one.rounds_run, kRounds) << topo.name;
    at_threads(4, [&] {
      run_harness(topo.name, g, seed, kRounds, &many);
      return 0;
    });
    ASSERT_EQ(many.rounds_run, kRounds) << topo.name;
    // The digest folds in every sampled answer of every round: equality
    // means the whole 200-round history is bit-identical across thread
    // counts.
    EXPECT_EQ(one.digest, many.digest) << topo.name << " seed " << seed;
    // The incremental path genuinely skipped work somewhere — otherwise
    // this harness only proves full rebuilds agree with full rebuilds.
    EXPECT_TRUE(one.saw_partial_rebuild) << topo.name;
    EXPECT_TRUE(one.saw_partial_clusters) << topo.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDifferential,
                         ::testing::Values<std::uint64_t>(1, 2));

// ---- focused shapes (also the TSan targets) ---------------------------------

TEST(DynamicSwap, RejectedBatchLeavesNoTrace) {
  const Graph g = make_grid_topology(3);
  DynamicApproxShortestPaths dyn(g, harness_params());
  SsspWorkspace ws;
  const auto before = dyn.snapshot()->engine.query(0, 99, ws);

  GraphDelta bad;
  bad.insert.push_back({0, 5, 2.0});
  bad.insert.push_back({1, 100, 1.0});  // endpoint out of range
  EXPECT_THROW((void)dyn.apply(bad), std::invalid_argument);
  EXPECT_EQ(dyn.epoch(), 0u);
  EXPECT_EQ(dyn.updates_started(), 0u);
  const auto snap = dyn.snapshot();
  EXPECT_EQ(snap->epoch, 0u);
  const auto after = snap->engine.query(0, 99, ws);
  EXPECT_EQ(bits_of(before.estimate), bits_of(after.estimate));

  GraphDelta nonpos;
  nonpos.insert.push_back({0, 5, 0.0});
  EXPECT_THROW((void)dyn.apply(nonpos), std::invalid_argument);
  EXPECT_EQ(dyn.epoch(), 0u);
}

TEST(DynamicSwap, HookFiresAfterBuildBeforePublish) {
  const Graph g = make_grid_topology(4);
  DynamicApproxShortestPaths dyn(g, harness_params());
  std::uint64_t hook_fired = 0;
  dyn.set_swap_hook([&] {
    ++hook_fired;
    // The new snapshot exists but is not yet published: readers still see
    // the previous epoch, and a started update is already counted.
    EXPECT_EQ(dyn.epoch(), hook_fired - 1);
    EXPECT_EQ(dyn.updates_started(), hook_fired);
    EXPECT_TRUE(dyn.rebuild_in_progress());
    EXPECT_EQ(dyn.snapshot()->epoch, hook_fired - 1);
  });
  GraphDelta d;
  d.insert.push_back({0, 57, 2.0});
  (void)dyn.apply(d);
  d.insert[0].w = 3.0;
  (void)dyn.apply(d);
  EXPECT_EQ(hook_fired, 2u);
  EXPECT_EQ(dyn.epoch(), 2u);
  EXPECT_FALSE(dyn.rebuild_in_progress());
}

TEST(DynamicSwap, ConcurrentQueriesAcrossSwapsAreSelfConsistent) {
  // Readers hammer snapshot() + query while the writer applies a stream
  // of updates. Each reader checks its answers are internally consistent
  // with the snapshot it pinned (same epoch before and after the query,
  // on the pointer it holds). This is the TSan shape for the swap: the
  // mutex-guarded shared_ptr publish is the only synchronization.
  const Graph g = make_grid_topology(5);
  DynamicApproxShortestPaths dyn(g, harness_params());
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      SsspWorkspace ws;
      const Rng rng = Rng(900 + r);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = dyn.snapshot();
        const std::uint64_t epoch_before = snap->epoch;
        const vid s = static_cast<vid>(rng.uniform_int(2 * i, 100));
        const vid t = static_cast<vid>(rng.uniform_int(2 * i + 1, 100));
        const auto q = snap->engine.query(s, t, ws);
        EXPECT_GE(q.estimate, 0);
        EXPECT_EQ(snap->epoch, epoch_before);  // the pinned snapshot is frozen
        queries_done.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  const Rng rng = Rng(901);
  for (std::uint64_t round = 0; round < 12; ++round) {
    GraphDelta d;
    const vid u = static_cast<vid>(rng.uniform_int(2 * round, 100));
    const vid v = static_cast<vid>(rng.uniform_int(2 * round + 1, 100));
    if (u != v) d.insert.push_back({u, v, static_cast<weight_t>(1 + round % 7)});
    d.remove.push_back({static_cast<vid>(round % 100),
                        static_cast<vid>((round * 37) % 100), 1});
    (void)dyn.apply(d);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(dyn.epoch(), 12u);
  EXPECT_GT(queries_done.load(), 0u);
}

TEST(DynamicSwap, StalenessAccounting) {
  const Graph g = make_grid_topology(6);
  DynamicApproxShortestPaths dyn(g, harness_params());
  EXPECT_FALSE(dyn.note_batch_served(0));  // nothing newer exists
  GraphDelta d;
  d.insert.push_back({0, 31, 2.0});
  (void)dyn.apply(d);
  EXPECT_TRUE(dyn.note_batch_served(0));   // served pre-update epoch: stale
  EXPECT_FALSE(dyn.note_batch_served(1));  // current epoch: fresh
  EXPECT_EQ(dyn.batches_served(), 3u);
  EXPECT_EQ(dyn.stale_batches(), 1u);
}

TEST(DynamicLifetime, SnapshotOutlivesSwapAndUnlink) {
  // The snapshot-lifetime rule, end to end on mmap-backed storage: load a
  // .pcsr, serve from it, unlink the file, swap epochs twice — a snapshot
  // pinned before all of that must keep answering, because its Graph's
  // storage handles keep the mapping alive. (This is the latent hazard
  // the server's one-snapshot-per-batch rule exists for.)
  const std::string path = std::string(::testing::TempDir()) + "parsh_dyn_unlink.pcsr";
  const Graph g0 = make_rmat_topology(7);
  write_pcsr_file(path, g0);
  const Graph mapped = load_pcsr_file(path);  // ArrayHandle views of the mapping

  DynamicApproxShortestPaths dyn(mapped, harness_params());
  SsspWorkspace ws;
  const auto pinned = dyn.snapshot();
  const auto before = pinned->engine.query(0, 77, ws);

  ASSERT_EQ(std::remove(path.c_str()), 0);  // unlink while mapped
  GraphDelta d;
  d.insert.push_back({0, 42, 1.0});
  (void)dyn.apply(d);
  d.remove.push_back({0, 42, 1.0});
  d.insert.clear();
  (void)dyn.apply(d);
  EXPECT_EQ(dyn.epoch(), 2u);

  // The old snapshot still reads through the unlinked mapping.
  const auto after = pinned->engine.query(0, 77, ws);
  EXPECT_EQ(bits_of(before.estimate), bits_of(after.estimate));
  EXPECT_EQ(before.rounds, after.rounds);
  ASSERT_EQ(edge_map_of(pinned->graph), edge_map_of(g0));

  // And the current epoch answers the round-tripped graph (a remove of
  // the inserted edge restores the start state, but on fresh storage).
  ASSERT_EQ(edge_map_of(dyn.snapshot()->graph), edge_map_of(g0));
}

TEST(DynamicLifetime, CompressedGraphsStayCompressedAcrossEpochs) {
  const Graph flat = make_rmat_topology(8);
  DynamicApproxShortestPaths dyn(flat.compress_adjacency(), harness_params());
  ASSERT_TRUE(dyn.snapshot()->graph.compressed());
  GraphDelta d;
  d.insert.push_back({1, 60, 2.0});
  (void)dyn.apply(d);
  EXPECT_TRUE(dyn.snapshot()->graph.compressed());

  // Flat and compressed serving answer bit-identically, before and after.
  DynamicApproxShortestPaths dyn_flat(flat, harness_params());
  (void)dyn_flat.apply(d);
  SsspWorkspace wa, wb;
  for (const auto& [s, t] : std::vector<std::pair<vid, vid>>{{0, 9}, {3, 88}}) {
    const auto qa = dyn.snapshot()->engine.query(s, t, wa);
    const auto qb = dyn_flat.snapshot()->engine.query(s, t, wb);
    EXPECT_EQ(bits_of(qa.estimate), bits_of(qb.estimate)) << s << "->" << t;
    EXPECT_EQ(qa.rounds, qb.rounds);
    EXPECT_EQ(qa.relaxations, qb.relaxations);
  }
}

}  // namespace
}  // namespace parsh
