// Tests for the distributed (synchronized message-passing) port of
// Algorithm 2, substantiating Section 2.2's porting claim.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "spanner/distributed_spanner.hpp"
#include "spanner/spanner.hpp"
#include "spanner/verify.hpp"

namespace parsh {
namespace {

class DistSweep : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DistSweep, MatchesSharedMemoryConstructionExactly) {
  // Same shifts, same argmin, same boundary rule => identical spanners.
  const auto [k, seed] = GetParam();
  const Graph g = ensure_connected(make_random_graph(300, 1200, seed + 40));
  const DistributedSpannerResult dist = distributed_unweighted_spanner(g, k, seed);
  const SpannerResult shared = unweighted_spanner(g, k, seed);
  EXPECT_EQ(dist.edges, shared.edges);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistSweep,
    ::testing::Combine(::testing::Values(2.0, 4.0),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(DistributedSpanner, RoundComplexityScalesWithKNotN) {
  // Section 2.2 / Figure 1: O(k log* n)-round construction. Rounds track
  // delta_max + cluster radius ~ (k/ln n) * log n * const — compare two
  // graph sizes at fixed k: rounds must grow far slower than n.
  const double kk = 3.0;
  const Graph small = make_torus(16, 16);    // n = 256
  const Graph large = make_torus(64, 64);    // n = 4096 (16x more)
  double r_small = 0, r_large = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    r_small += static_cast<double>(
        distributed_unweighted_spanner(small, kk, seed).rounds);
    r_large += static_cast<double>(
        distributed_unweighted_spanner(large, kk, seed).rounds);
  }
  EXPECT_LT(r_large, r_small * 4.0);  // 16x vertices, < 4x rounds
}

TEST(DistributedSpanner, MoreRoundsForLargerK) {
  const Graph g = make_torus(24, 24);
  double r2 = 0, r8 = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    r2 += static_cast<double>(distributed_unweighted_spanner(g, 2.0, seed).rounds);
    r8 += static_cast<double>(distributed_unweighted_spanner(g, 8.0, seed).rounds);
  }
  EXPECT_LT(r2, r8);  // beta shrinks with k => deeper waves
}

TEST(DistributedSpanner, MessageComplexityLinearInWaveWork) {
  // Each vertex broadcasts once when settled plus one id-exchange per
  // arc: total <= 2 * arcs.
  const Graph g = ensure_connected(make_random_graph(400, 1600, 3));
  const DistributedSpannerResult r = distributed_unweighted_spanner(g, 3.0, 5);
  EXPECT_LE(r.messages, 2 * g.num_arcs());
  EXPECT_GE(r.messages, g.num_arcs());  // the id exchange alone
}

TEST(DistributedSpanner, RejectsWeightedGraphs) {
  const Graph g = with_uniform_weights(make_grid(4, 4), 1, 5, 2);
  EXPECT_THROW(distributed_unweighted_spanner(g, 2.0, 1), InvalidGraphError);
}

TEST(DistributedSpanner, SpannerQualityCarriesOver) {
  const Graph g = ensure_connected(make_random_graph(250, 1000, 9));
  const DistributedSpannerResult r = distributed_unweighted_spanner(g, 3.0, 2);
  EXPECT_TRUE(is_subgraph(g, r.edges));
  EXPECT_LE(max_edge_stretch(g, r.edges), 6.0 * 3.0 + 1.0);
}

}  // namespace
}  // namespace parsh
