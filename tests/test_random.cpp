// Tests for the splittable RNG and the Exp(beta) sampling underpinning
// Algorithm 1. The distributional checks are statistical with fixed seeds
// and generous tolerances — they fail only on real implementation bugs.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "random/rng.hpp"

namespace parsh {
namespace {

TEST(Rng, DeterministicInSeedAndCounter) {
  Rng a(123), b(123), c(124);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(i), b.bits(i));
    EXPECT_NE(a.bits(i), c.bits(i));  // different seeds diverge (w.h.p.)
  }
}

TEST(Rng, UniformInOpenUnitInterval) {
  Rng rng(77);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = rng.uniform(i);
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(99);
  const std::size_t n = 200000;
  double sum = 0, sumsq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(i);
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(5);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(i, 17), 17u);
  }
  // All residues hit for a small bound.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(i, 7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SplitStreamsAreDistinct) {
  Rng base(42);
  Rng s1 = base.split(1), s2 = base.split(2), s1b = base.split(1);
  EXPECT_EQ(s1.state(), s1b.state());
  EXPECT_NE(s1.state(), s2.state());
  EXPECT_NE(s1.bits(0), s2.bits(0));
}

class ExponentialBetas : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialBetas, MeanIsOneOverBeta) {
  const double beta = GetParam();
  Rng rng(2026);
  const std::size_t n = 100000;
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += rng.exponential(i, beta);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0 / beta, 0.05 / beta);
}

TEST_P(ExponentialBetas, SurvivalFunctionMatches) {
  // P[X > t] = exp(-beta t); check at a few quantiles.
  const double beta = GetParam();
  Rng rng(31337);
  const std::size_t n = 100000;
  for (double t : {0.5 / beta, 1.0 / beta, 2.0 / beta}) {
    std::size_t above = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.exponential(i, beta) > t) ++above;
    }
    const double expect = std::exp(-beta * t);
    EXPECT_NEAR(static_cast<double>(above) / n, expect, 0.01)
        << "beta=" << beta << " t=" << t;
  }
}

TEST_P(ExponentialBetas, Memorylessness) {
  // P[X > s+t | X > s] ~ P[X > t] — the property the Lemma 2.2 proof
  // leans on. Compare conditional and unconditional survival empirically.
  const double beta = GetParam();
  Rng rng(555);
  const std::size_t n = 200000;
  const double s = 1.0 / beta, t = 0.7 / beta;
  std::size_t above_s = 0, above_st = 0, above_t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.exponential(i, beta);
    if (x > s) ++above_s;
    if (x > s + t) ++above_st;
    if (x > t) ++above_t;
  }
  ASSERT_GT(above_s, 0u);
  const double conditional = static_cast<double>(above_st) / above_s;
  const double unconditional = static_cast<double>(above_t) / n;
  EXPECT_NEAR(conditional, unconditional, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Betas, ExponentialBetas, ::testing::Values(0.1, 0.5, 1.0, 3.0));

TEST(Rng, ExponentialAlwaysPositiveAndFinite) {
  Rng rng(8);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double x = rng.exponential(i, 0.25);
    EXPECT_GT(x, 0.0);
    EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(Splitmix, AvalanchesOnSingleBitFlips) {
  // Flipping one input bit should flip ~half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t a = splitmix64(0x1234567890abcdefULL);
    const std::uint64_t b = splitmix64(0x1234567890abcdefULL ^ (1ULL << bit));
    const int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GT(flipped, 16) << bit;
    EXPECT_LT(flipped, 48) << bit;
  }
}

}  // namespace
}  // namespace parsh
