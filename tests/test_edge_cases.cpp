// Edge-case and failure-path coverage for spots the main suites pass
// through only on their happy paths: file-based IO, sparse huge integer
// weights in the Dial engine, distance-limited hop searches, empty
// clusters in by-label subgraphs, and formatting corners.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/parsh.hpp"

namespace parsh {
namespace {

TEST(FileIo, EdgeListFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "parsh_io_test.txt").string();
  const Graph g = with_uniform_weights(make_grid(5, 5), 1, 9, 3);
  write_edge_list_file(path, g);
  const Graph h = read_edge_list_file(path);
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/definitely/missing.txt"),
               std::runtime_error);
  EXPECT_THROW(read_dimacs_file("/nonexistent/definitely/missing.gr"),
               std::runtime_error);
}

TEST(FileIo, DimacsZeroIndexedIdsRejected) {
  std::stringstream ss("p sp 2 1\na 0 1 5\n");
  EXPECT_THROW(read_dimacs(ss), std::runtime_error);
}

TEST(DialEngine, SparseHugeIntegerWeights) {
  // Weights spanning six orders of magnitude: the map-backed buckets must
  // handle the sparsity without allocating the full range.
  const Graph g = Graph::from_edges(
      5, {{0, 1, 1}, {1, 2, 1000000}, {2, 3, 1}, {3, 4, 999983}});
  const auto r = weighted_bfs(g, 0);
  EXPECT_EQ(r.dist[4], 1 + 1000000 + 1 + 999983);
  const auto d = dijkstra(g, 0);
  for (vid v = 0; v < 5; ++v) EXPECT_EQ(r.dist[v], d.dist[v]);
  // Rounds = distinct settled distance values.
  EXPECT_EQ(r.rounds, 5u);
}

TEST(DialEngine, EstClusterWithHugeWeights) {
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 500000}, {2, 3, 1}, {3, 4, 1}, {4, 5, 700000}});
  const Clustering a = est_cluster(g, 0.3, 11);
  const Clustering b = est_cluster_reference(g, 0.3, 11);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_TRUE(validate_clustering(g, a));
}

TEST(HopLimited, DistLimitPrunesExactly) {
  const Graph g = make_path(30);
  const auto r = hop_limited_sssp(g, 0, 100, /*stop_early=*/true, /*dist_limit=*/7.0);
  EXPECT_EQ(r.dist[7], 7);
  EXPECT_EQ(r.dist[8], kInfWeight);
  // Far fewer rounds than the unlimited search.
  EXPECT_LE(r.rounds, 9u);
}

TEST(HopLimited, DistLimitDoesNotBreakShorterPaths) {
  Graph g = make_path(10).with_extra_edges({{0, 9, 20}});
  // Limit admits the direct heavy edge but not longer-than-limit chains.
  const auto r = hop_limited_sssp(g, 0, 100, true, 20.0);
  EXPECT_EQ(r.dist[9], 9);  // path (weight 9) is under the limit and wins
}

TEST(SubgraphByLabel, EmptyClustersYieldEmptySubgraphs) {
  const Graph g = make_path(6);
  std::vector<vid> label{0, 0, 0, 2, 2, 2};  // label 1 unused
  const auto subs = induced_subgraphs_by_label(g, label, 3);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[1].graph.num_vertices(), 0u);
  EXPECT_EQ(subs[0].graph.num_edges(), 2u);
  EXPECT_EQ(subs[2].graph.num_edges(), 2u);
}

TEST(Quotient, SelfQuotientIsIdentity) {
  const Graph g = with_uniform_weights(make_grid(4, 4), 1, 5, 2);
  std::vector<vid> label(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) label[v] = v;
  const QuotientGraph q = quotient_graph(g, label, g.num_vertices());
  EXPECT_EQ(q.graph.undirected_edges(), g.undirected_edges());
}

TEST(TableFormat, HandlesEmptyRowsAndZero) {
  Table t({"a", "b"});
  t.row().cell("x");  // short row: missing cell renders empty
  t.row().cell(0.0, 2).cell(static_cast<std::size_t>(0));
  const std::string s = t.to_string();
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("0.00"), std::string::npos);
}

TEST(RoundingBound, MatchesLemma52Arithmetic) {
  // ceil(c k / zeta) for a few concrete values.
  EXPECT_DOUBLE_EQ(rounded_weight_bound(2.0, 10.0, 0.5), 40.0);
  EXPECT_DOUBLE_EQ(rounded_weight_bound(1.0, 7.0, 0.3), std::ceil(7.0 / 0.3));
}

TEST(WeightedSpanner, SingleEdgeGraph) {
  const Graph g = Graph::from_edges(2, {{0, 1, 17}});
  const SpannerResult r = weighted_spanner(g, 3.0, 1);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0].w, 17);
}

TEST(Hopset, TwoVertexGraphIsBaseCase) {
  const Graph g = Graph::from_edges(2, {{0, 1, 1}});
  EXPECT_TRUE(build_hopset(g, HopsetParams{}).edges.empty());
}

TEST(ApproxQuery, SingleEdgeGraphAnswersExactly) {
  const Graph g = Graph::from_edges(2, {{0, 1, 5}});
  const ApproxShortestPaths engine(g, {});
  const auto q = engine.query(0, 1);
  EXPECT_GE(q.estimate + 1e-9, 5.0);
  EXPECT_LE(q.estimate, 5.0 * 1.5);
}

TEST(WorkDepth, BenchRegionsIsolateAlgorithms) {
  // Two back-to-back regions measure only their own work.
  wd::reset();
  const Graph g = make_grid(20, 20);
  wd::Region r1;
  bfs(g, 0);
  const auto c1 = r1.delta();
  wd::Region r2;
  est_cluster(g, 0.5, 1);
  const auto c2 = r2.delta();
  EXPECT_GT(c1.work, 0u);
  EXPECT_GT(c2.work, 0u);
  EXPECT_GT(c1.rounds, 0u);
  EXPECT_GT(c2.rounds, 0u);
  const auto total = wd::snapshot();
  EXPECT_EQ(total.work, c1.work + c2.work);
}

TEST(Generators, ZeroAndOneVertexGraphs) {
  EXPECT_EQ(make_path(0).num_vertices(), 0u);
  EXPECT_EQ(make_path(1).num_edges(), 0u);
  EXPECT_EQ(make_cycle(2).num_edges(), 1u);  // degenerate cycle = edge
  EXPECT_EQ(make_complete(1).num_edges(), 0u);
  EXPECT_EQ(make_grid(1, 1).num_vertices(), 1u);
}

}  // namespace
}  // namespace parsh
