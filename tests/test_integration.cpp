// Cross-module integration tests: the full pipelines a user of the
// library would compose, exercised end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/parsh.hpp"

namespace parsh {
namespace {

TEST(Integration, SpannerOfSpannerStillApproximates) {
  // Composing two O(k)-spanners multiplies the stretch — and must still
  // be a valid subgraph pipeline.
  const Graph g = ensure_connected(make_random_graph(300, 2400, 3));
  const SpannerResult s1 = unweighted_spanner(g, 2.0, 1);
  const Graph h1 = spanner_graph(g, s1.edges);
  const SpannerResult s2 = unweighted_spanner(h1, 2.0, 2);
  const Graph h2 = spanner_graph(h1, s2.edges);
  EXPECT_LE(h2.num_edges(), h1.num_edges());
  EXPECT_EQ(num_components(h2), 1u);
  const double st1 = max_edge_stretch(g, s1.edges);
  const double st2 = max_edge_stretch(h1, s2.edges);
  EXPECT_LE(st1 * st2, (6 * 2 + 1) * (6 * 2 + 1));
}

TEST(Integration, HopsetOnSpannerGivesSparseQueryStructure) {
  // The paper's intended composition: sparsify with a spanner, then add a
  // hopset for parallel queries. Distances degrade only by the spanner
  // stretch; hop counts stay low.
  const Graph g = ensure_connected(make_random_graph(600, 6000, 5));
  const SpannerResult sp = unweighted_spanner(g, 3.0, 1);
  const Graph h = spanner_graph(g, sp.edges);
  const HopsetResult hs = build_hopset(h, HopsetParams{});
  const Graph augmented = h.with_extra_edges(hs.edges);
  // Metric sanity: dist_augmented == dist_spanner >= dist_g.
  const auto d_g = dijkstra(g, 0);
  const auto d_h = dijkstra(h, 0);
  const auto d_a = dijkstra(augmented, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(d_a.dist[v], d_h.dist[v]);
    EXPECT_GE(d_h.dist[v] + 1e-9, d_g.dist[v]);
  }
}

TEST(Integration, WeightDecompositionFeedsApproxQueries) {
  // Appendix B + Section 5: decompose a wide-ratio graph, run the query
  // engine on the mapped level, compare to exact.
  const vid n = 80;
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, (i % 20 == 10) ? 1e8 : static_cast<weight_t>(1 + i % 3)});
  }
  const Graph g = Graph::from_edges(n, edges);
  const WeightDecomposition dec = WeightDecomposition::build(g, 0.25);
  const auto q = dec.map_query(3, n - 2);
  ASSERT_TRUE(q.connected);
  const Graph& level_graph = dec.level(q.level).graph;
  ApproxShortestPaths::Params p;
  p.epsilon = 0.25;
  const ApproxShortestPaths engine(level_graph, p);
  const auto qr = engine.query(q.s, q.t);
  const weight_t exact = st_distance(g, 3, n - 2);
  ASSERT_NE(qr.estimate, kInfWeight);
  // Decomposition loses (1-eps) downward; engine adds (1+envelope) upward.
  EXPECT_GE(qr.estimate, (1.0 - 0.25) * exact * 0.99);
  EXPECT_LE(qr.estimate, exact * 1.75 + 1e-6);
}

TEST(Integration, WorkDepthCountersTrackAlgorithmScale) {
  // Rounds for one EST clustering scale with 1/beta, not with n — the
  // heart of the paper's depth claims.
  const Graph small_beta_graph = make_grid(40, 40);
  wd::reset();
  {
    wd::Region r;
    est_cluster(small_beta_graph, 1.0, 3);
    const auto tight = r.delta();
    wd::Region r2;
    est_cluster(small_beta_graph, 0.05, 3);
    const auto loose = r2.delta();
    EXPECT_LT(tight.rounds, loose.rounds);
  }
}

TEST(Integration, QuickstartPipelineSmall) {
  // The README quickstart, asserted.
  const Graph g = ensure_connected(make_random_graph(500, 1500, 1));
  const SpannerResult sp = unweighted_spanner(g, 3.0, 1);
  EXPECT_TRUE(is_subgraph(g, sp.edges));
  const HopsetResult hs = build_hopset(g, HopsetParams{});
  EXPECT_TRUE(hopset_weights_are_path_weights(g, hs.edges));
  ApproxShortestPaths::Params qp;
  qp.epsilon = 0.25;
  const ApproxShortestPaths engine(g, qp);
  const auto qr = engine.query(0, g.num_vertices() - 1);
  const weight_t exact = st_distance(g, 0, g.num_vertices() - 1);
  if (exact != kInfWeight) {
    EXPECT_GE(qr.estimate + 1e-6, exact);
    EXPECT_LE(qr.estimate, exact * 1.75 + 1e-6);
  }
}

TEST(Integration, SerializationRoundTripPreservesAlgorithms) {
  // Write a graph, read it back, and check a seeded clustering agrees —
  // the IO layer must not perturb anything the algorithms see.
  const Graph g = with_uniform_weights(make_grid(9, 9), 1, 4, 2);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  const Clustering cg = est_cluster(g, 0.4, 31);
  const Clustering ch = est_cluster(h, 0.4, 31);
  EXPECT_EQ(cg.cluster_of, ch.cluster_of);
  EXPECT_EQ(cg.center, ch.center);
}

TEST(Integration, Figure3ShortcutStory) {
  // The Figure 3 scenario: an s-t path crossing large clusters gets
  // bridged by star+clique edges; the shortcut path exists in G ∪ E' and
  // uses fewer hops at bounded extra length.
  const Graph g = make_path(3000);
  HopsetParams p;
  p.gamma2 = 0.5;
  p.epsilon = 0.5;
  p.seed = 5;
  const HopsetResult hs = build_hopset(g, p);
  ASSERT_GT(hs.star_edges, 0u);
  const Graph aug = g.with_extra_edges(hs.edges);
  const vid s = 0, t = 2999;
  const weight_t exact = 2999;
  const std::uint64_t h_plain = hops_to_approx(g, s, t, exact, 1.0, 3000);
  const std::uint64_t h_aug = hops_to_approx(aug, s, t, 1.0 * exact, 1.0, 3000);
  EXPECT_EQ(h_plain, 2999u);
  EXPECT_LT(h_aug, 2999u);
}

}  // namespace
}  // namespace parsh
