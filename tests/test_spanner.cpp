// Tests for the EST spanner constructions (Algorithms 2 and 3,
// Theorems 1.1 / 3.3): subgraph validity, stretch, size laws, and the
// well-separated contraction pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spanner/spanner.hpp"
#include "spanner/verify.hpp"

namespace parsh {
namespace {

TEST(UnweightedSpanner, IsSubgraphAndPreservesConnectivity) {
  const Graph g = ensure_connected(make_random_graph(400, 2000, 3));
  const SpannerResult r = unweighted_spanner(g, 3.0, 1);
  EXPECT_TRUE(is_subgraph(g, r.edges));
  const Graph h = spanner_graph(g, r.edges);
  EXPECT_EQ(num_components(h), 1u);
}

TEST(UnweightedSpanner, DeterministicInSeed) {
  const Graph g = make_grid(15, 15);
  const auto a = unweighted_spanner(g, 2.0, 9);
  const auto b = unweighted_spanner(g, 2.0, 9);
  EXPECT_EQ(a.edges, b.edges);
}

class SpannerStretch
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SpannerStretch, EdgeStretchWithinOk) {
  // Lemma 3.2: stretch O(k) w.h.p. The constant certified by the proof is
  // ~4k+1 (two tree radii of 2k each plus the crossing edge); assert an
  // explicit 6k+1 envelope to keep the test sharp but non-flaky.
  const auto [k, seed] = GetParam();
  const Graph g = ensure_connected(make_random_graph(250, 900, seed));
  const SpannerResult r = unweighted_spanner(g, k, seed);
  const double stretch = max_edge_stretch(g, r.edges);
  EXPECT_LE(stretch, 6.0 * k + 1.0) << "k=" << k;
  EXPECT_GE(stretch, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpannerStretch,
    ::testing::Combine(::testing::Values(2.0, 3.0, 4.0),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(UnweightedSpanner, SizeConcentratesNearTheTheorem11Law) {
  // Expected size O(n^{1+1/k}). On a dense-enough random graph the
  // boundary-edge count should be well below m and within a constant of
  // n^{1+1/k}.
  const vid n = 2000;
  const Graph g = ensure_connected(make_random_graph(n, 20000, 5));
  for (double k : {2.0, 3.0, 5.0}) {
    double size = 0;
    const int trials = 3;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      size += static_cast<double>(unweighted_spanner(g, k, seed).edges.size());
    }
    size /= trials;
    const double law = std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
    EXPECT_LE(size, 4.0 * law + 2.0 * n) << "k=" << k;
  }
}

TEST(UnweightedSpanner, LargerKGivesSparserSpanner) {
  const Graph g = ensure_connected(make_random_graph(1500, 15000, 6));
  double prev = 1e18;
  for (double k : {1.5, 3.0, 6.0}) {
    double size = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      size += static_cast<double>(unweighted_spanner(g, k, seed).edges.size());
    }
    EXPECT_LT(size, prev) << k;
    prev = size;
  }
}

TEST(UnweightedSpanner, CompleteGraphShrinksDrastically) {
  const Graph g = make_complete(60);  // m = 1770
  const SpannerResult r = unweighted_spanner(g, 2.0, 4);
  EXPECT_LT(r.edges.size(), 900u);
  EXPECT_LE(max_edge_stretch(g, r.edges), 13.0);
}

TEST(UnweightedSpanner, TreeInputKeepsAllEdges) {
  // A tree is its own only spanner: every edge is a forest or boundary
  // edge and none may be dropped (connectivity must survive).
  const Graph g = make_binary_tree(127);
  const SpannerResult r = unweighted_spanner(g, 3.0, 2);
  const Graph h = spanner_graph(g, r.edges);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(WeightBuckets, PowersOfTwoPartition) {
  const Graph g = Graph::from_edges(6, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 9}, {4, 5, 1000}});
  const auto buckets = weight_buckets(g);
  // weight 1 -> bucket 0; 2,3 -> bucket 1; 9 -> bucket 3; 1000 -> bucket 9.
  ASSERT_GE(buckets.size(), 10u);
  EXPECT_EQ(buckets[0].size(), 1u);
  EXPECT_EQ(buckets[1].size(), 2u);
  EXPECT_EQ(buckets[3].size(), 1u);
  EXPECT_EQ(buckets[9].size(), 1u);
  std::size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  EXPECT_EQ(total, g.num_edges());
}

TEST(WeightedSpanner, IsSubgraphPreservesConnectivity) {
  const Graph g = with_log_uniform_weights(
      ensure_connected(make_random_graph(300, 1500, 7)), 512.0, 8);
  const SpannerResult r = weighted_spanner(g, 3.0, 1);
  EXPECT_TRUE(is_subgraph(g, r.edges));
  EXPECT_EQ(num_components(spanner_graph(g, r.edges)), 1u);
}

class WeightedSpannerStretch
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WeightedSpannerStretch, StretchWithinOkAcrossWeightRatios) {
  const auto [k, ratio] = GetParam();
  const Graph g = with_log_uniform_weights(
      ensure_connected(make_random_graph(200, 800, 11)), ratio, 13);
  const SpannerResult r = weighted_spanner(g, k, 3);
  const double stretch = max_edge_stretch(g, r.edges);
  // Theorem 3.3's stretch is O(k) with a larger constant than the
  // unweighted case (contraction doubles it); 12k covers the certified
  // constant with margin for the high-probability radius events.
  EXPECT_LE(stretch, 12.0 * k) << "k=" << k << " U=" << ratio;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightedSpannerStretch,
                         ::testing::Combine(::testing::Values(2.0, 3.0),
                                            ::testing::Values(16.0, 256.0, 4096.0)));

TEST(WeightedSpanner, UnitWeightsReduceToUnweightedBehaviour) {
  const Graph g = make_grid(12, 12);
  const SpannerResult w = weighted_spanner(g, 2.0, 5);
  EXPECT_TRUE(is_subgraph(g, w.edges));
  EXPECT_EQ(num_components(spanner_graph(g, w.edges)), 1u);
}

TEST(WellSeparatedSpanner, ContractionSkipsAlreadyJoinedPieces) {
  // Two buckets: light triangle 0-1-2, then heavy edges among {0,1,2}
  // (quotient collapses them, so the heavy bucket adds nothing).
  std::vector<std::vector<Edge>> buckets(2);
  buckets[0] = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  buckets[1] = {{0, 1, 64}, {1, 2, 64}};
  const SpannerResult r = well_separated_spanner(3, buckets, 2.0, 1);
  for (const Edge& e : r.edges) EXPECT_LT(e.w, 64) << "heavy edge leaked";
}

TEST(WellSeparatedSpanner, HeavyBucketBridgesSurvive) {
  // Light edges form two cliques; one heavy edge bridges them and must be
  // kept (it is a forest edge of the level-2 quotient).
  std::vector<std::vector<Edge>> buckets(2);
  buckets[0] = {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}};
  buckets[1] = {{2, 3, 100}};
  const SpannerResult r = well_separated_spanner(6, buckets, 2.0, 1);
  bool bridge = false;
  for (const Edge& e : r.edges) {
    if (e.w == 100) bridge = true;
  }
  EXPECT_TRUE(bridge);
}

TEST(WeightedSpanner, SizeOverheadLogKNotLogU) {
  // Theorem 3.3: size O(n^{1+1/k} log k) — independent of U. Growing U by
  // 2^6 must not grow the spanner proportionally.
  const Graph base = ensure_connected(make_random_graph(800, 6000, 21));
  const double size_small = static_cast<double>(
      weighted_spanner(with_log_uniform_weights(base, 16.0, 1), 3.0, 2).edges.size());
  const double size_large = static_cast<double>(
      weighted_spanner(with_log_uniform_weights(base, 1024.0, 1), 3.0, 2).edges.size());
  EXPECT_LT(size_large, size_small * 2.5);
}

TEST(SpannerVerify, IsSubgraphCatchesForeignEdges) {
  const Graph g = make_path(5);
  EXPECT_TRUE(is_subgraph(g, {{0, 1, 1}}));
  EXPECT_FALSE(is_subgraph(g, {{0, 2, 1}}));   // non-edge
  EXPECT_FALSE(is_subgraph(g, {{0, 1, 2}}));   // wrong weight
}

TEST(SpannerVerify, MaxEdgeStretchExactOnKnownExample) {
  // Cycle of 6: dropping one edge forces a 5-hop detour for it.
  const Graph g = make_cycle(6);
  std::vector<Edge> spanner;
  for (const Edge& e : g.undirected_edges()) {
    if (!(e.u == 0 && e.v == 5)) spanner.push_back(e);
  }
  EXPECT_DOUBLE_EQ(max_edge_stretch(g, spanner), 5.0);
}

TEST(SpannerVerify, SampledStretchLowerBoundsExact) {
  const Graph g = ensure_connected(make_random_graph(150, 600, 9));
  const SpannerResult r = unweighted_spanner(g, 2.0, 3);
  const double exact = max_edge_stretch(g, r.edges);
  const double sampled = sampled_edge_stretch(g, r.edges, 40, 7);
  EXPECT_LE(sampled, exact + 1e-9);
  EXPECT_GE(sampled, 1.0);
}

TEST(SpannerVerify, PairStretchBoundedByEdgeStretch) {
  // Triangle-inequality argument: pair stretch <= max edge stretch.
  const Graph g = make_grid(10, 10);
  const SpannerResult r = unweighted_spanner(g, 2.0, 6);
  const double edge_stretch = max_edge_stretch(g, r.edges);
  const double pair_stretch = sampled_pair_stretch(g, r.edges, 30, 5);
  EXPECT_LE(pair_stretch, edge_stretch + 1e-9);
}

TEST(UnweightedSpanner, NoDuplicateEdgesInOutput) {
  const Graph g = ensure_connected(make_random_graph(500, 3000, 9));
  const SpannerResult r = unweighted_spanner(g, 2.0, 4);
  std::set<std::pair<vid, vid>> seen;
  for (const Edge& e : r.edges) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << e.u << "-" << e.v << " duplicated";
  }
  EXPECT_LE(r.edges.size(), g.num_edges());
}

TEST(WeightedSpanner, NoDuplicateEdgesAndSizeAtMostM) {
  const Graph g = with_log_uniform_weights(
      ensure_connected(make_random_graph(500, 3000, 9)), 256.0, 2);
  const SpannerResult r = weighted_spanner(g, 3.0, 4);
  std::set<std::pair<vid, vid>> seen;
  for (const Edge& e : r.edges) {
    const auto key = std::minmax(e.u, e.v);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second);
  }
  EXPECT_LE(r.edges.size(), g.num_edges());
}

}  // namespace
}  // namespace parsh
