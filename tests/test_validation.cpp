// Tests for input validation: documented preconditions turn into typed
// exceptions with actionable messages (failure injection for the public
// entry points).
#include <gtest/gtest.h>

#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "hopset/hopset.hpp"
#include "hopset/weighted_hopset.hpp"
#include "sssp/bfs.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {
namespace {

Graph fractional_graph() {
  return Graph::from_edges(3, {{0, 1, 1.5}, {1, 2, 2.0}});
}

TEST(Validation, IntegerWeightCheckAcceptsAndRejects) {
  EXPECT_NO_THROW(require_integer_weights(make_grid(3, 3), "t"));
  EXPECT_NO_THROW(
      require_integer_weights(with_uniform_weights(make_grid(3, 3), 1, 9, 1), "t"));
  EXPECT_THROW(require_integer_weights(fractional_graph(), "t"), InvalidGraphError);
  // Sub-unit weights are rejected too (paper normalises to >= 1).
  EXPECT_THROW(
      require_integer_weights(Graph::from_edges(2, {{0, 1, 0.25}}), "t"),
      InvalidGraphError);
}

TEST(Validation, PositiveWeightCheck) {
  EXPECT_NO_THROW(require_positive_weights(fractional_graph(), "t"));
}

TEST(Validation, VertexRangeCheck) {
  const Graph g = make_path(5);
  EXPECT_NO_THROW(require_vertex(g, 4, "t"));
  EXPECT_THROW(require_vertex(g, 5, "t"), std::out_of_range);
}

TEST(Validation, EstClusterRejectsFractionalWeightsAndBadBeta) {
  EXPECT_THROW(est_cluster(fractional_graph(), 0.5, 1), InvalidGraphError);
  EXPECT_THROW(est_cluster(make_path(4), 0.0, 1), std::invalid_argument);
  EXPECT_THROW(est_cluster(make_path(4), -1.0, 1), std::invalid_argument);
}

TEST(Validation, WeightedBfsRejectsFractionalWeightsAndBadSource) {
  EXPECT_THROW(weighted_bfs(fractional_graph(), 0), InvalidGraphError);
  EXPECT_THROW(weighted_bfs(make_path(4), 9), std::out_of_range);
}

TEST(Validation, BfsRejectsBadSource) {
  EXPECT_THROW(bfs(make_path(4), 4), std::out_of_range);
}

TEST(Validation, BuildHopsetRejectsBadInputs) {
  EXPECT_THROW(build_hopset(fractional_graph(), HopsetParams{}), InvalidGraphError);
  HopsetParams bad_delta;
  bad_delta.delta = 1.0;  // must be > 1 (Section 4)
  EXPECT_THROW(build_hopset(make_path(4), bad_delta), std::invalid_argument);
  HopsetParams bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_THROW(build_hopset(make_path(4), bad_eps), std::invalid_argument);
}

TEST(Validation, WeightedHopsetAcceptsFractionalButRejectsNonPositive) {
  // The Section 5 pipeline rounds internally — fractional weights are
  // its job to handle.
  EXPECT_NO_THROW(build_weighted_hopset(fractional_graph(), WeightedHopsetParams{}));
}

TEST(Validation, ErrorMessagesNameTheCaller) {
  try {
    est_cluster(fractional_graph(), 0.5, 1);
    FAIL() << "expected throw";
  } catch (const InvalidGraphError& e) {
    EXPECT_NE(std::string(e.what()).find("est_cluster"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("integer"), std::string::npos);
  }
}

}  // namespace
}  // namespace parsh
