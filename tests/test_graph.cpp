// Tests for the CSR graph container: construction invariants, dedup and
// symmetrization rules, weight handling, derived copies, and I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace parsh {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (vid v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_FALSE(g.weighted());
  EXPECT_TRUE(g.validate());
}

TEST(Graph, SelfLoopsDropped) {
  const Graph g = Graph::from_edges(3, {{0, 0, 1}, {1, 1, 5}, {0, 1, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, ParallelEdgesKeepMinWeight) {
  const Graph g = Graph::from_edges(2, {{0, 1, 5}, {0, 1, 2}, {1, 0, 9}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weight(g.begin(0)), 2);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, KeepParallelVariantKeepsThem) {
  const Graph g = Graph::from_edges_keep_parallel(2, {{0, 1, 5}, {0, 1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, AdjacencySortedByTarget) {
  const Graph g = Graph::from_edges(5, {{0, 4, 1}, {0, 2, 1}, {0, 1, 1}, {0, 3, 1}});
  vid prev = 0;
  for (eid e = g.begin(0); e < g.end(0); ++e) {
    EXPECT_GE(g.target(e), prev);
    prev = g.target(e);
  }
}

TEST(Graph, UnweightedReportsWeightOne) {
  const Graph g = Graph::from_edges(2, {{0, 1, 1}});
  EXPECT_FALSE(g.weighted());
  EXPECT_EQ(g.weight(g.begin(0)), 1);
  EXPECT_EQ(g.min_weight(), 1);
  EXPECT_EQ(g.max_weight(), 1);
}

TEST(Graph, WeightedDetectedAndMinMax) {
  const Graph g = Graph::from_edges(3, {{0, 1, 4}, {1, 2, 10}});
  EXPECT_TRUE(g.weighted());
  EXPECT_EQ(g.min_weight(), 4);
  EXPECT_EQ(g.max_weight(), 10);
}

TEST(Graph, UndirectedEdgesReportsEachOnceOriented) {
  const Graph g = Graph::from_edges(4, {{2, 1, 3}, {0, 3, 7}});
  const auto edges = g.undirected_edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, RoundTripThroughUndirectedEdges) {
  const Graph g = Graph::from_edges(6, {{0, 1, 2}, {1, 2, 3}, {3, 4, 1}, {4, 5, 8}});
  const Graph h = Graph::from_edges(6, g.undirected_edges());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
}

TEST(Graph, WithExtraEdgesMergesAndKeepsMin) {
  const Graph g = Graph::from_edges(3, {{0, 1, 5}});
  const Graph h = g.with_extra_edges({{1, 2, 4}, {0, 1, 2}});
  EXPECT_EQ(h.num_edges(), 2u);
  // The parallel (0,1) edge resolves to the lighter weight 2.
  weight_t w01 = 0;
  for (eid e = h.begin(0); e < h.end(0); ++e) {
    if (h.target(e) == 1) w01 = h.weight(e);
  }
  EXPECT_EQ(w01, 2);
  EXPECT_TRUE(h.validate());
}

TEST(Graph, MapWeightsTransformsEveryArc) {
  const Graph g = Graph::from_edges(3, {{0, 1, 3}, {1, 2, 5}});
  const Graph h = g.map_weights([](weight_t w) { return w * 2; });
  EXPECT_EQ(h.min_weight(), 6);
  EXPECT_EQ(h.max_weight(), 10);
  EXPECT_TRUE(h.validate());
}

TEST(Graph, AsUnweightedDropsWeights) {
  const Graph g = Graph::from_edges(3, {{0, 1, 3}, {1, 2, 5}});
  const Graph h = g.as_unweighted();
  EXPECT_FALSE(h.weighted());
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.weight(h.begin(0)), 1);
}

TEST(Graph, IsolatedVerticesAllowed) {
  const Graph g = Graph::from_edges(10, {{0, 1, 1}});
  EXPECT_EQ(g.num_vertices(), 10u);
  for (vid v = 2; v < 10; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = Graph::from_edges(5, {{0, 1, 2.5}, {1, 2, 1}, {3, 4, 7}});
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
}

TEST(GraphIo, DimacsParsesHeaderCommentsAndArcs) {
  std::stringstream ss;
  ss << "c a comment line\n"
     << "p sp 4 3\n"
     << "a 1 2 5\n"
     << "a 2 3 1\n"
     << "a 3 4 2\n";
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.weighted());
  EXPECT_TRUE(g.validate());
}

TEST(GraphIo, BadHeaderThrows) {
  std::stringstream ss("garbage");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

}  // namespace
}  // namespace parsh
