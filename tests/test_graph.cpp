// Tests for the CSR graph container: construction invariants, dedup and
// symmetrization rules, weight handling, derived copies, and I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "parallel/parallel_for.hpp"

namespace parsh {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, TriangleBasics) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (vid v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_FALSE(g.weighted());
  EXPECT_TRUE(g.validate());
}

TEST(Graph, SelfLoopsDropped) {
  const Graph g = Graph::from_edges(3, {{0, 0, 1}, {1, 1, 5}, {0, 1, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, ParallelEdgesKeepMinWeight) {
  const Graph g = Graph::from_edges(2, {{0, 1, 5}, {0, 1, 2}, {1, 0, 9}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weight(g.begin(0)), 2);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, KeepParallelVariantKeepsThem) {
  const Graph g = Graph::from_edges_keep_parallel(2, {{0, 1, 5}, {0, 1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, AdjacencySortedByTarget) {
  const Graph g = Graph::from_edges(5, {{0, 4, 1}, {0, 2, 1}, {0, 1, 1}, {0, 3, 1}});
  vid prev = 0;
  for (eid e = g.begin(0); e < g.end(0); ++e) {
    EXPECT_GE(g.target(e), prev);
    prev = g.target(e);
  }
}

TEST(Graph, UnweightedReportsWeightOne) {
  const Graph g = Graph::from_edges(2, {{0, 1, 1}});
  EXPECT_FALSE(g.weighted());
  EXPECT_EQ(g.weight(g.begin(0)), 1);
  EXPECT_EQ(g.min_weight(), 1);
  EXPECT_EQ(g.max_weight(), 1);
}

TEST(Graph, WeightedDetectedAndMinMax) {
  const Graph g = Graph::from_edges(3, {{0, 1, 4}, {1, 2, 10}});
  EXPECT_TRUE(g.weighted());
  EXPECT_EQ(g.min_weight(), 4);
  EXPECT_EQ(g.max_weight(), 10);
}

TEST(Graph, UndirectedEdgesReportsEachOnceOriented) {
  const Graph g = Graph::from_edges(4, {{2, 1, 3}, {0, 3, 7}});
  const auto edges = g.undirected_edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, RoundTripThroughUndirectedEdges) {
  const Graph g = Graph::from_edges(6, {{0, 1, 2}, {1, 2, 3}, {3, 4, 1}, {4, 5, 8}});
  const Graph h = Graph::from_edges(6, g.undirected_edges());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
}

TEST(Graph, WithExtraEdgesMergesAndKeepsMin) {
  const Graph g = Graph::from_edges(3, {{0, 1, 5}});
  const Graph h = g.with_extra_edges({{1, 2, 4}, {0, 1, 2}});
  EXPECT_EQ(h.num_edges(), 2u);
  // The parallel (0,1) edge resolves to the lighter weight 2.
  weight_t w01 = 0;
  for (eid e = h.begin(0); e < h.end(0); ++e) {
    if (h.target(e) == 1) w01 = h.weight(e);
  }
  EXPECT_EQ(w01, 2);
  EXPECT_TRUE(h.validate());
}

TEST(Graph, MapWeightsTransformsEveryArc) {
  const Graph g = Graph::from_edges(3, {{0, 1, 3}, {1, 2, 5}});
  const Graph h = g.map_weights([](weight_t w) { return w * 2; });
  EXPECT_EQ(h.min_weight(), 6);
  EXPECT_EQ(h.max_weight(), 10);
  EXPECT_TRUE(h.validate());
}

TEST(Graph, AsUnweightedDropsWeights) {
  const Graph g = Graph::from_edges(3, {{0, 1, 3}, {1, 2, 5}});
  const Graph h = g.as_unweighted();
  EXPECT_FALSE(h.weighted());
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.weight(h.begin(0)), 1);
}

TEST(Graph, IsolatedVerticesAllowed) {
  const Graph g = Graph::from_edges(10, {{0, 1, 1}});
  EXPECT_EQ(g.num_vertices(), 10u);
  for (vid v = 2; v < 10; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = Graph::from_edges(5, {{0, 1, 2.5}, {1, 2, 1}, {3, 4, 7}});
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
}

TEST(GraphIo, DimacsParsesHeaderCommentsAndArcs) {
  std::stringstream ss;
  ss << "c a comment line\n"
     << "p sp 4 3\n"
     << "a 1 2 5\n"
     << "a 2 3 1\n"
     << "a 3 4 2\n";
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.weighted());
  EXPECT_TRUE(g.validate());
}

TEST(GraphIo, BadHeaderThrows) {
  std::stringstream ss("garbage");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

// Every malformed-input failure carries the 1-based line number where
// parsing stopped (IoError), so a bad dataset is diagnosable without
// bisecting the file by hand.

TEST(GraphIo, MalformedEdgeLineReportsLineNumber) {
  std::stringstream ss("3 2\n0 1 1.5\n0 two 1\n");
  try {
    (void)read_edge_list(ss);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(GraphIo, OutOfRangeVertexIdRejected) {
  std::stringstream ss("3 1\n0 7 1\n");
  try {
    (void)read_edge_list(ss);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(GraphIo, NegativeVertexIdRejectedNotWrapped) {
  // Stream extraction into uint32 would wrap "-1" to 4294967295; the
  // strict parser rejects the sign outright.
  std::stringstream ss("3 1\n-1 2 1\n");
  EXPECT_THROW(read_edge_list(ss), IoError);
}

TEST(GraphIo, BadWeightsRejected) {
  const char* cases[] = {
      "2 1\n0 1 -3\n",     // negative
      "2 1\n0 1 0\n",      // zero
      "2 1\n0 1 1e999\n",  // overflows double
      "2 1\n0 1 nope\n",   // garbage
      "2 1\n0 1 inf\n",    // non-finite
  };
  for (const char* c : cases) {
    std::stringstream ss(c);
    EXPECT_THROW(read_edge_list(ss), IoError) << c;
  }
}

TEST(GraphIo, TruncatedFileReportsDeclaredVsActual) {
  std::stringstream ss("4 3\n0 1 1\n1 2 1\n");
  try {
    (void)read_edge_list(ss);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos);
    EXPECT_NE(what.find('3'), std::string::npos);
    EXPECT_NE(what.find('2'), std::string::npos);
  }
}

TEST(GraphIo, TrailingDataRejected) {
  std::stringstream ss("2 1\n0 1 1\n0 1 2\n");
  EXPECT_THROW(read_edge_list(ss), IoError);
}

TEST(GraphIo, DimacsMalformedLinesReportLineNumbers) {
  // Arc before problem line.
  {
    std::stringstream ss("a 1 2 1\n");
    EXPECT_THROW(read_dimacs(ss), IoError);
  }
  // Unknown line kind.
  {
    std::stringstream ss("p sp 2 1\nq what\na 1 2 1\n");
    try {
      (void)read_dimacs(ss);
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_EQ(e.line(), 2u);
    }
  }
  // Out-of-range 1-indexed id.
  {
    std::stringstream ss("p sp 2 1\na 1 3 1\n");
    EXPECT_THROW(read_dimacs(ss), IoError);
  }
  // Truncated: fewer arcs than the problem line declared.
  {
    std::stringstream ss("p sp 3 2\na 1 2 1\n");
    EXPECT_THROW(read_dimacs(ss), IoError);
  }
}

TEST(GraphIo, StrictReaderStillRoundTrips) {
  const Graph g = Graph::from_edges(6, {{0, 1, 0.25}, {2, 3, 1e9}, {4, 5, 1}});
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.undirected_edges(), g.undirected_edges());
}

// The CSR build (sort + boundary-detected offsets + first-of-group dedup)
// is parallel; its output must be a pure function of the edge list, not
// the worker count or schedule. Stress it with the adversarial cases the
// dedup rules cover: duplicates in both orientations, self loops, weight
// ties, and hub-heavy degree skew.
TEST(Graph, FromEdgesBitIdenticalAcrossThreadCounts) {
  std::vector<Edge> edges;
  const vid n = 1000;
  std::uint64_t x = 12345;
  for (int i = 0; i < 8000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const vid u = static_cast<vid>((x >> 33) % n);
    const vid v = i % 5 == 0 ? u : static_cast<vid>((x >> 13) % n);  // self loops
    const auto w = static_cast<weight_t>(1 + (x % 7));
    edges.push_back(i % 3 == 0 ? Edge{v, u, w} : Edge{u, v, w});  // both orientations
    if (i % 4 == 0) edges.push_back({u % 8, v, w + 1});  // hubs + duplicates
  }
  auto build = [&] { return Graph::from_edges(n, edges); };
  auto run_at = [&](int threads) {
#ifdef PARSH_HAVE_OPENMP
    const int before = omp_get_max_threads();
    omp_set_num_threads(threads);
    Graph g = build();
    omp_set_num_threads(before);
    return g;
#else
    (void)threads;
    return build();
#endif
  };
  const Graph one = run_at(1);
  const Graph many = run_at(4);
  ASSERT_EQ(one.num_arcs(), many.num_arcs());
  const GraphStorage& a = one.storage();
  const GraphStorage& b = many.storage();
  EXPECT_TRUE(std::equal(a.offsets.begin(), a.offsets.end(), b.offsets.begin()));
  EXPECT_TRUE(std::equal(a.targets.begin(), a.targets.end(), b.targets.begin()));
  EXPECT_TRUE(std::equal(a.weights.begin(), a.weights.end(), b.weights.begin()));
  EXPECT_TRUE(one.validate());
}

}  // namespace
}  // namespace parsh
