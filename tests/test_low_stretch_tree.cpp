// Tests for the AKPW-style low-stretch spanning tree (the [AKPW95]
// lineage the paper's introduction builds on) and the MST baseline.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spanner/low_stretch_tree.hpp"

namespace parsh {
namespace {

class TreeTopologies : public ::testing::TestWithParam<int> {
 protected:
  Graph graph() const {
    switch (GetParam()) {
      case 0: return make_grid(12, 12);
      case 1: return make_torus(10, 10);
      case 2: return ensure_connected(make_random_graph(200, 800, 7));
      case 3: return with_log_uniform_weights(make_grid(10, 10), 64.0, 3);
      case 4: return make_hypercube(7);
      default: return make_complete(24);
    }
  }
};

TEST_P(TreeTopologies, AkpwProducesSpanningForest) {
  const Graph g = graph();
  const TreeResult t = akpw_low_stretch_tree(g, 2.0, 11);
  EXPECT_TRUE(is_spanning_forest(g, t.edges)) << GetParam();
}

TEST_P(TreeTopologies, MstProducesSpanningForest) {
  const Graph g = graph();
  const TreeResult t = minimum_spanning_tree(g);
  EXPECT_TRUE(is_spanning_forest(g, t.edges)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Topologies, TreeTopologies, ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Mst, MatchesKnownWeightOnSmallExample) {
  // Square with a heavy diagonal: MST = three lightest edges.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}, {0, 2, 10}});
  const TreeResult t = minimum_spanning_tree(g);
  double total = 0;
  for (const Edge& e : t.edges) total += e.w;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(Mst, TotalWeightNeverAboveAkpw) {
  // MST minimizes total weight by definition.
  const Graph g = with_log_uniform_weights(
      ensure_connected(make_random_graph(150, 600, 5)), 128.0, 9);
  double mst_w = 0, akpw_w = 0;
  for (const Edge& e : minimum_spanning_tree(g).edges) mst_w += e.w;
  for (const Edge& e : akpw_low_stretch_tree(g, 2.0, 3).edges) akpw_w += e.w;
  EXPECT_LE(mst_w, akpw_w + 1e-9);
}

TEST(TreeStretch, CycleWorstCase) {
  // Any spanning tree of a cycle has one edge at stretch n-1.
  const Graph g = make_cycle(20);
  const TreeResult t = minimum_spanning_tree(g);
  const TreeStretch s = tree_stretch(g, t.edges);
  EXPECT_DOUBLE_EQ(s.maximum, 19.0);
}

TEST(TreeStretch, TreeInputHasStretchOne) {
  const Graph g = make_binary_tree(63);
  const TreeResult t = akpw_low_stretch_tree(g, 2.0, 1);
  const TreeStretch s = tree_stretch(g, t.edges);
  EXPECT_DOUBLE_EQ(s.average, 1.0);
  EXPECT_DOUBLE_EQ(s.maximum, 1.0);
}

TEST(TreeStretch, AkpwBeatsStarOfMstOnTorus) {
  // On a torus, MST is an arbitrary grid tree with poor average stretch;
  // AKPW's cluster hierarchy should do no worse (typically better).
  const Graph g = make_torus(12, 12);
  const TreeStretch mst = tree_stretch(g, minimum_spanning_tree(g).edges);
  double best_akpw = 1e18;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const TreeStretch akpw = tree_stretch(g, akpw_low_stretch_tree(g, 2.0, seed).edges);
    best_akpw = std::min(best_akpw, akpw.average);
  }
  EXPECT_LE(best_akpw, mst.average * 1.5);
  EXPECT_GE(best_akpw, 1.0);
}

TEST(Akpw, DeterministicInSeed) {
  const Graph g = make_grid(9, 9);
  const TreeResult a = akpw_low_stretch_tree(g, 2.0, 21);
  const TreeResult b = akpw_low_stretch_tree(g, 2.0, 21);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Akpw, DisconnectedGraphsYieldForests) {
  const Graph g = Graph::from_edges(
      7, {{0, 1, 1}, {1, 2, 1}, {3, 4, 2}, {4, 5, 2}, {5, 3, 2}});  // + isolated 6
  const TreeResult t = akpw_low_stretch_tree(g, 2.0, 4);
  EXPECT_TRUE(is_spanning_forest(g, t.edges));
  EXPECT_EQ(t.edges.size(), 4u);  // 7 vertices, 3 components
}

TEST(Akpw, WellSeparatedWeightsContractLightFirst) {
  // Light triangle then a heavy bridge: the triangle must be contracted
  // by light edges; the bridge enters the tree as-is.
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 100}, {3, 4, 1}, {4, 5, 1}});
  const TreeResult t = akpw_low_stretch_tree(g, 2.0, 8);
  ASSERT_TRUE(is_spanning_forest(g, t.edges));
  int heavy = 0;
  for (const Edge& e : t.edges) {
    if (e.w == 100) ++heavy;
  }
  EXPECT_EQ(heavy, 1);  // exactly the bridge
}

TEST(IsSpanningForest, RejectsCyclesForeignEdgesAndNonSpanning) {
  const Graph g = make_cycle(4);
  // Full cycle: has a cycle.
  EXPECT_FALSE(is_spanning_forest(g, g.undirected_edges()));
  // Foreign edge.
  EXPECT_FALSE(is_spanning_forest(g, {{0, 2, 1}}));
  // Not spanning (too few edges).
  EXPECT_FALSE(is_spanning_forest(g, {{0, 1, 1}, {1, 2, 1}}));
  // A proper spanning tree.
  EXPECT_TRUE(is_spanning_forest(g, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}));
}

}  // namespace
}  // namespace parsh
