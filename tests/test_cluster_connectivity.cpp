// Tests for connectivity-by-clustering (the [SDB14] tie-in the paper's
// introduction cites) against the label-propagation implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_connectivity.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace parsh {
namespace {

class ClusterConnSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  Graph graph() const {
    const auto [which, seed] = GetParam();
    switch (which) {
      case 0: return make_grid(15, 15);
      case 1: return make_random_graph(400, 300, seed);  // many components
      case 2: return make_random_graph(400, 1600, seed);
      case 3: return Graph::from_edges(10, {});          // fully isolated
      default: return with_uniform_weights(make_torus(12, 12), 1, 6, seed);
    }
  }
};

TEST_P(ClusterConnSweep, MatchesLabelPropagation) {
  const auto [which, seed] = GetParam();
  (void)which;
  const Graph g = graph();
  const auto expected = connected_components(g);
  const auto got = cluster_connectivity(g, seed);
  EXPECT_EQ(got.component, expected);
  vid expect_num = 0;
  for (vid c : expected) expect_num = std::max(expect_num, c + 1);
  EXPECT_EQ(got.num_components, expect_num);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterConnSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(ClusterConnectivity, RoundsAreLogarithmicNotLinear) {
  // Corollary 2.3 drives geometric contraction: rounds should be well
  // below log2(n) * constant, never anywhere near n.
  const Graph g = make_path(4096);
  const auto r = cluster_connectivity(g, 7);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_LE(r.rounds, 12 * static_cast<std::uint64_t>(std::log2(4096.0)));
}

TEST(ClusterConnectivity, BetaControlsRoundCount) {
  // Bigger beta => smaller clusters per round => more rounds.
  const Graph g = make_torus(20, 20);
  std::uint64_t small_beta = 0, large_beta = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    small_beta += cluster_connectivity(g, seed, 0.05).rounds;
    large_beta += cluster_connectivity(g, seed, 0.9).rounds;
  }
  EXPECT_LT(small_beta, large_beta);
}

TEST(ClusterConnectivity, WarmQuotientRoundsDoZeroEngineAllocations) {
  // The workspace-reuse acceptance bar: on a 1M-edge RMAT graph, every
  // quotient round after the first must run entirely inside the buffers
  // the first round grew — the engine's allocation counter freezes.
  const Graph g = ensure_connected(make_rmat(170000, 1020000, 7));
  ASSERT_GE(g.num_edges(), 1000000u);
  const auto r = cluster_connectivity(g, 3);
  EXPECT_EQ(r.num_components, 1u);
  ASSERT_GE(r.rounds, 2u);  // a one-round run would make the check vacuous
  EXPECT_GT(r.engine_allocs_first_round, 0u);
  EXPECT_EQ(r.engine_allocs_total, r.engine_allocs_first_round);
}

TEST(ClusterConnectivity, EmptyGraph) {
  const auto r = cluster_connectivity(Graph(), 1);
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_TRUE(r.component.empty());
}

}  // namespace
}  // namespace parsh
