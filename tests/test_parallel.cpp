// Tests for the parallel primitives substrate (scan, pack, reduce, sort,
// atomics, parallel_for) against sequential references.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"
#include "random/rng.hpp"

namespace parsh {
namespace {

class PrimitivesSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimitivesSizes, ExclusiveScanMatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(42);
  std::vector<std::uint64_t> v(n), ref(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform_int(i, 1000);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = acc;
    acc += v[i];
  }
  auto got = v;
  const std::uint64_t total = exclusive_scan_inplace(got);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(got, ref);
}

TEST_P(PrimitivesSizes, ReduceSumMatchesAccumulate) {
  const std::size_t n = GetParam();
  Rng rng(7);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform_int(i, 1 << 20);
  const auto expect = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  const auto got =
      parallel_reduce_sum<std::uint64_t>(n, [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, ReduceMaxMatchesMaxElement) {
  const std::size_t n = GetParam();
  Rng rng(9);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(i);
  const double expect = n == 0 ? -1.0 : *std::max_element(v.begin(), v.end());
  const double got =
      parallel_reduce_max<double>(n, [&](std::size_t i) { return v[i]; }, -1.0);
  EXPECT_DOUBLE_EQ(got, expect);
}

TEST_P(PrimitivesSizes, PackIndicesKeepsExactlyMatchingOnesInOrder) {
  const std::size_t n = GetParam();
  auto pred = [](std::size_t i) { return i % 3 == 1; };
  const auto got = pack_indices(n, pred);
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, PackValuesTransformsSurvivors) {
  const std::size_t n = GetParam();
  auto pred = [](std::size_t i) { return i % 2 == 0; };
  const auto got =
      pack_values<std::size_t>(n, pred, [](std::size_t i) { return i * i; });
  std::vector<std::size_t> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) expect.push_back(i * i);
  }
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitivesSizes, ParallelCountMatchesCountIf) {
  const std::size_t n = GetParam();
  auto pred = [](std::size_t i) { return (i * 2654435761u) % 5 == 0; };
  std::size_t expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) ++expect;
  }
  EXPECT_EQ(parallel_count(n, pred), expect);
}

TEST_P(PrimitivesSizes, ParallelSortSortsLikeStdSort) {
  const std::size_t n = GetParam();
  Rng rng(1234);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.bits(i);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitivesSizes,
                         ::testing::Values(0, 1, 2, 5, 100, 4096, 4097, 50000));

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndReversedRangesDoNothing) {
  bool ran = false;
  parallel_for(5, 5, [&](std::size_t) { ran = true; });
  parallel_for(7, 3, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelInvoke, RunsBothTasks) {
  std::atomic<int> a{0}, b{0};
  parallel_invoke([&] { a.store(1); }, [&] { b.store(2); });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(Atomics, WriteMinOnlyLowers) {
  std::atomic<int> x{10};
  EXPECT_TRUE(atomic_write_min(&x, 5));
  EXPECT_EQ(x.load(), 5);
  EXPECT_FALSE(atomic_write_min(&x, 7));
  EXPECT_EQ(x.load(), 5);
  EXPECT_FALSE(atomic_write_min(&x, 5));  // equal: no strict improvement
}

TEST(Atomics, WriteMaxOnlyRaises) {
  std::atomic<double> x{1.5};
  EXPECT_TRUE(atomic_write_max(&x, 2.5));
  EXPECT_FALSE(atomic_write_max(&x, 0.5));
  EXPECT_DOUBLE_EQ(x.load(), 2.5);
}

TEST(Atomics, WriteMinUnderContentionFindsGlobalMin) {
  std::atomic<std::uint64_t> x{~0ULL};
  Rng rng(5);
  const std::size_t n = 100000;
  std::uint64_t expect = ~0ULL;
  std::vector<std::uint64_t> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals[i] = rng.bits(i);
    expect = std::min(expect, vals[i]);
  }
  parallel_for(0, n, [&](std::size_t i) { atomic_write_min(&x, vals[i]); });
  EXPECT_EQ(x.load(), expect);
}

TEST(Atomics, CasSwapsOnlyOnExpected) {
  std::atomic<int> x{3};
  EXPECT_FALSE(atomic_cas(&x, 4, 9));
  EXPECT_EQ(x.load(), 3);
  EXPECT_TRUE(atomic_cas(&x, 3, 9));
  EXPECT_EQ(x.load(), 9);
}

TEST(WorkDepth, CountersAccumulateAndRegionsSnapshot) {
  wd::reset();
  wd::add_work(10);
  wd::add_round();
  wd::Region region;
  wd::add_work(5);
  wd::add_round(2);
  const auto d = region.delta();
  EXPECT_EQ(d.work, 5u);
  EXPECT_EQ(d.rounds, 2u);
  const auto total = wd::snapshot();
  EXPECT_EQ(total.work, 15u);
  EXPECT_EQ(total.rounds, 3u);
  wd::reset();
  const auto zero = wd::snapshot();
  EXPECT_EQ(zero.work, 0u);
  EXPECT_EQ(zero.rounds, 0u);
}

TEST(ParallelSort, CustomComparatorDescending) {
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  parallel_sort(v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

/// Forces a real 4-wide persistent team (even on hosts with fewer
/// processors, where the automatic width would collapse to sequential)
/// so the stage publish/claim/barrier machinery is actually raced. The
/// forced width is clamped to omp_get_max_threads() (it sizes every
/// consumer's per-worker scratch), so the OpenMP thread count is raised
/// alongside and restored afterwards.
class TeamMachinery : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef PARSH_HAVE_OPENMP
    threads_before_ = omp_get_max_threads();
    omp_set_num_threads(4);
#endif
    Team::force_width(4);
  }
  void TearDown() override {
    Team::force_width(0);
#ifdef PARSH_HAVE_OPENMP
    omp_set_num_threads(threads_before_);
#endif
  }

 private:
  int threads_before_ = 1;
};

TEST_F(TeamMachinery, StagesCoverEveryIterationExactlyOnce) {
  // Many short stages through one persistent region: every index of every
  // stage must be executed exactly once, and all writes must be visible
  // to the driver between stages (the completion barrier).
  constexpr std::size_t kItems = 10000;
  constexpr int kStages = 50;
  std::vector<std::atomic<int>> hits(kItems);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  Team::drive(true, [&](Team& team) {
    for (int s = 0; s < kStages; ++s) {
      team.loop(0, kItems, 64, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      // Barrier check: after loop() returns, every item reads s + 1.
      EXPECT_EQ(hits[0].load(std::memory_order_relaxed), s + 1);
      EXPECT_EQ(hits[kItems - 1].load(std::memory_order_relaxed), s + 1);
    }
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), kStages) << i;
  }
}

TEST_F(TeamMachinery, TinyStagesRunInlineAndEmptyStagesAreNoops) {
  Team::drive(true, [&](Team& team) {
    int sum = 0;
    // Below the grain the stage runs inline on the driver: a plain
    // non-atomic accumulator is safe.
    team.loop(0, 10, 64, [&](std::size_t i) { sum += static_cast<int>(i); });
    EXPECT_EQ(sum, 45);
    team.loop(5, 5, 64, [&](std::size_t) { ADD_FAILURE() << "empty stage ran"; });
  });
}

TEST_F(TeamMachinery, ForkJoinAndNestedModesMatchPersistent) {
  constexpr std::size_t kItems = 5000;
  auto run = [&](bool persistent) {
    std::vector<std::uint64_t> out(kItems, 0);
    Team::drive(persistent, [&](Team& team) {
      team.loop(0, kItems, 32, [&](std::size_t i) { out[i] = i * i; });
    });
    return out;
  };
  const auto team = run(true);
  const auto fork_join = run(false);
  EXPECT_EQ(team, fork_join);
  // Nested inside an outer drive, an inner drive degrades to inline
  // sequential loops (the outer layer owns the parallelism) — same
  // iterations, no deadlock.
  std::vector<std::uint64_t> nested(kItems, 0);
  Team::drive(true, [&](Team&) {
    Team::drive(true, [&](Team& inner) {
      inner.loop(0, kItems, 32, [&](std::size_t i) { nested[i] = i * i; });
    });
  });
  EXPECT_EQ(nested, team);
}

TEST_F(TeamMachinery, NestedParallelForInsideTeamIsCounted) {
  const std::uint64_t before = nested_sequential_calls();
#ifdef PARSH_HAVE_OPENMP
  if (omp_get_max_threads() > 1) {
    // A big parallel_for reached from inside the persistent region
    // silently serializes — the counter must record it (the seam the
    // drivers' Team::loop conversions must never fall through).
    Team::drive(true, [&](Team& team) {
      team.loop(0, 1, 1, [&](std::size_t) {
        parallel_for(0, 4 * kParallelGrain, [](std::size_t) {});
      });
    });
    EXPECT_GT(nested_sequential_calls(), before);
  }
#endif
  EXPECT_GE(nested_sequential_calls(), before);
}

TEST(ParallelSort, AlreadySortedAndAllEqualInputs) {
  std::vector<int> sorted(1000);
  std::iota(sorted.begin(), sorted.end(), 0);
  auto expect = sorted;
  parallel_sort(sorted);
  EXPECT_EQ(sorted, expect);
  std::vector<int> equal(1000, 7);
  parallel_sort(equal);
  EXPECT_TRUE(std::all_of(equal.begin(), equal.end(), [](int x) { return x == 7; }));
}

}  // namespace
}  // namespace parsh
