// Tests for the synthetic graph generators and weight models.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace parsh {
namespace {

TEST(Generators, PathHasNMinusOneEdgesAndEndpointsDegreeOne) {
  const Graph g = make_path(100);
  EXPECT_EQ(g.num_edges(), 99u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(99), 1u);
  for (vid v = 1; v < 99; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(Generators, CycleIsTwoRegular) {
  const Graph g = make_cycle(50);
  EXPECT_EQ(g.num_edges(), 50u);
  for (vid v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, StarDegrees) {
  const Graph g = make_star(10);
  EXPECT_EQ(g.degree(0), 9u);
  for (vid v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Generators, CompleteGraphEdgeCount) {
  const Graph g = make_complete(8);
  EXPECT_EQ(g.num_edges(), 28u);
  for (vid v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 7u);
}

TEST(Generators, BinaryTreeIsConnectedAcyclic) {
  const Graph g = make_binary_tree(31);
  EXPECT_EQ(g.num_edges(), 30u);
  EXPECT_EQ(num_components(g), 1u);
}

TEST(Generators, GridDimensionsAndDegrees) {
  const Graph g = make_grid(4, 6);
  EXPECT_EQ(g.num_vertices(), 24u);
  // Corners have degree 2, edges 3, interior 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(7), 4u);  // (1,1)
  EXPECT_EQ(num_components(g), 1u);
  EXPECT_EQ(g.num_edges(), static_cast<eid>(4 * 5 + 3 * 6));
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = make_torus(5, 7);
  for (vid v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(num_components(g), 1u);
}

TEST(Generators, TinyTorusDoesNotBlowUp) {
  // 2x2 torus has parallel edges that must merge.
  const Graph g = make_torus(2, 2);
  EXPECT_TRUE(g.validate());
}

TEST(Generators, RandomGraphHasRequestedSizeApproximately) {
  const Graph g = make_random_graph(1000, 5000, 3);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Duplicates merge, so m is slightly below the request.
  EXPECT_LE(g.num_edges(), 5000u);
  EXPECT_GE(g.num_edges(), 4800u);
  EXPECT_TRUE(g.validate());
}

TEST(Generators, RandomGraphDeterministicInSeed) {
  const Graph a = make_random_graph(500, 2000, 11);
  const Graph b = make_random_graph(500, 2000, 11);
  const Graph c = make_random_graph(500, 2000, 12);
  EXPECT_EQ(a.undirected_edges(), b.undirected_edges());
  EXPECT_NE(a.undirected_edges(), c.undirected_edges());
}

TEST(Generators, RmatIsSkewed) {
  const Graph g = make_rmat(1 << 10, 8 << 10, 7);
  EXPECT_TRUE(g.validate());
  vid max_deg = 0;
  double sum_deg = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    sum_deg += g.degree(v);
  }
  const double avg = sum_deg / g.num_vertices();
  EXPECT_GT(max_deg, 4 * avg);  // hubs exist
}

TEST(Generators, GeometricEdgesRespectRadiusWeights) {
  const Graph g = make_geometric(500, 0.08, 5);
  EXPECT_TRUE(g.validate());
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_GE(g.min_weight(), 1);
  for (const Edge& e : g.undirected_edges()) {
    EXPECT_LE(e.w, 17);  // scaled distance <= ceil(16) + rounding
  }
}

TEST(Generators, PathWithChordsContainsThePath) {
  const Graph g = make_path_with_chords(200, 20, 9);
  for (vid v = 0; v + 1 < 200; ++v) {
    bool found = false;
    for (eid e = g.begin(v); e < g.end(v); ++e) {
      if (g.target(e) == v + 1) found = true;
    }
    EXPECT_TRUE(found) << v;
  }
  EXPECT_GE(g.num_edges(), 199u);
}

TEST(WeightModels, UniformWeightsInRange) {
  const Graph g = with_uniform_weights(make_grid(10, 10), 3, 9, 4);
  EXPECT_TRUE(g.weighted());
  for (const Edge& e : g.undirected_edges()) {
    EXPECT_GE(e.w, 3);
    EXPECT_LE(e.w, 9);
    EXPECT_EQ(e.w, std::floor(e.w));  // integer weights
  }
}

TEST(WeightModels, LogUniformRespectsRatio) {
  const Graph g = with_log_uniform_weights(make_grid(20, 20), 256.0, 4);
  EXPECT_GE(g.min_weight(), 1);
  EXPECT_LE(g.max_weight(), 256);
  // Both decades appear (statistically certain at this size).
  EXPECT_LT(g.min_weight(), 4);
  EXPECT_GT(g.max_weight(), 64);
}

TEST(WeightModels, TopologyPreservedByReweighting) {
  const Graph base = make_grid(8, 8);
  const Graph w = with_uniform_weights(base, 1, 100, 6);
  EXPECT_EQ(w.num_vertices(), base.num_vertices());
  EXPECT_EQ(w.num_edges(), base.num_edges());
}

TEST(EnsureConnected, JoinsComponents) {
  // Two disjoint triangles.
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}});
  EXPECT_EQ(num_components(g), 2u);
  const Graph c = ensure_connected(g);
  EXPECT_EQ(num_components(c), 1u);
  EXPECT_EQ(c.num_edges(), g.num_edges() + 1);
}

TEST(EnsureConnected, NoOpOnConnectedGraph) {
  const Graph g = make_cycle(10);
  const Graph c = ensure_connected(g);
  EXPECT_EQ(c.num_edges(), g.num_edges());
}

class GeneratorConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivity, EnsureConnectedOnRandomGraphs) {
  const Graph g = ensure_connected(make_random_graph(300, 400, GetParam()));
  EXPECT_EQ(num_components(g), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivity, ::testing::Values(1, 2, 3, 4, 5));

TEST(Generators, HypercubeDegreesAndDiameter) {
  const Graph g = make_hypercube(6);
  EXPECT_EQ(g.num_vertices(), 64u);
  for (vid v = 0; v < 64; ++v) EXPECT_EQ(g.degree(v), 6u);
  EXPECT_EQ(num_components(g), 1u);
}

TEST(Generators, RandomRegularDegreesBounded) {
  const Graph g = make_random_regular(400, 6, 9);
  double sum = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.degree(v), 6u);
    sum += g.degree(v);
  }
  EXPECT_GT(sum / g.num_vertices(), 4.5);  // few stubs lost
  EXPECT_EQ(num_components(g), 1u);        // 6-regular: connected whp
}

TEST(Generators, BarbellStructure) {
  const Graph g = make_barbell(5, 3);
  EXPECT_EQ(g.num_vertices(), 13u);
  // Clique vertices have degree 4 (+1 for the two bridge attachment points).
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(4), 5u);  // attachment
  EXPECT_EQ(num_components(g), 1u);
}

TEST(Generators, CaterpillarIsATree) {
  const Graph g = make_caterpillar(10, 3);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_EQ(g.num_edges(), 39u);
  EXPECT_EQ(num_components(g), 1u);
}

}  // namespace
}  // namespace parsh
