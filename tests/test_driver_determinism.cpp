// Thread-count determinism for every est_cluster driver. PR 1 pinned the
// guarantee for est_cluster itself: the CRCW priority write resolves by
// (key, via) minimum, so the clustering is schedule-independent. The
// drivers — spanners, hopsets, connectivity, low-stretch trees — are
// deterministic compositions of that primitive, so each must produce
// bit-identical output at 1 worker and at many. These tests pin that down
// for the whole surface, on unweighted and integer-weighted random graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster_connectivity.hpp"
#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "parallel/parallel_for.hpp"
#include "spanner/distributed_spanner.hpp"
#include "spanner/low_stretch_tree.hpp"
#include "spanner/spanner.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

/// The 1-vs-4-thread comparison every test below runs.
template <typename F>
auto one_and_many(F f) {
  auto one = at_threads(1, f);
  auto many = at_threads(4, f);
  return std::pair(std::move(one), std::move(many));
}

class DriverDeterminism : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Graph unweighted() const {
    return ensure_connected(make_random_graph(400, 1400, GetParam()));
  }
  [[nodiscard]] Graph weighted() const {
    return with_uniform_weights(unweighted(), 1, 9, GetParam() + 17);
  }
};

TEST_P(DriverDeterminism, UnweightedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] =
      one_and_many([&] { return unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.levels, many.levels);
}

TEST_P(DriverDeterminism, WeightedSpanner) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return weighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
}

TEST_P(DriverDeterminism, DistributedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] = one_and_many(
      [&] { return distributed_unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.messages, many.messages);
}

TEST_P(DriverDeterminism, ClusterConnectivity) {
  // Includes a disconnected instance: determinism must not depend on the
  // quotient loop contracting everything to one vertex.
  for (const Graph& g :
       {unweighted(), make_random_graph(500, 300, GetParam() + 5)}) {
    const auto [one, many] =
        one_and_many([&] { return cluster_connectivity(g, GetParam()); });
    EXPECT_EQ(one.component, many.component);
    EXPECT_EQ(one.num_components, many.num_components);
    EXPECT_EQ(one.rounds, many.rounds);
  }
}

TEST_P(DriverDeterminism, AkpwLowStretchTree) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return akpw_low_stretch_tree(g, 2.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.iterations, many.iterations);
}

TEST_P(DriverDeterminism, Hopset) {
  const Graph g = weighted();
  HopsetParams p;
  p.seed = GetParam();
  const auto [one, many] = one_and_many([&] { return build_hopset(g, p); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.star_edges, many.star_edges);
  EXPECT_EQ(one.clique_edges, many.clique_edges);
  EXPECT_EQ(one.levels, many.levels);
  EXPECT_EQ(one.clusterings, many.clusterings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDeterminism,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

}  // namespace
}  // namespace parsh
