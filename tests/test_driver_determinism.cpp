// Thread-count determinism for every est_cluster driver. PR 1 pinned the
// guarantee for est_cluster itself: the CRCW priority write resolves by
// (key, via) minimum, so the clustering is schedule-independent. The
// drivers — spanners, hopsets, connectivity, low-stretch trees — are
// deterministic compositions of that primitive, so each must produce
// bit-identical output at 1 worker and at many. These tests pin that down
// for the whole surface, on unweighted and integer-weighted random graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster_connectivity.hpp"
#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "parallel/parallel_for.hpp"
#include "spanner/distributed_spanner.hpp"
#include "spanner/low_stretch_tree.hpp"
#include "spanner/spanner.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/hop_limited.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

/// The 1-vs-4-thread comparison every test below runs.
template <typename F>
auto one_and_many(F f) {
  auto one = at_threads(1, f);
  auto many = at_threads(4, f);
  return std::pair(std::move(one), std::move(many));
}

class DriverDeterminism : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Graph unweighted() const {
    return ensure_connected(make_random_graph(400, 1400, GetParam()));
  }
  [[nodiscard]] Graph weighted() const {
    return with_uniform_weights(unweighted(), 1, 9, GetParam() + 17);
  }
};

TEST_P(DriverDeterminism, UnweightedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] =
      one_and_many([&] { return unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.levels, many.levels);
}

TEST_P(DriverDeterminism, WeightedSpanner) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return weighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
}

TEST_P(DriverDeterminism, DistributedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] = one_and_many(
      [&] { return distributed_unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.messages, many.messages);
}

TEST_P(DriverDeterminism, ClusterConnectivity) {
  // Includes a disconnected instance: determinism must not depend on the
  // quotient loop contracting everything to one vertex.
  for (const Graph& g :
       {unweighted(), make_random_graph(500, 300, GetParam() + 5)}) {
    const auto [one, many] =
        one_and_many([&] { return cluster_connectivity(g, GetParam()); });
    EXPECT_EQ(one.component, many.component);
    EXPECT_EQ(one.num_components, many.num_components);
    EXPECT_EQ(one.rounds, many.rounds);
  }
}

TEST_P(DriverDeterminism, AkpwLowStretchTree) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return akpw_low_stretch_tree(g, 2.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.iterations, many.iterations);
}

TEST_P(DriverDeterminism, Hopset) {
  const Graph g = weighted();
  HopsetParams p;
  p.seed = GetParam();
  const auto [one, many] = one_and_many([&] { return build_hopset(g, p); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.star_edges, many.star_edges);
  EXPECT_EQ(one.clique_edges, many.clique_edges);
  EXPECT_EQ(one.levels, many.levels);
  EXPECT_EQ(one.clusterings, many.clusterings);
}

// --- the SSSP family (PR 3: every traversal driver runs on the shared
// --- SsspWorkspace; distances, parents and counters must be bit-identical
// --- across thread counts and across the packed/three-phase seam).

TEST_P(DriverDeterminism, DeltaStepping) {
  // Large weights at delta = 1 push bucket indices past the 2^12 packed
  // boundary, so this exercises the packed (dist, parent) rounds at both
  // thread counts; the small-weight run stays on the three-phase path.
  const Graph small = weighted();
  const Graph large =
      with_uniform_weights(unweighted(), 4096, 8192, GetParam() + 23);
  for (const auto& [g, delta] :
       {std::pair(&small, 0.0), std::pair(&small, 4.0), std::pair(&large, 1.0)}) {
    const auto [one, many] =
        one_and_many([&, g = g, delta = delta] { return delta_stepping(*g, 0, delta); });
    EXPECT_EQ(one.dist, many.dist);
    EXPECT_EQ(one.parent, many.parent);
    EXPECT_EQ(one.phases, many.phases);
    EXPECT_EQ(one.relaxations, many.relaxations);
  }
}

TEST_P(DriverDeterminism, DeltaSteppingPackedVsThreePhaseAcrossThreads) {
  const Graph g = with_uniform_weights(unweighted(), 4096, 8192, GetParam() + 29);
  SsspWorkspace forced;
  forced.force_three_phase(true);
  const auto baseline = delta_stepping(g, 0, 1.0, forced);
  EXPECT_GT(forced.fallback_rounds(), 0u);
  for (int threads : {1, 4}) {
    SsspWorkspace ws;
    const auto packed =
        at_threads(threads, [&] { return delta_stepping(g, 0, 1.0, ws); });
    EXPECT_GT(ws.packed_rounds(), 0u);
    EXPECT_EQ(packed.dist, baseline.dist);
    EXPECT_EQ(packed.parent, baseline.parent);
    EXPECT_EQ(packed.phases, baseline.phases);
    EXPECT_EQ(packed.relaxations, baseline.relaxations);
  }
}

TEST_P(DriverDeterminism, SkewedFrontierDrivers) {
  // Hub-heavy inputs route every expansion through the degree-aware
  // stolen edge ranges (PR 4): the drivers that compose est_cluster and
  // delta-stepping must stay bit-identical across thread counts when
  // their rounds are dominated by a few huge-degree vertices.
  const Graph hub = make_hubs(6000, 4, GetParam());
  const auto [sp1, sp4] =
      one_and_many([&] { return unweighted_spanner(hub, 3.0, GetParam()); });
  EXPECT_EQ(sp1.edges, sp4.edges);
  EXPECT_EQ(sp1.rounds, sp4.rounds);
  const Graph heavy = with_uniform_weights(
      ensure_connected(make_rmat_heavy(3000, 18000, GetParam() + 41)), 1, 9,
      GetParam() + 43);
  const auto [ds1, ds4] =
      one_and_many([&] { return delta_stepping(heavy, 0, 0.0); });
  EXPECT_EQ(ds1.dist, ds4.dist);
  EXPECT_EQ(ds1.parent, ds4.parent);
  EXPECT_EQ(ds1.phases, ds4.phases);
  EXPECT_EQ(ds1.relaxations, ds4.relaxations);
}

TEST_P(DriverDeterminism, WeightedBfs) {
  const Graph g = weighted();
  const auto [one, many] = one_and_many([&] { return weighted_bfs(g, 0); });
  EXPECT_EQ(one.dist, many.dist);
  EXPECT_EQ(one.parent, many.parent);
  EXPECT_EQ(one.rounds, many.rounds);
  const auto [m1, m4] =
      one_and_many([&] { return multi_weighted_bfs(g, {0, 5, 9}); });
  EXPECT_EQ(m1.dist, m4.dist);
  EXPECT_EQ(m1.owner, m4.owner);
  EXPECT_EQ(m1.rounds, m4.rounds);
}

TEST_P(DriverDeterminism, HopLimited) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return hop_limited_sssp(g, 0, 24, /*stop_early=*/true); });
  EXPECT_EQ(one.dist, many.dist);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.relaxations, many.relaxations);
}

TEST_P(DriverDeterminism, ApproxQueryAll) {
  const Graph g = weighted();
  ApproxShortestPaths::Params p;
  p.hopset.hopset.seed = GetParam();
  const auto [one, many] = one_and_many([&] {
    const ApproxShortestPaths engine(g, p);
    return engine.query_all(0);
  });
  EXPECT_EQ(one.estimate, many.estimate);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.relaxations, many.relaxations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDeterminism,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

}  // namespace
}  // namespace parsh
