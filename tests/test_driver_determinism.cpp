// Thread-count determinism for every est_cluster driver. PR 1 pinned the
// guarantee for est_cluster itself: the CRCW priority write resolves by
// (key, via) minimum, so the clustering is schedule-independent. The
// drivers — spanners, hopsets, connectivity, low-stretch trees — are
// deterministic compositions of that primitive, so each must produce
// bit-identical output at 1 worker and at many. These tests pin that down
// for the whole surface, on unweighted and integer-weighted random graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster_connectivity.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/team.hpp"
#include "spanner/distributed_spanner.hpp"
#include "sssp/bfs.hpp"
#include "spanner/low_stretch_tree.hpp"
#include "spanner/spanner.hpp"
#include "graph/delta.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dynamic_approx.hpp"
#include "sssp/hop_limited.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

/// The 1-vs-4-thread comparison every test below runs.
template <typename F>
auto one_and_many(F f) {
  auto one = at_threads(1, f);
  auto many = at_threads(4, f);
  return std::pair(std::move(one), std::move(many));
}

class DriverDeterminism : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] Graph unweighted() const {
    return ensure_connected(make_random_graph(400, 1400, GetParam()));
  }
  [[nodiscard]] Graph weighted() const {
    return with_uniform_weights(unweighted(), 1, 9, GetParam() + 17);
  }
};

TEST_P(DriverDeterminism, UnweightedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] =
      one_and_many([&] { return unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.levels, many.levels);
}

TEST_P(DriverDeterminism, WeightedSpanner) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return weighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
}

TEST_P(DriverDeterminism, DistributedSpanner) {
  const Graph g = unweighted();
  const auto [one, many] = one_and_many(
      [&] { return distributed_unweighted_spanner(g, 3.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.messages, many.messages);
}

TEST_P(DriverDeterminism, ClusterConnectivity) {
  // Includes a disconnected instance: determinism must not depend on the
  // quotient loop contracting everything to one vertex.
  for (const Graph& g :
       {unweighted(), make_random_graph(500, 300, GetParam() + 5)}) {
    const auto [one, many] =
        one_and_many([&] { return cluster_connectivity(g, GetParam()); });
    EXPECT_EQ(one.component, many.component);
    EXPECT_EQ(one.num_components, many.num_components);
    EXPECT_EQ(one.rounds, many.rounds);
  }
}

TEST_P(DriverDeterminism, AkpwLowStretchTree) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return akpw_low_stretch_tree(g, 2.0, GetParam()); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.iterations, many.iterations);
}

TEST_P(DriverDeterminism, Hopset) {
  const Graph g = weighted();
  HopsetParams p;
  p.seed = GetParam();
  const auto [one, many] = one_and_many([&] { return build_hopset(g, p); });
  EXPECT_EQ(one.edges, many.edges);
  EXPECT_EQ(one.star_edges, many.star_edges);
  EXPECT_EQ(one.clique_edges, many.clique_edges);
  EXPECT_EQ(one.levels, many.levels);
  EXPECT_EQ(one.clusterings, many.clusterings);
}

// --- the SSSP family (PR 3: every traversal driver runs on the shared
// --- SsspWorkspace; distances, parents and counters must be bit-identical
// --- across thread counts and across the packed/three-phase seam).

TEST_P(DriverDeterminism, DeltaStepping) {
  // Large weights at delta = 1 push bucket indices past the 2^12 packed
  // boundary, so this exercises the packed (dist, parent) rounds at both
  // thread counts; the small-weight run stays on the three-phase path.
  const Graph small = weighted();
  const Graph large =
      with_uniform_weights(unweighted(), 4096, 8192, GetParam() + 23);
  for (const auto& [g, delta] :
       {std::pair(&small, 0.0), std::pair(&small, 4.0), std::pair(&large, 1.0)}) {
    const auto [one, many] =
        one_and_many([&, g = g, delta = delta] { return delta_stepping(*g, 0, delta); });
    EXPECT_EQ(one.dist, many.dist);
    EXPECT_EQ(one.parent, many.parent);
    EXPECT_EQ(one.phases, many.phases);
    EXPECT_EQ(one.relaxations, many.relaxations);
  }
}

TEST_P(DriverDeterminism, DeltaSteppingPackedVsThreePhaseAcrossThreads) {
  const Graph g = with_uniform_weights(unweighted(), 4096, 8192, GetParam() + 29);
  SsspWorkspace forced;
  forced.force_three_phase(true);
  const auto baseline = delta_stepping(g, 0, 1.0, forced);
  EXPECT_GT(forced.fallback_rounds(), 0u);
  for (int threads : {1, 4}) {
    SsspWorkspace ws;
    const auto packed =
        at_threads(threads, [&] { return delta_stepping(g, 0, 1.0, ws); });
    EXPECT_GT(ws.packed_rounds(), 0u);
    EXPECT_EQ(packed.dist, baseline.dist);
    EXPECT_EQ(packed.parent, baseline.parent);
    EXPECT_EQ(packed.phases, baseline.phases);
    EXPECT_EQ(packed.relaxations, baseline.relaxations);
  }
}

TEST_P(DriverDeterminism, SkewedFrontierDrivers) {
  // Hub-heavy inputs route every expansion through the degree-aware
  // stolen edge ranges (PR 4): the drivers that compose est_cluster and
  // delta-stepping must stay bit-identical across thread counts when
  // their rounds are dominated by a few huge-degree vertices.
  const Graph hub = make_hubs(6000, 4, GetParam());
  const auto [sp1, sp4] =
      one_and_many([&] { return unweighted_spanner(hub, 3.0, GetParam()); });
  EXPECT_EQ(sp1.edges, sp4.edges);
  EXPECT_EQ(sp1.rounds, sp4.rounds);
  const Graph heavy = with_uniform_weights(
      ensure_connected(make_rmat_heavy(3000, 18000, GetParam() + 41)), 1, 9,
      GetParam() + 43);
  const auto [ds1, ds4] =
      one_and_many([&] { return delta_stepping(heavy, 0, 0.0); });
  EXPECT_EQ(ds1.dist, ds4.dist);
  EXPECT_EQ(ds1.parent, ds4.parent);
  EXPECT_EQ(ds1.phases, ds4.phases);
  EXPECT_EQ(ds1.relaxations, ds4.relaxations);
}

TEST_P(DriverDeterminism, WeightedBfs) {
  const Graph g = weighted();
  const auto [one, many] = one_and_many([&] { return weighted_bfs(g, 0); });
  EXPECT_EQ(one.dist, many.dist);
  EXPECT_EQ(one.parent, many.parent);
  EXPECT_EQ(one.rounds, many.rounds);
  const auto [m1, m4] =
      one_and_many([&] { return multi_weighted_bfs(g, {0, 5, 9}); });
  EXPECT_EQ(m1.dist, m4.dist);
  EXPECT_EQ(m1.owner, m4.owner);
  EXPECT_EQ(m1.rounds, m4.rounds);
}

TEST_P(DriverDeterminism, HopLimited) {
  const Graph g = weighted();
  const auto [one, many] =
      one_and_many([&] { return hop_limited_sssp(g, 0, 24, /*stop_early=*/true); });
  EXPECT_EQ(one.dist, many.dist);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.relaxations, many.relaxations);
}

TEST_P(DriverDeterminism, ApproxQueryAll) {
  const Graph g = weighted();
  ApproxShortestPaths::Params p;
  p.hopset.hopset.seed = GetParam();
  const auto [one, many] = one_and_many([&] {
    const ApproxShortestPaths engine(g, p);
    return engine.query_all(0);
  });
  EXPECT_EQ(one.estimate, many.estimate);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.relaxations, many.relaxations);
}

// --- dynamic incremental rebuild (PR 9): an epoch produced by the
// --- incremental dirty-scale path must be bit-identical to a forced full
// --- rebuild and to itself across thread counts, scheduling seams
// --- (team vs fork-join via the engine's warm workspace), and graph
// --- backings (flat vs compressed). The push/pull seam rides the
// --- PARSH_FORCE_PULL CI lane, which runs this whole suite.

TEST_P(DriverDeterminism, DynamicRebuildAcrossThreadCountsAndSeams) {
  const Graph flat = weighted();
  const Graph compressed = flat.compress_adjacency();
  DynamicApproxShortestPaths::Params p;
  p.hopset.hopset.seed = GetParam();
  GraphDelta d;
  d.insert.push_back({0, 200, 3.0});
  d.insert.push_back({5, 300, 1.0});
  d.insert.push_back({17, 17, 2.0});  // self loop no-op rides along
  d.remove.push_back({0, 1, 1.0});

  auto run = [&](const Graph& g, bool fork_join, bool force_full) {
    DynamicApproxShortestPaths dyn(g, p);
    if (fork_join) dyn.cluster_workspace().force_fork_join(true);
    dyn.set_force_full_rebuild(force_full);
    const auto res = dyn.apply(d);
    EXPECT_EQ(res.hopset.full_rebuild, force_full);
    return dyn.snapshot()->engine.query_all(0);
  };
  const auto baseline =
      at_threads(1, [&] { return run(flat, /*fork_join=*/false, /*full=*/false); });
  const auto check = [&](const ApproxShortestPaths::AllResult& r, const char* what) {
    EXPECT_EQ(r.estimate, baseline.estimate) << what;
    EXPECT_EQ(r.rounds, baseline.rounds) << what;
    EXPECT_EQ(r.relaxations, baseline.relaxations) << what;
  };
  check(at_threads(4, [&] { return run(flat, false, false); }), "4t organic");
  check(at_threads(4, [&] { return run(flat, true, false); }), "4t fork-join");
  check(at_threads(4, [&] { return run(flat, false, true); }), "4t forced-full");
  check(at_threads(1, [&] { return run(compressed, false, false); }),
        "1t compressed");
  check(at_threads(4, [&] { return run(compressed, true, true); }),
        "4t compressed fork-join forced-full");
}

// --- persistent-team round execution (PR 5): every driver's drain loop
// --- runs inside one parallel region with an adaptive sequential round
// --- fast path. Output must be bit-identical across (a) the persistent
// --- team vs the historical fork-join-per-phase scheduling
// --- (force_fork_join), (b) adaptive sequential rounds vs every round
// --- through the parallel phases (force_parallel_rounds), and (c) 1 vs 4
// --- threads — in every combination.

void expect_same_clustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.rounds, b.rounds);
}

class TeamRounds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Big enough that mid-run frontiers exceed the adaptive threshold
  // (kSequentialRoundEdges = 2048 edges) while head/tail rounds stay
  // below it — the straddling case both mechanisms must agree on.
  [[nodiscard]] Graph straddling() const {
    return ensure_connected(make_random_graph(6000, 36000, GetParam()));
  }
  [[nodiscard]] Graph straddling_weighted() const {
    return with_uniform_weights(straddling(), 1, 9, GetParam() + 17);
  }
};

TEST_P(TeamRounds, EstClusterTeamVsForkJoinAcrossThreads) {
  const Graph g = straddling_weighted();
  EstClusterWorkspace fj_ws;
  fj_ws.force_fork_join(true);
  const Clustering baseline =
      at_threads(1, [&] { return est_cluster(g, 0.5, GetParam(), fj_ws); });
  for (int threads : {1, 4}) {
    EstClusterWorkspace team_ws;
    // Any parallel_for reached from inside the persistent region would
    // silently serialize; the drain loops must route every phase through
    // Team::loop, so arm the abort hook for the duration.
    assert_on_nested_sequential(true);
    const Clustering team =
        at_threads(threads, [&] { return est_cluster(g, 0.5, GetParam(), team_ws); });
    assert_on_nested_sequential(false);
    expect_same_clustering(team, baseline);
    // The straddle actually happened: both round classes occurred, and
    // identically at every thread count.
    EXPECT_GT(team_ws.sequential_rounds(), 0u);
    EXPECT_GT(team_ws.team_rounds(), 0u);
    EXPECT_EQ(team_ws.sequential_rounds(), fj_ws.sequential_rounds());
    EXPECT_EQ(team_ws.team_rounds(), fj_ws.team_rounds());
  }
}

TEST_P(TeamRounds, EstClusterSequentialVsParallelRounds) {
  const Graph g = straddling_weighted();
  EstClusterWorkspace forced;
  forced.force_parallel_rounds(true);
  const Clustering baseline =
      at_threads(1, [&] { return est_cluster(g, 0.5, GetParam(), forced); });
  EXPECT_EQ(forced.sequential_rounds(), 0u);
  EXPECT_GT(forced.team_rounds(), 0u);
  for (int threads : {1, 4}) {
    EstClusterWorkspace adaptive;
    const Clustering out =
        at_threads(threads, [&] { return est_cluster(g, 0.5, GetParam(), adaptive); });
    EXPECT_GT(adaptive.sequential_rounds(), 0u);
    expect_same_clustering(out, baseline);
  }
}

TEST_P(TeamRounds, DeltaSteppingAcrossAllSchedulingModes) {
  const Graph g = straddling_weighted();
  SsspWorkspace fj_ws;
  fj_ws.force_fork_join(true);
  const auto baseline =
      at_threads(1, [&] { return delta_stepping(g, 0, 4.0, fj_ws); });
  SsspWorkspace par_ws;
  par_ws.force_parallel_rounds(true);
  const auto parallel_rounds =
      at_threads(4, [&] { return delta_stepping(g, 0, 4.0, par_ws); });
  EXPECT_EQ(par_ws.sequential_rounds(), 0u);
  EXPECT_EQ(parallel_rounds.dist, baseline.dist);
  EXPECT_EQ(parallel_rounds.parent, baseline.parent);
  EXPECT_EQ(parallel_rounds.phases, baseline.phases);
  EXPECT_EQ(parallel_rounds.relaxations, baseline.relaxations);
  for (int threads : {1, 4}) {
    SsspWorkspace ws;
    assert_on_nested_sequential(true);
    const auto team =
        at_threads(threads, [&] { return delta_stepping(g, 0, 4.0, ws); });
    assert_on_nested_sequential(false);
    EXPECT_GT(ws.sequential_rounds(), 0u);
    EXPECT_GT(ws.team_rounds(), 0u);
    EXPECT_EQ(ws.sequential_rounds(), fj_ws.sequential_rounds());
    EXPECT_EQ(ws.team_rounds(), fj_ws.team_rounds());
    EXPECT_EQ(team.dist, baseline.dist);
    EXPECT_EQ(team.parent, baseline.parent);
    EXPECT_EQ(team.phases, baseline.phases);
    EXPECT_EQ(team.relaxations, baseline.relaxations);
  }
}

TEST_P(TeamRounds, BfsDistancesAcrossAllSchedulingModes) {
  // BFS distances, level counts AND parents are deterministic: parents
  // are the per-level min-via argmin (docs/ARCHITECTURE.md).
  const Graph g = straddling();
  SsspWorkspace fj_ws;
  fj_ws.force_fork_join(true);
  const BfsResult baseline =
      at_threads(1, [&] { return bfs(g, 0, kNoVertex, fj_ws); });
  for (int threads : {1, 4}) {
    SsspWorkspace ws;
    assert_on_nested_sequential(true);
    const BfsResult team =
        at_threads(threads, [&] { return bfs(g, 0, kNoVertex, ws); });
    assert_on_nested_sequential(false);
    EXPECT_EQ(team.dist, baseline.dist);
    EXPECT_EQ(team.parent, baseline.parent);
    EXPECT_EQ(team.rounds, baseline.rounds);
    SsspWorkspace par_ws;
    par_ws.force_parallel_rounds(true);
    const BfsResult parallel_rounds =
        at_threads(threads, [&] { return bfs(g, 0, kNoVertex, par_ws); });
    EXPECT_EQ(par_ws.sequential_rounds(), 0u);
    EXPECT_EQ(parallel_rounds.dist, baseline.dist);
    EXPECT_EQ(parallel_rounds.parent, baseline.parent);
    EXPECT_EQ(parallel_rounds.rounds, baseline.rounds);
  }
}

TEST_P(TeamRounds, ForcedWideTeamMatchesForkJoin) {
  // Force a real 4-wide persistent team even on hosts with fewer
  // processors (where the automatic width collapses to sequential): the
  // staged rounds must still be bit-identical to the fork-join run.
  const Graph g = straddling_weighted();
  EstClusterWorkspace fj_ws;
  fj_ws.force_fork_join(true);
  const Clustering cluster_baseline =
      at_threads(1, [&] { return est_cluster(g, 0.5, GetParam(), fj_ws); });
  SsspWorkspace delta_fj;
  delta_fj.force_fork_join(true);
  const auto delta_baseline =
      at_threads(1, [&] { return delta_stepping(g, 0, 4.0, delta_fj); });
  Team::force_width(4);
  EstClusterWorkspace team_ws;
  const Clustering cluster_team =
      at_threads(4, [&] { return est_cluster(g, 0.5, GetParam(), team_ws); });
  SsspWorkspace delta_team;
  const auto delta_wide =
      at_threads(4, [&] { return delta_stepping(g, 0, 4.0, delta_team); });
  Team::force_width(0);
  expect_same_clustering(cluster_team, cluster_baseline);
  EXPECT_EQ(delta_wide.dist, delta_baseline.dist);
  EXPECT_EQ(delta_wide.parent, delta_baseline.parent);
  EXPECT_EQ(delta_wide.phases, delta_baseline.phases);
  EXPECT_EQ(delta_wide.relaxations, delta_baseline.relaxations);
}

TEST_P(TeamRounds, HopLimitedAcrossAllSchedulingModes) {
  // Barrier-separated Bellman-Ford rounds (exact dist^h): distances,
  // round and relaxation counters identical across every scheduling mode
  // and thread count.
  const Graph g = straddling_weighted();
  SsspWorkspace fj_ws;
  fj_ws.force_fork_join(true);
  const auto baseline = at_threads(
      1, [&] { return hop_limited_sssp(g, 0, 24, /*stop_early=*/true, kInfWeight, fj_ws); });
  const auto baseline_dist = [&] {
    std::vector<weight_t> d(g.num_vertices());
    for (vid v = 0; v < g.num_vertices(); ++v) d[v] = fj_ws.dist_of(v);
    return d;
  }();
  for (int threads : {1, 4}) {
    for (const bool force_parallel : {false, true}) {
      SsspWorkspace ws;
      ws.force_parallel_rounds(force_parallel);
      const auto stats = at_threads(threads, [&] {
        return hop_limited_sssp(g, 0, 24, /*stop_early=*/true, kInfWeight, ws);
      });
      EXPECT_EQ(stats.rounds, baseline.rounds);
      EXPECT_EQ(stats.relaxations, baseline.relaxations);
      for (vid v = 0; v < g.num_vertices(); ++v) {
        ASSERT_EQ(ws.dist_of(v), baseline_dist[v]) << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverDeterminism,
                         ::testing::Values<std::uint64_t>(1, 2, 3));
INSTANTIATE_TEST_SUITE_P(Seeds, TeamRounds,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

}  // namespace
}  // namespace parsh
