// Tests for the Algorithm 4 hopset construction: Definition 2.4
// properties, Lemma 4.3 size bounds, Lemma 4.2 hop/distortion behaviour,
// recursion mechanics and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hopset/baseline_ks97.hpp"
#include "hopset/hopset.hpp"
#include "hopset/verify.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/hop_limited.hpp"

namespace parsh {
namespace {

HopsetParams laptop_params(std::uint64_t seed) {
  HopsetParams p;
  p.epsilon = 0.25;
  p.delta = 1.1;
  p.gamma1 = 0.2;
  p.gamma2 = 0.6;
  p.seed = seed;
  return p;
}

TEST(Hopset, EmptyAndTinyGraphs) {
  EXPECT_TRUE(build_hopset(Graph(), laptop_params(1)).edges.empty());
  EXPECT_TRUE(build_hopset(make_path(5), laptop_params(1)).edges.empty());
}

TEST(Hopset, EdgesAreWithinVertexRange) {
  const Graph g = make_grid(40, 40);
  const HopsetResult r = build_hopset(g, laptop_params(3));
  for (const Edge& e : r.edges) {
    EXPECT_LT(e.u, g.num_vertices());
    EXPECT_LT(e.v, g.num_vertices());
    EXPECT_NE(e.u, e.v);
    EXPECT_GE(e.w, 1);
  }
}

TEST(Hopset, WeightsArePathWeights) {
  // Definition 2.4 property 2: every hopset edge corresponds to a real
  // path, so its weight can never undercut the true distance.
  const Graph g = make_grid(30, 30);
  const HopsetResult r = build_hopset(g, laptop_params(5));
  EXPECT_TRUE(hopset_weights_are_path_weights(g, r.edges));
}

TEST(Hopset, WeightsArePathWeightsOnWeightedInput) {
  const Graph g = with_uniform_weights(make_grid(25, 25), 1, 5, 9);
  const HopsetResult r = build_hopset(g, laptop_params(7));
  EXPECT_TRUE(hopset_weights_are_path_weights(g, r.edges));
}

TEST(Hopset, StarAndCliqueCountsMatchEdgeList) {
  const Graph g = make_grid(40, 40);
  const HopsetResult r = build_hopset(g, laptop_params(11));
  EXPECT_EQ(r.edges.size(), r.star_edges + r.clique_edges);
}

TEST(Hopset, Lemma43StarBound) {
  // At most n star edges: each vertex joins a large cluster at most once.
  const Graph g = make_grid(50, 50);
  const HopsetResult r = build_hopset(g, laptop_params(13));
  EXPECT_LE(r.star_edges, static_cast<std::uint64_t>(g.num_vertices()));
}

TEST(Hopset, Lemma43CliqueBound) {
  // O((n / n_final) * rho^2) clique edges.
  const Graph g = make_grid(50, 50);
  const HopsetResult r = build_hopset(g, laptop_params(17));
  const double bound = static_cast<double>(g.num_vertices()) /
                       static_cast<double>(r.n_final) * r.rho * r.rho;
  EXPECT_LE(static_cast<double>(r.clique_edges), 4.0 * bound);
}

TEST(Hopset, DeterministicInSeed) {
  const Graph g = make_grid(30, 30);
  const HopsetResult a = build_hopset(g, laptop_params(21));
  const HopsetResult b = build_hopset(g, laptop_params(21));
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Hopset, ReportsDerivedParameters) {
  const Graph g = make_grid(30, 30);
  const HopsetParams p = laptop_params(1);
  const HopsetResult r = build_hopset(g, p);
  EXPECT_DOUBLE_EQ(r.growth, hopset_growth(g.num_vertices(), p));
  EXPECT_DOUBLE_EQ(r.rho, hopset_rho(g.num_vertices(), p));
  EXPECT_GT(r.beta0, 0);
  EXPECT_GE(r.n_final, p.n_final_floor);
}

TEST(Hopset, OverridesRespected) {
  const Graph g = make_grid(20, 20);
  HopsetParams p = laptop_params(1);
  p.beta0_override = 0.33;
  p.n_final_override = 44;
  const HopsetResult r = build_hopset(g, p);
  EXPECT_DOUBLE_EQ(r.beta0, 0.33);
  EXPECT_EQ(r.n_final, 44u);
}

TEST(Hopset, ReducesHopRadiusOnLongPaths) {
  // The defining behaviour: on a high-diameter graph, far pairs need far
  // fewer hop rounds with the hopset than without.
  const Graph g = make_path_with_chords(1500, 40, 3);
  HopsetParams p = laptop_params(5);
  p.gamma2 = 0.5;  // beta0 ~ n^{-1/2}: top clusters of ~sqrt(n) radius
  const HopsetResult r = build_hopset(g, p);
  ASSERT_FALSE(r.edges.empty());
  const auto ms = measure_hopset(g, r.edges, 0.5, 12, 4000, 9);
  ASSERT_FALSE(ms.empty());
  double plain = 0, with_set = 0;
  for (const auto& m : ms) {
    plain += static_cast<double>(m.hops_plain);
    with_set += static_cast<double>(m.hops_with_set);
    EXPECT_LE(m.hops_with_set, m.hops_plain);  // never worse
  }
  EXPECT_LT(with_set, 0.8 * plain);  // substantial aggregate reduction
}

TEST(Hopset, AugmentedDistancesNeverBelowTrue) {
  // Hopset edges are path weights, so G ∪ E' has exactly the same
  // shortest-path metric as G.
  const Graph g = make_grid(20, 20);
  const HopsetResult r = build_hopset(g, laptop_params(29));
  const Graph aug = g.with_extra_edges(r.edges);
  const auto d_g = dijkstra(g, 0);
  const auto d_aug = dijkstra(aug, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(d_aug.dist[v], d_g.dist[v]) << v;
  }
}

TEST(Hopset, HopBoundFormulaMonotonicities) {
  const HopsetParams p = laptop_params(1);
  // More distance -> more hops; bigger gamma2 (smaller beta0) -> fewer.
  EXPECT_LT(hopset_hop_bound(10000, p, 10), hopset_hop_bound(10000, p, 1000));
  HopsetParams p2 = p;
  p2.gamma2 = 0.9;
  EXPECT_LT(hopset_hop_bound(10000, p2, 1000), hopset_hop_bound(10000, p, 1000));
}

class HopsetTopologies : public ::testing::TestWithParam<int> {
 protected:
  Graph graph() const {
    switch (GetParam()) {
      case 0: return make_grid(35, 35);
      case 1: return make_torus(30, 30);
      case 2: return ensure_connected(make_random_graph(1000, 2500, 7));
      case 3: return make_path_with_chords(1200, 100, 7);
      default: return with_uniform_weights(make_grid(30, 30), 1, 4, 11);
    }
  }
};

TEST_P(HopsetTopologies, StructurallySoundAcrossTopologies) {
  const Graph g = graph();
  const HopsetResult r = build_hopset(g, laptop_params(31));
  EXPECT_LE(r.star_edges, static_cast<std::uint64_t>(g.num_vertices()));
  EXPECT_EQ(r.edges.size(), r.star_edges + r.clique_edges);
  EXPECT_TRUE(hopset_weights_are_path_weights(g, r.edges));
}

INSTANTIATE_TEST_SUITE_P(Topologies, HopsetTopologies, ::testing::Values(0, 1, 2, 3, 4));

TEST(Ks97Baseline, CliqueOverSamplesWithExactDistances) {
  const Graph g = make_grid(15, 15);
  const Ks97Result r = ks97_hopset(g, 10, 3);
  EXPECT_LE(r.samples.size(), 10u);
  // Every edge connects two samples at their exact distance.
  for (const Edge& e : r.edges) {
    EXPECT_DOUBLE_EQ(e.w, st_distance(g, e.u, e.v));
  }
  EXPECT_TRUE(hopset_weights_are_path_weights(g, r.edges));
}

TEST(Ks97Baseline, DefaultSampleCountIsSqrtN) {
  const Graph g = make_grid(20, 20);  // n = 400
  const Ks97Result r = ks97_hopset(g, 0, 5);
  EXPECT_LE(r.samples.size(), 20u);
  EXPECT_GE(r.samples.size(), 15u);  // duplicates shave a few off
}

TEST(Ks97Baseline, ReducesHopsOnPaths) {
  const Graph g = make_path(800);
  const Ks97Result r = ks97_hopset(g, 0, 9);
  const auto ms = measure_hopset(g, r.edges, 0.25, 8, 2000, 2);
  for (const auto& m : ms) {
    EXPECT_LE(m.hops_with_set, m.hops_plain);
  }
}

TEST(MeasureHopset, PlainHopsEqualBfsDistanceOnUnitGraphs) {
  // Without a hopset and with eps below 1/diameter, reaching the exact
  // distance takes exactly dist hops on unweighted graphs.
  const Graph g = make_grid(12, 12);
  const auto ms = measure_hopset(g, {}, 1e-9, 10, 1000, 4);
  for (const auto& m : ms) {
    EXPECT_EQ(static_cast<weight_t>(m.hops_plain), m.true_dist);
    EXPECT_EQ(m.hops_with_set, m.hops_plain);
  }
}

TEST(MeasureHopset, FractionWithinBoundComputes) {
  std::vector<HopMeasurement> ms(4);
  ms[0].hops_with_set = 5;
  ms[1].hops_with_set = 10;
  ms[2].hops_with_set = 15;
  ms[3].hops_with_set = 20;
  EXPECT_DOUBLE_EQ(fraction_within_hop_bound(ms, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_within_hop_bound(ms, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within_hop_bound({}, 1.0), 0.0);
}

TEST(Hopset, Definition24ProbabilityClause) {
  // The definition demands: for any pair, with probability >= 1/2 the
  // h-hop distance in G ∪ E' is within (1+eps) of the true distance.
  // Measure the empirical success fraction against a generous 4x-of-mean
  // hop budget across many pairs; it must clear 1/2 comfortably.
  const Graph g = make_path(2500);
  HopsetParams p;
  p.gamma2 = 0.6;
  p.epsilon = 0.5;
  p.seed = 13;
  const HopsetResult r = build_hopset(g, p);
  const auto ms = measure_hopset(g, r.edges, 0.5, 24, 5000, 21);
  ASSERT_GE(ms.size(), 20u);
  double budget_sum = 0;
  for (const auto& m : ms) {
    budget_sum += 4.0 * hopset_hop_bound(g.num_vertices(), p, m.true_dist);
  }
  const double mean_budget = budget_sum / static_cast<double>(ms.size());
  const double frac = fraction_within_hop_bound(ms, mean_budget);
  EXPECT_GE(frac, 0.5);
}

}  // namespace
}  // namespace parsh
