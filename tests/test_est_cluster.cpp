// Tests for exponential start time clustering (Algorithm 1): structural
// validity, exact agreement between the parallel engine and the
// sequential Dijkstra oracle, and the probabilistic laws of Lemma 2.1,
// Lemma 2.2 / Corollary 3.1 and Corollary 2.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "cluster/cluster_stats.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "random/rng.hpp"

namespace parsh {
namespace {

TEST(EstCluster, EveryVertexAssignedExactlyOneCluster) {
  const Graph g = make_grid(10, 10);
  const Clustering c = est_cluster(g, 0.4, 1);
  ASSERT_EQ(c.cluster_of.size(), 100u);
  for (vid v = 0; v < 100; ++v) EXPECT_LT(c.cluster_of[v], c.num_clusters);
  std::size_t total = 0;
  for (const auto& m : c.members()) total += m.size();
  EXPECT_EQ(total, 100u);
}

TEST(EstCluster, StructurallyValidOnVariousGraphs) {
  for (const Graph& g : {make_path(64), make_grid(8, 8), make_cycle(33),
                         make_binary_tree(63), make_star(40)}) {
    const Clustering c = est_cluster(g, 0.5, 7);
    EXPECT_TRUE(validate_clustering(g, c));
  }
}

TEST(EstCluster, ValidOnWeightedGraphs) {
  const Graph g = with_uniform_weights(make_grid(9, 9), 1, 7, 3);
  const Clustering c = est_cluster(g, 0.3, 9);
  EXPECT_TRUE(validate_clustering(g, c));
}

TEST(EstCluster, DeterministicInSeed) {
  const Graph g = make_grid(12, 12);
  const Clustering a = est_cluster(g, 0.4, 42);
  const Clustering b = est_cluster(g, 0.4, 42);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.parent, b.parent);
  const Clustering c = est_cluster(g, 0.4, 43);
  EXPECT_NE(a.cluster_of, c.cluster_of);  // overwhelmingly likely
}

TEST(EstCluster, SingleVertexAndEmptyGraphs) {
  const Clustering c1 = est_cluster(Graph::from_edges(1, {}), 0.5, 1);
  EXPECT_EQ(c1.num_clusters, 1u);
  const Clustering c0 = est_cluster(Graph(), 0.5, 1);
  EXPECT_EQ(c0.num_clusters, 0u);
}

TEST(EstCluster, DisconnectedGraphClustersEachComponent) {
  const Graph g = Graph::from_edges(6, {{0, 1, 1}, {2, 3, 1}, {4, 5, 1}});
  const Clustering c = est_cluster(g, 0.5, 5);
  EXPECT_TRUE(validate_clustering(g, c));
  // No cluster can span components.
  for (vid v = 0; v < 6; v += 2) {
    EXPECT_TRUE(c.cluster_of[v] == c.cluster_of[v + 1] ||
                c.cluster_of[v] != c.cluster_of[(v + 2) % 6]);
  }
}

class EngineVsOracle
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EngineVsOracle, ParallelEngineMatchesDijkstraOracle) {
  // The round-synchronous engine computes the exact argmin clustering;
  // it must agree with the sequential super-source Dijkstra on the same
  // draws — same centers, same assignment, same tree distances.
  const auto [which, seed] = GetParam();
  Graph g;
  switch (which) {
    case 0: g = make_grid(9, 11); break;
    case 1: g = make_path(120); break;
    case 2: g = ensure_connected(make_random_graph(150, 450, seed + 10)); break;
    default: g = with_uniform_weights(make_grid(7, 13), 1, 5, seed + 4); break;
  }
  for (double beta : {0.15, 0.6}) {
    const Clustering a = est_cluster(g, beta, seed);
    const Clustering b = est_cluster_reference(g, beta, seed);
    EXPECT_EQ(a.cluster_of, b.cluster_of) << "beta=" << beta;
    EXPECT_EQ(a.center, b.center) << "beta=" << beta;
    EXPECT_EQ(a.dist_to_center, b.dist_to_center) << "beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineVsOracle,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<std::uint64_t>(1, 2, 3)));

class EngineVsOracleRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineVsOracleRandom, MatchesOracleOnRandomGraphs) {
  // Random topologies, unweighted and with integer weights (including
  // weights past the engine's calendar span, exercising overflow).
  const std::uint64_t seed = GetParam();
  const Graph base = ensure_connected(make_random_graph(220, 700, seed + 50));
  for (const Graph& g :
       {base, with_uniform_weights(base, 1, 6, seed + 7),
        with_uniform_weights(base, 1, 400, seed + 13),
        with_uniform_weights(make_rmat(200, 800, seed + 21), 1, 9, seed + 3)}) {
    for (double beta : {0.1, 0.45}) {
      const Clustering a = est_cluster(g, beta, seed);
      const Clustering b = est_cluster_reference(g, beta, seed);
      // parent is not compared: equal-key ties (two equal-length tree
      // paths from the same center) are broken differently by the oracle's
      // priority queue, and both parents are valid — validate_clustering
      // checks the forest instead.
      EXPECT_EQ(a.cluster_of, b.cluster_of) << "beta=" << beta;
      EXPECT_EQ(a.center, b.center) << "beta=" << beta;
      EXPECT_EQ(a.dist_to_center, b.dist_to_center) << "beta=" << beta;
      EXPECT_TRUE(validate_clustering(g, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsOracleRandom,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5));

TEST(EstCluster, DeterministicAcrossThreadCounts) {
  // The round engine's priority writes are schedule-independent: the
  // clustering must be bit-identical at 1 worker and at many.
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(400, 1600, 11)), 1, 5, 17);
  Clustering one, many;
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
  one = est_cluster(g, 0.3, 123);
  omp_set_num_threads(std::max(4, before));
  many = est_cluster(g, 0.3, 123);
  omp_set_num_threads(before);
#else
  one = est_cluster(g, 0.3, 123);
  many = est_cluster(g, 0.3, 123);
#endif
  EXPECT_EQ(one.cluster_of, many.cluster_of);
  EXPECT_EQ(one.center, many.center);
  EXPECT_EQ(one.parent, many.parent);
  EXPECT_EQ(one.dist_to_center, many.dist_to_center);
}

TEST(EstClusterWorkspace, ReusedAcrossGraphsMatchesFreshRuns) {
  // One workspace across a sequence of different graphs must behave as if
  // each call had fresh state (no leakage through the reused arrays).
  EstClusterWorkspace ws;
  std::vector<Graph> graphs;
  graphs.push_back(ensure_connected(make_random_graph(300, 900, 1)));
  graphs.push_back(make_grid(9, 9));  // smaller: arrays shrink logically
  graphs.push_back(with_uniform_weights(make_random_graph(200, 500, 2), 1, 7, 3));
  graphs.push_back(ensure_connected(make_random_graph(350, 1200, 4)));  // regrow
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const double beta = 0.1 + 0.2 * static_cast<double>(i);
    const Clustering a = est_cluster(graphs[i], beta, 40 + i, ws);
    const Clustering b = est_cluster(graphs[i], beta, 40 + i);
    EXPECT_EQ(a.cluster_of, b.cluster_of) << i;
    EXPECT_EQ(a.center, b.center) << i;
    EXPECT_EQ(a.parent, b.parent) << i;
    EXPECT_EQ(a.dist_to_center, b.dist_to_center) << i;
  }
}

TEST(EstClusterWorkspace, WarmIdenticalCallDoesZeroEngineAllocations) {
  // Re-running the same (graph, beta, seed) through one workspace repeats
  // the same bucket schedule inside already-grown buffers. Pinned to one
  // worker: at >1 workers OpenMP's dynamic expansion scheduling jitters
  // which worker stages which edge, so per-worker staging high-waters can
  // shift a little between identical runs — the multi-thread reuse
  // guarantee (with the quotient loop's natural demand slack) is pinned
  // by ClusterConnectivity.WarmQuotientRoundsDoZeroEngineAllocations.
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(2000, 8000, 5)), 1, 6, 7);
  EstClusterWorkspace ws;
  const Clustering first = est_cluster(g, 0.25, 9, ws);
  const std::uint64_t warm = ws.engine_alloc_events();
  EXPECT_GT(warm, 0u);
  EXPECT_EQ(ws.array_grow_events(), 1u);
  const Clustering second = est_cluster(g, 0.25, 9, ws);
  EXPECT_EQ(ws.engine_alloc_events(), warm);
  EXPECT_EQ(ws.array_grow_events(), 1u);
  EXPECT_EQ(first.cluster_of, second.cluster_of);
#ifdef PARSH_HAVE_OPENMP
  omp_set_num_threads(before);
#endif
}

TEST(EstClusterWorkspace, SurvivesWorkerCountRaiseAfterConstruction) {
  // A long-lived workspace sizes its per-worker scratch at construction;
  // raising the OpenMP thread count afterwards must regrow it instead of
  // letting worker_id() index out of bounds.
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
  EstClusterWorkspace ws;
  const Graph g = ensure_connected(make_random_graph(3000, 9000, 8));
  const Clustering narrow = est_cluster(g, 0.3, 5, ws);
  omp_set_num_threads(std::max(4, before));
  const Clustering wide = est_cluster(g, 0.3, 5, ws);
  omp_set_num_threads(before);
  EXPECT_EQ(narrow.cluster_of, wide.cluster_of);
  EXPECT_EQ(narrow.parent, wide.parent);
  EXPECT_EQ(narrow.dist_to_center, wide.dist_to_center);
#endif
}

TEST(EstClusterWorkspace, PackedStraddleMatchesThreePhaseAndOracle) {
  // Regression guard for the packed-word fast path and its mid-run seam
  // with the three-phase fallback. beta = 0.001 puts delta_max (and with
  // it the live round keys) around ln(n)/beta ~ 7600, straddling the
  // 40-bit quantization boundary at key 4096: early rounds use the
  // three-phase reduce, late rounds the packed word. A sparse graph keeps
  // many components, so settlements genuinely happen on both sides.
  const Graph g = with_uniform_weights(make_random_graph(2000, 1400, 4), 30, 90, 9);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    EstClusterWorkspace packed_ws;
    const Clustering packed = est_cluster(g, 0.001, seed, packed_ws);
    EXPECT_GT(packed_ws.packed_rounds(), 0u) << seed;
    EXPECT_GT(packed_ws.fallback_rounds(), 0u) << seed;

    EstClusterWorkspace three_phase_ws;
    three_phase_ws.force_three_phase(true);
    const Clustering three = est_cluster(g, 0.001, seed, three_phase_ws);
    EXPECT_EQ(three_phase_ws.packed_rounds(), 0u);

    // Bit-identical across the two reduction strategies…
    EXPECT_EQ(packed.cluster_of, three.cluster_of) << seed;
    EXPECT_EQ(packed.center, three.center) << seed;
    EXPECT_EQ(packed.parent, three.parent) << seed;
    EXPECT_EQ(packed.dist_to_center, three.dist_to_center) << seed;
    // …and equal to the sequential Dijkstra oracle.
    const Clustering oracle = est_cluster_reference(g, 0.001, seed);
    EXPECT_EQ(packed.cluster_of, oracle.cluster_of) << seed;
    EXPECT_EQ(packed.center, oracle.center) << seed;
    EXPECT_EQ(packed.dist_to_center, oracle.dist_to_center) << seed;
  }
}

TEST(EstClusterWorkspace, PackedPathDeterministicAcrossThreadCounts) {
  const Graph g = with_uniform_weights(make_random_graph(1500, 1000, 6), 20, 70, 3);
  Clustering one, many;
  std::uint64_t packed_one = 0, packed_many = 0;
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
  {
    EstClusterWorkspace ws;
    one = est_cluster(g, 0.001, 123, ws);
    packed_one = ws.packed_rounds();
  }
  omp_set_num_threads(std::max(4, before));
  {
    EstClusterWorkspace ws;
    many = est_cluster(g, 0.001, 123, ws);
    packed_many = ws.packed_rounds();
  }
  omp_set_num_threads(before);
#else
  {
    EstClusterWorkspace ws;
    one = est_cluster(g, 0.001, 123, ws);
    packed_one = ws.packed_rounds();
  }
  {
    EstClusterWorkspace ws;
    many = est_cluster(g, 0.001, 123, ws);
    packed_many = ws.packed_rounds();
  }
#endif
  EXPECT_GT(packed_one, 0u);
  EXPECT_EQ(packed_one, packed_many);
  EXPECT_EQ(one.cluster_of, many.cluster_of);
  EXPECT_EQ(one.center, many.center);
  EXPECT_EQ(one.parent, many.parent);
  EXPECT_EQ(one.dist_to_center, many.dist_to_center);
}

TEST(EstCluster, ShiftsFollowSeededExponential) {
  const auto shifts = est_shifts(1000, 0.5, 77);
  Rng rng(77);
  for (vid v = 0; v < 1000; ++v) {
    EXPECT_DOUBLE_EQ(shifts[v], rng.exponential(v, 0.5));
  }
}

TEST(EstClusterLaw, RadiusBoundLemma21) {
  // Lemma 2.1: tree radius <= k beta^-1 log n w.p. >= 1 - n^{1-k}. With
  // k=3 a violation on any of 20 trials has probability ~2e-4.
  const vid n = 400;
  const Graph g = make_grid(20, 20);
  const double beta = 0.5;
  const double bound = 3.0 * std::log(static_cast<double>(n)) / beta;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Clustering c = est_cluster(g, beta, seed);
    EXPECT_LE(max_cluster_radius(c), bound) << seed;
  }
}

TEST(EstClusterLaw, SmallerBetaMakesFewerBiggerClusters) {
  const Graph g = make_grid(30, 30);
  double prev = 1e18;
  for (double beta : {1.0, 0.3, 0.1}) {
    double mean_clusters = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      mean_clusters += est_cluster(g, beta, seed).num_clusters;
    }
    mean_clusters /= 5;
    EXPECT_LT(mean_clusters, prev) << beta;
    prev = mean_clusters;
  }
}

TEST(EstClusterLaw, CutProbabilityCorollary23) {
  // Corollary 2.3: P[edge of weight w cut] <= 1 - exp(-beta w) < beta w.
  // Measure the aggregate cut fraction on unit weights across seeds.
  const Graph g = make_torus(24, 24);  // edge-transitive: fractions are clean
  for (double beta : {0.1, 0.3}) {
    double frac = 0;
    const int trials = 12;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      frac += cut_fraction(g, est_cluster(g, beta, 1000 + seed));
    }
    frac /= trials;
    const double bound = 1.0 - std::exp(-beta);
    // Sampling slack: the bound holds in expectation per edge.
    EXPECT_LE(frac, bound * 1.25) << "beta=" << beta;
  }
}

TEST(EstClusterLaw, WeightedCutProbabilityScalesWithWeight) {
  // Heavier edges are cut proportionally more often (Corollary 2.3).
  const Graph g = with_uniform_weights(make_torus(20, 20), 1, 8, 5);
  const double beta = 0.05;
  std::array<double, 9> cut{}, total{};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Clustering c = est_cluster(g, beta, seed);
    for (const Edge& e : g.undirected_edges()) {
      const auto w = static_cast<std::size_t>(e.w);
      total[w] += 1;
      if (c.cluster_of[e.u] != c.cluster_of[e.v]) cut[w] += 1;
    }
  }
  for (std::size_t w = 1; w <= 8; ++w) {
    ASSERT_GT(total[w], 0);
    const double p = cut[w] / total[w];
    const double bound = 1.0 - std::exp(-beta * static_cast<double>(w));
    EXPECT_LE(p, bound * 1.5 + 0.02) << "w=" << w;
  }
}

TEST(EstClusterLaw, BallIntersectionCorollary31) {
  // Corollary 3.1: with beta = ln(n)/(2k), E[#clusters meeting B(v,1)]
  // <= n^{1/k} (the proof's bound is e^{2 beta} = n^{1/k}).
  const vid n = 900;
  const Graph g = make_torus(30, 30);
  const double k = 3.0;
  const double beta = std::log(static_cast<double>(n)) / (2.0 * k);
  std::vector<vid> queries;
  for (vid v = 0; v < n; v += 30) queries.push_back(v);
  double mean = 0;
  int count = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Clustering c = est_cluster(g, beta, seed);
    for (vid x : ball_cluster_counts(g, c, queries, 1.0)) {
      mean += x;
      ++count;
    }
  }
  mean /= count;
  const double bound = std::pow(static_cast<double>(n), 1.0 / k);
  EXPECT_LE(mean, bound * 1.3);
  EXPECT_GE(mean, 1.0);
}

TEST(EstCluster, LargeBetaShattersIntoSingletons) {
  // With beta >> 1 every delta is ~0, so everyone self-starts first.
  const Graph g = make_grid(10, 10);
  const Clustering c = est_cluster(g, 50.0, 3);
  EXPECT_GT(c.num_clusters, 80u);
}

TEST(EstCluster, MembersAndSizesConsistent) {
  const Graph g = make_grid(10, 10);
  const Clustering c = est_cluster(g, 0.4, 8);
  const auto members = c.members();
  const auto sizes = c.sizes();
  ASSERT_EQ(members.size(), c.num_clusters);
  ASSERT_EQ(sizes.size(), c.num_clusters);
  for (vid i = 0; i < c.num_clusters; ++i) {
    EXPECT_EQ(members[i].size(), sizes[i]);
    for (vid v : members[i]) EXPECT_EQ(c.cluster_of[v], i);
  }
}

TEST(ClusterStats, ValidateRejectsCorruptedClusterings) {
  const Graph g = make_grid(6, 6);
  Clustering c = est_cluster(g, 0.5, 2);
  ASSERT_TRUE(validate_clustering(g, c));
  {
    Clustering bad = c;
    bad.cluster_of[5] = bad.num_clusters;  // out of range
    EXPECT_FALSE(validate_clustering(g, bad));
  }
  {
    Clustering bad = c;
    // Break a tree distance.
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (bad.parent[v] != kNoVertex) {
        bad.dist_to_center[v] += 5;
        break;
      }
    }
    EXPECT_FALSE(validate_clustering(g, bad));
  }
  {
    Clustering bad = c;
    bad.parent[bad.center[0]] = 0;  // center must have no parent
    if (bad.center[0] != 0) {
      EXPECT_FALSE(validate_clustering(g, bad));
    }
  }
}

TEST(ClusterStats, CutEdgesCountsInterClusterOnce) {
  const Graph g = make_path(10);
  Clustering c;
  c.num_clusters = 2;
  c.cluster_of = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  c.center = {0, 5};
  c.parent.assign(10, kNoVertex);
  c.dist_to_center.assign(10, 0);
  EXPECT_EQ(count_cut_edges(g, c), 1u);
  EXPECT_NEAR(cut_fraction(g, c), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace parsh
