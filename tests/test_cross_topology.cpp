// Cross-topology sweeps: run the core invariants over the full generator
// portfolio. Different topologies stress different code paths — star
// (degree-n hubs), hypercube (log-diameter), barbell (bottlenecks),
// caterpillar (pendant leaves), random-regular (expanders), geometric
// (weighted mesh) — so each combination is a distinct behaviour check,
// not a repetition.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_stats.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spanner/spanner.hpp"
#include "spanner/verify.hpp"
#include "sssp/bfs.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

Graph topology(int which, std::uint64_t seed) {
  switch (which) {
    case 0: return make_star(300);
    case 1: return make_hypercube(9);
    case 2: return make_barbell(20, 30);
    case 3: return make_caterpillar(60, 4);
    case 4: return ensure_connected(make_random_regular(300, 5, seed));
    case 5: return ensure_connected(make_geometric(400, 0.08, seed));
    case 6: return ensure_connected(make_rmat(512, 2048, seed));
    default: return make_torus(17, 19);
  }
}

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TopologySweep, EstClusterEngineMatchesOracle) {
  const auto [which, seed] = GetParam();
  const Graph g = topology(which, seed);
  for (double beta : {0.2, 0.7}) {
    const Clustering a = est_cluster(g, beta, seed + 5);
    const Clustering b = est_cluster_reference(g, beta, seed + 5);
    ASSERT_EQ(a.cluster_of, b.cluster_of) << "which=" << which << " beta=" << beta;
    ASSERT_EQ(a.center, b.center);
    ASSERT_EQ(a.dist_to_center, b.dist_to_center);
    EXPECT_TRUE(validate_clustering(g, a));
  }
}

TEST_P(TopologySweep, SpannerInvariantsHold) {
  const auto [which, seed] = GetParam();
  const Graph g = topology(which, seed);
  const SpannerResult r =
      g.weighted() ? weighted_spanner(g, 3.0, seed) : unweighted_spanner(g, 3.0, seed);
  EXPECT_TRUE(is_subgraph(g, r.edges)) << which;
  // Connectivity of every component is preserved.
  EXPECT_EQ(num_components(spanner_graph(g, r.edges)), num_components(g)) << which;
  EXPECT_LE(r.edges.size(), g.num_edges()) << which;
}

TEST_P(TopologySweep, BfsAgreesWithDijkstraOnUnitGraphs) {
  const auto [which, seed] = GetParam();
  const Graph g = topology(which, seed);
  if (g.weighted()) GTEST_SKIP() << "unit-weight check";
  const auto b = bfs(g, 0);
  const auto d = dijkstra(g, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (d.dist[v] == kInfWeight) {
      EXPECT_EQ(b.dist[v], kUnreachedHops);
    } else {
      EXPECT_EQ(static_cast<weight_t>(b.dist[v]), d.dist[v]) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(TopologyEdgeCases, StarClustersHubCorrectly) {
  // On a star, either the hub's shift dominates (one cluster) or leaves
  // peel off as singletons; both are valid partitions — verify structure
  // across seeds.
  const Graph g = make_star(100);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Clustering c = est_cluster(g, 0.5, seed);
    EXPECT_TRUE(validate_clustering(g, c)) << seed;
    // Every non-hub cluster is a singleton (leaves only connect to 0).
    const auto members = c.members();
    for (vid i = 0; i < c.num_clusters; ++i) {
      if (c.center[i] == 0) continue;
      bool contains_hub = false;
      for (vid v : members[i]) contains_hub |= (v == 0);
      if (!contains_hub) {
        EXPECT_EQ(members[i].size(), 1u) << "cluster " << i << " seed " << seed;
      }
    }
  }
}

TEST(TopologyEdgeCases, HypercubeSpannerKeepsLogDiameter) {
  // Hypercubes have diameter log n; spanner stretch O(k) keeps the
  // spanner's diameter within a k factor.
  const Graph g = make_hypercube(8);
  const SpannerResult r = unweighted_spanner(g, 2.0, 3);
  const Graph h = spanner_graph(g, r.edges);
  const auto far = bfs(h, 0);
  vid diameter = 0;
  for (vid v = 0; v < h.num_vertices(); ++v) {
    ASSERT_NE(far.dist[v], kUnreachedHops);
    diameter = std::max(diameter, far.dist[v]);
  }
  EXPECT_LE(diameter, 8u * (6 * 2 + 1));
}

TEST(TopologyEdgeCases, BarbellBridgeSurvivesEverySpanner) {
  // The bridge path is the only connection — every spanner must keep all
  // of it.
  const Graph g = make_barbell(15, 10);
  const SpannerResult r = unweighted_spanner(g, 4.0, 7);
  const Graph h = spanner_graph(g, r.edges);
  EXPECT_EQ(num_components(h), 1u);
  // Bridge interior vertices have degree 2 in g; both edges must stay.
  for (vid v = 15; v < 25; ++v) EXPECT_EQ(h.degree(v), 2u) << v;
}

TEST(TopologyEdgeCases, CaterpillarLeavesGetForestEdges) {
  // Leaves have one edge each; the spanner must include every leaf edge
  // (tree edges cannot be dropped).
  const Graph g = make_caterpillar(40, 3);
  const SpannerResult r = unweighted_spanner(g, 3.0, 5);
  EXPECT_EQ(r.edges.size(), g.num_edges());
}

}  // namespace
}  // namespace parsh
