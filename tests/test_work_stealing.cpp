// Skewed-frontier coverage for the degree-aware work-stealing rounds.
//
// The FrontierRelaxer (parallel/bucket_engine.hpp) splits each round's
// edge work into stolen ranges so hub vertices are relaxed by many
// workers. Its contract: scheduling never changes WHICH per-edge calls
// happen, so every driver built on the order-independent CRCW min-reduces
// is bit-identical across (a) the stolen edge-grain path vs the
// whole-vertex path (force_vertex_grain test hook), and (b) 1 vs many
// threads. These tests pin that on the skew inputs the mechanism exists
// for — star / hub-and-spoke graphs and heavy-tailed RMATs — plus the
// oracle equivalence and the warm high-water reuse of the relaxer's
// prefix scratch.
//
// Workspaces asserting edge_grain_rounds() pin force_push: the skew zoo's
// dense rounds trip the direction heuristic organically, and a pull round
// is counted as neither edge- nor vertex-grain. Push-vs-pull equivalence
// has its own suite (test_direction_optimizing.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster_stats.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/bfs.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

void expect_same_clustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.rounds, b.rounds);
}

/// The skew zoo: every graph has at least one frontier whose edge total
/// exceeds FrontierRelaxer::kEdgeGrain concentrated on few vertices.
std::vector<std::pair<const char*, Graph>> skewed_graphs(std::uint64_t seed) {
  std::vector<std::pair<const char*, Graph>> out;
  out.emplace_back("star", make_star(5000));
  out.emplace_back("hubs", make_hubs(9000, 3, seed));
  out.emplace_back("rmat-heavy",
                   ensure_connected(make_rmat_heavy(4000, 24000, seed + 1)));
  return out;
}

class WorkStealing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkStealing, EstClusterStolenPathMatchesOracle) {
  for (const auto& [name, g] : skewed_graphs(GetParam())) {
    SCOPED_TRACE(name);
    EstClusterWorkspace ws;
    ws.force_push(true);
    const Clustering engine = est_cluster(g, 0.5, GetParam(), ws);
    // The skew actually exercised the stolen path.
    EXPECT_GT(ws.edge_grain_rounds(), 0u) << name;
    const Clustering oracle = est_cluster_reference(g, 0.5, GetParam());
    // parent is not compared: equal-key ties (two equal-length tree paths
    // from the same center) are broken differently by the oracle's
    // priority queue, and both parents are valid — validate_clustering
    // checks the forest instead (same convention as test_est_cluster).
    EXPECT_EQ(engine.cluster_of, oracle.cluster_of) << name;
    EXPECT_EQ(engine.center, oracle.center) << name;
    EXPECT_EQ(engine.dist_to_center, oracle.dist_to_center) << name;
    EXPECT_TRUE(validate_clustering(g, engine)) << name;
  }
}

TEST_P(WorkStealing, EstClusterEdgeGrainVsVertexGrainAcrossThreads) {
  for (const auto& [name, g] : skewed_graphs(GetParam())) {
    SCOPED_TRACE(name);
    // Baseline: the pre-work-stealing whole-vertex scheduling, 1 thread.
    EstClusterWorkspace vertex_ws;
    vertex_ws.force_vertex_grain(true);
    const Clustering baseline =
        at_threads(1, [&] { return est_cluster(g, 0.5, GetParam(), vertex_ws); });
    EXPECT_EQ(vertex_ws.edge_grain_rounds(), 0u);
    EXPECT_GT(vertex_ws.vertex_grain_rounds(), 0u);
    for (int threads : {1, 4}) {
      EstClusterWorkspace ws;
      ws.force_push(true);
      const Clustering stolen =
          at_threads(threads, [&] { return est_cluster(g, 0.5, GetParam(), ws); });
      EXPECT_GT(ws.edge_grain_rounds(), 0u) << name << " @" << threads;
      expect_same_clustering(stolen, baseline);
      // And vertex-grain at many threads agrees too.
      EstClusterWorkspace ws4;
      ws4.force_vertex_grain(true);
      const Clustering vertex4 =
          at_threads(threads, [&] { return est_cluster(g, 0.5, GetParam(), ws4); });
      expect_same_clustering(vertex4, baseline);
    }
  }
}

TEST_P(WorkStealing, DeltaSteppingStolenPathAcrossThreads) {
  for (const auto& [name, base] : skewed_graphs(GetParam())) {
    SCOPED_TRACE(name);
    const Graph g = with_uniform_weights(base, 1, 9, GetParam() + 17);
    for (const weight_t delta : {0.0, 4.0}) {
      SsspWorkspace vertex_ws;
      vertex_ws.force_vertex_grain(true);
      const auto baseline =
          at_threads(1, [&] { return delta_stepping(g, 0, delta, vertex_ws); });
      EXPECT_EQ(vertex_ws.edge_grain_rounds(), 0u);
      for (int threads : {1, 4}) {
        SsspWorkspace ws;
        ws.force_push(true);
        const auto stolen =
            at_threads(threads, [&] { return delta_stepping(g, 0, delta, ws); });
        EXPECT_GT(ws.edge_grain_rounds(), 0u) << name << " @" << threads;
        EXPECT_EQ(stolen.dist, baseline.dist);
        EXPECT_EQ(stolen.parent, baseline.parent);
        EXPECT_EQ(stolen.phases, baseline.phases);
        EXPECT_EQ(stolen.relaxations, baseline.relaxations);
      }
    }
  }
}

TEST_P(WorkStealing, BfsDistancesStolenPathAcrossThreads) {
  // BFS distances AND parents are deterministic: parents are the
  // per-level min-via argmin (same contract as delta-stepping), so the
  // whole tree must survive the stolen path and any thread count.
  for (const auto& [name, g] : skewed_graphs(GetParam())) {
    SCOPED_TRACE(name);
    SsspWorkspace vertex_ws;
    vertex_ws.force_vertex_grain(true);
    const BfsResult baseline =
        at_threads(1, [&] { return bfs(g, 0, kNoVertex, vertex_ws); });
    for (int threads : {1, 4}) {
      SsspWorkspace ws;
      ws.force_push(true);
      const BfsResult stolen =
          at_threads(threads, [&] { return bfs(g, 0, kNoVertex, ws); });
      EXPECT_GT(ws.edge_grain_rounds(), 0u) << name << " @" << threads;
      EXPECT_EQ(stolen.dist, baseline.dist);
      EXPECT_EQ(stolen.parent, baseline.parent);
      EXPECT_EQ(stolen.rounds, baseline.rounds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkStealing, ::testing::Values<std::uint64_t>(1, 2, 3));

// --- warm high-water reuse on a hub-heavy RMAT (excluded from the TSan
// --- job by the *Warm* filter: allocation-count regression, not a race
// --- check, and too slow under instrumentation).

// Both pinned to one worker, like every identical-rerun Warm test: at >1
// workers OpenMP's dynamic scheduling jitters which worker stages which
// edge, so per-worker staging high-waters can shift a little between
// identical runs. The relaxer's prefix scratch itself is sized by the
// frontier — schedule-independent — but the engine counters it is
// asserted alongside are not.

TEST(WorkStealingWarm, HubHeavyRmatReusesRelaxScratch) {
  const Graph g = ensure_connected(make_rmat_heavy(60000, 360000, 7));
  at_threads(1, [&] {
    EstClusterWorkspace ws;
    ws.force_push(true);
    est_cluster(g, 0.4, 7, ws);  // cold: grows engine + relaxer scratch
    EXPECT_GT(ws.edge_grain_rounds(), 0u);
    const std::uint64_t engine_high = ws.engine_alloc_events();
    const std::uint64_t relax_high = ws.relax_alloc_events();
    EXPECT_GT(relax_high, 0u);
    est_cluster(g, 0.4, 7, ws);  // warm: every buffer fits its high water
    EXPECT_EQ(ws.engine_alloc_events(), engine_high);
    EXPECT_EQ(ws.relax_alloc_events(), relax_high);
    return 0;
  });
}

TEST(WorkStealingWarm, DeltaSteppingHubHeavyRmatReusesWorkspace) {
  const Graph g = with_uniform_weights(
      ensure_connected(make_rmat_heavy(60000, 360000, 11)), 1, 9, 13);
  at_threads(1, [&] {
    SsspWorkspace ws;
    ws.force_push(true);
    delta_stepping(g, 0, 4.0, ws);  // cold
    EXPECT_GT(ws.edge_grain_rounds(), 0u);
    const std::uint64_t high = ws.alloc_events();
    delta_stepping(g, 0, 4.0, ws);  // warm: zero workspace allocations
    EXPECT_EQ(ws.alloc_events(), high);
    return 0;
  });
}

}  // namespace
}  // namespace parsh
