// Tests for the Theorem 1.2 end-to-end engine: approximate distances
// against exact Dijkstra across topologies, weights and epsilons.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "random/rng.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

/// End-to-end distortion envelope asserted by these tests. The engine's
/// guarantee composes rounding (1+zeta) with the per-level hopset
/// distortion, so the bound is a small constant factor rather than the
/// bare epsilon; 1.75 is far below what a broken construction produces
/// (which typically inflates by the hop budget, i.e. orders of magnitude).
constexpr double kEnvelope = 1.75;

class QueryTopologies
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  Graph graph() const {
    const auto [which, seed] = GetParam();
    switch (which) {
      case 0: return make_grid(20, 20);
      case 1: return with_uniform_weights(make_grid(18, 18), 1, 9, seed);
      case 2:
        return with_log_uniform_weights(
            ensure_connected(make_random_graph(400, 1400, seed)), 128.0, seed + 1);
      default: return make_path_with_chords(600, 30, seed);
    }
  }
};

TEST_P(QueryTopologies, EstimatesAreValidAndTight) {
  const auto [which, seed] = GetParam();
  (void)which;
  const Graph g = graph();
  ApproxShortestPaths::Params p;
  p.epsilon = 0.25;
  p.hopset.hopset.seed = seed + 7;
  const ApproxShortestPaths engine(g, p);
  Rng rng(seed ^ 0xfeedULL);
  int checked = 0;
  for (int q = 0; q < 12; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, g.num_vertices()));
    const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, g.num_vertices()));
    const weight_t exact = st_distance(g, s, t);
    if (exact == kInfWeight) continue;
    const auto qr = engine.query(s, t);
    if (s == t) {
      EXPECT_EQ(qr.estimate, 0);
      continue;
    }
    ASSERT_NE(qr.estimate, kInfWeight) << "s=" << s << " t=" << t;
    EXPECT_GE(qr.estimate + 1e-6, exact);             // never undercuts
    EXPECT_LE(qr.estimate, exact * kEnvelope + 1e-6)  // within the envelope
        << "s=" << s << " t=" << t;
    ++checked;
  }
  EXPECT_GE(checked, 6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueryTopologies,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(ApproxQuery, IdenticalEndpointsAreZero) {
  const Graph g = make_grid(8, 8);
  const ApproxShortestPaths engine(g, {});
  EXPECT_EQ(engine.query(5, 5).estimate, 0);
}

TEST(ApproxQuery, DisconnectedPairsReportInfinity) {
  const Graph g = Graph::from_edges(6, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}});
  const ApproxShortestPaths engine(g, {});
  EXPECT_EQ(engine.query(0, 5).estimate, kInfWeight);
}

TEST(ApproxQuery, RoundsStayFarBelowGraphDiameterHops) {
  // The whole point of the hopset: query rounds are much smaller than
  // the plain BFS hop radius on long-diameter graphs.
  const Graph g = make_path_with_chords(2000, 50, 3);
  ApproxShortestPaths::Params p;
  p.epsilon = 0.5;
  p.hopset.hopset.gamma2 = 0.5;
  const ApproxShortestPaths engine(g, p);
  const auto qr = engine.query(0, 1999);
  ASSERT_NE(qr.estimate, kInfWeight);
  EXPECT_LT(qr.rounds, 1500u);  // far less than ~2000 plain hops over scales
}

TEST(ApproxQuery, TighterEpsilonGivesTighterEstimates) {
  const Graph g = with_uniform_weights(make_grid(15, 15), 1, 7, 5);
  ApproxShortestPaths::Params loose;
  loose.epsilon = 0.8;
  loose.hopset.hopset.epsilon = 0.8;
  loose.hopset.zeta = 0.4;
  ApproxShortestPaths::Params tight;
  tight.epsilon = 0.1;
  tight.hopset.hopset.epsilon = 0.1;
  tight.hopset.zeta = 0.05;
  const ApproxShortestPaths e_loose(g, loose);
  const ApproxShortestPaths e_tight(g, tight);
  Rng rng(4);
  double loose_sum = 0, tight_sum = 0;
  for (int q = 0; q < 10; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, g.num_vertices()));
    const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, g.num_vertices()));
    if (s == t) continue;
    const weight_t exact = st_distance(g, s, t);
    loose_sum += e_loose.query(s, t).estimate / exact;
    tight_sum += e_tight.query(s, t).estimate / exact;
  }
  // Not strictly monotone pointwise (different clusterings), but the
  // aggregate must not be meaningfully worse at the tighter setting.
  EXPECT_LE(tight_sum, loose_sum + 0.05);
}

TEST(ApproxQuery, DeterministicAcrossConstructions) {
  const Graph g = make_grid(12, 12);
  ApproxShortestPaths::Params p;
  p.hopset.hopset.seed = 77;
  const ApproxShortestPaths a(g, p);
  const ApproxShortestPaths b(g, p);
  for (vid s : {0u, 5u, 100u}) {
    EXPECT_EQ(a.query(s, 143).estimate, b.query(s, 143).estimate);
  }
}

TEST(ApproxQuery, ReportsScalesAndPreprocessingCounters) {
  const Graph g = with_log_uniform_weights(make_grid(10, 10), 64.0, 3);
  const ApproxShortestPaths engine(g, {});
  EXPECT_GE(engine.hopset().scales.size(), 2u);
  EXPECT_GT(engine.preprocessing_rounds(), 0u);
}

TEST(ApproxQuery, QueryAllMatchesPointQueriesFromAbove) {
  // query_all's estimate is the min over all scales; a point query may
  // stop at the first consistent scale, so query_all is never worse.
  const Graph g = with_uniform_weights(make_grid(12, 12), 1, 6, 3);
  const ApproxShortestPaths engine(g, {});
  const vid s = 0;
  const auto all = engine.query_all(s);
  for (vid t = 0; t < g.num_vertices(); t += 17) {
    const auto q = engine.query(s, t);
    if (q.estimate == kInfWeight) {
      EXPECT_EQ(all.estimate[t], kInfWeight);
    } else {
      EXPECT_LE(all.estimate[t], q.estimate + 1e-9) << t;
    }
  }
}

TEST(ApproxQuery, QueryAllIsValidUpperBoundOnExact) {
  const Graph g = with_uniform_weights(make_grid(10, 10), 1, 5, 7);
  const ApproxShortestPaths engine(g, {});
  const auto all = engine.query_all(3);
  const auto exact = dijkstra(g, 3);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (exact.dist[v] == kInfWeight) continue;
    EXPECT_GE(all.estimate[v] + 1e-6, exact.dist[v]) << v;
    EXPECT_LE(all.estimate[v], exact.dist[v] * 1.75 + 1e-6) << v;
  }
  EXPECT_EQ(all.estimate[3], 0);
}

}  // namespace
}  // namespace parsh
