// Oracle property tests: randomized constructions spot-checked against
// exact sequential oracles on seeded random instances.
//
//  * Spanner stretch vs Dijkstra: for random vertex pairs, the distance
//    inside the spanner subgraph must stay within the construction's
//    stretch guarantee of the true distance — (2k-1) exactly for the
//    greedy and Baswana-Sen baselines, the certified O(k) constant
//    (~4k+1, asserted at 6k+1 as in test_spanner.cpp) for the EST
//    construction.
//  * cluster_connectivity vs connected_components: the clustering-based
//    connectivity must label components identically to the deterministic
//    label-propagation oracle.
//
// All instances are seeded and reproducible under ctest.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "cluster/cluster_connectivity.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "random/rng.hpp"
#include "spanner/baselines.hpp"
#include "spanner/spanner.hpp"
#include "spanner/verify.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

/// `pairs` random (s, t) pairs with s != t.
std::vector<std::pair<vid, vid>> random_pairs(vid n, vid pairs, std::uint64_t seed) {
  const Rng rng(seed);
  std::vector<std::pair<vid, vid>> out;
  for (vid i = 0; out.size() < pairs; ++i) {
    const auto s = static_cast<vid>(rng.uniform_int(2 * i, n));
    const auto t = static_cast<vid>(rng.uniform_int(2 * i + 1, n));
    if (s != t) out.emplace_back(s, t);
  }
  return out;
}

/// Max over the sampled pairs of dist_spanner / dist_g, both by Dijkstra.
double sampled_pair_stretch_vs_oracle(const Graph& g, const std::vector<Edge>& edges,
                                      vid pairs, std::uint64_t seed) {
  const Graph h = spanner_graph(g, edges);
  double worst = 1.0;
  for (const auto& [s, t] : random_pairs(g.num_vertices(), pairs, seed)) {
    const weight_t exact = st_distance(g, s, t);
    if (exact == kInfWeight || exact == 0) continue;
    const weight_t in_spanner = st_distance(h, s, t);
    if (in_spanner == kInfWeight) {
      ADD_FAILURE() << "spanner disconnects " << s << "-" << t;
      continue;
    }
    worst = std::max(worst, in_spanner / exact);
  }
  return worst;
}

class SpannerStretchOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpannerStretchOracle, BaselinesWithinTwoKMinusOne) {
  const std::uint64_t seed = GetParam();
  const Graph unweighted = ensure_connected(make_random_graph(220, 900, seed));
  const Graph weighted = with_uniform_weights(unweighted, 1, 8, seed + 1);
  for (const Graph& g : {unweighted, weighted}) {
    for (const double k : {2.0, 3.0}) {
      const double bound = 2.0 * k - 1.0;
      const auto greedy = greedy_spanner(g, k);
      EXPECT_LE(sampled_pair_stretch_vs_oracle(g, greedy, 25, seed + 2),
                bound + 1e-9)
          << "greedy k=" << k;
      const auto bs = baswana_sen_spanner(g, static_cast<int>(k), seed);
      EXPECT_LE(sampled_pair_stretch_vs_oracle(g, bs, 25, seed + 3), bound + 1e-9)
          << "baswana-sen k=" << k;
    }
  }
}

TEST_P(SpannerStretchOracle, EstSpannerWithinCertifiedConstant) {
  const std::uint64_t seed = GetParam();
  const Graph g = ensure_connected(make_random_graph(220, 900, seed));
  for (const double k : {2.0, 3.0, 4.0}) {
    const SpannerResult r = unweighted_spanner(g, k, seed);
    // Lemma 3.2 certifies ~4k+1; assert the same 6k+1 slack as
    // test_spanner.cpp, but against Dijkstra on random pairs.
    EXPECT_LE(sampled_pair_stretch_vs_oracle(g, r.edges, 25, seed + 4),
              6.0 * k + 1.0)
        << "est k=" << k;
  }
}

TEST_P(SpannerStretchOracle, EstWeightedSpannerWithinCertifiedConstant) {
  const std::uint64_t seed = GetParam();
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(200, 800, seed + 9)), 1, 64, seed + 2);
  const double k = 3.0;
  const SpannerResult r = weighted_spanner(g, k, seed);
  // Theorem 3.3's constant (contraction doubles the unweighted one);
  // 12k as in test_spanner.cpp.
  EXPECT_LE(sampled_pair_stretch_vs_oracle(g, r.edges, 25, seed + 5), 12.0 * k);
}

class ConnectivityOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConnectivityOracle, ComponentsEqualLabelPropagation) {
  const std::uint64_t seed = GetParam();
  // Densities from many-components to (almost surely) connected.
  for (const eid m : {eid{150}, eid{400}, eid{1500}}) {
    const Graph g = make_random_graph(500, m, seed + m);
    const auto expected = connected_components(g);
    const auto got = cluster_connectivity(g, seed);
    EXPECT_EQ(got.component, expected) << "m=" << m;
    vid expect_num = 0;
    for (const vid c : expected) expect_num = std::max(expect_num, c + 1);
    EXPECT_EQ(got.num_components, expect_num) << "m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpannerStretchOracle,
                         ::testing::Values<std::uint64_t>(1, 2, 3));
INSTANTIATE_TEST_SUITE_P(Seeds, ConnectivityOracle,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 4));

}  // namespace
}  // namespace parsh
