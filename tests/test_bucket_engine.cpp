// Tests for the shared bucketed frontier engine: calendar ordering,
// same-bucket re-entry, overflow migration (including the case where an
// overflowed key falls inside the window after it advances), per-worker
// staging, and the CalendarIndex bookkeeping it is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"

namespace parsh {
namespace {

TEST(CalendarIndex, TracksOccupancyAndMinimum) {
  detail::CalendarIndex idx(8);
  EXPECT_TRUE(idx.window_empty());
  EXPECT_EQ(idx.min_in_window(), kNoBucket);
  idx.note_push(3);
  idx.note_push(5, 2);
  EXPECT_FALSE(idx.window_empty());
  EXPECT_EQ(idx.min_in_window(), 3u);
  EXPECT_EQ(idx.take(3), 1u);
  EXPECT_EQ(idx.base_key(), 3u);
  EXPECT_EQ(idx.min_in_window(), 5u);
  EXPECT_EQ(idx.take(5), 2u);
  EXPECT_TRUE(idx.window_empty());
}

TEST(CalendarIndex, WindowSlidesCircularly) {
  detail::CalendarIndex idx(4);
  idx.note_push(2);
  idx.take(2);  // base = 2, window [2, 6)
  EXPECT_TRUE(idx.in_window(5));
  EXPECT_FALSE(idx.in_window(6));
  EXPECT_FALSE(idx.in_window(1));
  idx.note_push(5);
  EXPECT_EQ(idx.min_in_window(), 5u);
}

TEST(CalendarIndex, RebaseAfterDrain) {
  detail::CalendarIndex idx(4);
  idx.note_push(0);
  idx.take(0);
  idx.rebase(100);
  EXPECT_EQ(idx.base_key(), 100u);
  EXPECT_TRUE(idx.in_window(103));
  idx.note_push(103);
  EXPECT_EQ(idx.min_in_window(), 103u);
}

TEST(BucketEngine, PopsBucketsInKeyOrder) {
  BucketEngine<int> eng({.span = 4});
  eng.push(5, 50);
  eng.push(1, 10);
  eng.push(5, 51);
  eng.push(3, 30);
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 1u);
  EXPECT_EQ(out, std::vector<int>{10});
  EXPECT_EQ(eng.pop_round(out), 3u);
  EXPECT_EQ(out, std::vector<int>{30});
  EXPECT_EQ(eng.pop_round(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{50, 51}));
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(eng.rounds(), 3u);
}

TEST(BucketEngine, SameBucketReentryLikeDeltaStepping) {
  // A popped bucket may be refilled at the same key (light relaxations);
  // the next pop serves the same key again.
  BucketEngine<int> eng({.span = 4});
  eng.push(2, 1);
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 2u);
  eng.push(2, 2);
  eng.push(3, 3);
  EXPECT_EQ(eng.pop_round(out), 2u);
  EXPECT_EQ(out, std::vector<int>{2});
  EXPECT_EQ(eng.pop_round(out), 3u);
}

TEST(BucketEngine, FarKeysOverflowAndComeBackInOrder) {
  BucketEngine<int> eng({.span = 2});
  eng.push(0, 0);
  eng.push(1000, 1);
  eng.push(500000, 2);
  eng.push(1001, 3);
  std::vector<int> out;
  std::vector<std::uint64_t> keys;
  std::uint64_t k;
  while ((k = eng.pop_round(out)) != kNoBucket) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, 1000, 1001, 500000}));
}

TEST(BucketEngine, OverflowKeyOvertakenByWindowIsStillServedInOrder) {
  // Regression: an item overflows while the window sits at an earlier
  // position; once pops advance the window over its key the item must be
  // served (and before any larger in-window key), not orphaned.
  BucketEngine<int> eng({.span = 4});
  eng.push(0, 0);
  eng.push(6, 60);  // beyond [0, 4): overflows
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 0u);
  eng.push(3, 30);
  EXPECT_EQ(eng.pop_round(out), 3u);  // window now [3, 7): 6 falls inside
  eng.push(5, 50);                    // in-window key larger than 5? no: 5 < 6
  EXPECT_EQ(eng.pop_round(out), 5u);
  EXPECT_EQ(out, std::vector<int>{50});
  EXPECT_EQ(eng.pop_round(out), 6u);
  EXPECT_EQ(out, std::vector<int>{60});
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
}

TEST(BucketEngine, WorkerStagingIsCompactedAtRoundBoundaries) {
  BucketEngine<std::size_t> eng({.span = 8});
  parallel_for(0, 10000, [&](std::size_t i) {
    eng.push_from_worker(1 + (i % 3), i);
  });
  std::vector<std::size_t> out;
  std::size_t total = 0;
  EXPECT_EQ(eng.pop_round(out), 1u);
  total += out.size();
  for (std::size_t v : out) EXPECT_EQ(v % 3, 0u);
  EXPECT_EQ(eng.pop_round(out), 2u);
  total += out.size();
  EXPECT_EQ(eng.pop_round(out), 3u);
  total += out.size();
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(eng.pushed(), 10000u);
}

TEST(BucketEngine, MinKeyPeeksWithoutPopping) {
  BucketEngine<int> eng({.span = 4});
  EXPECT_EQ(eng.min_key(), kNoBucket);
  eng.push(7, 1);
  EXPECT_EQ(eng.min_key(), 7u);
  EXPECT_EQ(eng.min_key(), 7u);  // idempotent
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 7u);
  EXPECT_EQ(eng.min_key(), kNoBucket);
}

TEST(BucketEngine, InterleavedPushPopKeepsMonotoneKeys) {
  // Dial-style usage: every emission lands at pop key + weight, weights in
  // [1, 9]; popped keys must be non-decreasing and every item served.
  BucketEngine<int> eng({.span = 4});  // span smaller than max weight
  eng.push(0, 0);
  std::uint64_t last = 0;
  int served = 0;
  std::vector<int> out;
  std::uint64_t k;
  while ((k = eng.pop_round(out)) != kNoBucket) {
    EXPECT_GE(k, last);
    last = k;
    for (int item : out) {
      ++served;
      if (item < 200) {
        eng.push(k + 1 + (item * 7) % 9, item + 1);
        eng.push(k + 1 + (item * 3) % 9, item + 201);
      }
    }
  }
  EXPECT_GT(served, 200);
}

}  // namespace
}  // namespace parsh
