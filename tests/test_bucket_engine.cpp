// Tests for the shared bucketed frontier engine: calendar ordering,
// same-bucket re-entry, overflow migration (including the case where an
// overflowed key falls inside the window after it advances), per-worker
// staging, and the CalendarIndex bookkeeping it is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"

namespace parsh {
namespace {

TEST(CalendarIndex, TracksOccupancyAndMinimum) {
  detail::CalendarIndex idx(8);
  EXPECT_TRUE(idx.window_empty());
  EXPECT_EQ(idx.min_in_window(), kNoBucket);
  idx.note_push(3);
  idx.note_push(5, 2);
  EXPECT_FALSE(idx.window_empty());
  EXPECT_EQ(idx.min_in_window(), 3u);
  EXPECT_EQ(idx.take(3), 1u);
  EXPECT_EQ(idx.base_key(), 3u);
  EXPECT_EQ(idx.min_in_window(), 5u);
  EXPECT_EQ(idx.take(5), 2u);
  EXPECT_TRUE(idx.window_empty());
}

TEST(CalendarIndex, WindowSlidesCircularly) {
  detail::CalendarIndex idx(4);
  idx.note_push(2);
  idx.take(2);  // base = 2, window [2, 6)
  EXPECT_TRUE(idx.in_window(5));
  EXPECT_FALSE(idx.in_window(6));
  EXPECT_FALSE(idx.in_window(1));
  idx.note_push(5);
  EXPECT_EQ(idx.min_in_window(), 5u);
}

TEST(CalendarIndex, RebaseAfterDrain) {
  detail::CalendarIndex idx(4);
  idx.note_push(0);
  idx.take(0);
  idx.rebase(100);
  EXPECT_EQ(idx.base_key(), 100u);
  EXPECT_TRUE(idx.in_window(103));
  idx.note_push(103);
  EXPECT_EQ(idx.min_in_window(), 103u);
}

TEST(CalendarIndex, MinInWindowHintSkipsKnownEmptyPrefix) {
  // The rotating next-nonempty hint must stay EXACT through every
  // mutation: pushes below it lower it, take() shifts it with the base,
  // rebase() resets it to "all empty". Wrong in either direction it
  // would either rescan O(span) or skip a nonempty slot.
  detail::CalendarIndex idx(64);
  idx.note_push(50);
  EXPECT_EQ(idx.min_in_window(), 50u);  // caches hint at offset 50
  idx.note_push(7);                     // push BELOW the cached hint
  EXPECT_EQ(idx.min_in_window(), 7u);   // hint must have been invalidated
  EXPECT_EQ(idx.take(7), 1u);
  EXPECT_EQ(idx.min_in_window(), 50u);  // hint rebased by take, still exact
  idx.note_push(52, 2);
  EXPECT_EQ(idx.take(50), 1u);
  EXPECT_EQ(idx.min_in_window(), 52u);
  EXPECT_EQ(idx.take(52), 2u);
  EXPECT_EQ(idx.min_in_window(), kNoBucket);
  idx.rebase(1000);
  idx.note_push(1001);
  EXPECT_EQ(idx.min_in_window(), 1001u);
  // Repeated queries with no mutation in between resume from the hint.
  EXPECT_EQ(idx.min_in_window(), 1001u);
}

TEST(BucketEngine, PopsBucketsInKeyOrder) {
  BucketEngine<int> eng({.span = 4});
  eng.push(5, 50);
  eng.push(1, 10);
  eng.push(5, 51);
  eng.push(3, 30);
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 1u);
  EXPECT_EQ(out, std::vector<int>{10});
  EXPECT_EQ(eng.pop_round(out), 3u);
  EXPECT_EQ(out, std::vector<int>{30});
  EXPECT_EQ(eng.pop_round(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{50, 51}));
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(eng.rounds(), 3u);
}

TEST(BucketEngine, SameBucketReentryLikeDeltaStepping) {
  // A popped bucket may be refilled at the same key (light relaxations);
  // the next pop serves the same key again.
  BucketEngine<int> eng({.span = 4});
  eng.push(2, 1);
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 2u);
  eng.push(2, 2);
  eng.push(3, 3);
  EXPECT_EQ(eng.pop_round(out), 2u);
  EXPECT_EQ(out, std::vector<int>{2});
  EXPECT_EQ(eng.pop_round(out), 3u);
}

TEST(BucketEngine, FarKeysOverflowAndComeBackInOrder) {
  BucketEngine<int> eng({.span = 2});
  eng.push(0, 0);
  eng.push(1000, 1);
  eng.push(500000, 2);
  eng.push(1001, 3);
  std::vector<int> out;
  std::vector<std::uint64_t> keys;
  std::uint64_t k;
  while ((k = eng.pop_round(out)) != kNoBucket) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, 1000, 1001, 500000}));
}

TEST(BucketEngine, OverflowKeyOvertakenByWindowIsStillServedInOrder) {
  // Regression: an item overflows while the window sits at an earlier
  // position; once pops advance the window over its key the item must be
  // served (and before any larger in-window key), not orphaned.
  BucketEngine<int> eng({.span = 4});
  eng.push(0, 0);
  eng.push(6, 60);  // beyond [0, 4): overflows
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 0u);
  eng.push(3, 30);
  EXPECT_EQ(eng.pop_round(out), 3u);  // window now [3, 7): 6 falls inside
  eng.push(5, 50);                    // in-window key larger than 5? no: 5 < 6
  EXPECT_EQ(eng.pop_round(out), 5u);
  EXPECT_EQ(out, std::vector<int>{50});
  EXPECT_EQ(eng.pop_round(out), 6u);
  EXPECT_EQ(out, std::vector<int>{60});
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
}

TEST(BucketEngine, WorkerStagingIsCompactedAtRoundBoundaries) {
  BucketEngine<std::size_t> eng({.span = 8});
  parallel_for(0, 10000, [&](std::size_t i) {
    eng.push_from_worker(1 + (i % 3), i);
  });
  std::vector<std::size_t> out;
  std::size_t total = 0;
  EXPECT_EQ(eng.pop_round(out), 1u);
  total += out.size();
  for (std::size_t v : out) EXPECT_EQ(v % 3, 0u);
  EXPECT_EQ(eng.pop_round(out), 2u);
  total += out.size();
  EXPECT_EQ(eng.pop_round(out), 3u);
  total += out.size();
  EXPECT_EQ(eng.pop_round(out), kNoBucket);
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(eng.pushed(), 10000u);
}

TEST(BucketEngine, MinKeyPeeksWithoutPopping) {
  BucketEngine<int> eng({.span = 4});
  EXPECT_EQ(eng.min_key(), kNoBucket);
  eng.push(7, 1);
  EXPECT_EQ(eng.min_key(), 7u);
  EXPECT_EQ(eng.min_key(), 7u);  // idempotent
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 7u);
  EXPECT_EQ(eng.min_key(), kNoBucket);
}

TEST(BucketEngine, InterleavedPushPopKeepsMonotoneKeys) {
  // Dial-style usage: every emission lands at pop key + weight, weights in
  // [1, 9]; popped keys must be non-decreasing and every item served.
  BucketEngine<int> eng({.span = 4});  // span smaller than max weight
  eng.push(0, 0);
  std::uint64_t last = 0;
  int served = 0;
  std::vector<int> out;
  std::uint64_t k;
  while ((k = eng.pop_round(out)) != kNoBucket) {
    EXPECT_GE(k, last);
    last = k;
    for (int item : out) {
      ++served;
      if (item < 200) {
        eng.push(k + 1 + (item * 7) % 9, item + 1);
        eng.push(k + 1 + (item * 3) % 9, item + 201);
      }
    }
  }
  EXPECT_GT(served, 200);
}

TEST(BucketEngine, ResetEmptiesButKeepsServing) {
  BucketEngine<int> eng({.span = 4});
  eng.push(9, 90);
  eng.push(300, 1);  // overflow
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 9u);
  eng.reset();
  EXPECT_EQ(eng.min_key(), kNoBucket);  // overflow cleared too
  // The window is back at base 0: small keys are accepted again.
  eng.push(2, 20);
  eng.push(0, 0);
  EXPECT_EQ(eng.pop_round(out), 0u);
  EXPECT_EQ(out, std::vector<int>{0});
  EXPECT_EQ(eng.pop_round(out), 2u);
  EXPECT_EQ(out, std::vector<int>{20});
}

TEST(BucketEngine, StartAtRotatesEmptyWindow) {
  BucketEngine<int> eng({.span = 8});
  eng.start_at(1000);
  eng.push(1003, 3);
  eng.push(1000, 0);
  std::vector<int> out;
  EXPECT_EQ(eng.pop_round(out), 1000u);
  EXPECT_EQ(eng.pop_round(out), 1003u);
  eng.reset();
  eng.push(1, 1);  // reset returns the base to 0
  EXPECT_EQ(eng.pop_round(out), 1u);
}

TEST(BucketEngine, WarmIdenticalRerunDoesNotAllocate) {
  // Drive the same push/pop schedule twice through one engine; the second
  // pass must reuse every buffer the first pass grew.
  BucketEngine<int> eng({.span = 8});
  std::vector<int> out;  // outlives the runs, like a workspace's props
  auto run = [&] {
    eng.reset();
    for (int i = 0; i < 500; ++i) eng.push(static_cast<std::uint64_t>(i % 6), i);
    int served = 0;
    while (eng.pop_round(out) != kNoBucket) served += static_cast<int>(out.size());
    return served;
  };
  EXPECT_EQ(run(), 500);
  const std::uint64_t warm = eng.alloc_events();
  EXPECT_GT(warm, 0u);
  EXPECT_EQ(run(), 500);
  EXPECT_EQ(eng.alloc_events(), warm);  // zero allocations when warm
  EXPECT_EQ(run(), 500);
  EXPECT_EQ(eng.alloc_events(), warm);
}

TEST(BucketEngine, PopRoundLeavesSlotCapacityInPlace) {
  // The per-slot high-water property behind the warm-run guarantee: a
  // smaller warm run whose buckets stay under the first run's per-bucket
  // demand allocates nothing, even with a different key profile.
  BucketEngine<int> eng({.span = 8});
  std::vector<int> out;
  eng.reset();
  for (int i = 0; i < 400; ++i) eng.push(static_cast<std::uint64_t>(i % 5), i);
  while (eng.pop_round(out) != kNoBucket) {
  }
  const std::uint64_t warm = eng.alloc_events();
  eng.reset();
  for (int i = 0; i < 60; ++i) eng.push(static_cast<std::uint64_t>(i % 3), i);
  while (eng.pop_round(out) != kNoBucket) {
  }
  EXPECT_EQ(eng.alloc_events(), warm);
}

TEST(PackedWord, OrderMatchesKeyViaLexicographic) {
  // The packed word's integer order must equal lexicographic order on
  // (key, via) with kNoVertex largest — the exactness the packed fast
  // path's bit-identity rests on.
  for (const std::uint64_t t : {std::uint64_t{4096}, std::uint64_t{1} << 20}) {
    ASSERT_TRUE(packed_round_fits(t));
    const std::uint64_t base = double_order_bits(static_cast<double>(t));
    const double lo = static_cast<double>(t);
    std::vector<std::pair<double, vid>> items;
    for (int i = 0; i < 40; ++i) {
      const double key = lo + 0.9999 * static_cast<double>((i * 29) % 37) / 37.0;
      items.emplace_back(key, static_cast<vid>((i * 13) % 7));
      items.emplace_back(key, kNoVertex);
    }
    for (const auto& [ka, va] : items) {
      for (const auto& [kb, vb] : items) {
        const bool lex =
            ka < kb ||
            (ka == kb && (va == vb ? false
                                   : vb == kNoVertex || (va != kNoVertex && va < vb)));
        EXPECT_EQ(pack_key_via(ka, base, va) < pack_key_via(kb, base, vb), lex)
            << ka << "/" << va << " vs " << kb << "/" << vb;
      }
    }
  }
}

TEST(PackedWord, RoundFitsExactlyAboveTwoToTheTwelve) {
  // [t, t+1) holds 2^(52-e) representable doubles for t in [2^e, 2^(e+1));
  // 40 bits of quantized key therefore require t >= 2^12.
  EXPECT_FALSE(packed_round_fits(0));
  EXPECT_FALSE(packed_round_fits(1));
  EXPECT_FALSE(packed_round_fits(4095));
  EXPECT_TRUE(packed_round_fits(4096));
  EXPECT_TRUE(packed_round_fits(8191));
  EXPECT_TRUE(packed_round_fits(8192));
  EXPECT_TRUE(packed_round_fits((std::uint64_t{1} << 52) - 1));
  EXPECT_FALSE(packed_round_fits(std::uint64_t{1} << 52));
}

}  // namespace
}  // namespace parsh
