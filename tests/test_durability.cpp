// Tests for the durability subsystem: WAL codec and torn-tail semantics,
// checkpoint manifest integrity, atomic checkpoint publication (crash at
// every seam), exactly-once dedup, and the crash-recovery differential
// harness — a recovered engine must be bit-identical (graph digest, query
// digests, client table) to a twin that applied the same acked batches
// and never crashed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "graph/digest.hpp"
#include "graph/generators.hpp"
#include "random/rng.hpp"
#include "server/checkpoint.hpp"
#include "server/fault_injector.hpp"
#include "server/wal.hpp"
#include "sssp/dynamic_approx.hpp"

namespace parsh::server {
namespace {

// ---- fixtures ---------------------------------------------------------------

std::string temp_dir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp && *tmp ? tmp : "/tmp") + "/parsh_durability_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

Graph base_graph() {
  return with_uniform_weights(ensure_connected(make_random_graph(100, 300, 11)),
                              1, 9, 42);
}

DynamicApproxShortestPaths::Params dyn_params() {
  DynamicApproxShortestPaths::Params p;
  p.epsilon = 0.5;
  p.hopset.k_hops = 12;
  return p;
}

DurabilityOptions dur_options(const std::string& dir) {
  DurabilityOptions opt;
  opt.dir = dir;
  opt.wal.fsync = FsyncPolicy::kOff;  // tests exercise policy separately
  return opt;
}

WalRecord make_record(std::uint64_t epoch, std::uint64_t client,
                      std::uint64_t seq) {
  WalRecord rec;
  rec.epoch = epoch;
  rec.client_id = client;
  rec.sequence = seq;
  rec.result.status = StatusCode::kOk;
  rec.result.epoch = epoch;
  rec.result.rebuild_ms = 1.5 * static_cast<double>(epoch);
  rec.result.dirty_scales = 2;
  rec.result.total_scales = 5;
  rec.result.dirty_clusters = 7;
  rec.result.total_clusters = 30;
  rec.result.inserted = 1 + epoch % 3;
  rec.result.noops = epoch % 2;
  rec.delta.insert.push_back({static_cast<vid>(epoch % 50),
                              static_cast<vid>(50 + epoch % 50),
                              1.0 + static_cast<double>(epoch)});
  if (epoch % 2 == 0) {
    rec.delta.remove.push_back({3, 4, 1.0});
  }
  return rec;
}

/// Deterministic update batch `seq` against a 100-vertex graph.
UpdateRequest make_batch(std::uint64_t seed, std::uint64_t seq,
                         std::uint64_t client) {
  Rng rng = Rng(seed).split(0xba7c).split(seq);
  UpdateRequest req;
  req.client_id = client;
  req.sequence = seq;
  std::uint64_t d = 0;
  for (int i = 0; i < 3; ++i) {
    Edge e;
    e.u = static_cast<vid>(rng.uniform_int(d++, 100));
    e.v = static_cast<vid>(rng.uniform_int(d++, 100));
    e.w = static_cast<weight_t>(1 + rng.uniform_int(d++, 9));
    if (e.u != e.v) req.insert.push_back(e);
  }
  return req;
}

GraphDelta to_delta(const UpdateRequest& req) {
  GraphDelta delta;
  delta.insert = req.insert;
  delta.remove = req.remove;
  return delta;
}

/// Digest of six fixed queries against the engine's current snapshot.
std::uint64_t query_digest(Durability& d) {
  auto snap = d.engine().snapshot();
  std::uint64_t h = kFnv64Offset;
  Rng rng(0xd16e57);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * i, 100));
    const vid t = static_cast<vid>(rng.uniform_int(2 * i + 1, 100));
    h = fnv1a_f64(h, snap->engine.query(s, t).estimate);
  }
  return h;
}

void expect_tables_equal(const ClientTable& a, const ClientTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [client, ea] : a) {
    auto it = b.find(client);
    ASSERT_NE(it, b.end()) << "client " << client << " missing";
    const ClientEntry& eb = it->second;
    EXPECT_EQ(ea.sequence, eb.sequence);
    EXPECT_EQ(ea.result.status, eb.result.status);
    EXPECT_EQ(ea.result.epoch, eb.result.epoch);
    EXPECT_EQ(ea.result.inserted, eb.result.inserted);
    EXPECT_EQ(ea.result.removed, eb.result.removed);
    EXPECT_EQ(ea.result.reweighted, eb.result.reweighted);
    EXPECT_EQ(ea.result.noops, eb.result.noops);
    EXPECT_EQ(ea.result.dirty_scales, eb.result.dirty_scales);
  }
}

// ---- WAL codec --------------------------------------------------------------

TEST(WalCodec, RecordRoundTripsExactly) {
  const WalRecord rec = make_record(7, 0xfeedface, 12);
  std::vector<std::uint8_t> bytes;
  encode_wal_record(bytes, rec);

  WalRecord got;
  ASSERT_TRUE(decode_wal_record(bytes.data(), bytes.size(), &got).ok());
  EXPECT_EQ(got.epoch, rec.epoch);
  EXPECT_EQ(got.client_id, rec.client_id);
  EXPECT_EQ(got.sequence, rec.sequence);
  EXPECT_EQ(got.result.status, rec.result.status);
  EXPECT_EQ(got.result.epoch, rec.result.epoch);
  EXPECT_DOUBLE_EQ(got.result.rebuild_ms, rec.result.rebuild_ms);
  EXPECT_EQ(got.result.dirty_scales, rec.result.dirty_scales);
  EXPECT_EQ(got.result.total_clusters, rec.result.total_clusters);
  EXPECT_EQ(got.result.inserted, rec.result.inserted);
  EXPECT_EQ(got.result.noops, rec.result.noops);
  EXPECT_EQ(got.result.id, 0u);  // frame id is never persisted
  ASSERT_EQ(got.delta.insert.size(), rec.delta.insert.size());
  EXPECT_EQ(got.delta.insert[0].u, rec.delta.insert[0].u);
  EXPECT_EQ(got.delta.insert[0].v, rec.delta.insert[0].v);
  EXPECT_DOUBLE_EQ(got.delta.insert[0].w, rec.delta.insert[0].w);
  ASSERT_EQ(got.delta.remove.size(), rec.delta.remove.size());

  // Truncation at every boundary is a typed decode failure, never a read
  // past the buffer.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_wal_record(bytes.data(), cut, &got).ok()) << cut;
  }
  // Trailing garbage is corruption, not slack.
  bytes.push_back(0);
  EXPECT_FALSE(decode_wal_record(bytes.data(), bytes.size(), &got).ok());
}

TEST(WalCodec, SegmentNamesRoundTripAndRejectImpostors) {
  const std::string name = wal_segment_name(0xabcdef0123456789ULL);
  std::uint64_t epoch = 0;
  ASSERT_TRUE(parse_wal_segment_name(name, &epoch));
  EXPECT_EQ(epoch, 0xabcdef0123456789ULL);
  EXPECT_FALSE(parse_wal_segment_name("wal-xyz.log", &epoch));
  EXPECT_FALSE(parse_wal_segment_name("wal-0000000000000001.txt", &epoch));
  EXPECT_FALSE(parse_wal_segment_name("wal-001.log", &epoch));
  EXPECT_FALSE(parse_wal_segment_name("ckpt-0000000000000001.pcsr", &epoch));
}

// ---- writer + scanner -------------------------------------------------------

TEST(WalWriter, AppendScanRoundTripAcrossFsyncPolicies) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kEveryBatch, FsyncPolicy::kEveryN, FsyncPolicy::kOff}) {
    const std::string dir =
        temp_dir(std::string("writer_") + fsync_policy_name(policy));
    std::filesystem::create_directories(dir);
    WalOptions opt;
    opt.fsync = policy;
    opt.fsync_every_n = 3;
    WalWriter w;
    ASSERT_TRUE(w.open(dir, 1, opt).ok());
    for (std::uint64_t e = 1; e <= 7; ++e) {
      ASSERT_TRUE(w.append(make_record(e, 9, e)).ok());
    }
    ASSERT_TRUE(w.sync().ok());
    if (policy == FsyncPolicy::kEveryBatch) {
      EXPECT_GE(w.fsyncs(), 7u);
    } else if (policy == FsyncPolicy::kEveryN) {
      // ceil(7/3) policy syncs plus the explicit one.
      EXPECT_GE(w.fsyncs(), 3u);
      EXPECT_LT(w.fsyncs(), 7u);
    }
    w.close();

    WalScan scan;
    ASSERT_TRUE(scan_wal_segment(dir + "/" + wal_segment_name(1), &scan).ok());
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.first_epoch, 1u);
    ASSERT_EQ(scan.records.size(), 7u);
    for (std::uint64_t e = 1; e <= 7; ++e) {
      EXPECT_EQ(scan.records[e - 1].epoch, e);
      EXPECT_EQ(scan.records[e - 1].sequence, e);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(WalWriter, RotateSealsAndStartsFreshSegment) {
  const std::string dir = temp_dir("rotate");
  std::filesystem::create_directories(dir);
  WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
  ASSERT_TRUE(w.append(make_record(1, 9, 1)).ok());
  ASSERT_TRUE(w.append(make_record(2, 9, 2)).ok());
  ASSERT_TRUE(w.rotate(3).ok());
  ASSERT_TRUE(w.append(make_record(3, 9, 3)).ok());
  w.close();

  const auto segs = list_wal_segments(dir);
  ASSERT_EQ(segs.size(), 2u);
  WalScan s1, s2;
  ASSERT_TRUE(scan_wal_segment(segs[0], &s1).ok());
  ASSERT_TRUE(scan_wal_segment(segs[1], &s2).ok());
  EXPECT_EQ(s1.first_epoch, 1u);
  EXPECT_EQ(s1.records.size(), 2u);
  EXPECT_EQ(s2.first_epoch, 3u);
  EXPECT_EQ(s2.records.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalScanner, TornTailIsDetectedAtEveryCutAndTruncatesClean) {
  const std::string dir = temp_dir("torn");
  std::filesystem::create_directories(dir);
  WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
  ASSERT_TRUE(w.append(make_record(1, 9, 1)).ok());
  const std::uint64_t one_record = w.bytes_appended();
  ASSERT_TRUE(w.append(make_record(2, 9, 2)).ok());
  w.close();
  const std::string path = dir + "/" + wal_segment_name(1);
  const auto full = std::filesystem::file_size(path);
  const std::uint64_t first_end = kWalSegmentHeaderBytes + one_record;

  // Cut the file anywhere strictly inside record 2: the scan must keep
  // exactly record 1 and report the tail torn.
  for (std::uint64_t cut = first_end + 1; cut < full; cut += 7) {
    ASSERT_TRUE(truncate_wal_segment(path, cut).ok());
    WalScan scan;
    ASSERT_TRUE(scan_wal_segment(path, &scan).ok());
    EXPECT_TRUE(scan.torn) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first_end);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].epoch, 1u);

    // Recovery's fix: truncate to the valid prefix; rescans clean.
    ASSERT_TRUE(truncate_wal_segment(path, scan.valid_bytes).ok());
    WalScan clean;
    ASSERT_TRUE(scan_wal_segment(path, &clean).ok());
    EXPECT_FALSE(clean.torn);
    ASSERT_EQ(clean.records.size(), 1u);

    // Restore record 2 for the next cut by re-appending it.
    WalWriter w2;
    ASSERT_TRUE(w2.open(dir, 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
    ASSERT_TRUE(w2.append(make_record(2, 9, 2)).ok());
    w2.close();
  }
  std::filesystem::remove_all(dir);
}

TEST(WalScanner, MidFileCorruptionStopsTheScanThere) {
  const std::string dir = temp_dir("midfile");
  std::filesystem::create_directories(dir);
  WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
  ASSERT_TRUE(w.append(make_record(1, 9, 1)).ok());
  const std::uint64_t one_record = w.bytes_appended();
  ASSERT_TRUE(w.append(make_record(2, 9, 2)).ok());
  ASSERT_TRUE(w.append(make_record(3, 9, 3)).ok());
  w.close();
  const std::string path = dir + "/" + wal_segment_name(1);

  // Flip one payload byte inside record 2.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long off = static_cast<long>(kWalSegmentHeaderBytes + one_record +
                                       kWalRecordHeaderBytes + 10);
    std::fseek(f, off, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, off, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  WalScan scan;
  ASSERT_TRUE(scan_wal_segment(path, &scan).ok());
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.torn_reason, "record checksum mismatch");
  ASSERT_EQ(scan.records.size(), 1u);  // record 3 is unreachable
  EXPECT_EQ(scan.records[0].epoch, 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalScanner, CorruptHeaderIsAnErrorWithZeroValidBytes) {
  const std::string dir = temp_dir("header");
  std::filesystem::create_directories(dir);
  WalWriter w;
  ASSERT_TRUE(w.open(dir, 5, WalOptions{FsyncPolicy::kOff, 8}).ok());
  ASSERT_TRUE(w.append(make_record(5, 9, 1)).ok());
  w.close();
  const std::string path = dir + "/" + wal_segment_name(5);
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    std::fputc('X', f);  // magic byte 0
    std::fclose(f);
  }
  WalScan scan;
  EXPECT_EQ(scan_wal_segment(path, &scan).code, StatusCode::kInvalidArgument);
  EXPECT_EQ(scan.valid_bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST(WalWriter, InjectedTearFailsTheAppendThenHeals) {
  const std::string dir = temp_dir("tear");
  std::filesystem::create_directories(dir);
  FaultPlan plan;
  plan.wal_append_tear = 1.0;  // first append tears
  FaultInjector injector(3, plan);

  WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
  const Status s = w.append(make_record(1, 9, 1), &injector);
  EXPECT_EQ(s.code, StatusCode::kUnavailable);
  EXPECT_EQ(w.records_appended(), 0u);

  // Without the injector the same record commits — the torn prefix was
  // healed, not appended after.
  ASSERT_TRUE(w.append(make_record(1, 9, 1)).ok());
  w.close();
  WalScan scan;
  ASSERT_TRUE(scan_wal_segment(dir + "/" + wal_segment_name(1), &scan).ok());
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(WalWriter, InjectedFsyncFailureRollsTheRecordBackOut) {
  const std::string dir = temp_dir("fsyncfail");
  std::filesystem::create_directories(dir);
  FaultPlan plan;
  plan.wal_fsync_fail = 1.0;
  FaultInjector injector(3, plan);

  WalWriter w;
  ASSERT_TRUE(w.open(dir, 1, WalOptions{FsyncPolicy::kEveryBatch, 8}).ok());
  EXPECT_EQ(w.append(make_record(1, 9, 1), &injector).code,
            StatusCode::kUnavailable);
  w.close();

  // The un-acknowledged record must NOT be replayable: a crashed client
  // will retry it under the same sequence, and both landing would
  // double-apply.
  WalScan scan;
  ASSERT_TRUE(scan_wal_segment(dir + "/" + wal_segment_name(1), &scan).ok());
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_FALSE(scan.torn);
  std::filesystem::remove_all(dir);
}

// ---- checkpoint manifest ----------------------------------------------------

TEST(Checkpoint, ManifestRoundTripsAndDetectsEveryFlippedByte) {
  Manifest m;
  m.epoch = 42;
  m.wal_first_epoch = 43;
  m.table[7] = {3, make_record(40, 7, 3).result};
  m.table[0xfeed] = {9, make_record(42, 0xfeed, 9).result};

  std::vector<std::uint8_t> bytes;
  encode_manifest(bytes, m);
  Manifest got;
  ASSERT_TRUE(decode_manifest(bytes.data(), bytes.size(), &got).ok());
  EXPECT_EQ(got.epoch, 42u);
  EXPECT_EQ(got.wal_first_epoch, 43u);
  expect_tables_equal(got.table, m.table);

  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_FALSE(decode_manifest(bad.data(), bad.size(), &got).ok())
        << "flip at byte " << i << " undetected";
  }
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_manifest(bytes.data(), cut, &got).ok());
  }
}

TEST(Checkpoint, WriteLoadRoundTripAndGarbageCollection) {
  const std::string dir = temp_dir("ckpt_rt");
  std::filesystem::create_directories(dir);
  const Graph g = base_graph();

  for (std::uint64_t e : {4u, 8u, 12u}) {
    Manifest m;
    m.epoch = e;
    m.wal_first_epoch = e + 1;
    m.table[1] = {e, make_record(e, 1, e).result};
    ASSERT_TRUE(write_checkpoint(dir, g, m).ok());
    // Give each retained checkpoint a WAL segment so GC has a horizon.
    WalWriter w;
    ASSERT_TRUE(w.open(dir, e + 1, WalOptions{FsyncPolicy::kOff, 8}).ok());
    ASSERT_TRUE(w.append(make_record(e + 1, 1, e + 1)).ok());
    w.close();
  }

  LoadedCheckpoint loaded;
  ASSERT_TRUE(load_newest_checkpoint(dir, &loaded).ok());
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.manifest.epoch, 12u);
  EXPECT_EQ(loaded.rejected, 0u);
  EXPECT_EQ(graph_digest(loaded.graph), graph_digest(g));

  collect_checkpoint_garbage(dir, /*keep=*/2);
  LoadedCheckpoint after;
  ASSERT_TRUE(load_newest_checkpoint(dir, &after).ok());
  EXPECT_EQ(after.manifest.epoch, 12u);
  // Epoch-4 checkpoint is gone; its manifest no longer resolves.
  std::uint64_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::uint64_t e = 0;
    if (parse_checkpoint_manifest_name(entry.path().filename().string(), &e)) {
      ++count;
      EXPECT_GE(e, 8u);
    }
  }
  EXPECT_EQ(count, 2u);
  // The wal-5 segment fed only the collected checkpoint: collectable. The
  // newest segment always survives.
  const auto segs = list_wal_segments(dir);
  ASSERT_FALSE(segs.empty());
  std::uint64_t first = 0;
  ASSERT_TRUE(parse_wal_segment_name(
      std::filesystem::path(segs.front()).filename().string(), &first));
  EXPECT_GE(first, 9u);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptNewestFallsBackToOlder) {
  const std::string dir = temp_dir("ckpt_fallback");
  std::filesystem::create_directories(dir);
  const Graph g = base_graph();
  for (std::uint64_t e : {3u, 6u}) {
    Manifest m;
    m.epoch = e;
    m.wal_first_epoch = e + 1;
    ASSERT_TRUE(write_checkpoint(dir, g, m).ok());
  }
  // Corrupt the newest manifest.
  {
    const std::string path = dir + "/" + checkpoint_manifest_name(6);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 18, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 18, SEEK_SET);
    std::fputc(c ^ 0x80, f);
    std::fclose(f);
  }
  LoadedCheckpoint loaded;
  ASSERT_TRUE(load_newest_checkpoint(dir, &loaded).ok());
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.manifest.epoch, 3u);
  EXPECT_EQ(loaded.rejected, 1u);

  // Corrupt the older one's GRAPH file too: nothing valid remains.
  {
    const std::string path = dir + "/" + checkpoint_graph_name(3);
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 100, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 100, SEEK_SET);
    std::fputc(c ^ 0x80, f);
    std::fclose(f);
  }
  LoadedCheckpoint none;
  ASSERT_TRUE(load_newest_checkpoint(dir, &none).ok());
  EXPECT_FALSE(none.found);
  EXPECT_EQ(none.rejected, 2u);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, InjectedWriteAndRenameFailuresLeaveNoPartialCheckpoint) {
  const std::string dir = temp_dir("ckpt_fault");
  std::filesystem::create_directories(dir);
  const Graph g = base_graph();
  Manifest m;
  m.epoch = 5;
  m.wal_first_epoch = 6;

  for (const bool rename_fault : {false, true}) {
    FaultPlan plan;
    if (rename_fault) {
      plan.checkpoint_rename_fail = 1.0;
    } else {
      plan.checkpoint_write_fail = 1.0;
    }
    FaultInjector injector(3, plan);
    EXPECT_EQ(write_checkpoint(dir, g, m, &injector).code,
              StatusCode::kUnavailable);
    // Failed checkpoints clean up: no manifest, no graph, no temp files.
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++files;
    }
    EXPECT_EQ(files, 0u) << (rename_fault ? "rename" : "write");
  }
  // And the same call without faults publishes.
  ASSERT_TRUE(write_checkpoint(dir, g, m).ok());
  LoadedCheckpoint loaded;
  ASSERT_TRUE(load_newest_checkpoint(dir, &loaded).ok());
  EXPECT_TRUE(loaded.found);
  std::filesystem::remove_all(dir);
}

// ---- exactly-once -----------------------------------------------------------

TEST(Durability, DuplicateSequencesReplayTheOriginalVerdict) {
  const std::string dir = temp_dir("dedup");
  std::unique_ptr<Durability> d;
  ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), dur_options(dir), &d)
                  .ok());

  UpdateRequest req = make_batch(1, 1, 0xc11e27);
  UpdateResponse first;
  d->handle_update(req, &first);
  ASSERT_EQ(first.status, StatusCode::kOk);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.flags & kUpdateFlagDuplicate, 0u);

  // Same sequence, even with a DIFFERENT delta: the stored verdict comes
  // back, nothing applies.
  UpdateRequest dup = make_batch(99, 1, 0xc11e27);
  UpdateResponse second;
  d->handle_update(dup, &second);
  EXPECT_EQ(second.status, StatusCode::kOk);
  EXPECT_NE(second.flags & kUpdateFlagDuplicate, 0u);
  EXPECT_EQ(second.epoch, first.epoch);
  EXPECT_EQ(second.inserted, first.inserted);
  EXPECT_EQ(d->engine().epoch(), 1u);
  EXPECT_EQ(d->wal_records(), 1u);

  // client_id 0 opts out of dedup: every such batch applies.
  UpdateRequest unkeyed = make_batch(2, 0, 0);
  UpdateResponse third;
  d->handle_update(unkeyed, &third);
  EXPECT_EQ(third.status, StatusCode::kOk);
  EXPECT_EQ(third.flags & kUpdateFlagDuplicate, 0u);
  EXPECT_EQ(third.epoch, 2u);
  std::filesystem::remove_all(dir);
}

TEST(Durability, SequenceBelowHighWaterIsRejected) {
  const std::string dir = temp_dir("below_hw");
  std::unique_ptr<Durability> d;
  ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), dur_options(dir), &d)
                  .ok());
  UpdateResponse resp;
  d->handle_update(make_batch(1, 5, 77), &resp);
  ASSERT_EQ(resp.status, StatusCode::kOk);  // gaps are fine (burned retries)
  d->handle_update(make_batch(1, 3, 77), &resp);
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
  EXPECT_EQ(d->engine().epoch(), 1u);
  std::filesystem::remove_all(dir);
}

// ---- recovery ---------------------------------------------------------------

TEST(Recovery, EmptyDirectoryIsAFreshEngine) {
  const std::string dir = temp_dir("fresh");
  std::unique_ptr<Durability> d;
  ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), dur_options(dir), &d)
                  .ok());
  EXPECT_FALSE(d->recovery().checkpoint_loaded);
  EXPECT_EQ(d->recovery().replayed, 0u);
  EXPECT_EQ(d->engine().epoch(), 0u);
  EXPECT_EQ(graph_digest(d->engine().snapshot()->graph),
            graph_digest(base_graph()));
  std::filesystem::remove_all(dir);
}

/// Run `updates` batches through a durable engine under `plan`, simulate
/// a crash (drop the object without any shutdown checkpoint), recover,
/// and compare against an uninterrupted twin that applied exactly the
/// acked batches. This is the pinning harness for the PR's core claim.
void crash_recovery_differential(const std::string& tag, std::uint64_t seed,
                                 std::uint64_t updates,
                                 std::uint64_t checkpoint_every,
                                 const FaultPlan& plan, bool corrupt_newest) {
  SCOPED_TRACE(tag);
  const std::string dir = temp_dir("diff_" + tag);
  const std::uint64_t client = 0xabc0 + seed;

  std::vector<std::uint64_t> acked;
  {
    DurabilityOptions opt = dur_options(dir);
    opt.checkpoint_every = checkpoint_every;
    std::unique_ptr<Durability> d;
    ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), opt, &d).ok());
    FaultInjector injector(seed, plan);
    for (std::uint64_t seq = 1; seq <= updates; ++seq) {
      UpdateRequest req = make_batch(seed, seq, client);
      UpdateResponse resp;
      d->handle_update(req, &resp, &injector);
      if (resp.status != StatusCode::kOk) {
        // What a retrying client does: same (client_id, sequence) again.
        // The failed attempt left nothing applied, so the retry lands.
        ASSERT_EQ(resp.status, StatusCode::kUnavailable);
        UpdateResponse retry;
        d->handle_update(req, &retry, /*injector=*/nullptr);
        ASSERT_EQ(retry.status, StatusCode::kOk);
        EXPECT_EQ(retry.flags & kUpdateFlagDuplicate, 0u);
      }
      acked.push_back(seq);
    }
    // d drops here with no clean shutdown: the durability claim is that
    // the on-disk state alone carries everything acknowledged.
  }

  if (corrupt_newest) {
    // Flip a byte in the newest manifest: recovery must fall back to an
    // older checkpoint and replay a longer WAL tail to the same state.
    std::string newest;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      std::uint64_t e = 0;
      if (parse_checkpoint_manifest_name(entry.path().filename().string(), &e)) {
        if (newest.empty() || entry.path().string() > newest) {
          newest = entry.path().string();
        }
      }
    }
    if (!newest.empty()) {
      std::FILE* f = std::fopen(newest.c_str(), "r+b");
      ASSERT_NE(f, nullptr);
      std::fseek(f, 9, SEEK_SET);
      int c = std::fgetc(f);
      std::fseek(f, 9, SEEK_SET);
      std::fputc(c ^ 0x04, f);
      std::fclose(f);
    }
  }

  std::unique_ptr<Durability> recovered;
  {
    DurabilityOptions opt = dur_options(dir);
    opt.checkpoint_every = checkpoint_every;
    ASSERT_TRUE(
        Durability::open(base_graph(), dyn_params(), opt, &recovered).ok());
  }
  EXPECT_EQ(recovered->engine().epoch(), acked.size());
  if (corrupt_newest && recovered->recovery().checkpoint_loaded) {
    EXPECT_GE(recovered->recovery().rejected_checkpoints, 1u);
  }

  // The uninterrupted twin.
  const std::string twin_dir = temp_dir("diff_twin_" + tag);
  std::unique_ptr<Durability> twin;
  ASSERT_TRUE(
      Durability::open(base_graph(), dyn_params(), dur_options(twin_dir), &twin)
          .ok());
  for (const std::uint64_t seq : acked) {
    UpdateResponse resp;
    twin->handle_update(make_batch(seed, seq, client), &resp);
    ASSERT_EQ(resp.status, StatusCode::kOk);
  }

  EXPECT_EQ(graph_digest(recovered->engine().snapshot()->graph),
            graph_digest(twin->engine().snapshot()->graph));
  EXPECT_EQ(query_digest(*recovered), query_digest(*twin));
  expect_tables_equal(recovered->client_table(), twin->client_table());

  // Exactly-once survives recovery: replaying the newest acked batch is
  // answered from the recovered table without touching the engine.
  if (!acked.empty()) {
    const std::uint64_t before = recovered->engine().epoch();
    UpdateResponse resp;
    recovered->handle_update(make_batch(seed, acked.back(), client), &resp);
    EXPECT_EQ(resp.status, StatusCode::kOk);
    EXPECT_NE(resp.flags & kUpdateFlagDuplicate, 0u);
    EXPECT_EQ(recovered->engine().epoch(), before);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::remove_all(twin_dir, ec);
}

TEST(Recovery, DifferentialCleanLog) {
  FaultPlan plan;  // no faults: the plain WAL-replay path
  crash_recovery_differential("clean", 1, 24, /*checkpoint_every=*/0, plan,
                              false);
}

TEST(Recovery, DifferentialWithCheckpoints) {
  FaultPlan plan;
  crash_recovery_differential("ckpt", 2, 30, /*checkpoint_every=*/7, plan,
                              false);
}

TEST(Recovery, DifferentialUnderTornAppends) {
  FaultPlan plan;
  plan.wal_append_tear = 0.3;
  crash_recovery_differential("tear", 3, 24, /*checkpoint_every=*/8, plan,
                              false);
}

TEST(Recovery, DifferentialUnderFsyncFailures) {
  FaultPlan plan;
  plan.wal_fsync_fail = 0.25;
  // fsync faults only fire when the policy actually fsyncs, so this
  // harness runs kEveryBatch instead of the suite's default kOff.
  const std::string dir = temp_dir("diff_fsync");
  DurabilityOptions opt;
  opt.dir = dir;
  opt.wal.fsync = FsyncPolicy::kEveryBatch;
  opt.checkpoint_every = 9;
  const std::uint64_t client = 0xf57c;

  std::vector<std::uint64_t> acked;
  {
    std::unique_ptr<Durability> d;
    ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), opt, &d).ok());
    FaultInjector injector(5, plan);
    for (std::uint64_t seq = 1; seq <= 20; ++seq) {
      UpdateResponse resp;
      d->handle_update(make_batch(5, seq, client), &resp, &injector);
      if (resp.status == StatusCode::kOk) acked.push_back(seq);
    }
  }
  std::unique_ptr<Durability> recovered;
  ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), opt, &recovered).ok());
  EXPECT_EQ(recovered->engine().epoch(), acked.size());

  const std::string twin_dir = temp_dir("diff_fsync_twin");
  std::unique_ptr<Durability> twin;
  ASSERT_TRUE(Durability::open(base_graph(), dyn_params(),
                               dur_options(twin_dir), &twin)
                  .ok());
  for (const std::uint64_t seq : acked) {
    UpdateResponse resp;
    twin->handle_update(make_batch(5, seq, client), &resp);
    ASSERT_EQ(resp.status, StatusCode::kOk);
  }
  EXPECT_EQ(graph_digest(recovered->engine().snapshot()->graph),
            graph_digest(twin->engine().snapshot()->graph));
  expect_tables_equal(recovered->client_table(), twin->client_table());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::remove_all(twin_dir, ec);
}

TEST(Recovery, DifferentialUnderCheckpointFaults) {
  FaultPlan plan;
  plan.checkpoint_write_fail = 0.5;
  plan.checkpoint_rename_fail = 0.3;
  crash_recovery_differential("ckptfault", 6, 30, /*checkpoint_every=*/5, plan,
                              false);
}

TEST(Recovery, DifferentialWithCorruptNewestCheckpoint) {
  FaultPlan plan;
  crash_recovery_differential("corrupt", 7, 30, /*checkpoint_every=*/6, plan,
                              true);
}

TEST(Recovery, CrashAtEveryCheckpointStageRecovers) {
  for (const CheckpointCrashStage stage :
       {CheckpointCrashStage::kAfterGraphTemp,
        CheckpointCrashStage::kAfterGraphRename,
        CheckpointCrashStage::kAfterManifestTemp}) {
    SCOPED_TRACE(static_cast<int>(stage));
    const std::string dir =
        temp_dir("stage_" + std::to_string(static_cast<int>(stage)));
    const std::uint64_t client = 0x57a6e;

    {
      std::unique_ptr<Durability> d;
      ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), dur_options(dir),
                                   &d)
                      .ok());
      for (std::uint64_t seq = 1; seq <= 4; ++seq) {
        UpdateResponse resp;
        d->handle_update(make_batch(9, seq, client), &resp);
        ASSERT_EQ(resp.status, StatusCode::kOk);
      }
      // A first GOOD checkpoint, then a crashed one two epochs later.
      ASSERT_TRUE(d->checkpoint_now().ok());
      for (std::uint64_t seq = 5; seq <= 6; ++seq) {
        UpdateResponse resp;
        d->handle_update(make_batch(9, seq, client), &resp);
        ASSERT_EQ(resp.status, StatusCode::kOk);
      }
      d->set_checkpoint_crash_stage(stage);
      EXPECT_EQ(d->checkpoint_now().code, StatusCode::kUnavailable);
      // One more update lands after the failed checkpoint.
      UpdateResponse resp;
      d->handle_update(make_batch(9, 7, client), &resp);
      ASSERT_EQ(resp.status, StatusCode::kOk);
    }

    std::unique_ptr<Durability> recovered;
    ASSERT_TRUE(Durability::open(base_graph(), dyn_params(), dur_options(dir),
                                 &recovered)
                    .ok());
    EXPECT_EQ(recovered->engine().epoch(), 7u);

    const std::string twin_dir =
        temp_dir("stage_twin_" + std::to_string(static_cast<int>(stage)));
    std::unique_ptr<Durability> twin;
    ASSERT_TRUE(Durability::open(base_graph(), dyn_params(),
                                 dur_options(twin_dir), &twin)
                    .ok());
    for (std::uint64_t seq = 1; seq <= 7; ++seq) {
      UpdateResponse resp;
      twin->handle_update(make_batch(9, seq, client), &resp);
      ASSERT_EQ(resp.status, StatusCode::kOk);
    }
    EXPECT_EQ(graph_digest(recovered->engine().snapshot()->graph),
              graph_digest(twin->engine().snapshot()->graph));
    EXPECT_EQ(query_digest(*recovered), query_digest(*twin));
    expect_tables_equal(recovered->client_table(), twin->client_table());
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::remove_all(twin_dir, ec);
  }
}

TEST(Recovery, TornTailOnDiskIsTruncatedAndAppendedAfter) {
  const std::string dir = temp_dir("torn_disk");
  const std::uint64_t client = 0x7041;
  {
    std::unique_ptr<Durability> d;
    ASSERT_TRUE(
        Durability::open(base_graph(), dyn_params(), dur_options(dir), &d).ok());
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      UpdateResponse resp;
      d->handle_update(make_batch(4, seq, client), &resp);
      ASSERT_EQ(resp.status, StatusCode::kOk);
    }
  }
  // Crash image: half a record at the tail.
  const auto segs = list_wal_segments(dir);
  ASSERT_EQ(segs.size(), 1u);
  {
    std::FILE* f = std::fopen(segs[0].c_str(), "ab");
    const std::uint8_t junk[] = {0x57, 0x41, 0x4c, 0x52, 0xff, 0xff};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  std::unique_ptr<Durability> recovered;
  ASSERT_TRUE(
      Durability::open(base_graph(), dyn_params(), dur_options(dir), &recovered)
          .ok());
  EXPECT_EQ(recovered->engine().epoch(), 3u);
  EXPECT_GT(recovered->recovery().torn_bytes, 0u);

  // New updates append to the healed segment and survive another cycle.
  UpdateResponse resp;
  recovered->handle_update(make_batch(4, 4, client), &resp);
  ASSERT_EQ(resp.status, StatusCode::kOk);
  recovered.reset();
  std::unique_ptr<Durability> again;
  ASSERT_TRUE(
      Durability::open(base_graph(), dyn_params(), dur_options(dir), &again).ok());
  EXPECT_EQ(again->engine().epoch(), 4u);
  auto table = again->client_table();
  ASSERT_EQ(table.count(client), 1u);
  EXPECT_EQ(table[client].sequence, 4u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace parsh::server
