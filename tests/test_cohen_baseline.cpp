// Tests for the Cohen-flavored hierarchical-landmark hopset baseline
// (the simplified [Coh00] row of Figure 2).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/validation.hpp"
#include "hopset/baseline_cohen.hpp"
#include "hopset/verify.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

TEST(CohenLite, EdgesCarryExactTruncatedDistances) {
  const Graph g = make_grid(12, 12);
  const CohenLiteResult r = cohen_lite_hopset(g, CohenLiteParams{});
  for (const Edge& e : r.edges) {
    EXPECT_DOUBLE_EQ(e.w, st_distance(g, e.u, e.v)) << e.u << "-" << e.v;
  }
}

TEST(CohenLite, LandmarkLevelsAreNestedAndDecaying) {
  const Graph g = make_torus(20, 20);
  CohenLiteParams p;
  p.levels = 3;
  p.decay = 0.25;
  const CohenLiteResult r = cohen_lite_hopset(g, p);
  ASSERT_EQ(r.landmarks_per_level.size(), 4u);
  EXPECT_EQ(r.landmarks_per_level[0], 400u);
  for (std::size_t l = 1; l < r.landmarks_per_level.size(); ++l) {
    EXPECT_LE(r.landmarks_per_level[l], r.landmarks_per_level[l - 1]);
  }
  // decay=1/4: level 1 around 100, generous band.
  EXPECT_GT(r.landmarks_per_level[1], 50u);
  EXPECT_LT(r.landmarks_per_level[1], 200u);
}

TEST(CohenLite, ReducesHopsOnLongPaths) {
  const Graph g = make_path(1500);
  CohenLiteParams p;
  p.levels = 3;
  p.base_radius = 8.0;
  p.radius_growth = 6.0;
  const CohenLiteResult r = cohen_lite_hopset(g, p);
  ASSERT_FALSE(r.edges.empty());
  const auto ms = measure_hopset(g, r.edges, 0.5, 8, 3000, 5);
  double plain = 0, with_set = 0;
  for (const auto& m : ms) {
    plain += static_cast<double>(m.hops_plain);
    with_set += static_cast<double>(m.hops_with_set);
    EXPECT_LE(m.hops_with_set, m.hops_plain);
  }
  EXPECT_LT(with_set, plain);
}

TEST(CohenLite, WeightsArePathWeights) {
  const Graph g = with_uniform_weights(make_grid(10, 10), 1, 4, 7);
  const CohenLiteResult r = cohen_lite_hopset(g, CohenLiteParams{});
  EXPECT_TRUE(hopset_weights_are_path_weights(g, r.edges));
}

TEST(CohenLite, DeterministicInSeed) {
  const Graph g = make_grid(10, 10);
  CohenLiteParams p;
  p.seed = 42;
  const auto a = cohen_lite_hopset(g, p);
  const auto b = cohen_lite_hopset(g, p);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(CohenLite, RejectsFractionalWeights) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1.5}, {1, 2, 1}});
  EXPECT_THROW(cohen_lite_hopset(g, CohenLiteParams{}), InvalidGraphError);
}

TEST(CohenLite, NoDuplicatePairs) {
  const Graph g = make_torus(12, 12);
  const CohenLiteResult r = cohen_lite_hopset(g, CohenLiteParams{});
  for (std::size_t i = 1; i < r.edges.size(); ++i) {
    EXPECT_FALSE(r.edges[i - 1].u == r.edges[i].u && r.edges[i - 1].v == r.edges[i].v);
  }
}

}  // namespace
}  // namespace parsh
