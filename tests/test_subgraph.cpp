// Tests for induced subgraphs, per-label subgraphs and quotient graphs —
// the machinery the hopset recursion and Algorithm 3 contraction run on.
#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Path 0-1-2-3-4, take {1,2,3}.
  const Graph g = make_path(5);
  const Subgraph s = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(s.graph.num_vertices(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 2u);
  EXPECT_EQ(s.original_id, (std::vector<vid>{1, 2, 3}));
}

TEST(InducedSubgraph, LocalIdsFollowInputOrder) {
  const Graph g = make_complete(5);
  const Subgraph s = induced_subgraph(g, {4, 0, 2});
  EXPECT_EQ(s.original_id[0], 4u);
  EXPECT_EQ(s.original_id[1], 0u);
  EXPECT_EQ(s.original_id[2], 2u);
  EXPECT_EQ(s.graph.num_edges(), 3u);  // triangle among the three
}

TEST(InducedSubgraph, PreservesWeights) {
  const Graph g = Graph::from_edges(4, {{0, 1, 5}, {1, 2, 7}, {2, 3, 9}});
  const Subgraph s = induced_subgraph(g, {1, 2});
  ASSERT_EQ(s.graph.num_edges(), 1u);
  EXPECT_EQ(s.graph.undirected_edges()[0].w, 7);
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g = make_path(5);
  const Subgraph s = induced_subgraph(g, {});
  EXPECT_EQ(s.graph.num_vertices(), 0u);
}

TEST(InducedSubgraph, DistancesNeverShrink) {
  // Distances within an induced subgraph are >= host distances.
  const Graph g = make_grid(6, 6);
  std::vector<vid> sel;
  for (vid v = 0; v < 36; v += 2) sel.push_back(v);
  const Subgraph s = induced_subgraph(g, sel);
  const SsspResult host = dijkstra(g, sel[0]);
  const SsspResult sub = dijkstra(s.graph, 0);
  for (vid i = 0; i < s.graph.num_vertices(); ++i) {
    if (sub.dist[i] == kInfWeight) continue;
    EXPECT_GE(sub.dist[i], host.dist[s.original_id[i]]);
  }
}

TEST(InducedSubgraphsByLabel, PartitionCoversAllVertices) {
  const Graph g = make_grid(5, 5);
  std::vector<vid> label(25);
  for (vid v = 0; v < 25; ++v) label[v] = v % 3;
  const auto subs = induced_subgraphs_by_label(g, label, 3);
  ASSERT_EQ(subs.size(), 3u);
  std::size_t total = 0;
  for (const auto& s : subs) total += s.graph.num_vertices();
  EXPECT_EQ(total, 25u);
  // Every original id carries the right label.
  for (vid c = 0; c < 3; ++c) {
    for (vid ov : subs[c].original_id) EXPECT_EQ(label[ov], c);
  }
}

TEST(QuotientGraph, ContractsTriangleToPoint) {
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 5}});
  std::vector<vid> label{0, 0, 0, 1};
  const QuotientGraph q = quotient_graph(g, label, 2);
  EXPECT_EQ(q.graph.num_vertices(), 2u);
  EXPECT_EQ(q.graph.num_edges(), 1u);
  EXPECT_EQ(q.graph.undirected_edges()[0].w, 5);
}

TEST(QuotientGraph, ParallelEdgesKeepShortest) {
  // Two components joined by edges of weight 9 and 3.
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {2, 3, 1}, {0, 2, 9}, {1, 3, 3}});
  std::vector<vid> label{0, 0, 1, 1};
  const QuotientGraph q = quotient_graph(g, label, 2);
  ASSERT_EQ(q.graph.num_edges(), 1u);
  EXPECT_EQ(q.graph.undirected_edges()[0].w, 3);
}

TEST(QuotientGraph, QuotientDistancesLowerBoundHostDistances) {
  // dist_quotient(c(u), c(v)) <= dist_host(u, v): contraction only helps.
  const Graph g = with_uniform_weights(make_grid(5, 5), 1, 6, 3);
  std::vector<vid> label(25);
  for (vid v = 0; v < 25; ++v) label[v] = v / 5;  // contract rows
  const QuotientGraph q = quotient_graph(g, label, 5);
  const SsspResult host = dijkstra(g, 0);
  const SsspResult quot = dijkstra(q.graph, label[0]);
  for (vid v = 0; v < 25; ++v) {
    if (host.dist[v] == kInfWeight) continue;
    EXPECT_LE(quot.dist[label[v]], host.dist[v]) << v;
  }
}

TEST(QuotientGraph, ComponentsFromConnectivityContractToSinglePoints) {
  const Graph g = make_random_graph(200, 150, 17);  // likely disconnected
  const auto comp = connected_components(g);
  vid k = 0;
  for (vid c : comp) k = std::max(k, c + 1);
  const QuotientGraph q = quotient_graph(g, comp, k);
  EXPECT_EQ(q.graph.num_vertices(), k);
  EXPECT_EQ(q.graph.num_edges(), 0u);  // no edges between components
}

}  // namespace
}  // namespace parsh
