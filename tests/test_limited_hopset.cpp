// Tests for the Appendix C limited-hopset iteration (Theorem C.2).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hopset/limited_hopset.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/hop_limited.hpp"

namespace parsh {
namespace {

LimitedHopsetParams small_params(std::uint64_t seed) {
  LimitedHopsetParams p;
  p.alpha = 0.6;
  p.epsilon = 0.3;
  p.seed = seed;
  p.max_iterations = 2;
  return p;
}

TEST(LimitedHopset, EmptyGraphYieldsNothing) {
  EXPECT_TRUE(build_limited_hopset(Graph(), small_params(1)).edges.empty());
}

TEST(LimitedHopset, EdgeWeightsAreUpperBoundsOnDistances) {
  // Edges carry (rounded-up) path weights: never below the true metric.
  const Graph g = make_path_with_chords(400, 10, 3);
  const LimitedHopsetResult r = build_limited_hopset(g, small_params(5));
  for (const Edge& e : r.edges) {
    const weight_t exact = st_distance(g, e.u, e.v);
    ASSERT_NE(exact, kInfWeight);
    // The validity property: never undercut the true metric. (No per-edge
    // upper bound is promised — edges built at scales far above a pair's
    // distance carry granular slack and are simply never the minimum for
    // short queries; AugmentedMetricApproximatesOriginal covers that.)
    EXPECT_GE(e.w + 1e-6, exact);
    EXPECT_TRUE(std::isfinite(e.w));
    EXPECT_GT(e.w, 0);
  }
}

TEST(LimitedHopset, AugmentedMetricApproximatesOriginal) {
  const Graph g = make_path_with_chords(500, 20, 7);
  const LimitedHopsetResult r = build_limited_hopset(g, small_params(9));
  const Graph aug = g.with_extra_edges(r.edges);
  const auto d_g = dijkstra(g, 0);
  const auto d_aug = dijkstra(aug, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (d_g.dist[v] == kInfWeight) continue;
    EXPECT_LE(d_aug.dist[v], d_g.dist[v] + 1e-9) << v;  // shortcuts only help
    // Upper-bound weights cannot *create* shorter paths than reality.
    EXPECT_GE(d_aug.dist[v] + 1e-6, d_g.dist[v] * 0.999) << v;
  }
}

TEST(LimitedHopset, ReducesHopsOnLongPaths) {
  const Graph g = make_path(1000);
  const LimitedHopsetResult r = build_limited_hopset(g, small_params(11));
  ASSERT_FALSE(r.edges.empty());
  const Graph aug = g.with_extra_edges(r.edges);
  // Reaching (1.5x) the far end must need far fewer hops than 999.
  const std::uint64_t hops = hops_to_approx(aug, 0, 999, 999.0, 0.5, 999);
  EXPECT_LT(hops, 700u);
}

TEST(LimitedHopset, IterationsRespectCap) {
  const Graph g = make_path(300);
  LimitedHopsetParams p = small_params(13);
  p.max_iterations = 1;
  const LimitedHopsetResult r = build_limited_hopset(g, p);
  EXPECT_LE(r.iterations, 1);
}

TEST(LimitedHopset, DeterministicInSeed) {
  const Graph g = make_path_with_chords(300, 10, 1);
  const auto a = build_limited_hopset(g, small_params(21));
  const auto b = build_limited_hopset(g, small_params(21));
  EXPECT_EQ(a.edges, b.edges);
}

}  // namespace
}  // namespace parsh
