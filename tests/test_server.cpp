// Tests for the hardened query service: wire-protocol strictness,
// deadline expiry mid-batch, degraded-tier correctness, admission
// shedding under (injected) spikes, fault-injection determinism, and
// clean shutdown with zero leaked connections.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "server/admission.hpp"
#include "server/checkpoint.hpp"
#include "server/client.hpp"
#include "server/fault_injector.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh::server {
namespace {

/// One engine for the whole suite (preprocessing is the slow part).
struct Env {
  Graph g;
  ApproxShortestPaths engine;
  std::vector<weight_t> exact0;  // exact distances from vertex 0

  Env()
      : g(with_log_uniform_weights(ensure_connected(make_random_graph(300, 900, 7)),
                                   128.0, 8)),
        engine(g, [] {
          ApproxShortestPaths::Params p;
          p.epsilon = 0.25;
          return p;
        }()),
        exact0(dijkstra(g, 0).dist) {}
};

const Env& env() {
  static const Env* e = new Env();
  return *e;
}

// ---- protocol strictness ----------------------------------------------------

TEST(Protocol, HeaderValidationRejectsEveryCorruption) {
  std::vector<std::uint8_t> frame;
  encode_ping(frame, 42, /*pong=*/false);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  FrameType type;
  std::uint32_t len = 0;
  EXPECT_TRUE(parse_frame_header(frame.data(), &type, &len).ok());
  EXPECT_EQ(type, FrameType::kPing);

  auto corrupted = [&](std::size_t byte, std::uint8_t value) {
    std::vector<std::uint8_t> bad = frame;
    bad[byte] = value;
    return parse_frame_header(bad.data(), &type, &len);
  };
  EXPECT_EQ(corrupted(0, 0xff).code, StatusCode::kInvalidArgument);  // magic lo
  EXPECT_EQ(corrupted(1, 0xff).code, StatusCode::kInvalidArgument);  // magic hi
  EXPECT_EQ(corrupted(2, 99).code, StatusCode::kInvalidArgument);    // version
  EXPECT_EQ(corrupted(3, 0).code, StatusCode::kInvalidArgument);     // type 0
  EXPECT_EQ(corrupted(3, 200).code, StatusCode::kInvalidArgument);   // unknown type
  EXPECT_EQ(corrupted(7, 0xff).code, StatusCode::kInvalidArgument);  // > 1 MiB
}

TEST(Protocol, QueryRequestRoundTripsAndRejectsLies) {
  QueryRequest req;
  req.id = 77;
  req.deadline_ms = 250;
  req.pairs = {{0, 1}, {2, 3}, {4, 4}};
  std::vector<std::uint8_t> frame;
  encode_query_request(frame, req);

  // Strip the header; the payload is what decode sees.
  std::vector<std::uint8_t> payload(frame.begin() + kFrameHeaderBytes, frame.end());
  QueryRequest got;
  ASSERT_TRUE(decode_query_request(payload, &got).ok());
  EXPECT_EQ(got.id, 77u);
  EXPECT_EQ(got.deadline_ms, 250u);
  EXPECT_EQ(got.pairs, req.pairs);

  // Count field lying about the payload length.
  std::vector<std::uint8_t> lying = payload;
  lying[16] = 9;  // count lives after id(8) + deadline(4) + flags(4)
  EXPECT_EQ(decode_query_request(lying, &got).code, StatusCode::kInvalidArgument);
  // Truncated payload.
  std::vector<std::uint8_t> cut(payload.begin(), payload.end() - 3);
  EXPECT_EQ(decode_query_request(cut, &got).code, StatusCode::kInvalidArgument);
  // Reserved flags must be zero in v1.
  std::vector<std::uint8_t> flagged = payload;
  flagged[12] = 1;
  EXPECT_EQ(decode_query_request(flagged, &got).code, StatusCode::kInvalidArgument);
  // Deadline above the cap.
  QueryRequest huge = req;
  huge.deadline_ms = kMaxDeadlineMs + 1;
  frame.clear();
  encode_query_request(frame, huge);
  payload.assign(frame.begin() + kFrameHeaderBytes, frame.end());
  EXPECT_EQ(decode_query_request(payload, &got).code, StatusCode::kInvalidArgument);
}

TEST(Protocol, ResponseAndStatsRoundTrip) {
  QueryResponse resp;
  resp.id = 5;
  resp.status = StatusCode::kDeadlineExceeded;
  resp.retry_after_ms = 17;
  resp.flags = kRespFlagDegraded | kRespFlagPartial;
  resp.answers = {{StatusCode::kOk, 3.5, 2},
                  {StatusCode::kDeadlineExceeded, kInfWeight, 0}};
  std::vector<std::uint8_t> frame;
  encode_query_response(frame, resp);
  std::vector<std::uint8_t> payload(frame.begin() + kFrameHeaderBytes, frame.end());
  QueryResponse got;
  ASSERT_TRUE(decode_query_response(payload, &got).ok());
  EXPECT_EQ(got.id, 5u);
  EXPECT_EQ(got.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(got.retry_after_ms, 17u);
  EXPECT_EQ(got.flags, resp.flags);
  ASSERT_EQ(got.answers.size(), 2u);
  EXPECT_DOUBLE_EQ(got.answers[0].estimate, 3.5);
  EXPECT_EQ(got.answers[1].status, StatusCode::kDeadlineExceeded);

  StatsSnapshot s;
  s.requests_shed = 9;
  s.pool_checkout_timeouts = 3;
  frame.clear();
  encode_stats_response(frame, s);
  payload.assign(frame.begin() + kFrameHeaderBytes, frame.end());
  StatsSnapshot got_s;
  ASSERT_TRUE(decode_stats_response(payload, &got_s).ok());
  EXPECT_EQ(got_s.requests_shed, 9u);
  EXPECT_EQ(got_s.pool_checkout_timeouts, 3u);
}

// ---- fault injector determinism ---------------------------------------------

TEST(FaultInjector, PerSiteTracesAreInterleavingIndependent) {
  FaultPlan plan;
  plan.tear_write = 0.2;
  plan.slow_write = 0.2;
  plan.drop_connection = 0.1;
  plan.worker_stall = 0.5;
  plan.queue_spike = 0.5;

  // Run A: all sites consulted round-robin from one thread.
  FaultInjector a(/*seed=*/1234, plan);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t s = 0; s < kNumFaultSites; ++s) {
      (void)a.next(static_cast<FaultSite>(s));
    }
  }
  // Run B: one thread hammers each site, all concurrently — maximal
  // cross-site interleaving churn.
  FaultInjector b(/*seed=*/1234, plan);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    threads.emplace_back([&b, s] {
      for (int i = 0; i < 64; ++i) (void)b.next(static_cast<FaultSite>(s));
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    EXPECT_EQ(a.trace(static_cast<FaultSite>(s)), b.trace(static_cast<FaultSite>(s)))
        << "site " << fault_site_name(static_cast<FaultSite>(s));
  }
  EXPECT_EQ(a.trace_string(), b.trace_string());
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0u);

  // A different seed draws a different schedule.
  FaultInjector c(/*seed=*/99, plan);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t s = 0; s < kNumFaultSites; ++s) {
      (void)c.next(static_cast<FaultSite>(s));
    }
  }
  EXPECT_NE(a.trace_string(), c.trace_string());
}

// ---- deadline expiry mid-batch (engine level, deterministic) ----------------

TEST(ServingDeadline, CheckBasedBudgetCutsABatchDeterministically) {
  const Env& e = env();
  SsspWorkspace ws;
  std::vector<ApproxShortestPaths::QueryPair> pairs;
  for (vid t = 1; t <= 40; ++t) pairs.push_back({0, t});

  ApproxShortestPaths::QueryOptions opts;
  // Enough checks for a handful of queries, nowhere near the batch's full
  // demand — the budget must expire mid-batch.
  opts.deadline = Deadline::after_checks(50);
  const auto results = e.engine.query_batch(pairs, ws, opts);
  ASSERT_EQ(results.size(), pairs.size());

  std::size_t completed = 0, cut = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].deadline_exceeded) {
      ++cut;
    } else {
      ++completed;
    }
    // Whatever was settled must still be a valid upper bound.
    if (results[i].estimate != kInfWeight) {
      EXPECT_GE(results[i].estimate, e.exact0[pairs[i].second] * (1.0 - 1e-9));
    }
  }
  EXPECT_GT(completed, 0u) << "budget expired before any query ran";
  EXPECT_GT(cut, 0u) << "budget never expired";

  // Same budget, same batch: identical partial results (the check-based
  // deadline is the deterministic seam the wall clock can't offer).
  SsspWorkspace ws2;
  ApproxShortestPaths::QueryOptions opts2;
  opts2.deadline = Deadline::after_checks(50);
  const auto replay = e.engine.query_batch(pairs, ws2, opts2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].deadline_exceeded, replay[i].deadline_exceeded) << i;
    EXPECT_EQ(results[i].estimate, replay[i].estimate) << i;
  }
}

// ---- degraded tier (engine level: the documented stretch bound) -------------

TEST(ServingDegraded, SkippedScalesKeepTheDocumentedStretchBound) {
  const Env& e = env();
  ASSERT_GT(e.engine.num_scales(), 1u) << "need multiple scales to degrade across";
  SsspWorkspace ws;

  for (std::size_t skip = 1; skip < e.engine.num_scales(); ++skip) {
    ApproxShortestPaths::QueryOptions opts;
    opts.skip_scales = skip;
    const std::size_t first = std::min(skip, e.engine.num_scales() - 1);
    const weight_t d_first = e.engine.hopset().scales[first].d;
    const double slack = e.engine.degraded_slack();
    for (vid t = 1; t < 60; ++t) {
      const auto r = e.engine.query(0, t, ws, opts);
      EXPECT_TRUE(r.degraded);
      const weight_t exact = e.exact0[t];
      ASSERT_NE(exact, kInfWeight);
      // Lower side: estimates are upper bounds, degraded or not.
      EXPECT_GE(r.estimate, exact * (1.0 - 1e-9)) << "skip=" << skip << " t=" << t;
      // Upper side: the degraded-tier contract documented on
      // QueryOptions::skip_scales / degraded_slack().
      EXPECT_LE(r.estimate, 1.25 * exact + slack * d_first + 1e-9)
          << "skip=" << skip << " t=" << t;
    }
  }
}

// ---- workspace pool serving mode --------------------------------------------

TEST(WorkspacePool, CheckoutHonorsDeadlinesAndRecycles) {
  SsspWorkspacePool pool;
  pool.prepare_serving(1);
  EXPECT_EQ(pool.available(), 1u);

  auto lease = pool.checkout(Deadline::never());
  ASSERT_TRUE(lease);
  EXPECT_EQ(pool.available(), 0u);

  // Pool exhausted: a bounded wait times out into an empty lease.
  auto starved = pool.checkout(Deadline::after_ms(20));
  EXPECT_FALSE(starved);

  // An already-expired budget still succeeds when a workspace is free.
  lease.release();
  auto instant = pool.checkout(Deadline::after_ms(0));
  EXPECT_TRUE(instant);
  instant.release();
  EXPECT_EQ(pool.available(), 1u);

  // A blocked checkout wakes when a lease returns.
  auto held = pool.checkout(Deadline::never());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto l = pool.checkout(Deadline::after_ms(2000));
    got.store(l ? true : false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  held.release();
  waiter.join();
  EXPECT_TRUE(got.load());
}

// ---- admission queue (unit) -------------------------------------------------

TEST(Admission, CoalescesArrivalsIntoOneBatch) {
  ServerMetrics metrics;
  AdmissionParams params;
  params.warm_ms_per_query_hint = 0.5;  // batch target: 5ms / 0.5ms = 10
  AdmissionQueue q(params, &metrics, nullptr);
  for (int i = 0; i < 10; ++i) {
    PendingRequest pr;
    pr.req.id = static_cast<std::uint64_t>(i);
    pr.req.pairs = {{0, 1}};
    pr.deadline = Deadline::after_ms(1000);
    std::uint32_t retry = 0;
    ASSERT_TRUE(q.offer(std::move(pr), &retry).ok());
  }
  std::vector<PendingRequest> batch;
  std::size_t skip = 0;
  ASSERT_TRUE(q.take_batch(&batch, &skip));
  EXPECT_EQ(batch.size(), 10u) << "arrivals should coalesce into one dispatch";
  EXPECT_EQ(skip, 0u);
  q.finish_batch(10, 1.0);
  q.stop();
  EXPECT_FALSE(q.take_batch(&batch, &skip));
}

TEST(Admission, ShedsWhenBacklogExceedsDeadlineBudget) {
  ServerMetrics metrics;
  AdmissionParams params;
  params.warm_ms_per_query_hint = 10.0;  // every query "costs" 10ms
  AdmissionQueue q(params, &metrics, nullptr);

  // 8 queries * 10ms = 80ms estimated drain >> 20ms budget: shed.
  PendingRequest doomed;
  doomed.req.deadline_ms = 20;
  doomed.req.pairs.assign(8, {0, 1});
  std::uint32_t retry = 0;
  const Status s = q.offer(std::move(doomed), &retry);
  EXPECT_EQ(s.code, StatusCode::kResourceExhausted);
  EXPECT_GE(retry, 1u);
  EXPECT_EQ(metrics.requests_shed.load(), 1u);

  // The same request with budget to spare is admitted.
  PendingRequest fine;
  fine.req.deadline_ms = 200;
  fine.req.pairs.assign(8, {0, 1});
  EXPECT_TRUE(q.offer(std::move(fine), &retry).ok());
  q.stop();
}

TEST(Admission, DegradesPastTheConfiguredQueueFraction) {
  ServerMetrics metrics;
  AdmissionParams params;
  params.warm_ms_per_query_hint = 1e-4;
  params.max_queue_depth = 8;
  params.degrade_at_fraction = 0.25;  // degrade at depth >= 2
  params.degrade_skip_scales = 3;
  params.max_batch = 1;  // dispatch one query at a time
  AdmissionQueue q(params, &metrics, nullptr);
  for (int i = 0; i < 4; ++i) {
    PendingRequest pr;
    pr.req.pairs = {{0, 1}};
    pr.req.deadline_ms = 60'000;
    std::uint32_t retry = 0;
    ASSERT_TRUE(q.offer(std::move(pr), &retry).ok());
  }
  std::vector<PendingRequest> batch;
  std::size_t skip = 0;
  ASSERT_TRUE(q.take_batch(&batch, &skip));
  EXPECT_EQ(skip, 3u) << "queue at depth 4/8 must dispatch degraded";
  // Drain to below the threshold: the tier recovers.
  ASSERT_TRUE(q.take_batch(&batch, &skip));
  ASSERT_TRUE(q.take_batch(&batch, &skip));
  ASSERT_TRUE(q.take_batch(&batch, &skip));
  EXPECT_EQ(skip, 0u) << "queue at depth 1/8 must dispatch at full fidelity";
  q.stop();
}

// ---- end-to-end over a socketpair -------------------------------------------

ServerConfig quiet_config() {
  ServerConfig cfg;
  cfg.query_workers = 1;
  cfg.admission.warm_ms_per_query_hint = 1e-3;
  cfg.admission.default_deadline_ms = 5000;
  return cfg;
}

TEST(QueryServer, RoundTripMatchesDirectEngineAnswers) {
  const Env& e = env();
  QueryServer server(e.g, e.engine, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);
  ASSERT_TRUE(client.ping().ok());

  const std::vector<std::pair<vid, vid>> pairs = {{0, 1}, {0, 50}, {0, 299}, {5, 5}};
  QueryResponse resp;
  ASSERT_TRUE(client.query(pairs, /*deadline_ms=*/5000, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kOk);
  ASSERT_EQ(resp.answers.size(), pairs.size());

  SsspWorkspace ws;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(resp.answers[i].status, StatusCode::kOk);
    const auto direct = e.engine.query(pairs[i].first, pairs[i].second, ws);
    EXPECT_DOUBLE_EQ(resp.answers[i].estimate, direct.estimate) << i;
  }

  StatsSnapshot s;
  ASSERT_TRUE(client.stats(&s).ok());
  EXPECT_GE(s.frames_received, 2u);
  EXPECT_EQ(s.requests_admitted, 1u);
  EXPECT_EQ(s.queries_ok, 4u);

  client.close();
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(QueryServer, OutOfRangeIdsAnswerIndividually) {
  const Env& e = env();
  QueryServer server(e.g, e.engine, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  QueryResponse resp;
  ASSERT_TRUE(client.query({{0, 1}, {0, 300}, {99999, 0}}, 5000, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kOk) << "bad ids are answers, not errors";
  ASSERT_EQ(resp.answers.size(), 3u);
  EXPECT_EQ(resp.answers[0].status, StatusCode::kOk);
  EXPECT_EQ(resp.answers[1].status, StatusCode::kOutOfRange);
  EXPECT_EQ(resp.answers[2].status, StatusCode::kOutOfRange);
  EXPECT_EQ(resp.answers[1].estimate, kInfWeight);
  EXPECT_EQ(server.metrics().queries_out_of_range.load(), 2u);
  server.stop();
}

TEST(QueryServer, MalformedFrameDrawsErrorAndClose) {
  const Env& e = env();
  QueryServer server(e.g, e.engine, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  // 8 bytes of garbage where a frame header belongs.
  const std::uint8_t garbage[8] = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4};
  ASSERT_TRUE(cfd.write_all(garbage, sizeof(garbage), Deadline::after_ms(1000)).ok());

  Frame frame;
  ASSERT_TRUE(cfd.read_frame(&frame, Deadline::after_ms(2000)).ok());
  EXPECT_EQ(frame.type, FrameType::kError);
  Status err;
  ASSERT_TRUE(decode_error(frame.payload, &err).ok());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);

  // The stream is desynchronized; the server hangs up after the error.
  const Status eof = cfd.read_frame(&frame, Deadline::after_ms(2000));
  EXPECT_EQ(eof.code, StatusCode::kConnectionClosed);
  EXPECT_EQ(server.metrics().invalid_frames.load(), 1u);
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(QueryServer, WallClockDeadlineYieldsPartialAnswers) {
  const Env& e = env();
  ServerConfig cfg = quiet_config();
  // Keep the drain estimate optimistic so admission lets the doomed
  // request through — this test is about the execution-time deadline.
  cfg.admission.warm_ms_per_query_hint = 1e-4;
  QueryServer server(e.g, e.engine, cfg);
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  std::vector<std::pair<vid, vid>> pairs;
  for (vid i = 0; i < 800; ++i) pairs.push_back({i % 300, (i * 7 + 3) % 300});
  QueryResponse resp;
  ASSERT_TRUE(client.query(pairs, /*deadline_ms=*/1, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.flags & kRespFlagPartial);
  ASSERT_EQ(resp.answers.size(), pairs.size());
  std::size_t cut = 0;
  for (const QueryAnswer& a : resp.answers) {
    if (a.status == StatusCode::kDeadlineExceeded) ++cut;
  }
  EXPECT_GT(cut, 0u);
  EXPECT_GT(server.metrics().queries_deadline_exceeded.load(), 0u);
  server.stop();
}

TEST(QueryServer, InjectedSpikeShedsWithRetryHintAndClientBacksOff) {
  const Env& e = env();
  ServerConfig cfg = quiet_config();
  cfg.admission.warm_ms_per_query_hint = 10.0;  // expensive queries
  cfg.enable_faults = true;
  cfg.fault_seed = 42;
  cfg.faults.queue_spike = 1.0;  // every admission sees a phantom burst
  cfg.faults.max_spike = 64;
  QueryServer server(e.g, e.engine, cfg);
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  ClientConfig ccfg;
  ccfg.max_retries = 2;
  ccfg.backoff_base_ms = 1;
  ccfg.backoff_max_ms = 4;
  QueryClient client(std::move(cfd), ccfg);

  QueryResponse resp;
  const Status s = client.query({{0, 1}, {0, 2}}, /*deadline_ms=*/20, &resp);
  EXPECT_EQ(s.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(client.client_stats().sheds_seen, 3u);  // initial try + 2 retries
  EXPECT_EQ(client.client_stats().retries, 2u);
  EXPECT_EQ(client.client_stats().failures, 1u);
  EXPECT_EQ(server.metrics().requests_shed.load(), 3u);
  EXPECT_GT(server.stats().faults_injected, 0u);
  server.stop();
}

TEST(QueryServer, DegradedTierIsFlaggedOnTheWire) {
  const Env& e = env();
  ASSERT_GT(e.engine.num_scales(), 1u);
  ServerConfig cfg = quiet_config();
  cfg.admission.degrade_at_fraction = 0.0;  // every dispatch degraded
  cfg.admission.degrade_skip_scales = e.engine.num_scales() - 1;
  QueryServer server(e.g, e.engine, cfg);
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  QueryResponse resp;
  ASSERT_TRUE(client.query({{0, 10}, {0, 200}}, 5000, &resp).ok());
  EXPECT_TRUE(resp.flags & kRespFlagDegraded);
  // Degraded answers still honor the degraded-tier stretch contract.
  const std::size_t first = e.engine.num_scales() - 1;
  const weight_t d_first = e.engine.hopset().scales[first].d;
  const double slack = e.engine.degraded_slack();
  const vid targets[] = {10, 200};
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(resp.answers[i].status, StatusCode::kOk);
    const weight_t exact = e.exact0[targets[i]];
    EXPECT_GE(resp.answers[i].estimate, exact * (1.0 - 1e-9));
    EXPECT_LE(resp.answers[i].estimate, 1.25 * exact + slack * d_first + 1e-9);
  }
  EXPECT_GT(server.metrics().queries_degraded.load(), 0u);
  server.stop();
}

// ---- fault workload determinism (same seed => same recovery trace) ----------

std::string run_fault_workload(std::uint64_t seed) {
  const Env& e = env();
  ServerConfig cfg = quiet_config();
  cfg.enable_faults = true;
  cfg.fault_seed = seed;
  // Survivable faults only: the connection must live through the whole
  // lock-step workload so every run issues identical per-site call
  // sequences. Drops/tears are covered by the recovery test below.
  cfg.faults.slow_write = 0.3;
  cfg.faults.worker_stall = 0.5;
  cfg.faults.queue_spike = 0.2;
  cfg.faults.max_delay_us = 200;
  cfg.faults.max_spike = 4;

  QueryServer server(e.g, e.engine, cfg);
  server.start();
  FdStream sfd, cfd;
  EXPECT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  // Lock-step: each request waits for its response, so batch boundaries
  // (and with them the worker-site call count) are schedule-independent.
  for (vid i = 0; i < 20; ++i) {
    QueryResponse resp;
    EXPECT_TRUE(client.query({{i % 50, (i * 7 + 3) % 50}}, 5000, &resp).ok()) << i;
  }
  client.close();
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_EQ(server.metrics().connections_opened.load(),
            server.metrics().connections_closed.load());
  return server.injector()->trace_string();
}

TEST(QueryServer, FaultScheduleIsSeedDeterministic) {
  const std::string first = run_fault_workload(1337);
  const std::string second = run_fault_workload(1337);
  EXPECT_EQ(first, second) << "same seed + same workload must replay exactly";
  EXPECT_FALSE(first.empty());
  const std::string other = run_fault_workload(2024);
  EXPECT_NE(first, other) << "different seeds must draw different schedules";
}

// ---- TCP transport, dropped-connection recovery, clean shutdown -------------

TEST(QueryServer, TcpClientsRecoverFromInjectedDrops) {
  const Env& e = env();
  ServerConfig cfg = quiet_config();
  cfg.enable_faults = true;
  cfg.fault_seed = 7;
  cfg.faults.drop_connection = 0.15;  // read- and write-site drops
  cfg.faults.tear_write = 0.05;
  QueryServer server(e.g, e.engine, cfg);
  ASSERT_TRUE(server.listen_tcp(0).ok());
  ASSERT_NE(server.port(), 0);

  ClientConfig ccfg;
  ccfg.max_retries = 6;
  ccfg.backoff_base_ms = 1;
  ccfg.backoff_max_ms = 4;
  QueryClient client;
  ASSERT_TRUE(QueryClient::connect_tcp(server.port(), ccfg, &client).ok());

  std::size_t ok = 0;
  for (vid i = 0; i < 15; ++i) {
    QueryResponse resp;
    if (client.query({{i % 300, (i * 11 + 5) % 300}}, 5000, &resp).ok()) ++ok;
  }
  // Drops fired and the retry/reconnect loop carried requests through.
  EXPECT_GT(server.stats().faults_injected, 0u);
  EXPECT_GE(client.client_stats().reconnects, 1u);
  EXPECT_GT(ok, 0u);

  client.close();
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
  EXPECT_EQ(server.metrics().connections_opened.load(),
            server.metrics().connections_closed.load());
}

// ---- dynamic serving over the wire ------------------------------------------

DynamicApproxShortestPaths::Params dyn_params() {
  DynamicApproxShortestPaths::Params p;
  p.epsilon = 0.25;
  p.hopset.k_hops = 12;  // small hop budget: millisecond rebuilds at n=100
  return p;
}

Graph dyn_graph() {
  return with_uniform_weights(ensure_connected(make_random_graph(100, 300, 11)), 1,
                              9, 42);
}

TEST(DynamicServer, UpdatesSwapEpochsAndQueriesFollow) {
  DynamicApproxShortestPaths dyn(dyn_graph(), dyn_params());
  QueryServer server(dyn, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  // Epoch 0 is on the wire before any update.
  QueryResponse q0;
  ASSERT_TRUE(client.query({{0, 77}}, /*deadline_ms=*/5000, &q0).ok());
  EXPECT_EQ(q0.status, StatusCode::kOk);
  EXPECT_EQ(q0.epoch, 0u);

  // A real structural change: a shortcut edge 0--77 of weight 1 must pull
  // the served estimate down to at most 1 * (1 + eps) and bump the epoch.
  UpdateResponse ur;
  ASSERT_TRUE(client.update({{0, 77, 1.0}}, {}, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kOk);
  EXPECT_EQ(ur.epoch, 1u);
  // Lands as an insert, or as a reweight if the generator already drew
  // the pair — either way exactly one effective change.
  EXPECT_EQ(ur.inserted + ur.reweighted, 1u);
  EXPECT_GT(ur.total_scales, 0u);
  EXPECT_LE(ur.dirty_scales, ur.total_scales);
  EXPECT_LE(ur.dirty_clusters, ur.total_clusters);

  QueryResponse q1;
  ASSERT_TRUE(client.query({{0, 77}}, /*deadline_ms=*/5000, &q1).ok());
  EXPECT_EQ(q1.status, StatusCode::kOk);
  EXPECT_EQ(q1.epoch, 1u);
  ASSERT_EQ(q1.answers.size(), 1u);
  EXPECT_LE(q1.answers[0].estimate, 1.0 * (1 + 0.25) + 1e-9);
  EXPECT_LE(q1.answers[0].estimate, q0.answers[0].estimate);

  // The wire answer matches the engine's own current snapshot exactly.
  SsspWorkspace ws;
  const auto snap = dyn.snapshot();
  EXPECT_DOUBLE_EQ(q1.answers[0].estimate, snap->engine.query(0, 77, ws).estimate);

  // Counters made it onto the stats wire.
  StatsSnapshot s;
  ASSERT_TRUE(client.stats(&s).ok());
  EXPECT_EQ(s.updates_applied, 1u);
  EXPECT_EQ(s.updates_rejected, 0u);

  client.close();
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST(DynamicServer, BadBatchesAnswerTypedAndApplyNothing) {
  DynamicApproxShortestPaths dyn(dyn_graph(), dyn_params());
  QueryServer server(dyn, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  // An out-of-range endpoint rejects the whole batch atomically — the
  // in-range edge in the same batch must NOT land.
  UpdateResponse ur;
  ASSERT_TRUE(client.update({{0, 5, 2.0}, {3, 100, 1.0}}, {}, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kOutOfRange);
  EXPECT_EQ(dyn.epoch(), 0u);

  // The connection survives a rejected batch; a good one still applies.
  ASSERT_TRUE(client.update({{0, 5, 2.0}}, {}, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kOk);
  EXPECT_EQ(ur.epoch, 1u);

  StatsSnapshot s;
  ASSERT_TRUE(client.stats(&s).ok());
  EXPECT_EQ(s.updates_applied, 1u);
  EXPECT_EQ(s.updates_rejected, 1u);

  client.close();
  server.stop();
}

TEST(DynamicServer, StaticServerAnswersUnavailable) {
  const Env& e = env();
  QueryServer server(e.g, e.engine, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  UpdateResponse ur;
  ASSERT_TRUE(client.update({{0, 1, 1.0}}, {}, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kUnavailable);

  // Queries on the same connection are untouched.
  QueryResponse resp;
  ASSERT_TRUE(client.query({{0, 1}}, /*deadline_ms=*/5000, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kOk);

  client.close();
  server.stop();
}

TEST(DynamicServer, SwapFaultSiteStallsTheSwapNotTheQueries) {
  DynamicApproxShortestPaths dyn(dyn_graph(), dyn_params());
  ServerConfig cfg = quiet_config();
  cfg.enable_faults = true;
  cfg.fault_seed = 77;
  cfg.faults.swap_stall = 1.0;  // every swap stalls
  cfg.faults.max_delay_us = 2000;
  QueryServer server(dyn, cfg);
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);

  UpdateResponse ur;
  ASSERT_TRUE(client.update({{1, 50, 1.0}}, {}, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kOk);
  ASSERT_NE(server.injector(), nullptr);
  EXPECT_FALSE(server.injector()->trace(FaultSite::kSwap).empty());

  QueryResponse resp;
  ASSERT_TRUE(client.query({{1, 50}}, /*deadline_ms=*/5000, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kOk);
  EXPECT_EQ(resp.epoch, 1u);

  client.close();
  server.stop();
}

// ---- durable serving over the wire ------------------------------------------

std::string durable_dir(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp && *tmp ? tmp : "/tmp") + "/parsh_server_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

DurabilityOptions durable_options(const std::string& dir) {
  DurabilityOptions opt;
  opt.dir = dir;
  opt.wal.fsync = FsyncPolicy::kOff;
  return opt;
}

/// Send one update frame over a raw stream and read back its response
/// (the wire-level path, no client retry machinery in the way).
Status raw_update(FdStream& stream, const UpdateRequest& req,
                  UpdateResponse* out) {
  std::vector<std::uint8_t> bytes;
  encode_update_request(bytes, req);
  const Deadline deadline = Deadline::after_ms(5000);
  Status s = stream.write_frame(bytes, deadline);
  if (!s.ok()) return s;
  for (;;) {
    Frame frame;
    s = stream.read_frame(&frame, deadline);
    if (!s.ok()) return s;
    if (frame.type != FrameType::kUpdateResponse) continue;
    return decode_update_response(frame.payload, out);
  }
}

TEST(DurableServer, DuplicateUpdateFrameRepliesOriginalVerdictOnTheWire) {
  const std::string dir = durable_dir("dup_wire");
  std::unique_ptr<Durability> durable;
  ASSERT_TRUE(Durability::open(dyn_graph(), dyn_params(), durable_options(dir),
                               &durable)
                  .ok());
  QueryServer server(*durable, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  UpdateRequest req;
  req.id = 1;
  req.client_id = 0x5eed;
  req.sequence = 1;
  req.insert = {{0, 77, 1.0}};
  UpdateResponse first;
  ASSERT_TRUE(raw_update(cfd, req, &first).ok());
  EXPECT_EQ(first.status, StatusCode::kOk);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.flags & kUpdateFlagDuplicate, 0u);

  // The retry a client whose ack got lost would send: same (client_id,
  // sequence), fresh frame id, and — because the client re-encodes — the
  // same delta. The server must answer the ORIGINAL verdict and apply
  // nothing.
  req.id = 2;
  UpdateResponse second;
  ASSERT_TRUE(raw_update(cfd, req, &second).ok());
  EXPECT_EQ(second.id, 2u);
  EXPECT_EQ(second.status, StatusCode::kOk);
  EXPECT_NE(second.flags & kUpdateFlagDuplicate, 0u);
  EXPECT_EQ(second.epoch, first.epoch);
  EXPECT_EQ(second.inserted + second.reweighted,
            first.inserted + first.reweighted);
  EXPECT_EQ(durable->engine().epoch(), 1u);

  StatsSnapshot s;
  std::vector<std::uint8_t> bytes;
  encode_stats_request(bytes);
  ASSERT_TRUE(cfd.write_frame(bytes, Deadline::after_ms(5000)).ok());
  Frame frame;
  ASSERT_TRUE(cfd.read_frame(&frame, Deadline::after_ms(5000)).ok());
  ASSERT_TRUE(decode_stats_response(frame.payload, &s).ok());
  EXPECT_EQ(s.updates_applied, 1u);
  EXPECT_EQ(s.updates_deduped, 1u);
  EXPECT_EQ(s.wal_records, 1u);

  cfd.close();
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(DurableServer, StateSurvivesARestartAndRetrysAreStillDeduped) {
  const std::string dir = durable_dir("restart");
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  ccfg.client_id = 0xfacade;
  QueryResponse before;

  {
    std::unique_ptr<Durability> durable;
    ASSERT_TRUE(Durability::open(dyn_graph(), dyn_params(),
                                 durable_options(dir), &durable)
                    .ok());
    QueryServer server(*durable, quiet_config());
    server.start();
    FdStream sfd, cfd;
    ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
    server.serve_stream(std::move(sfd));
    QueryClient client(std::move(cfd), ccfg);

    for (int i = 0; i < 3; ++i) {
      UpdateResponse ur;
      ASSERT_TRUE(client.update({{0, static_cast<vid>(70 + i), 1.0}}, {}, &ur).ok());
      ASSERT_EQ(ur.status, StatusCode::kOk);
      EXPECT_EQ(ur.epoch, static_cast<std::uint64_t>(i + 1));
    }
    ASSERT_TRUE(client.query({{0, 71}}, 5000, &before).ok());
    ASSERT_EQ(before.status, StatusCode::kOk);
    EXPECT_EQ(before.epoch, 3u);
    client.close();
    server.stop();
    // `durable` drops with no shutdown checkpoint — restart is recovery.
  }

  std::unique_ptr<Durability> durable;
  ASSERT_TRUE(Durability::open(dyn_graph(), dyn_params(), durable_options(dir),
                               &durable)
                  .ok());
  EXPECT_EQ(durable->recovery().replayed, 3u);
  EXPECT_EQ(durable->engine().epoch(), 3u);

  QueryServer server(*durable, quiet_config());
  server.start();
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));

  // Identical answers from the recovered engine.
  QueryClient client(std::move(cfd), ccfg);
  QueryResponse after;
  ASSERT_TRUE(client.query({{0, 71}}, 5000, &after).ok());
  ASSERT_EQ(after.status, StatusCode::kOk);
  ASSERT_EQ(after.answers.size(), 1u);
  EXPECT_DOUBLE_EQ(after.answers[0].estimate, before.answers[0].estimate);

  // A late retry of the last pre-crash batch is STILL deduped: the table
  // came back from the WAL. (Raw frame: this client object's own sequence
  // counter restarted, which is exactly the lost-laptop scenario the
  // explicit client_id config exists for.)
  UpdateRequest dup;
  dup.id = 9;
  dup.client_id = 0xfacade;
  dup.sequence = 3;
  dup.insert = {{0, 72, 1.0}};
  UpdateResponse ur;
  FdStream raw_s, raw_c;
  ASSERT_TRUE(make_socketpair(&raw_s, &raw_c).ok());
  server.serve_stream(std::move(raw_s));
  ASSERT_TRUE(raw_update(raw_c, dup, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kOk);
  EXPECT_NE(ur.flags & kUpdateFlagDuplicate, 0u);
  EXPECT_EQ(durable->engine().epoch(), 3u);

  // And a stale sequence below the recovered high-water mark is rejected.
  dup.id = 10;
  dup.sequence = 2;
  ASSERT_TRUE(raw_update(raw_c, dup, &ur).ok());
  EXPECT_EQ(ur.status, StatusCode::kInvalidArgument);

  StatsSnapshot s;
  ASSERT_TRUE(client.stats(&s).ok());
  EXPECT_EQ(s.recovered_updates, 3u);

  client.close();
  raw_c.close();
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(DurableServer, DroppedResponsesRetryIntoExactlyOnceUnderFaults) {
  const std::string dir = durable_dir("retry_faults");
  std::unique_ptr<Durability> durable;
  ASSERT_TRUE(Durability::open(dyn_graph(), dyn_params(), durable_options(dir),
                               &durable)
                  .ok());
  ServerConfig cfg = quiet_config();
  cfg.enable_faults = true;
  cfg.fault_seed = 23;
  cfg.faults.drop_connection = 0.2;  // responses vanish mid-roundtrip
  cfg.faults.tear_write = 0.1;
  QueryServer server(*durable, cfg);
  ASSERT_TRUE(server.listen_tcp(0).ok());

  ClientConfig ccfg;
  ccfg.max_retries = 8;
  ccfg.backoff_base_ms = 1;
  ccfg.backoff_max_ms = 4;
  ccfg.seed = 5;
  QueryClient client;
  ASSERT_TRUE(QueryClient::connect_tcp(server.port(), ccfg, &client).ok());

  std::uint64_t acked = 0, lost = 0;
  for (int i = 0; i < 12; ++i) {
    UpdateResponse ur;
    const Status s =
        client.update({{static_cast<vid>(i % 50),
                        static_cast<vid>(50 + i % 50), 2.0}},
                      {}, &ur);
    if (s.ok() && ur.status == StatusCode::kOk) {
      ++acked;
    } else {
      ++lost;  // retries exhausted — MAY have applied (ack lost forever)
    }
  }
  // The invariant the WAL + dedup table exist for: however many responses
  // the injector ate, a batch applies at most once no matter how many
  // attempts carried it. Every acked batch applied exactly once; a batch
  // whose every ack was eaten may or may not have landed — never twice.
  EXPECT_GT(acked, 0u);
  EXPECT_GE(durable->engine().epoch(), acked);
  EXPECT_LE(durable->engine().epoch(), acked + lost);
  // updates_applied counts actual applies, so it tracks the epoch even
  // when the response never reached the client.
  EXPECT_EQ(server.stats().updates_applied, durable->engine().epoch());

  client.close();
  server.stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(DurableServer, PeerVanishingMidResponseDoesNotKillTheProcess) {
  // ignore_sigpipe() coverage: a client that sends a query and disappears
  // leaves the server writing into a closed socket. Without SIGPIPE
  // ignored the whole process dies; with it the write fails with EPIPE,
  // the connection is released, and the next client is served normally.
  const std::string dir = durable_dir("sigpipe");
  std::unique_ptr<Durability> durable;
  ASSERT_TRUE(Durability::open(dyn_graph(), dyn_params(), durable_options(dir),
                               &durable)
                  .ok());
  QueryServer server(*durable, quiet_config());
  server.start();

  for (int round = 0; round < 3; ++round) {
    FdStream sfd, cfd;
    ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
    server.serve_stream(std::move(sfd));
    std::vector<std::uint8_t> bytes;
    QueryRequest req;
    req.id = 1;
    req.deadline_ms = 5000;
    req.pairs = {{0, 50}};
    encode_query_request(bytes, req);
    ASSERT_TRUE(cfd.write_frame(bytes, Deadline::after_ms(5000)).ok());
    cfd.close();  // vanish before the response is written
  }

  // The server survived; a well-behaved client still gets answers.
  FdStream sfd, cfd;
  ASSERT_TRUE(make_socketpair(&sfd, &cfd).ok());
  server.serve_stream(std::move(sfd));
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client(std::move(cfd), ccfg);
  QueryResponse resp;
  ASSERT_TRUE(client.query({{0, 50}}, 5000, &resp).ok());
  EXPECT_EQ(resp.status, StatusCode::kOk);

  client.close();
  server.stop();
  EXPECT_EQ(server.open_connections(), 0u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(QueryServer, StopIsGracefulAndIdempotent) {
  const Env& e = env();
  QueryServer server(e.g, e.engine, quiet_config());
  ASSERT_TRUE(server.listen_tcp(0).ok());
  ClientConfig ccfg;
  ccfg.max_retries = 0;
  QueryClient client;
  ASSERT_TRUE(QueryClient::connect_tcp(server.port(), ccfg, &client).ok());
  ASSERT_TRUE(client.ping().ok());

  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(server.open_connections(), 0u);

  // The stopped server's side is gone; the client finds out on next use.
  QueryResponse resp;
  EXPECT_FALSE(client.query({{0, 1}}, 100, &resp).ok());
}

}  // namespace
}  // namespace parsh::server
