// Build smoke test: the umbrella header compiles and the most basic
// end-to-end pipeline runs.
#include <gtest/gtest.h>

#include "core/parsh.hpp"

namespace parsh {
namespace {

TEST(Smoke, UmbrellaHeaderPipeline) {
  const Graph g = make_grid(10, 10);
  EXPECT_EQ(g.num_vertices(), 100u);
  const Clustering c = est_cluster(g, 0.5, /*seed=*/7);
  EXPECT_GT(c.num_clusters, 0u);
  const SpannerResult sp = unweighted_spanner(g, 2.0, /*seed=*/7);
  EXPECT_FALSE(sp.edges.empty());
  const HopsetResult hs = build_hopset(g, HopsetParams{});
  EXPECT_GE(hs.edges.size(), 0u);
}

}  // namespace
}  // namespace parsh
