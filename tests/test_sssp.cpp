// Tests for the shortest-path substrate: BFS, weighted (Dial) BFS,
// Dijkstra, hop-limited Bellman-Ford and delta-stepping, cross-checked
// against each other over parameterized workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/bfs.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/hop_limited.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {
namespace {

TEST(Bfs, PathDistancesAreIndices) {
  const Graph g = make_path(50);
  const BfsResult r = bfs(g, 0);
  for (vid v = 0; v < 50; ++v) EXPECT_EQ(r.dist[v], v);
  // 49 claiming levels plus the final empty expansion.
  EXPECT_EQ(r.rounds, 50u);
}

TEST(Bfs, UnreachableVerticesMarked) {
  const Graph g = Graph::from_edges(4, {{0, 1, 1}});
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.dist[2], kUnreachedHops);
  EXPECT_EQ(r.dist[3], kUnreachedHops);
}

TEST(Bfs, ParentsFormShortestPathTree) {
  const Graph g = make_grid(8, 8);
  const BfsResult r = bfs(g, 0);
  for (vid v = 1; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.parent[v], kNoVertex);
    EXPECT_EQ(r.dist[r.parent[v]] + 1, r.dist[v]);
  }
}

TEST(Bfs, MaxLevelsTruncates) {
  const Graph g = make_path(50);
  const BfsResult r = bfs(g, 0, 10);
  EXPECT_EQ(r.dist[10], 10u);
  EXPECT_EQ(r.dist[11], kUnreachedHops);
}

TEST(MultiBfs, NearestSourceWinsAndOwnersPartition) {
  const Graph g = make_path(30);
  const MultiBfsResult r = multi_bfs(g, {0, 29});
  for (vid v = 0; v < 30; ++v) {
    EXPECT_EQ(r.dist[v], std::min(v, 29 - v));
    EXPECT_EQ(r.owner[v], v <= 14 ? 0u : 1u);  // tie at 14/15 splits by level claim
  }
}

TEST(MultiBfs, DuplicateSourcesHandled) {
  const Graph g = make_cycle(10);
  const MultiBfsResult r = multi_bfs(g, {3, 3, 3});
  EXPECT_EQ(r.dist[3], 0u);
  EXPECT_EQ(r.owner[3], 0u);
}

class SsspCross : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph weighted_graph() const {
    return with_uniform_weights(
        ensure_connected(make_random_graph(300, 900, GetParam())), 1, 20,
        GetParam() + 99);
  }
};

TEST_P(SsspCross, WeightedBfsMatchesDijkstra) {
  const Graph g = weighted_graph();
  const auto d = dijkstra(g, 0);
  const auto w = weighted_bfs(g, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(w.dist[v], d.dist[v]) << v;
}

TEST_P(SsspCross, DeltaSteppingMatchesDijkstra) {
  const Graph g = weighted_graph();
  const auto d = dijkstra(g, 0);
  for (weight_t delta : {1.0, 4.0, 30.0}) {
    const auto ds = delta_stepping(g, 0, delta);
    for (vid v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(ds.dist[v], d.dist[v]) << "delta=" << delta << " v=" << v;
    }
  }
}

TEST_P(SsspCross, HopLimitedConvergesToDijkstra) {
  const Graph g = weighted_graph();
  const auto d = dijkstra(g, 0);
  const auto h = hop_limited_sssp(g, 0, g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(h.dist[v], d.dist[v]) << v;
}

TEST_P(SsspCross, BfsMatchesDijkstraOnUnitWeights) {
  const Graph g = ensure_connected(make_random_graph(300, 900, GetParam()));
  const auto d = dijkstra(g, 0);
  const auto b = bfs(g, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(static_cast<weight_t>(b.dist[v]), d.dist[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspCross, ::testing::Values(1, 2, 3, 4));

TEST(WeightedBfs, RoundsTrackDistanceValues) {
  // On a unit-weight path, every distance value is one round.
  const Graph g = make_path(40);
  const auto r = weighted_bfs(g, 0);
  EXPECT_EQ(r.rounds, 40u);  // distances 0..39
}

TEST(WeightedBfs, LimitTruncatesSearch) {
  const Graph g = with_uniform_weights(make_path(30), 2, 2, 1);
  const auto r = weighted_bfs(g, 0, 10.0);
  EXPECT_EQ(r.dist[5], 10);
  EXPECT_EQ(r.dist[6], kInfWeight);
}

TEST(WeightedBfs, MultiSourceOwnersSplitPath) {
  const Graph g = make_path(21);
  const auto r = multi_weighted_bfs(g, {0, 20});
  EXPECT_EQ(r.owner[5], 0u);
  EXPECT_EQ(r.owner[15], 1u);
  EXPECT_EQ(r.dist[10], 10);
  EXPECT_EQ(r.owner[10], 0u);  // exact tie goes to the smaller source index
}

TEST(Dijkstra, LimitedStopsAtRadius) {
  const Graph g = with_uniform_weights(make_path(30), 3, 3, 1);
  const auto r = dijkstra_limited(g, 0, 9.0);
  EXPECT_EQ(r.dist[3], 9);
  EXPECT_EQ(r.dist[4], kInfWeight);
}

TEST(Dijkstra, StDistanceAndPathExtraction) {
  const Graph g = make_grid(5, 5);
  EXPECT_EQ(st_distance(g, 0, 24), 8);
  const auto r = dijkstra(g, 0);
  const auto path = extract_path(r.parent, 0, 24);
  ASSERT_EQ(path.size(), 9u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 24u);
}

TEST(Dijkstra, PathExtractionReturnsEmptyWhenDisconnected) {
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {2, 3, 1}});
  const auto r = dijkstra(g, 0);
  EXPECT_TRUE(extract_path(r.parent, 0, 3).empty());
}

TEST(HopLimited, DistHIsMonotoneNonIncreasingInH) {
  const Graph g = with_uniform_weights(ensure_connected(make_random_graph(100, 300, 5)),
                                       1, 10, 55);
  weight_t prev = kInfWeight;
  for (std::uint64_t h : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const auto r = hop_limited_sssp(g, 0, h, /*stop_early=*/false);
    const weight_t d = r.dist[99];
    if (prev != kInfWeight) {
      EXPECT_LE(d, prev);
    }
    prev = d;
  }
}

TEST(HopLimited, ExactlyHHopsOnAPath) {
  const Graph g = make_path(20);
  const auto r = hop_limited_sssp(g, 0, 7, /*stop_early=*/false);
  EXPECT_EQ(r.dist[7], 7);
  EXPECT_EQ(r.dist[8], kInfWeight);
}

TEST(HopLimited, HopsToApproxFindsShortcut) {
  // Path plus a direct (slightly heavier) edge: one hop reaches within
  // the approximation budget immediately.
  Graph g = make_path(100);
  g = g.with_extra_edges({{0, 99, 110}});
  EXPECT_EQ(hops_to_approx(g, 0, 99, 99.0, 0.2, 1000), 1u);
  // With a tight budget the search must walk the path.
  EXPECT_EQ(hops_to_approx(g, 0, 99, 99.0, 0.05, 1000), 99u);
}

TEST(HopLimited, SourceEqualsTargetIsZeroHops) {
  const Graph g = make_path(5);
  EXPECT_EQ(hops_to_approx(g, 2, 2, 0.0, 0.1, 10), 0u);
}

TEST(DeltaStepping, HeuristicDeltaAlsoExact) {
  const Graph g = with_uniform_weights(ensure_connected(make_random_graph(200, 600, 8)),
                                       1, 50, 88);
  const auto d = dijkstra(g, 0);
  const auto ds = delta_stepping(g, 0);  // delta = heuristic
  for (vid v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(ds.dist[v], d.dist[v]);
}

TEST(DeltaStepping, PhasesBoundedOnUnitPath) {
  const Graph g = make_path(64);
  const auto ds = delta_stepping(g, 0, 1.0);
  EXPECT_EQ(ds.dist[63], 63);
  EXPECT_LE(ds.phases, 200u);
}

/// parent[] must be a valid shortest-path tree: every reached non-source
/// vertex has a parent edge whose relaxation is tight.
void expect_valid_sssp_tree(const Graph& g, vid source,
                            const std::vector<weight_t>& dist,
                            const std::vector<vid>& parent) {
  ASSERT_EQ(parent[source], kNoVertex);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (v == source || dist[v] == kInfWeight) {
      EXPECT_EQ(parent[v], kNoVertex) << v;
      continue;
    }
    const vid p = parent[v];
    ASSERT_NE(p, kNoVertex) << v;
    bool tight = false;
    for (eid e = g.begin(v); e < g.end(v); ++e) {
      if (g.target(e) == p && dist[p] + g.weight(e) == dist[v]) tight = true;
    }
    EXPECT_TRUE(tight) << "no tight edge " << p << "->" << v;
  }
}

TEST(DeltaStepping, ParentsFormShortestPathTree) {
  for (std::uint64_t seed : {3u, 4u}) {
    const Graph g = with_uniform_weights(
        ensure_connected(make_random_graph(300, 900, seed)), 1, 20, seed + 5);
    for (weight_t delta : {0.0, 1.0, 8.0}) {
      const auto ds = delta_stepping(g, 0, delta);
      expect_valid_sssp_tree(g, 0, ds.dist, ds.parent);
    }
  }
}

TEST(WeightedBfs, ParentsFormShortestPathTree) {
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(300, 900, 6)), 1, 9, 11);
  const auto r = weighted_bfs(g, 0);
  expect_valid_sssp_tree(g, 0, r.dist, r.parent);
}

TEST(DeltaStepping, PackedRoundsMatchThreePhaseBitExactly) {
  // Weights >= 4096 push bucket indices past the 2^12 packed boundary at
  // delta = 1, so most rounds take the fused (dist, parent) write; the
  // forced-three-phase run must produce byte-identical results.
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(400, 1600, 9)), 4096, 8192, 21);
  SsspWorkspace packed_ws;
  SsspWorkspace forced_ws;
  forced_ws.force_three_phase(true);
  const auto a = delta_stepping(g, 0, 1.0, packed_ws);
  const auto b = delta_stepping(g, 0, 1.0, forced_ws);
  EXPECT_GT(packed_ws.packed_rounds(), 0u);
  EXPECT_EQ(forced_ws.packed_rounds(), 0u);
  EXPECT_GT(forced_ws.fallback_rounds(), 0u);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.relaxations, b.relaxations);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(a.dist, d.dist);
}

TEST(SsspWorkspace, WarmRepeatCallsDoZeroWorkspaceAllocations) {
  // One workspace across the whole SSSP family: the first pass warms the
  // buffers, identical repeat calls must not allocate (engines, arrays or
  // scratch — alloc_events() covers all three). Pinned to one worker:
  // which worker's staging buffer a winner lands in is schedule-dependent
  // at higher thread counts, so the per-worker high-water marks — and
  // with them the exact allocation count — are only reproducible here.
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(500, 2000, 12)), 1, 9, 13);
  SsspWorkspace ws;
  auto run_family = [&] {
    const auto b = bfs(g, 3, kNoVertex, ws);
    const auto m = multi_bfs(g, {1, 7}, kNoVertex, ws);
    const auto w = weighted_bfs(g, 2, kInfWeight, ws);
    const auto ds = delta_stepping(g, 0, 4.0, ws);
    const auto h = hop_limited_sssp(g, 5, 64, true, kInfWeight, ws);
    return std::tuple(b.dist, m.dist, w.dist, ds.dist, ds.parent, h.rounds);
  };
  const auto cold = run_family();
  const std::uint64_t after_cold = ws.alloc_events();
  EXPECT_GT(after_cold, 0u);
  const auto warm = run_family();
  EXPECT_EQ(ws.alloc_events(), after_cold);
  EXPECT_EQ(cold, warm);
#ifdef PARSH_HAVE_OPENMP
  omp_set_num_threads(before);
#endif
}

TEST(SsspWorkspace, ResultsReadableInPlaceUntilNextRun) {
  const Graph g = with_uniform_weights(make_path(30), 2, 2, 1);
  SsspWorkspace ws;
  const auto r = weighted_bfs(g, 0, kInfWeight, ws);
  EXPECT_EQ(ws.touched().size(), 30u);
  for (vid v = 0; v < 30; ++v) {
    EXPECT_EQ(ws.dist_of(v), r.dist[v]);
    EXPECT_EQ(ws.parent_of(v), r.parent[v]);
  }
  // A distance-capped run leaves untouched vertices reading infinity.
  (void)hop_limited_sssp(g, 0, 100, true, 6.0, ws);
  EXPECT_EQ(ws.dist_of(3), 6.0);
  EXPECT_EQ(ws.dist_of(4), kInfWeight);
  EXPECT_EQ(ws.parent_of(4), kNoVertex);
  EXPECT_EQ(ws.touched().size(), 4u);
}

}  // namespace
}  // namespace parsh
