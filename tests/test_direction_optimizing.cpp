// Push-vs-pull bit-equality and direction-flip coverage for the
// direction-optimizing frontier engine (parallel/bucket_engine.hpp).
//
// The FrontierRelaxer's contract: a pull (bitmap) round emits, per
// candidate vertex, exactly the lexicographic minimum of the proposals the
// push round would have emitted for it — the suppressed proposals are
// strict losers of the very min-reduce that resolves them — so every
// driver's OUTPUT (distances, parents, clustering) is bit-identical across
// forced push, forced pull, the organic hysteresis, team/fork-join
// scheduling, and 1 vs 4 threads. Work-proxy counters (delta phases and
// relaxations, est work) are direction-DEPENDENT by design (push pops
// stale-only buckets pull never creates) and are deliberately not compared
// across directions; rounds/levels are direction-independent and are.
//
// Suites here run under the TSan CI job (no *Warm* name) and the
// PARSH_FORCE_PULL ctest lane; explicit force_push(true)/force_pull(true)
// override the env seam, so both directions are exercised regardless.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster_stats.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/bfs.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {
namespace {

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in the
/// sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

void expect_same_clustering(const Clustering& a, const Clustering& b) {
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.center, b.center);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.rounds, b.rounds);
}

/// Graphs whose dense rounds make pull worthwhile AND whose frontier sizes
/// straddle the organic switch threshold: a random graph (frontiers grow
/// through m/20 then shrink back through m/64 — both hysteresis edges
/// fire), a star and a hub graph (one round covers nearly every vertex,
/// and pull candidates have huge degree).
std::vector<std::pair<const char*, Graph>> direction_graphs(std::uint64_t seed) {
  std::vector<std::pair<const char*, Graph>> out;
  out.emplace_back("random", ensure_connected(make_random_graph(6000, 36000, seed)));
  out.emplace_back("star", make_star(4000));
  out.emplace_back("hubs", make_hubs(8000, 3, seed + 1));
  return out;
}

class DirectionOptimizing : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectionOptimizing, EstClusterPushVsPullAcrossThreadsAndTeams) {
  for (const auto& [name, g] : direction_graphs(GetParam())) {
    SCOPED_TRACE(name);
    EstClusterWorkspace push_ws;
    push_ws.force_push(true);
    const Clustering pushed =
        at_threads(1, [&] { return est_cluster(g, 0.5, GetParam(), push_ws); });
    EXPECT_EQ(push_ws.pull_rounds(), 0u);
    EXPECT_TRUE(validate_clustering(g, pushed)) << name;
    for (int threads : {1, 4}) {
      for (const bool fork_join : {false, true}) {
        EstClusterWorkspace ws;
        ws.force_pull(true);
        ws.force_fork_join(fork_join);
        const Clustering pulled = at_threads(
            threads, [&] { return est_cluster(g, 0.5, GetParam(), ws); });
        EXPECT_GT(ws.pull_rounds(), 0u) << name << " @" << threads;
        EXPECT_GT(ws.pull_edges_scanned(), 0u) << name << " @" << threads;
        expect_same_clustering(pulled, pushed);
      }
    }
  }
}

TEST_P(DirectionOptimizing, BfsPushVsPullAcrossThreadsAndTeams) {
  // Parents included: the per-level min-via argmin must survive the
  // direction flip bit-for-bit (the pull scan's early exit on the sorted
  // adjacency IS that argmin).
  for (const auto& [name, g] : direction_graphs(GetParam())) {
    SCOPED_TRACE(name);
    SsspWorkspace push_ws;
    push_ws.force_push(true);
    const BfsResult pushed =
        at_threads(1, [&] { return bfs(g, 0, kNoVertex, push_ws); });
    EXPECT_EQ(push_ws.pull_rounds(), 0u);
    for (int threads : {1, 4}) {
      for (const bool fork_join : {false, true}) {
        SsspWorkspace ws;
        ws.force_pull(true);
        ws.force_fork_join(fork_join);
        const BfsResult pulled =
            at_threads(threads, [&] { return bfs(g, 0, kNoVertex, ws); });
        EXPECT_GT(ws.pull_rounds(), 0u) << name << " @" << threads;
        EXPECT_EQ(pulled.dist, pushed.dist);
        EXPECT_EQ(pulled.parent, pushed.parent);
        EXPECT_EQ(pulled.rounds, pushed.rounds);
      }
    }
  }
}

TEST_P(DirectionOptimizing, MultiBfsPushVsPullOwners) {
  for (const auto& [name, g] : direction_graphs(GetParam())) {
    SCOPED_TRACE(name);
    const std::vector<vid> sources = {0, 1, g.num_vertices() / 2};
    SsspWorkspace push_ws;
    push_ws.force_push(true);
    const MultiBfsResult pushed =
        at_threads(1, [&] { return multi_bfs(g, sources, kNoVertex, push_ws); });
    for (int threads : {1, 4}) {
      SsspWorkspace ws;
      ws.force_pull(true);
      const MultiBfsResult pulled =
          at_threads(threads, [&] { return multi_bfs(g, sources, kNoVertex, ws); });
      EXPECT_GT(ws.pull_rounds(), 0u) << name << " @" << threads;
      EXPECT_EQ(pulled.dist, pushed.dist);
      EXPECT_EQ(pulled.owner, pushed.owner);
      EXPECT_EQ(pulled.rounds, pushed.rounds);
    }
  }
}

TEST_P(DirectionOptimizing, DeltaSteppingPushVsPullAcrossThreadsAndTeams) {
  for (const auto& [name, base] : direction_graphs(GetParam())) {
    SCOPED_TRACE(name);
    const Graph g = with_uniform_weights(base, 1, 9, GetParam() + 17);
    for (const weight_t delta : {0.0, 4.0}) {
      SsspWorkspace push_ws;
      push_ws.force_push(true);
      const auto pushed =
          at_threads(1, [&] { return delta_stepping(g, 0, delta, push_ws); });
      EXPECT_EQ(push_ws.pull_rounds(), 0u);
      for (int threads : {1, 4}) {
        for (const bool fork_join : {false, true}) {
          SsspWorkspace ws;
          ws.force_pull(true);
          ws.force_fork_join(fork_join);
          const auto pulled =
              at_threads(threads, [&] { return delta_stepping(g, 0, delta, ws); });
          EXPECT_GT(ws.pull_rounds(), 0u) << name << " @" << threads;
          // Distances and the parent tree are the contract; phases and
          // relaxations are direction-dependent work proxies (push pops
          // stale-only buckets pull never creates) and are not compared.
          EXPECT_EQ(pulled.dist, pushed.dist);
          EXPECT_EQ(pulled.parent, pushed.parent);
        }
      }
    }
  }
}

TEST_P(DirectionOptimizing, OrganicHysteresisFlipsAndMatchesForcedRuns) {
  // Unforced runs on the random graph must trip the enter threshold
  // organically (36k frontier edges on m/20 = 3.6k-edge bound), run some
  // rounds in each direction, produce identical output to both forced
  // runs, and make the SAME direction decisions at every thread count
  // (the heuristic only reads round totals and m).
  const Graph g = ensure_connected(make_random_graph(6000, 36000, GetParam()));
  SsspWorkspace push_ws;
  push_ws.force_push(true);
  const BfsResult pushed =
      at_threads(1, [&] { return bfs(g, 0, kNoVertex, push_ws); });
  std::vector<std::uint64_t> pull_rounds_by_thread;
  for (int threads : {1, 4}) {
    SsspWorkspace ws;
    ws.force_pull(false);  // clears a PARSH_FORCE_PULL env default too
    const BfsResult organic =
        at_threads(threads, [&] { return bfs(g, 0, kNoVertex, ws); });
    EXPECT_GT(ws.pull_rounds(), 0u) << "@" << threads;
    EXPECT_LT(ws.pull_rounds(), static_cast<std::uint64_t>(pushed.rounds))
        << "@" << threads;  // sparse head/tail stayed push
    EXPECT_EQ(organic.dist, pushed.dist);
    EXPECT_EQ(organic.parent, pushed.parent);
    EXPECT_EQ(organic.rounds, pushed.rounds);
    pull_rounds_by_thread.push_back(ws.pull_rounds());
  }
  EXPECT_EQ(pull_rounds_by_thread[0], pull_rounds_by_thread[1]);
}

/// Minimal TeamLike for driving the relaxer directly (sequential loop).
struct InlineTeam {
  template <typename F>
  void loop(std::size_t lo, std::size_t hi, std::size_t /*grain*/, F f) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
  }
};

TEST_P(DirectionOptimizing, HysteresisEntersHighExitsLow) {
  // Drive the relaxer directly with a synthetic round sequence: enter at
  // >= m/enter_div, stay until < m/exit_div — totals between the two
  // bounds keep the current direction (no thrashing) — and the n/2
  // profitability floor (kPullFloorDivisor) gates both conditions: a
  // round whose total clears the hysteresis band but not the floor still
  // runs push (the Theta(n) candidate sweep could not pay for itself).
  FrontierRelaxer relaxer;
  relaxer.force_pull(false);  // clear a PARSH_FORCE_PULL env default
  relaxer.set_pull_divisors(10, 100);  // m=1000: enter at 100, exit below 10
  relaxer.begin_run();
  InlineTeam team;
  const std::size_t n = 64;  // profitability floor n/2 = 32
  const std::uint64_t m = 1000;
  std::vector<vid> frontier = {1, 2, 3};
  std::uint64_t degree = 0;
  auto run_round = [&](std::uint64_t per_vertex_degree) {
    degree = per_vertex_degree;
    return relaxer.relax(
        team, frontier, n, m, /*seq_threshold=*/0,
        [&](std::size_t) { return static_cast<std::size_t>(degree); },
        [&](std::size_t, std::size_t, std::size_t) {},
        [&](std::size_t, std::size_t, std::size_t) {},
        [&](vid) -> std::size_t { return 0; });
  };
  EXPECT_FALSE(run_round(20).pull);   // 60 < 100: below the enter bound
  EXPECT_TRUE(run_round(40).pull);    // 120 >= 100: enters pull
  EXPECT_TRUE(run_round(20).pull);    // 60 in [32, 100): hysteresis holds
  EXPECT_FALSE(run_round(10).pull);   // 30 >= exit 10 but < floor 32: exits
  EXPECT_TRUE(run_round(40).pull);    // 120 >= 100: re-enters
  EXPECT_FALSE(run_round(3).pull);    // 9 < 10: exits below the band too
  EXPECT_FALSE(run_round(20).pull);   // 60 < 100: does not re-enter
  EXPECT_EQ(relaxer.pull_rounds(), 3u);  // enter + hold + re-enter
  relaxer.begin_run();                // fresh run resets the state machine
  EXPECT_FALSE(run_round(20).pull);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionOptimizing,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

}  // namespace
}  // namespace parsh
