// Tests for the binary .pcsr format and the GraphStorage substrate it
// feeds: round trips (text -> binary -> mmap) must be bit-identical, a
// corrupted or truncated file must throw PcsrError instead of handing an
// algorithm garbage arrays (mirroring the strictness contract of the
// text readers' IoError), the delta-varint compressed adjacency must be
// observationally equivalent to the flat one across every traversal
// driver and thread count (with the compressed_rounds counters proving
// the compressed decode path actually ran), and the storage-handle
// sharing that makes Graph copies O(1) must actually share.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/est_cluster.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/pcsr.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/bfs.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {
namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "parsh_pcsr_" + name;
}

/// Run `f` with the OpenMP worker count forced to `threads` (no-op in
/// the sequential build, where both runs are trivially identical).
template <typename F>
auto at_threads(int threads, F f) {
#ifdef PARSH_HAVE_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = f();
  omp_set_num_threads(before);
  return result;
#else
  (void)threads;
  return f();
#endif
}

/// Storage-level bit equality: same offsets, targets, weights.
void expect_same_csr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  ASSERT_EQ(a.weighted(), b.weighted());
  const GraphStorage& sa = a.storage();
  const GraphStorage& sb = b.storage();
  ASSERT_EQ(sa.offsets.size(), sb.offsets.size());
  EXPECT_TRUE(std::equal(sa.offsets.begin(), sa.offsets.end(), sb.offsets.begin()));
  ASSERT_EQ(sa.targets.size(), sb.targets.size());
  EXPECT_TRUE(std::equal(sa.targets.begin(), sa.targets.end(), sb.targets.begin()));
  ASSERT_EQ(sa.weights.size(), sb.weights.size());
  EXPECT_TRUE(std::equal(sa.weights.begin(), sa.weights.end(), sb.weights.begin()));
}

Graph test_graph_unweighted() {
  return ensure_connected(make_rmat(600, 2400, 11));
}

Graph test_graph_weighted() {
  return with_uniform_weights(test_graph_unweighted(), 1, 9, 3);
}

// ---- round trips -----------------------------------------------------------

TEST(Pcsr, UnweightedRoundTripBitIdentical) {
  const Graph g = test_graph_unweighted();
  const std::string path = tmp_path("rt_unweighted.pcsr");
  write_pcsr_file(path, g);
  const Graph loaded = load_pcsr_file(path);
  expect_same_csr(g, loaded);
  EXPECT_TRUE(loaded.validate());
  EXPECT_FALSE(loaded.weighted());
  std::remove(path.c_str());
}

TEST(Pcsr, WeightedRoundTripBitIdentical) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("rt_weighted.pcsr");
  write_pcsr_file(path, g);
  const Graph loaded = load_pcsr_file(path);
  expect_same_csr(g, loaded);
  EXPECT_TRUE(loaded.validate());
  EXPECT_TRUE(loaded.weighted());
  std::remove(path.c_str());
}

TEST(Pcsr, EdgelessGraphRoundTrips) {
  const Graph g = Graph::from_edges(7, {});
  const std::string path = tmp_path("rt_edgeless.pcsr");
  write_pcsr_file(path, g);
  const Graph loaded = load_pcsr_file(path);
  EXPECT_EQ(loaded.num_vertices(), 7u);
  EXPECT_EQ(loaded.num_arcs(), 0u);
  EXPECT_TRUE(loaded.validate());
  std::remove(path.c_str());
}

TEST(Pcsr, TextToBinaryToMmapPreservesTheGraph) {
  const Graph g = test_graph_weighted();
  const std::string text = tmp_path("chain.txt");
  const std::string bin = tmp_path("chain.pcsr");
  write_edge_list_file(text, g);
  write_pcsr_file(bin, read_edge_list_file(text));
  const Graph loaded = load_pcsr_file(bin);
  expect_same_csr(g, loaded);
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST(Pcsr, CompressedRoundTripDecompressesBitIdentical) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("rt_compressed.pcsr");
  PcsrWriteOptions opt;
  opt.compress = true;
  write_pcsr_file(path, g, opt);
  const Graph loaded = load_pcsr_file(path);
  EXPECT_TRUE(loaded.compressed());
  EXPECT_FALSE(loaded.has_flat_adjacency());
  EXPECT_TRUE(loaded.validate());
  expect_same_csr(g, loaded.decompress_adjacency());
  // Compression must actually shrink this adjacency (gap varints beat
  // 4-byte absolute targets on a 600-vertex graph).
  EXPECT_LT(loaded.adjacency_bytes(), g.adjacency_bytes());
  std::remove(path.c_str());
}

TEST(Pcsr, InfoReportsHeaderWithoutLoading) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("info.pcsr");
  PcsrWriteOptions opt;
  opt.compress = true;
  write_pcsr_file(path, g, opt);
  const PcsrInfo info = read_pcsr_info(path);
  EXPECT_EQ(info.version, 1u);
  EXPECT_TRUE(info.weighted);
  EXPECT_TRUE(info.compressed);
  EXPECT_EQ(info.num_vertices, g.num_vertices());
  EXPECT_EQ(info.num_arcs, g.num_arcs());
  EXPECT_GT(info.file_bytes, 0u);
  EXPECT_GT(info.adjacency_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Pcsr, ChecksumVerificationAcceptsAnIntactFile) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("checksums.pcsr");
  write_pcsr_file(path, g);
  PcsrLoadOptions opt;
  opt.verify_checksums = true;
  expect_same_csr(g, load_pcsr_file(path, opt));
  std::remove(path.c_str());
}

// Algorithms must not care whether the arrays live on the heap or in a
// mapped file: identical outputs, not just isomorphic ones.
TEST(Pcsr, AlgorithmsBitIdenticalOnMmapStorage) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("algos.pcsr");
  write_pcsr_file(path, g);
  const Graph loaded = load_pcsr_file(path);

  const Clustering c1 = est_cluster(g, 0.4, 5);
  const Clustering c2 = est_cluster(loaded, 0.4, 5);
  EXPECT_EQ(c1.cluster_of, c2.cluster_of);
  EXPECT_EQ(c1.parent, c2.parent);
  EXPECT_EQ(c1.dist_to_center, c2.dist_to_center);

  const BfsResult b1 = bfs(g, 0);
  const BfsResult b2 = bfs(loaded, 0);
  EXPECT_EQ(b1.dist, b2.dist);
  EXPECT_EQ(b1.parent, b2.parent);

  const DeltaSteppingResult d1 = delta_stepping(g, 0);
  const DeltaSteppingResult d2 = delta_stepping(loaded, 0);
  EXPECT_EQ(d1.dist, d2.dist);
  std::remove(path.c_str());
}

// ---- corruption sweep ------------------------------------------------------
//
// Mirrors the strict-reader sweep in test_graph.cpp's GraphIo cases: every
// way a file can lie must surface as a typed error before any algorithm
// sees the arrays. Header offsets below match the format doc in pcsr.hpp.

class PcsrCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = tmp_path("corrupt.pcsr");
    write_pcsr_file(path_, test_graph_weighted());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::uint8_t> slurp() {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  void dump(const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// Recompute the header checksum after a deliberate header edit, so the
  /// loader's structural validation (not the checksum) is what trips.
  static void fix_header_checksum(std::vector<std::uint8_t>& bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < 184; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
    std::memcpy(bytes.data() + 184, &h, 8);
  }

  std::string path_;
};

TEST_F(PcsrCorruption, BadMagicRejected) {
  auto bytes = slurp();
  bytes[0] ^= 0xFF;
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, UnknownVersionRejected) {
  auto bytes = slurp();
  bytes[8] = 99;
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, UnknownFlagBitsRejected) {
  auto bytes = slurp();
  bytes[12] |= 0x80;
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, FlippedHeaderByteFailsTheHeaderChecksum) {
  auto bytes = slurp();
  bytes[17] ^= 0x01;  // low bytes of n, checksum NOT fixed up
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, LyingVertexCountRejected) {
  auto bytes = slurp();
  std::uint64_t n = 0;
  std::memcpy(&n, bytes.data() + 16, 8);
  n += 1;  // offsets section no longer holds n+1 entries
  std::memcpy(bytes.data() + 16, &n, 8);
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, LyingArcCountRejected) {
  auto bytes = slurp();
  std::uint64_t arcs = 0;
  std::memcpy(&arcs, bytes.data() + 24, 8);
  arcs += 2;  // targets section no longer holds `arcs` entries
  std::memcpy(bytes.data() + 24, &arcs, 8);
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, TruncatedFileRejected) {
  auto bytes = slurp();
  bytes.resize(bytes.size() / 2);  // the last sections now run past EOF
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, FileSmallerThanTheHeaderRejected) {
  dump(std::vector<std::uint8_t>(64, 0));
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, OverlappingSectionsRejected) {
  auto bytes = slurp();
  // Pull the targets section's offset (table entry 1, at 40 + 24) back
  // onto the offsets section.
  std::uint64_t off = 4096;
  std::memcpy(bytes.data() + 40 + 24, &off, 8);
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, UnalignedSectionRejected) {
  auto bytes = slurp();
  std::uint64_t off = 0;
  std::memcpy(&off, bytes.data() + 40 + 24, 8);
  off += 8;  // no longer page-aligned
  std::memcpy(bytes.data() + 40 + 24, &off, 8);
  fix_header_checksum(bytes);
  dump(bytes);
  EXPECT_THROW(load_pcsr_file(path_), PcsrError);
}

TEST_F(PcsrCorruption, PayloadBitFlipCaughtOnlyWithChecksumsOn) {
  auto bytes = slurp();
  bytes[4096 + 8] ^= 0x04;  // inside the offsets section payload
  // Keep the CSR structurally sane: offsets[1] changed, which the O(1)
  // structural checks cannot see — only the section checksum can.
  dump(bytes);
  PcsrLoadOptions verify;
  verify.verify_checksums = true;
  EXPECT_THROW(load_pcsr_file(path_, verify), PcsrError);
}

TEST_F(PcsrCorruption, ErrorsCarryTheFileOffset) {
  auto bytes = slurp();
  bytes[0] ^= 0xFF;
  dump(bytes);
  try {
    load_pcsr_file(path_);
    FAIL() << "expected PcsrError";
  } catch (const PcsrError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

// ---- compressed adjacency through the traversal drivers --------------------

TEST(PcsrCompressed, EstClusterBitIdenticalAtOneAndFourThreads) {
  const Graph flat = test_graph_unweighted();
  const Graph comp = flat.compress_adjacency();
  ASSERT_TRUE(comp.compressed());
  for (int threads : {1, 4}) {
    const auto [c_flat, c_comp] = at_threads(threads, [&] {
      EstClusterWorkspace wf;
      EstClusterWorkspace wc;
      // Pin the forced seams so both the parallel relax rounds and the
      // pull direction run the compressed decode, not just the
      // sequential fast path.
      for (EstClusterWorkspace* w : {&wf, &wc}) w->force_parallel_rounds(true);
      Clustering a = est_cluster(flat, 0.4, 7, wf);
      Clustering b = est_cluster(comp, 0.4, 7, wc);
      EXPECT_EQ(wf.compressed_rounds(), 0u);
      EXPECT_GT(wc.compressed_rounds(), 0u);
      return std::pair(std::move(a), std::move(b));
    });
    EXPECT_EQ(c_flat.cluster_of, c_comp.cluster_of) << threads << " threads";
    EXPECT_EQ(c_flat.parent, c_comp.parent) << threads << " threads";
    EXPECT_EQ(c_flat.dist_to_center, c_comp.dist_to_center) << threads << " threads";
  }
}

TEST(PcsrCompressed, ForcedPullDecodesCompressedChunks) {
  const Graph flat = test_graph_unweighted();
  const Graph comp = flat.compress_adjacency();
  EstClusterWorkspace wf;
  EstClusterWorkspace wc;
  for (EstClusterWorkspace* w : {&wf, &wc}) {
    w->force_parallel_rounds(true);
    w->force_pull(true);
  }
  const Clustering a = est_cluster(flat, 0.4, 7, wf);
  const Clustering b = est_cluster(comp, 0.4, 7, wc);
  EXPECT_GT(wc.pull_rounds(), 0u);
  EXPECT_GT(wc.compressed_rounds(), 0u);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
}

TEST(PcsrCompressed, SsspDriversBitIdenticalAtOneAndFourThreads) {
  const Graph flat = test_graph_weighted();
  const Graph comp = flat.compress_adjacency();
  for (int threads : {1, 4}) {
    at_threads(threads, [&]() -> int {
      SsspWorkspace wf;
      SsspWorkspace wc;
      for (SsspWorkspace* w : {&wf, &wc}) w->force_parallel_rounds(true);

      const BfsResult b1 = bfs(flat, 0, kUnreachedHops, wf);
      const BfsResult b2 = bfs(comp, 0, kUnreachedHops, wc);
      EXPECT_EQ(b1.dist, b2.dist);
      EXPECT_EQ(b1.parent, b2.parent);
      EXPECT_EQ(wf.compressed_rounds(), 0u);
      EXPECT_GT(wc.compressed_rounds(), 0u);

      const DeltaSteppingResult d1 = delta_stepping(flat, 0, 4.0, wf);
      const DeltaSteppingResult d2 = delta_stepping(comp, 0, 4.0, wc);
      EXPECT_EQ(d1.dist, d2.dist);
      return 0;
    });
  }
}

TEST(PcsrCompressed, CompressedFileDrivesAlgorithmsDirectly) {
  // End to end: a compressed .pcsr file, memory-mapped, runs est_cluster
  // without ever materializing flat targets.
  const Graph g = test_graph_unweighted();
  const std::string path = tmp_path("drive_compressed.pcsr");
  PcsrWriteOptions opt;
  opt.compress = true;
  write_pcsr_file(path, g, opt);
  const Graph loaded = load_pcsr_file(path);
  ASSERT_FALSE(loaded.has_flat_adjacency());
  EstClusterWorkspace ws;
  const Clustering a = est_cluster(g, 0.4, 9);
  const Clustering b = est_cluster(loaded, 0.4, 9, ws);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_GT(ws.compressed_rounds(), 0u);
  std::remove(path.c_str());
}

// ---- streamed generators ---------------------------------------------------

TEST(PcsrStream, StreamedRmatMatchesInMemoryBitIdentical) {
  const vid n = 500;
  const eid m = 3000;
  const std::string path = tmp_path("stream_rmat.pcsr");
  stream_rmat_pcsr(path, n, m, 7);
  expect_same_csr(make_rmat(n, m, 7), load_pcsr_file(path));
  std::remove(path.c_str());
}

TEST(PcsrStream, StreamedHeavyRmatMatchesInMemory) {
  const std::string path = tmp_path("stream_heavy.pcsr");
  stream_rmat_heavy_pcsr(path, 400, 2000, 13);
  expect_same_csr(make_rmat_heavy(400, 2000, 13), load_pcsr_file(path));
  std::remove(path.c_str());
}

TEST(PcsrStream, StreamedGridMatchesInMemory) {
  const std::string path = tmp_path("stream_grid.pcsr");
  stream_grid_pcsr(path, 17, 23);
  expect_same_csr(make_grid(17, 23), load_pcsr_file(path));
  std::remove(path.c_str());
}

TEST(PcsrStream, StreamedCompressedMatchesAfterDecompression) {
  const std::string path = tmp_path("stream_comp.pcsr");
  stream_rmat_pcsr(path, 500, 3000, 7, 0.57, 0.19, 0.19, /*compress=*/true);
  const Graph loaded = load_pcsr_file(path);
  ASSERT_TRUE(loaded.compressed());
  expect_same_csr(make_rmat(500, 3000, 7), loaded.decompress_adjacency());
  std::remove(path.c_str());
}

// ---- storage-handle sharing (O(1) derived graphs) --------------------------

TEST(GraphStorageSharing, CopiesShareEveryArray) {
  const Graph g = test_graph_weighted();
  const Graph h = g;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(h.storage().offsets.shares(g.storage().offsets));
  EXPECT_TRUE(h.storage().targets.shares(g.storage().targets));
  EXPECT_TRUE(h.storage().weights.shares(g.storage().weights));
}

TEST(GraphStorageSharing, MapWeightsSharesTheAdjacency) {
  const Graph g = test_graph_weighted();
  const Graph h = g.map_weights([](weight_t w) { return w * 2; });
  EXPECT_TRUE(h.storage().offsets.shares(g.storage().offsets));
  EXPECT_TRUE(h.storage().targets.shares(g.storage().targets));
  EXPECT_FALSE(h.storage().weights.shares(g.storage().weights));
  EXPECT_EQ(h.max_weight(), g.max_weight() * 2);
}

TEST(GraphStorageSharing, AsUnweightedSharesTheAdjacency) {
  const Graph g = test_graph_weighted();
  const Graph h = g.as_unweighted();
  EXPECT_TRUE(h.storage().offsets.shares(g.storage().offsets));
  EXPECT_TRUE(h.storage().targets.shares(g.storage().targets));
  EXPECT_FALSE(h.weighted());
  EXPECT_TRUE(h.storage().weights.empty());
}

TEST(GraphStorageSharing, MmapLoadSharesTheMappingAcrossCopies) {
  const Graph g = test_graph_weighted();
  const std::string path = tmp_path("share_mmap.pcsr");
  write_pcsr_file(path, g);
  Graph outer;
  {
    const Graph loaded = load_pcsr_file(path);
    outer = loaded.as_unweighted();  // keeps the mapping alive via the handle
  }
  // The mapped file must stay valid through the surviving handle even
  // after the original Graph (and the path) are gone.
  std::remove(path.c_str());
  EXPECT_EQ(outer.num_arcs(), g.num_arcs());
  std::size_t arcs_seen = 0;
  for (vid u = 0; u < outer.num_vertices(); ++u) {
    outer.for_arcs(u, 0, outer.degree(u), [](vid) {},
                   [&](eid, vid) { ++arcs_seen; });
  }
  EXPECT_EQ(arcs_seen, static_cast<std::size_t>(g.num_arcs()));
}

}  // namespace
}  // namespace parsh
