// Tests for the Section 5 weighted-hopset machinery: Klein-Subramanian
// rounding (Lemma 5.2), per-scale construction, and the Appendix B weight
// decomposition (Lemma 5.1).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hopset/rounding.hpp"
#include "hopset/weight_reduction.hpp"
#include "hopset/weighted_hopset.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

TEST(Rounding, WeightsBecomePositiveIntegers) {
  const Graph g = with_log_uniform_weights(make_grid(8, 8), 100.0, 3);
  const RoundedGraph rg = round_weights(g, /*d=*/50, /*k_hops=*/64, /*zeta=*/0.25);
  for (const Edge& e : rg.graph.undirected_edges()) {
    EXPECT_GE(e.w, 1);
    EXPECT_EQ(e.w, std::floor(e.w));
  }
}

TEST(Rounding, RoundsUpNeverDown) {
  // w_hat * w_tilde >= w for every edge: estimates stay upper bounds.
  const Graph g = with_log_uniform_weights(make_grid(8, 8), 64.0, 5);
  const RoundedGraph rg = round_weights(g, 20, 32, 0.5);
  const auto orig = g.undirected_edges();
  const auto rounded = rg.graph.undirected_edges();
  ASSERT_EQ(orig.size(), rounded.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_GE(rounded[i].w * rg.w_hat + 1e-9, orig[i].w);
  }
}

class RoundingLaw
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RoundingLaw, Lemma52PathDistortion) {
  // For any path p with <= k hops: w_hat * w_tilde(p) <= (1+zeta) w(p) +
  // (granularity slack). Verify on shortest paths of a weighted grid.
  const auto [zeta, d] = GetParam();
  const double k_hops = 64;
  const Graph g = with_uniform_weights(make_grid(8, 8), 1, 9, 7);
  const RoundedGraph rg = round_weights(g, d, k_hops, zeta);
  const auto sp = dijkstra(g, 0);
  const auto sp_r = dijkstra(rg.graph, 0);
  for (vid v = 1; v < g.num_vertices(); ++v) {
    const double true_w = sp.dist[v];
    const double approx = sp_r.dist[v] * rg.w_hat;
    EXPECT_GE(approx + 1e-9, true_w) << v;  // upper bound
    // Each of the <= k_hops edges gains at most w_hat.
    EXPECT_LE(approx, true_w + k_hops * rg.w_hat + 1e-9) << v;
    // Lemma 5.2's multiplicative form for in-scale paths.
    if (true_w >= d) {
      EXPECT_LE(approx, (1.0 + zeta) * true_w + 1e-9) << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundingLaw,
                         ::testing::Combine(::testing::Values(0.125, 0.25, 0.5),
                                            ::testing::Values(8.0, 20.0)));

TEST(Rounding, RoundedWeightBoundFormula) {
  EXPECT_DOUBLE_EQ(rounded_weight_bound(4.0, 100.0, 0.5), 800.0);
}

TEST(WeightedHopset, CoversTheDistanceRangeWithScales) {
  const Graph g = with_log_uniform_weights(
      ensure_connected(make_random_graph(300, 900, 3)), 64.0, 5);
  WeightedHopsetParams p;
  p.eta = 1.0 / 3.0;
  const WeightedHopset wh = build_weighted_hopset(g, p);
  ASSERT_FALSE(wh.scales.empty());
  // Scales start at the min weight and grow by n^eta.
  EXPECT_DOUBLE_EQ(wh.scales.front().d, g.min_weight());
  const double ratio = std::pow(static_cast<double>(g.num_vertices()), p.eta);
  for (std::size_t i = 1; i < wh.scales.size(); ++i) {
    EXPECT_NEAR(wh.scales[i].d / wh.scales[i - 1].d, ratio, 1e-6);
  }
  // The last scale covers n * max weight.
  EXPECT_GE(wh.scales.back().d * ratio,
            static_cast<double>(g.num_vertices()) * g.max_weight() / ratio);
}

TEST(WeightedHopset, ScaleGraphsHaveIntegerWeights) {
  const Graph g = with_log_uniform_weights(make_grid(12, 12), 32.0, 9);
  const WeightedHopset wh = build_weighted_hopset(g, WeightedHopsetParams{});
  for (const auto& sc : wh.scales) {
    for (const Edge& e : sc.rounded.undirected_edges()) {
      EXPECT_GE(e.w, 1);
      EXPECT_EQ(e.w, std::floor(e.w));
    }
  }
}

TEST(WeightedHopset, TotalsAggregateScales) {
  const Graph g = with_uniform_weights(make_grid(10, 10), 1, 16, 4);
  const WeightedHopset wh = build_weighted_hopset(g, WeightedHopsetParams{});
  std::uint64_t sum = 0;
  for (const auto& sc : wh.scales) sum += sc.hopset_edges;
  EXPECT_EQ(sum, wh.total_hopset_edges);
}

TEST(WeightDecomposition, SingleCategoryGraphHasOneLevelPerCategory) {
  const Graph g = make_grid(6, 6);  // all weights 1 -> one category
  const WeightDecomposition d = WeightDecomposition::build(g, 0.25);
  EXPECT_EQ(d.num_levels(), 1u);
  const auto q = d.map_query(0, 35);
  EXPECT_TRUE(q.connected);
  EXPECT_EQ(q.level, 0u);
}

TEST(WeightDecomposition, LevelsRespectRatioBound) {
  // Lemma 5.1: each prepared graph has weight ratio O((n/eps)^3).
  const vid n = 100;
  // Three widely separated weight bands.
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < n; ++i) {
    const weight_t w = i % 3 == 0 ? 1.0 : (i % 3 == 1 ? 1e7 : 1e14);
    edges.push_back({i, i + 1, w});
  }
  const Graph g = Graph::from_edges(n, edges);
  const WeightDecomposition d = WeightDecomposition::build(g, 0.5);
  EXPECT_GE(d.num_levels(), 2u);
  for (std::size_t j = 0; j < d.num_levels(); ++j) {
    const Graph& lg = d.level(j).graph;
    if (lg.num_edges() == 0) continue;
    EXPECT_LE(lg.max_weight() / lg.min_weight(), d.ratio_bound() * 1.01) << j;
  }
}

TEST(WeightDecomposition, QueryMapsToApproximatelyCorrectDistances) {
  // Lemma 5.1: the mapped query is a (1-eps)-approximation. Paths across
  // the contracted light components lose at most eps relative weight.
  const vid n = 60;
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, (i % 10 == 5) ? 1e6 : 1.0});
  }
  const Graph g = Graph::from_edges(n, edges);
  const double eps = 0.5;
  const WeightDecomposition d = WeightDecomposition::build(g, eps);
  const auto q = d.map_query(0, n - 1);
  ASSERT_TRUE(q.connected);
  const Graph& lg = d.level(q.level).graph;
  const weight_t approx = st_distance(lg, q.s, q.t);
  const weight_t exact = st_distance(g, 0, n - 1);
  EXPECT_LE(approx, exact + 1e-9);                    // contraction only shrinks
  EXPECT_GE(approx, (1.0 - eps) * exact - 1e-9);      // but not by more than eps
}

TEST(WeightDecomposition, SameComponentLightPairsMapToLowLevels) {
  const vid n = 30;
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, i == 14 ? 1e9 : 1.0});  // one heavy bridge
  }
  const Graph g = Graph::from_edges(n, edges);
  const WeightDecomposition d = WeightDecomposition::build(g, 0.5);
  const auto low = d.map_query(0, 5);
  const auto high = d.map_query(0, n - 1);
  ASSERT_TRUE(low.connected);
  ASSERT_TRUE(high.connected);
  EXPECT_LT(low.level, high.level);
}

TEST(WeightDecomposition, DisconnectedQueryReported) {
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {2, 3, 1}});
  const WeightDecomposition d = WeightDecomposition::build(g, 0.25);
  EXPECT_FALSE(d.map_query(0, 3).connected);
  EXPECT_TRUE(d.map_query(0, 1).connected);
}

TEST(WeightDecomposition, ContractedEndpointsShareQuotientVertex) {
  // Two vertices joined by light edges map to the same quotient vertex at
  // a heavy level (distance 0 — correct to relative precision).
  const Graph g = Graph::from_edges(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1e8}});
  const WeightDecomposition d = WeightDecomposition::build(g, 0.5);
  const auto q = d.map_query(0, 3);
  ASSERT_TRUE(q.connected);
  const auto q01 = d.map_query(0, 1);
  ASSERT_TRUE(q01.connected);
  EXPECT_LE(q01.level, q.level);
}

}  // namespace
}  // namespace parsh
