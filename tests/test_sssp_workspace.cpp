// Tests for the shared SSSP traversal workspace (SsspWorkspace) and the
// batched query-server path built on it: answers through a workspace are
// identical to the plain per-call path, and — the PR's acceptance bar —
// a warm request batch over a 1M-edge RMAT graph performs zero workspace
// heap allocations (mirroring the est_cluster workspace guarantee pinned
// in test_cluster_connectivity.cpp).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "random/rng.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {
namespace {

std::vector<ApproxShortestPaths::QueryPair> request_batch(vid n, int count,
                                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ApproxShortestPaths::QueryPair> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (int q = 0; q < count; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, n));
    const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, n));
    if (s != t) pairs.push_back({s, t});
  }
  return pairs;
}

TEST(QueryBatch, MatchesPointQueriesAndPoolPath) {
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(600, 2400, 4)), 1, 9, 17);
  ApproxShortestPaths::Params p;
  p.hopset.hopset.seed = 5;
  const ApproxShortestPaths engine(g, p);
  const auto pairs = request_batch(g.num_vertices(), 24, 0xabcdULL);

  SsspWorkspace ws;
  const auto seq = engine.query_batch(pairs, ws);
  SsspWorkspacePool pool;
  const auto par = engine.query_batch(pairs, pool);
  ASSERT_EQ(seq.size(), pairs.size());
  ASSERT_EQ(par.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto plain = engine.query(pairs[i].first, pairs[i].second);
    EXPECT_EQ(seq[i].estimate, plain.estimate) << i;
    EXPECT_EQ(seq[i].rounds, plain.rounds) << i;
    EXPECT_EQ(seq[i].relaxations, plain.relaxations) << i;
    EXPECT_EQ(seq[i].scale_used, plain.scale_used) << i;
    EXPECT_EQ(par[i].estimate, plain.estimate) << i;
    EXPECT_EQ(par[i].rounds, plain.rounds) << i;
  }
}

TEST(QueryBatch, QueryAllThroughWorkspaceMatchesPlain) {
  const Graph g = with_uniform_weights(make_grid(14, 14), 1, 6, 3);
  const ApproxShortestPaths engine(g, {});
  SsspWorkspace ws;
  const auto plain = engine.query_all(7);
  const auto via_ws = engine.query_all(7, ws);
  EXPECT_EQ(plain.estimate, via_ws.estimate);
  EXPECT_EQ(plain.rounds, via_ws.rounds);
  EXPECT_EQ(plain.relaxations, via_ws.relaxations);
}

TEST(QueryBatch, WarmBatchDoesZeroWorkspaceAllocationsOn1MEdgeRmat) {
  // The workspace-reuse acceptance bar: preprocess a 1M-edge RMAT graph
  // once, serve a request batch twice through one workspace — the second
  // (warm) batch must run entirely inside the buffers the first batch
  // grew, so the workspace's allocation counter freezes. Pinned to one
  // worker like every identical-rerun Warm test: the hop-limited sweeps'
  // parallel rounds stage improvers in per-worker lists, whose high-water
  // marks are schedule-dependent at >1 workers (same caveat as the delta
  // and est_cluster Warm tests).
#ifdef PARSH_HAVE_OPENMP
  const int threads_before = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  const Graph g = ensure_connected(make_rmat(120000, 1120000, 7));
  ASSERT_GE(g.num_edges(), 1000000u);
  ApproxShortestPaths::Params p;
  p.hopset.hopset.seed = 3;
  p.hopset.hopset.gamma2 = 0.3;  // shallow top-level clustering: fast build
  p.hopset.eta = 1.0;            // coarse scale ladder: few scales
  const ApproxShortestPaths engine(g, p);

  const auto pairs = request_batch(g.num_vertices(), 32, 0xf00dULL);
  SsspWorkspace ws;
  const auto cold = engine.query_batch(pairs, ws);
  const std::uint64_t after_cold = ws.alloc_events();
  EXPECT_GT(after_cold, 0u);
  const auto warm = engine.query_batch(pairs, ws);
  EXPECT_EQ(ws.alloc_events(), after_cold)
      << "warm query_batch allocated inside the workspace";
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].estimate, warm[i].estimate) << i;
    EXPECT_EQ(cold[i].rounds, warm[i].rounds) << i;
  }
#ifdef PARSH_HAVE_OPENMP
  omp_set_num_threads(threads_before);
#endif
}

}  // namespace
}  // namespace parsh
