// Tests for the utility layer: stats, table rendering, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>

#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace parsh {
namespace {

TEST(Stats, SummaryOfKnownSample) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile({7}, 42), 7.0);
}

TEST(Stats, FitLineRecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys;
  for (double x : xs) ys.push_back(3.0 * x - 1.0);
  const LinearFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineDegenerateInputs) {
  EXPECT_DOUBLE_EQ(fit_line({1}, {2}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_line({1, 1}, {2, 3}).slope, 0.0);  // vertical line
}

TEST(Stats, FitPowerLawRecoversExponent) {
  // y = 2 x^{1.5}
  std::vector<double> xs{10, 100, 1000, 10000}, ys;
  for (double x : xs) ys.push_back(2.0 * std::pow(x, 1.5));
  const LinearFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 2.0, 1e-9);
}

TEST(Table, RendersAlignedColumnsWithHeader) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(12);
  t.row().cell("b").cell(3.5, 1);
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, NumericFormattingUsesScientificForExtremes) {
  Table t({"x"});
  t.row().cell(1.23e12, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("e+"), std::string::npos);
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "100", "--eps=0.5", "--flag", "--name", "x"};
  Cli cli(7, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("name", ""), "x");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.25), 0.25);
  EXPECT_FALSE(cli.has("n"));
  EXPECT_EQ(cli.get_seed("seed", 9), 9u);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Cli, GarbageIntegerNamesTheFlag) {
  const char* argv[] = {"prog", "--n=12monkeys"};
  Cli cli(2, const_cast<char**>(argv));
  try {
    (void)cli.get_int("n", 0);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_EQ(e.flag(), "n");
    EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
  }
}

TEST(Cli, OverflowingIntegerRejected) {
  const char* argv[] = {"prog", "--n=99999999999999999999999999"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), CliError);
}

TEST(Cli, NegativeIntegerStillParses) {
  const char* argv[] = {"prog", "--delta=-7"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("delta", 0), -7);
}

TEST(Cli, GarbageDoubleRejected) {
  const char* argv[] = {"prog", "--eps=0.5oops", "--big=1e999"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_double("eps", 0), CliError);
  EXPECT_THROW((void)cli.get_double("big", 0), CliError);
}

TEST(Cli, NegativeSeedRejectedInsteadOfWrapping) {
  // strtoull would wrap "-1" to 2^64 - 1; the hardened getter refuses.
  const char* argv[] = {"prog", "--seed=-1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_seed("seed", 0), CliError);
}

TEST(Cli, SeedGarbageAndOverflowRejected) {
  const char* argv[] = {"prog", "--a=0x12", "--b=99999999999999999999999999"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_seed("a", 0), CliError);
  EXPECT_THROW((void)cli.get_seed("b", 0), CliError);
  // In-range values parse exactly, all the way to the top of the range.
  const char* argv2[] = {"prog", "--s=18446744073709551615"};
  Cli cli2(2, const_cast<char**>(argv2));
  EXPECT_EQ(cli2.get_seed("s", 0), 18446744073709551615ull);
}

TEST(Cli, BogusBooleanRejected) {
  const char* argv[] = {"prog", "--flag=maybe"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_bool("flag", false), CliError);
}

TEST(Cli, CliErrorIsARuntimeError) {
  // Call sites that catch std::runtime_error keep working.
  const char* argv[] = {"prog", "--n=x"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), std::runtime_error);
}

TEST(Timer, MeasuresNonNegativeMonotoneTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace parsh
