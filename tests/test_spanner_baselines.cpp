// Tests for the Figure 1 baseline spanners: the greedy (2k-1)-spanner of
// [ADD+93] and the Baswana-Sen (2k-1)-spanner of [BS07].
#include <gtest/gtest.h>

#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "spanner/baselines.hpp"
#include "spanner/verify.hpp"

namespace parsh {
namespace {

class GreedySweep : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(GreedySweep, StretchIsAtMost2kMinus1Exactly) {
  // The greedy construction guarantees the (2k-1) bound deterministically.
  const auto [k, seed] = GetParam();
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(120, 500, seed)), 1, 9, seed + 7);
  const auto spanner = greedy_spanner(g, k);
  EXPECT_TRUE(is_subgraph(g, spanner));
  EXPECT_LE(max_edge_stretch(g, spanner), 2.0 * k - 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedySweep,
    ::testing::Combine(::testing::Values(1.0, 2.0, 3.0),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(GreedySpanner, KEqualsOneKeepsEverything) {
  // Stretch 1 forces every edge with a unique shortest path to stay; on a
  // tree that is all of them.
  const Graph g = make_binary_tree(63);
  EXPECT_EQ(greedy_spanner(g, 1.0).size(), g.num_edges());
}

TEST(GreedySpanner, CompleteGraphUnitWeightsK2IsSparse) {
  // Greedy on K_n with k=2 yields a graph of girth > 4 — far fewer than
  // n^2/2 edges (classic bound ~ n^{3/2}).
  const vid n = 40;
  const Graph g = make_complete(n);
  const auto spanner = greedy_spanner(g, 2.0);
  EXPECT_LT(spanner.size(), static_cast<std::size_t>(n) * n / 4);
  const Graph h = spanner_graph(g, spanner);
  EXPECT_EQ(num_components(h), 1u);
}

TEST(GreedySpanner, PreservesConnectivityOnWeightedGrids) {
  const Graph g = with_uniform_weights(make_grid(8, 8), 1, 30, 3);
  const auto spanner = greedy_spanner(g, 3.0);
  EXPECT_EQ(num_components(spanner_graph(g, spanner)), 1u);
}

class BaswanaSenSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BaswanaSenSweep, StretchIsAtMost2kMinus1) {
  const auto [k, seed] = GetParam();
  const Graph g = with_uniform_weights(
      ensure_connected(make_random_graph(150, 700, seed)), 1, 13, seed + 3);
  const auto spanner = baswana_sen_spanner(g, k, seed);
  EXPECT_TRUE(is_subgraph(g, spanner));
  EXPECT_LE(max_edge_stretch(g, spanner), 2.0 * k - 1.0 + 1e-9)
      << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaswanaSenSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5)));

TEST(BaswanaSen, KEqualsOneKeepsAllEdges) {
  // With k=1 there are no sampling phases and every vertex keeps its
  // lightest edge to every adjacent cluster = every neighbour.
  const Graph g = make_grid(6, 6);
  const auto spanner = baswana_sen_spanner(g, 1, 5);
  EXPECT_EQ(spanner.size(), g.num_edges());
}

TEST(BaswanaSen, SizeShrinksWithK) {
  const Graph g = ensure_connected(make_random_graph(1000, 12000, 17));
  double prev = 1e18;
  for (int k : {1, 2, 4}) {
    double size = 0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      size += static_cast<double>(baswana_sen_spanner(g, k, seed).size());
    }
    EXPECT_LT(size, prev) << k;
    prev = size;
  }
}

TEST(BaswanaSen, SizeNearTheKnownLaw) {
  // E[size] = O(k n^{1+1/k}).
  const vid n = 1200;
  const Graph g = ensure_connected(make_random_graph(n, 15000, 23));
  const int k = 3;
  double size = 0;
  const int trials = 3;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    size += static_cast<double>(baswana_sen_spanner(g, k, seed).size());
  }
  size /= trials;
  const double law = k * std::pow(static_cast<double>(n), 1.0 + 1.0 / k);
  EXPECT_LE(size, 4.0 * law);
}

TEST(BaswanaSen, DeterministicInSeed) {
  const Graph g = make_grid(10, 10);
  EXPECT_EQ(baswana_sen_spanner(g, 2, 8), baswana_sen_spanner(g, 2, 8));
}

TEST(BaswanaSen, PreservesConnectivity) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = ensure_connected(make_random_graph(300, 1200, seed));
    const auto spanner = baswana_sen_spanner(g, 3, seed);
    EXPECT_EQ(num_components(spanner_graph(g, spanner)), 1u) << seed;
  }
}

}  // namespace
}  // namespace parsh
