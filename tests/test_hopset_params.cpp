// Property sweeps over the hopset parameter space (Theorem 4.4's knobs):
// for every (delta, gamma2, epsilon) combination the structural
// guarantees must hold, and the documented monotonicities must show up
// in aggregate.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "hopset/hopset.hpp"
#include "hopset/verify.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {
namespace {

class HopsetParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {
 protected:
  HopsetParams params() const {
    const auto [delta, gamma2, eps] = GetParam();
    HopsetParams p;
    p.delta = delta;
    p.gamma2 = gamma2;
    p.epsilon = eps;
    p.seed = 9;
    return p;
  }
};

TEST_P(HopsetParamSweep, StructuralGuaranteesHoldEverywhere) {
  const Graph g = make_path_with_chords(1200, 20, 5);
  const HopsetParams p = params();
  const HopsetResult r = build_hopset(g, p);
  // Lemma 4.3 star bound.
  EXPECT_LE(r.star_edges, static_cast<std::uint64_t>(g.num_vertices()));
  // Lemma 4.3 clique bound (with constant slack).
  const double clique_bound = static_cast<double>(g.num_vertices()) /
                              static_cast<double>(r.n_final) * r.rho * r.rho;
  EXPECT_LE(static_cast<double>(r.clique_edges), 4.0 * clique_bound);
  // Definition 2.4 property 2 on a sample of edges (full check is O(n m)).
  std::size_t checked = 0;
  for (std::size_t i = 0; i < r.edges.size() && checked < 40; i += 7, ++checked) {
    const Edge& e = r.edges[i];
    EXPECT_GE(e.w + 1e-9, st_distance(g, e.u, e.v)) << e.u << "-" << e.v;
  }
  // The augmented graph preserves the metric exactly.
  const Graph aug = g.with_extra_edges(r.edges);
  const auto d_g = dijkstra(g, 0);
  const auto d_a = dijkstra(aug, 0);
  for (vid v = 0; v < g.num_vertices(); v += 97) {
    EXPECT_DOUBLE_EQ(d_a.dist[v], d_g.dist[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HopsetParamSweep,
    ::testing::Combine(::testing::Values(1.05, 1.5, 2.5),   // delta
                       ::testing::Values(0.4, 0.6, 0.8),    // gamma2
                       ::testing::Values(0.25, 1.0)));      // epsilon

TEST(HopsetParamLaws, LargerGamma2CutsMoreHopsOnPaths) {
  // gamma2 controls the top-level cluster radius: bigger clusters =>
  // longer star shortcuts => fewer residual hops (Lemma 4.2's beta0*d
  // term). Aggregate over pairs and seeds to wash out noise.
  const Graph g = make_path(3000);
  double hops_small_g2 = 0, hops_large_g2 = 0;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    HopsetParams p;
    p.epsilon = 0.5;
    p.seed = seed;
    p.gamma2 = 0.35;
    const auto ms1 = measure_hopset(g, build_hopset(g, p).edges, 0.5, 6, 6000, 3);
    p.gamma2 = 0.75;
    const auto ms2 = measure_hopset(g, build_hopset(g, p).edges, 0.5, 6, 6000, 3);
    for (const auto& m : ms1) hops_small_g2 += static_cast<double>(m.hops_with_set);
    for (const auto& m : ms2) hops_large_g2 += static_cast<double>(m.hops_with_set);
  }
  EXPECT_LT(hops_large_g2, hops_small_g2);
}

TEST(HopsetParamLaws, SmallerDeltaGrowsCliqueBudget) {
  // rho = growth^delta: smaller delta => smaller rho => *fewer* large
  // clusters per level... but also slower size shrink. The direct,
  // testable consequence is on rho itself and on the Lemma 4.3 budget.
  HopsetParams a;
  a.delta = 1.05;
  HopsetParams b;
  b.delta = 2.5;
  EXPECT_LT(hopset_rho(10000, a), hopset_rho(10000, b));
}

TEST(HopsetParamLaws, GrowthFactorMatchesFormula) {
  HopsetParams p;
  p.k_conf = 2.0;
  p.epsilon = 0.5;
  const double expected = 2.0 * std::log(10000.0) / 0.5;
  EXPECT_DOUBLE_EQ(hopset_growth(10000, p), expected);
}

TEST(HopsetParamLaws, NfinalFloorKicksInOnSmallGraphs) {
  const Graph g = make_grid(8, 8);  // n = 64
  HopsetParams p;
  p.gamma1 = 0.2;  // 64^0.2 ~ 2.3 < floor
  p.n_final_floor = 16;
  const HopsetResult r = build_hopset(g, p);
  EXPECT_EQ(r.n_final, 16u);
}

TEST(HopsetParamLaws, SeedsChangeTheHopsetButNotItsValidity) {
  const Graph g = make_path_with_chords(800, 10, 2);
  HopsetParams p;
  p.gamma2 = 0.5;
  p.seed = 1;
  const HopsetResult a = build_hopset(g, p);
  p.seed = 2;
  const HopsetResult b = build_hopset(g, p);
  EXPECT_NE(a.edges, b.edges);  // different randomness
  EXPECT_TRUE(hopset_weights_are_path_weights(g, a.edges));
  EXPECT_TRUE(hopset_weights_are_path_weights(g, b.edges));
}

}  // namespace
}  // namespace parsh
