// Tests for parallel connected components against a sequential union-find
// reference, over a parameter sweep of random graphs.
#include <gtest/gtest.h>

#include <functional>
#include <numeric>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

namespace parsh {
namespace {

/// Sequential DSU reference.
std::vector<vid> reference_components(const Graph& g) {
  std::vector<vid> p(g.num_vertices());
  std::iota(p.begin(), p.end(), 0);
  std::function<vid(vid)> find = [&](vid v) {
    while (p[v] != v) {
      p[v] = p[p[v]];
      v = p[v];
    }
    return v;
  };
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid a = find(u), b = find(g.target(e));
      if (a != b) p[std::max(a, b)] = std::min(a, b);
    }
  }
  // Densify by smallest member, matching connected_components' contract.
  std::vector<vid> label(g.num_vertices());
  std::vector<vid> remap(g.num_vertices(), kNoVertex);
  vid next = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid r = find(v);
    if (remap[r] == kNoVertex) remap[r] = next++;
    label[v] = remap[r];
  }
  return label;
}

TEST(Connectivity, SingleVertexAndEmpty) {
  EXPECT_EQ(connected_components(Graph::from_edges(1, {})), std::vector<vid>{0});
  EXPECT_TRUE(connected_components(Graph()).empty());
}

TEST(Connectivity, PathIsOneComponent) {
  EXPECT_EQ(num_components(make_path(100)), 1u);
}

TEST(Connectivity, DisjointCliques) {
  std::vector<Edge> edges;
  for (vid base : {0u, 5u, 10u}) {
    for (vid i = 0; i < 5; ++i) {
      for (vid j = i + 1; j < 5; ++j) edges.push_back({base + i, base + j, 1});
    }
  }
  const Graph g = Graph::from_edges(15, edges);
  EXPECT_EQ(num_components(g), 3u);
  const auto comp = connected_components(g);
  for (vid v = 0; v < 15; ++v) EXPECT_EQ(comp[v], v / 5);
}

class ConnectivityRandom
    : public ::testing::TestWithParam<std::tuple<vid, eid, std::uint64_t>> {};

TEST_P(ConnectivityRandom, MatchesUnionFindReference) {
  const auto [n, m, seed] = GetParam();
  const Graph g = make_random_graph(n, m, seed);
  EXPECT_EQ(connected_components(g), reference_components(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivityRandom,
    ::testing::Combine(::testing::Values<vid>(50, 200, 1000),
                       ::testing::Values<eid>(30, 200, 1500),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Connectivity, FilteredComponentsRespectMask) {
  // Path 0-1-2-3; mask out the middle edge.
  const Graph g = make_path(4);
  std::vector<char> keep(g.num_arcs(), 1);
  for (vid u = 0; u < 4; ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      if ((u == 1 && v == 2) || (u == 2 && v == 1)) keep[e] = 0;
    }
  }
  const auto comp = connected_components_filtered(g, keep);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Connectivity, FilteredAllMaskedIsDiscrete) {
  const Graph g = make_cycle(10);
  std::vector<char> keep(g.num_arcs(), 0);
  const auto comp = connected_components_filtered(g, keep);
  for (vid v = 0; v < 10; ++v) EXPECT_EQ(comp[v], v);
}

TEST(Connectivity, LabelsAreDenseAndOrderedBySmallestMember) {
  const Graph g = Graph::from_edges(6, {{3, 4, 1}, {0, 1, 1}});
  const auto comp = connected_components(g);
  // Component of 0 gets label 0; vertex 2 gets the next fresh label, etc.
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[1], 0u);
  EXPECT_EQ(comp[2], 1u);
  EXPECT_EQ(comp[3], 2u);
  EXPECT_EQ(comp[4], 2u);
  EXPECT_EQ(comp[5], 3u);
}

}  // namespace
}  // namespace parsh
