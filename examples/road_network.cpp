// Road-network scenario: spanners as a road-map sparsifier.
//
// The paper has no public datasets, so this example builds a synthetic
// road network — a jittered 2D grid with Euclidean-ish integer weights
// and a few long "highway" edges — then compares the three spanner
// constructions on it: how many road segments can be dropped while
// keeping all detours bounded?
//
//   ./road_network [--side 70] [--k 3] [--seed 1] [--out spanner.txt]
#include <cmath>
#include <cstdio>

#include "core/parsh.hpp"

namespace {

using namespace parsh;

/// A synthetic road network: grid streets with weight jitter plus sparse
/// diagonal highways (heavier but shortcutting).
Graph make_road_network(vid side, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  auto id = [side](vid r, vid c) { return r * side + c; };
  std::uint64_t ctr = 0;
  for (vid r = 0; r < side; ++r) {
    for (vid c = 0; c < side; ++c) {
      // Street weights 8..12 (≈ uniform block lengths with jitter).
      if (c + 1 < side) {
        edges.push_back({id(r, c), id(r, c + 1),
                         static_cast<weight_t>(8 + rng.uniform_int(ctr++, 5))});
      }
      if (r + 1 < side) {
        edges.push_back({id(r, c), id(r + 1, c),
                         static_cast<weight_t>(8 + rng.uniform_int(ctr++, 5))});
      }
      // Sparse highways: jump ~8 blocks diagonally at ~60% of street cost.
      if (r + 8 < side && c + 8 < side && rng.uniform(ctr++) < 0.02) {
        edges.push_back({id(r, c), id(r + 8, c + 8),
                         static_cast<weight_t>(8 * 8 * 2 * 6 / 10)});
      }
    }
  }
  return Graph::from_edges(side * side, std::move(edges));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const vid side = static_cast<vid>(cli.get_int("side", 70));
  const double k = cli.get_double("k", 3.0);
  const std::uint64_t seed = cli.get_seed("seed", 1);

  const Graph g = make_road_network(side, seed);
  std::printf("road network: %u intersections, %llu segments, weights %g..%g\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.min_weight(), g.max_weight());

  struct Row {
    const char* name;
    std::vector<Edge> edges;
    double seconds;
  };
  std::vector<Row> rows;
  {
    Timer t;
    SpannerResult r = weighted_spanner(g, k, seed);
    rows.push_back({"EST weighted spanner (this paper)", std::move(r.edges), t.seconds()});
  }
  {
    Timer t;
    auto e = baswana_sen_spanner(g, static_cast<int>(k), seed);
    rows.push_back({"Baswana-Sen", std::move(e), t.seconds()});
  }
  if (side <= 80) {
    Timer t;
    auto e = greedy_spanner(g, k);
    rows.push_back({"greedy (2k-1 exact)", std::move(e), t.seconds()});
  }

  Table table({"algorithm", "segments kept", "% of roads", "max detour (sampled)",
               "mean detour (sampled)", "time(s)"});
  Rng rng(seed + 7);
  for (const Row& row : rows) {
    // Detour factors over sampled origin/destination pairs.
    const Graph h = spanner_graph(g, row.edges);
    double worst = 1.0, sum = 0;
    int cnt = 0;
    for (int q = 0; q < 24; ++q) {
      const vid s = static_cast<vid>(rng.uniform_int(2 * q, g.num_vertices()));
      const vid t = static_cast<vid>(rng.uniform_int(2 * q + 1, g.num_vertices()));
      if (s == t) continue;
      const weight_t dg = st_distance(g, s, t);
      if (dg == kInfWeight || dg == 0) continue;
      const double ratio = st_distance(h, s, t) / dg;
      worst = std::max(worst, ratio);
      sum += ratio;
      ++cnt;
    }
    table.row()
        .cell(row.name)
        .cell(row.edges.size())
        .cell(100.0 * static_cast<double>(row.edges.size()) /
                  static_cast<double>(g.num_edges()),
              1)
        .cell(worst, 2)
        .cell(cnt ? sum / cnt : 1.0, 2)
        .cell(row.seconds, 3);
  }
  table.print("road sparsification, k=" + std::to_string(static_cast<int>(k)));

  if (cli.has("out")) {
    const std::string path = cli.get("out", "spanner.txt");
    write_edge_list_file(path, spanner_graph(g, rows.front().edges));
    std::printf("EST spanner written to %s\n", path.c_str());
  }
  std::printf("\nInterpretation: an O(k)-spanner keeps every detour bounded while\n"
              "dropping a constant fraction of segments; EST does it in O(m) work\n"
              "and polylog depth (Theorem 1.1), where greedy needs ~m Dijkstras.\n");
  return 0;
}
