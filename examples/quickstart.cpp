// Quickstart: build a graph, make a spanner, make a hopset, answer
// (1+eps)-approximate distance queries.
//
//   ./quickstart [--n 4000] [--deg 6] [--k 3] [--eps 0.25] [--seed 1]
#include <cmath>
#include <cstdio>

#include "core/parsh.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 4000));
  const eid m = static_cast<eid>(cli.get_int("deg", 6)) * n / 2;
  const double k = cli.get_double("k", 3.0);
  const double eps = cli.get_double("eps", 0.25);
  const std::uint64_t seed = cli.get_seed("seed", 1);

  std::printf("parsh quickstart — spanners & hopsets (Miller-Peng-Vladu-Xu, SPAA'15)\n\n");

  // 1. A connected random graph.
  const Graph g = ensure_connected(make_random_graph(n, m, seed));
  std::printf("graph: n=%u m=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. An O(k)-spanner via one EST clustering (Algorithm 2).
  Timer t;
  const SpannerResult sp = unweighted_spanner(g, k, seed);
  std::printf("spanner (k=%.0f): %zu edges (%.2fx n^(1+1/k)=%.0f), %.1f ms\n",
              k, sp.edges.size(),
              static_cast<double>(sp.edges.size()) /
                  std::pow(static_cast<double>(n), 1.0 + 1.0 / k),
              std::pow(static_cast<double>(n), 1.0 + 1.0 / k), t.millis());
  const double stretch = sampled_edge_stretch(g, sp.edges, 64, seed);
  std::printf("  sampled edge stretch: %.2f (guarantee O(k))\n", stretch);

  // 3. A hopset (Algorithm 4) and how it shrinks hop radii.
  t.reset();
  HopsetParams hp;
  hp.epsilon = eps;
  hp.seed = seed;
  const HopsetResult hs = build_hopset(g, hp);
  std::printf("hopset: %zu edges (%llu star, %llu clique), %llu levels, %.1f ms\n",
              hs.edges.size(), static_cast<unsigned long long>(hs.star_edges),
              static_cast<unsigned long long>(hs.clique_edges),
              static_cast<unsigned long long>(hs.levels), t.millis());
  const auto ms = measure_hopset(g, hs.edges, eps, 16, 4096, seed);
  double plain = 0, with_set = 0;
  for (const auto& mres : ms) {
    plain += static_cast<double>(mres.hops_plain);
    with_set += static_cast<double>(mres.hops_with_set);
  }
  if (!ms.empty()) {
    std::printf("  mean hops to (1+%.2f)-approx: %.1f plain -> %.1f with hopset\n",
                eps, plain / ms.size(), with_set / ms.size());
  }

  // 4. The end-to-end (1+eps) query engine (Theorem 1.2).
  t.reset();
  ApproxShortestPaths::Params qp;
  qp.epsilon = eps;
  qp.hopset.hopset.seed = seed;
  const ApproxShortestPaths engine(g, qp);
  std::printf("query engine: %llu hopset edges over %zu scales, preprocessing %.1f ms\n",
              static_cast<unsigned long long>(engine.hopset().total_hopset_edges),
              engine.hopset().scales.size(), t.millis());
  Rng rng(seed ^ 0xabcdULL);
  for (int q = 0; q < 5; ++q) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * q, n));
    const vid tt = static_cast<vid>(rng.uniform_int(2 * q + 1, n));
    const auto qr = engine.query(s, tt);
    const weight_t exact = st_distance(g, s, tt);
    std::printf("  dist(%u, %u): approx %.0f, exact %.0f (ratio %.3f, %llu rounds)\n",
                s, tt, qr.estimate, exact,
                exact > 0 ? qr.estimate / exact : 1.0,
                static_cast<unsigned long long>(qr.rounds));
  }
  return 0;
}
