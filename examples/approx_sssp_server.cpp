// Distance-server scenario (Theorem 1.2 end to end), served through the
// real hardened service in src/server/ rather than an in-process loop:
// preprocess once, stand up a QueryServer on loopback TCP, and drive it
// with the retrying QueryClient. Every request carries a deadline, the
// admission queue coalesces arrivals into engine batches over the
// SsspWorkspacePool, and overload answers are typed (shed / partial /
// degraded) instead of unbounded queueing. The example then scores the
// served answers against exact Dijkstra — the accuracy profile — and
// prints the server's own counters so the robustness machinery is
// visible, not just the happy path.
//
//   ./approx_sssp_server [--n 8000] [--eps 0.25] [--queries 50]
//                        [--batches 4] [--workload path|grid|er|rmat]
//                        [--deadline_ms 1000] [--faults false] [--seed 1]
#include <cmath>
#include <cstdio>

#include "core/parsh.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  using server::ClientConfig;
  using server::QueryClient;
  using server::QueryResponse;
  using server::QueryServer;
  using server::ServerConfig;
  using server::StatsSnapshot;
  using server::StatusCode;

  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 8000));
  const double eps = cli.get_double("eps", 0.25);
  const int queries = static_cast<int>(cli.get_int("queries", 50));
  const int batches = static_cast<int>(cli.get_int("batches", 4));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "path");
  const auto deadline_ms = static_cast<std::uint32_t>(cli.get_int("deadline_ms", 1000));
  const bool faults = cli.get_bool("faults", false);

  Graph g;
  if (wl == "grid") {
    vid side = 1;
    while (side * side < n) ++side;
    g = make_grid(side, side);
  } else if (wl == "er") {
    g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 4, seed));
  } else if (wl == "rmat") {
    g = ensure_connected(make_rmat(n, static_cast<eid>(n) * 6, seed));
  } else {
    g = make_path(n);
  }
  g = with_uniform_weights(g, 1, 10, seed + 3);
  std::printf("distance server over %s: n=%u m=%llu, eps=%.2f\n", wl.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()), eps);

  ApproxShortestPaths::Params p;
  p.epsilon = eps;
  p.hopset.hopset.gamma2 = 0.6;
  p.hopset.hopset.seed = seed;
  Timer prep;
  const ApproxShortestPaths engine(g, p);
  std::printf("preprocessing: %.2fs — %llu hopset edges across %zu distance scales\n",
              prep.seconds(),
              static_cast<unsigned long long>(engine.hopset().total_hopset_edges),
              engine.hopset().scales.size());

  // The serving layer: admission + deadlines + degradation in front of
  // the engine's batched query path (one pooled workspace per worker).
  ServerConfig cfg;
  cfg.query_workers = 1;
  cfg.admission.default_deadline_ms = deadline_ms;
  if (faults) {
    cfg.enable_faults = true;
    cfg.fault_seed = seed ^ 0xfa417ULL;
    cfg.faults.slow_write = 0.1;
    cfg.faults.worker_stall = 0.1;
    cfg.faults.queue_spike = 0.1;
    cfg.faults.drop_connection = 0.02;
  }
  QueryServer srv(g, engine, cfg);
  {
    const auto s = srv.listen_tcp(0);
    if (!s.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  std::printf("serving on 127.0.0.1:%u%s\n\n", srv.port(),
              faults ? " (fault injection armed)" : "");

  ClientConfig ccfg;
  ccfg.max_retries = 3;
  ccfg.seed = seed;
  QueryClient client;
  if (!QueryClient::connect_tcp(srv.port(), ccfg, &client).ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  Rng rng(seed ^ 0xbeefULL);
  std::vector<double> ratios, rtt_ms;
  std::uint64_t answered = 0, partial = 0, degraded = 0, failed = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<std::pair<vid, vid>> batch;
    batch.reserve(static_cast<std::size_t>(queries));
    for (int q = 0; q < queries; ++q) {
      const int id = b * queries + q;
      const vid s = static_cast<vid>(rng.uniform_int(2 * id, n));
      const vid t = static_cast<vid>(rng.uniform_int(2 * id + 1, n));
      if (s != t) batch.push_back({s, t});
    }
    Timer ta;
    QueryResponse resp;
    const auto s = client.query(batch, deadline_ms, &resp);
    const double batch_ms = ta.millis();
    if (!s.ok()) {
      ++failed;
      std::printf("batch %d: failed after retries: %s\n", b, s.to_string().c_str());
      continue;
    }
    rtt_ms.push_back(batch_ms);
    std::printf("batch %d: %3zu queries round-tripped in %6.1f ms (%5.3f ms/query)%s%s\n",
                b, batch.size(), batch_ms,
                batch.empty() ? 0.0 : batch_ms / static_cast<double>(batch.size()),
                (resp.flags & server::kRespFlagPartial) ? " [partial]" : "",
                (resp.flags & server::kRespFlagDegraded) ? " [degraded]" : "");

    // Score the answers this batch actually produced against exact
    // Dijkstra. Deadline-cut entries are reported, not scored.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& a = resp.answers[i];
      if (a.status == StatusCode::kDeadlineExceeded) {
        ++partial;
        continue;
      }
      if (a.status != StatusCode::kOk) continue;
      ++answered;
      if (resp.flags & server::kRespFlagDegraded) ++degraded;
      const weight_t exact = st_distance(g, batch[i].first, batch[i].second);
      if (exact == kInfWeight || exact == 0) continue;
      ratios.push_back(a.estimate / exact);
    }
  }

  const Summary r = summarize(ratios);
  const Summary rtt = summarize(rtt_ms);
  Table table({"metric", "p50", "p90", "max", "mean"});
  table.row().cell("approx/exact ratio").cell(r.p50, 3).cell(r.p90, 3).cell(r.max, 3).cell(r.mean, 3);
  table.row().cell("batch RTT (ms)").cell(rtt.p50, 2).cell(rtt.p90, 2).cell(rtt.max, 2).cell(rtt.mean, 2);
  table.print(std::to_string(ratios.size()) + " scored queries");

  StatsSnapshot stats;
  if (client.stats(&stats).ok()) {
    std::printf("\nserver counters: admitted=%llu shed=%llu deadline_cut=%llu "
                "degraded=%llu invalid_frames=%llu faults=%llu\n",
                static_cast<unsigned long long>(stats.requests_admitted),
                static_cast<unsigned long long>(stats.requests_shed),
                static_cast<unsigned long long>(stats.queries_deadline_exceeded),
                static_cast<unsigned long long>(stats.queries_degraded),
                static_cast<unsigned long long>(stats.invalid_frames),
                static_cast<unsigned long long>(stats.faults_injected));
  }
  std::printf("client counters: sent=%llu retries=%llu reconnects=%llu "
              "answered=%llu partial=%llu degraded=%llu failed_batches=%llu\n",
              static_cast<unsigned long long>(client.client_stats().requests_sent),
              static_cast<unsigned long long>(client.client_stats().retries),
              static_cast<unsigned long long>(client.client_stats().reconnects),
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(partial),
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(failed));

  client.close();
  srv.stop();
  if (srv.open_connections() != 0) {
    std::fprintf(stderr, "leaked connections on shutdown\n");
    return 1;
  }
  std::printf("clean shutdown: all connections closed.\n");
  return 0;
}
