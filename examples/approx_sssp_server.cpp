// Distance-server scenario (Theorem 1.2 end to end): preprocess once,
// answer many (1+eps)-approximate distance queries cheaply and at low
// depth. Requests arrive in batches and are served through
// ApproxShortestPaths::query_batch over a reusable traversal-workspace
// pool (one SsspWorkspace per worker): the first batch warms the
// workspace buffers, every later batch runs with zero traversal-engine
// heap allocations. Compares the engine's per-query cost to exact
// Dijkstra and reports the aggregate accuracy profile.
//
//   ./approx_sssp_server [--n 8000] [--eps 0.25] [--queries 50]
//                        [--batches 4] [--workload path|grid|er|rmat]
//                        [--seed 1]
#include <cmath>
#include <cstdio>

#include "core/parsh.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 8000));
  const double eps = cli.get_double("eps", 0.25);
  const int queries = static_cast<int>(cli.get_int("queries", 50));
  const int batches = static_cast<int>(cli.get_int("batches", 4));
  const std::uint64_t seed = cli.get_seed("seed", 1);
  const std::string wl = cli.get("workload", "path");

  Graph g;
  if (wl == "grid") {
    vid side = 1;
    while (side * side < n) ++side;
    g = make_grid(side, side);
  } else if (wl == "er") {
    g = ensure_connected(make_random_graph(n, static_cast<eid>(n) * 4, seed));
  } else if (wl == "rmat") {
    g = ensure_connected(make_rmat(n, static_cast<eid>(n) * 6, seed));
  } else {
    g = make_path(n);
  }
  g = with_uniform_weights(g, 1, 10, seed + 3);
  std::printf("distance server over %s: n=%u m=%llu, eps=%.2f\n", wl.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()), eps);

  ApproxShortestPaths::Params p;
  p.epsilon = eps;
  p.hopset.hopset.gamma2 = 0.6;
  p.hopset.hopset.seed = seed;
  Timer prep;
  const ApproxShortestPaths engine(g, p);
  std::printf("preprocessing: %.2fs — %llu hopset edges across %zu distance scales\n\n",
              prep.seconds(),
              static_cast<unsigned long long>(engine.hopset().total_hopset_edges),
              engine.hopset().scales.size());

  // The server's long-lived state: one workspace per worker, reused by
  // every batch.
  SsspWorkspacePool pool;

  Rng rng(seed ^ 0xbeefULL);
  std::vector<double> ratios, engine_rounds, plain_rounds, t_exact, t_approx;
  for (int b = 0; b < batches; ++b) {
    // Assemble this batch of s-t requests.
    std::vector<ApproxShortestPaths::QueryPair> batch;
    batch.reserve(static_cast<std::size_t>(queries));
    for (int q = 0; q < queries; ++q) {
      const int id = b * queries + q;
      const vid s = static_cast<vid>(rng.uniform_int(2 * id, n));
      const vid t = static_cast<vid>(rng.uniform_int(2 * id + 1, n));
      if (s != t) batch.push_back({s, t});
    }
    const std::uint64_t allocs_before = pool.alloc_events();
    Timer ta;
    const auto answers = engine.query_batch(batch, pool);
    const double batch_s = ta.seconds();
    const std::uint64_t batch_allocs = pool.alloc_events() - allocs_before;
    std::printf("batch %d: %3zu queries in %6.1f ms (%5.3f ms/query), "
                "%llu workspace allocations%s\n",
                b, batch.size(), batch_s * 1e3,
                batch.empty() ? 0.0 : batch_s * 1e3 / static_cast<double>(batch.size()),
                static_cast<unsigned long long>(batch_allocs),
                b == 0 ? " (cold: buffers warming)" : "");

    // Score this batch against exact Dijkstra (the accuracy profile).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto [s, t] = batch[i];
      Timer te;
      const weight_t exact = st_distance(g, s, t);
      t_exact.push_back(te.seconds());
      if (exact == kInfWeight || exact == 0) continue;
      t_approx.push_back(batch_s / static_cast<double>(batch.size()));
      ratios.push_back(answers[i].estimate / exact);
      engine_rounds.push_back(static_cast<double>(answers[i].rounds));
      plain_rounds.push_back(
          static_cast<double>(hops_to_approx(g, s, t, exact, eps, 4ull * n)));
    }
  }

  const Summary r = summarize(ratios);
  const Summary er = summarize(engine_rounds);
  const Summary pr = summarize(plain_rounds);
  Table table({"metric", "p50", "p90", "max", "mean"});
  table.row().cell("approx/exact ratio").cell(r.p50, 3).cell(r.p90, 3).cell(r.max, 3).cell(r.mean, 3);
  table.row().cell("engine rounds (depth)").cell(er.p50, 0).cell(er.p90, 0).cell(er.max, 0).cell(er.mean, 0);
  table.row().cell("plain hop rounds").cell(pr.p50, 0).cell(pr.p90, 0).cell(pr.max, 0).cell(pr.mean, 0);
  table.print(std::to_string(ratios.size()) + " scored queries");

  std::printf("\nmean wall time: exact Dijkstra %.3f ms/call, engine %.3f ms/query\n"
              "(engine figure is batch wall time / batch size — amortized server\n"
              "throughput across the worker pool, not single-query latency)\n",
              summarize(t_exact).mean * 1e3, summarize(t_approx).mean * 1e3);
  std::printf("(on one core Dijkstra wins wall-clock; the engine's value is its\n"
              "round count — its depth on a parallel machine — shown above.)\n");
  return 0;
}
