// Figure 3, animated in text: how a hopset shortcuts an s-t path.
//
// The paper's Figure 3 shows an s-t path crossing the clusters of one
// decomposition level; the first and last *large* clusters it touches get
// bridged by two star edges and one clique edge. This demo builds a long
// path, runs one decomposition level by hand (the same routine Algorithm 4
// uses), prints which clusters the path crosses and which shortcut
// replaces the middle, then shows the end-to-end hop reduction of the full
// recursive construction.
//
//   ./shortcut_demo [--n 400] [--beta 0.05] [--seed 5]
#include <cstdio>

#include "core/parsh.hpp"

int main(int argc, char** argv) {
  using namespace parsh;
  Cli cli(argc, argv);
  const vid n = static_cast<vid>(cli.get_int("n", 400));
  const double beta = cli.get_double("beta", 0.05);
  const std::uint64_t seed = cli.get_seed("seed", 5);

  const Graph g = make_path(n);
  const vid s = 0, t = n - 1;
  std::printf("Figure 3 demo: path of %u vertices, s=%u, t=%u\n\n", n, s, t);

  // --- One decomposition level, inspected ------------------------------
  const Clustering c = est_cluster(g, beta, seed);
  std::printf("one EST clustering at beta=%.3f: %u clusters, max radius %.0f\n",
              beta, c.num_clusters, max_cluster_radius(c));

  // Walk the s-t path (the path graph itself) and record cluster crossings.
  std::printf("cluster segments along the path (cluster id x length):\n  ");
  vid cur = c.cluster_of[s];
  vid len = 0;
  std::vector<std::pair<vid, vid>> segments;  // (cluster, length)
  for (vid v = s; v <= t; ++v) {
    if (c.cluster_of[v] == cur) {
      ++len;
    } else {
      segments.push_back({cur, len});
      cur = c.cluster_of[v];
      len = 1;
    }
  }
  segments.push_back({cur, len});
  for (std::size_t i = 0; i < segments.size() && i < 14; ++i) {
    std::printf("[c%u x%u] ", segments[i].first, segments[i].second);
  }
  if (segments.size() > 14) std::printf("... (%zu segments)", segments.size());
  std::printf("\n\n");

  // Large clusters by the Algorithm 4 rule (rho from default params).
  HopsetParams hp;
  hp.seed = seed;
  const double rho = hopset_rho(n, hp);
  const double threshold = static_cast<double>(n) / rho;
  const auto sizes = c.sizes();
  vid first_large = kNoVertex, last_large = kNoVertex;
  for (const auto& [cl, ln] : segments) {
    if (static_cast<double>(sizes[cl]) >= threshold) {
      if (first_large == kNoVertex) first_large = cl;
      last_large = cl;
    }
  }
  std::printf("large-cluster rule: size >= n/rho = %.1f\n", threshold);
  if (first_large == kNoVertex) {
    std::printf("no large cluster on the path at this beta — rerun with a smaller "
                "--beta to see the shortcut.\n");
  } else {
    std::printf("the paper's shortcut (Figure 3): enter the FIRST large cluster c%u\n"
                "at its first path vertex u, leave the LAST large cluster c%u at its\n"
                "last path vertex v; replace everything between by\n"
                "  (u -> center %u)  [star edge]\n"
                "  (center %u -> center %u)  [clique edge]\n"
                "  (center %u -> v)  [star edge]\n\n",
                first_large, last_large, c.center[first_large], c.center[first_large],
                c.center[last_large], c.center[last_large]);
  }

  // --- Full recursive construction, measured ---------------------------
  hp.gamma2 = 0.6;
  hp.epsilon = 0.5;
  const HopsetResult hs = build_hopset(g, hp);
  std::printf("full Algorithm 4: %zu hopset edges (%llu star + %llu clique), "
              "%llu levels\n",
              hs.edges.size(), static_cast<unsigned long long>(hs.star_edges),
              static_cast<unsigned long long>(hs.clique_edges),
              static_cast<unsigned long long>(hs.levels));
  const Graph aug = g.with_extra_edges(hs.edges);
  const weight_t exact = static_cast<weight_t>(n - 1);
  for (double eps : {0.1, 0.25, 0.5}) {
    const std::uint64_t plain = hops_to_approx(g, s, t, exact, eps, 2ull * n);
    const std::uint64_t with_set = hops_to_approx(aug, s, t, exact, eps, 2ull * n);
    std::printf("  hops to (1+%.2f)-approx of dist(s,t)=%u: %llu plain -> %llu "
                "with hopset\n",
                eps, n - 1, static_cast<unsigned long long>(plain),
                static_cast<unsigned long long>(with_set));
  }
  std::printf("\nThat reduction — paths of d hops collapsing to ~beta0*d plus\n"
              "per-level residue — is exactly Lemma 4.2's h bound in action.\n");
  return 0;
}
