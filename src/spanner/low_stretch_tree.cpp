#include "spanner/low_stretch_tree.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <tuple>

#include "cluster/est_cluster.hpp"
#include "graph/connectivity.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {

namespace {

class Dsu {
 public:
  explicit Dsu(vid n) : parent_(n) { std::iota(parent_.begin(), parent_.end(), 0); }
  vid find(vid v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(vid a, vid b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[std::max(a, b)] = std::min(a, b);
    return true;
  }

 private:
  std::vector<vid> parent_;
};

}  // namespace

TreeResult akpw_low_stretch_tree(const Graph& g, double k, std::uint64_t seed) {
  TreeResult out;
  const vid n = g.num_vertices();
  if (n == 0) return out;
  Dsu dsu(n);
  // Buckets by weight (powers of two), lightest first — AKPW processes
  // weight classes in order so light edges get contracted before heavy
  // ones are considered.
  std::vector<Edge> edges = g.undirected_edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.w, a.u, a.v) < std::tie(b.w, b.u, b.v);
  });
  std::size_t next = 0;
  std::vector<Edge> active;  // edges of buckets processed so far, not yet resolved
  const double beta = std::log(std::max<vid>(n, 2)) / (2.0 * k);
  std::uint64_t iter = 0;
  // One clustering workspace across every weight-class iteration: AKPW
  // calls est_cluster once per contraction step, all on quotients of the
  // same host graph, so the engine and priority arrays warm once.
  EstClusterWorkspace ws;
  while (next < edges.size() || !active.empty()) {
    // Pull in the next weight bucket ([2^b, 2^{b+1})).
    if (next < edges.size()) {
      const double w0 = edges[next].w;
      const double cap = std::pow(2.0, std::floor(std::log2(w0)) + 1.0);
      while (next < edges.size() && edges[next].w < cap) active.push_back(edges[next++]);
    }
    // Contract until this bucket can no longer join components.
    bool progressed = true;
    while (progressed && !active.empty()) {
      progressed = false;
      // Build the quotient multigraph of active edges on DSU components.
      std::vector<vid> comp_local(n, kNoVertex);
      std::vector<vid> locals;
      auto local_of = [&](vid c) {
        if (comp_local[c] == kNoVertex) {
          comp_local[c] = static_cast<vid>(locals.size());
          locals.push_back(c);
        }
        return comp_local[c];
      };
      std::map<std::pair<vid, vid>, Edge> rep;
      std::vector<Edge> still_active;
      for (const Edge& e : active) {
        const vid cu = dsu.find(e.u), cv = dsu.find(e.v);
        if (cu == cv) continue;  // resolved
        still_active.push_back(e);
        vid a = local_of(cu), b = local_of(cv);
        if (a > b) std::swap(a, b);
        auto [it, inserted] = rep.try_emplace({a, b}, e);
        if (!inserted &&
            std::tie(e.w, e.u, e.v) < std::tie(it->second.w, it->second.u, it->second.v)) {
          it->second = e;
        }
      }
      active = std::move(still_active);
      if (rep.empty()) break;
      std::vector<Edge> qedges;
      qedges.reserve(rep.size());
      for (const auto& [key, orig] : rep) {
        (void)orig;
        qedges.push_back({key.first, key.second, 1.0});
      }
      const Graph quotient =
          Graph::from_edges(static_cast<vid>(locals.size()), std::move(qedges));
      const Clustering c = est_cluster(quotient, beta, seed + 1000 * iter, ws);
      ++iter;
      for (vid v = 0; v < quotient.num_vertices(); ++v) {
        const vid p = c.parent[v];
        if (p == kNoVertex) continue;
        vid a = v, b = p;
        if (a > b) std::swap(a, b);
        const Edge& orig = rep.at({a, b});
        if (dsu.unite(orig.u, orig.v)) {
          out.edges.push_back(orig);
          progressed = true;
        }
      }
    }
  }
  out.iterations = iter;
  return out;
}

TreeResult minimum_spanning_tree(const Graph& g) {
  TreeResult out;
  std::vector<Edge> edges = g.undirected_edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.w, a.u, a.v) < std::tie(b.w, b.u, b.v);
  });
  Dsu dsu(g.num_vertices());
  for (const Edge& e : edges) {
    if (dsu.unite(e.u, e.v)) out.edges.push_back(e);
  }
  out.iterations = 1;
  return out;
}

TreeStretch tree_stretch(const Graph& g, const std::vector<Edge>& tree) {
  TreeStretch s;
  const Graph t = Graph::from_edges(g.num_vertices(), std::vector<Edge>(tree));
  double sum = 0;
  std::size_t count = 0;
  for (vid u = 0; u < g.num_vertices(); ++u) {
    if (g.degree(u) == 0) continue;
    const SsspResult sp = dijkstra(t, u);
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      if (v < u) continue;
      const double ratio = sp.dist[v] / g.weight(e);
      sum += ratio;
      s.maximum = std::max(s.maximum, ratio);
      ++count;
    }
  }
  s.average = count ? sum / static_cast<double>(count) : 0.0;
  return s;
}

bool is_spanning_forest(const Graph& g, const std::vector<Edge>& edges) {
  // Within g, acyclic, and as connective as g itself.
  Dsu dsu(g.num_vertices());
  for (const Edge& e : edges) {
    if (e.u >= g.num_vertices() || e.v >= g.num_vertices()) return false;
    bool in_g = false;
    for (eid a = g.begin(e.u); a < g.end(e.u); ++a) {
      if (g.target(a) == e.v && g.weight(a) == e.w) {
        in_g = true;
        break;
      }
    }
    if (!in_g) return false;
    if (!dsu.unite(e.u, e.v)) return false;  // cycle
  }
  // Spanning: same component count as g.
  const auto comp = connected_components(g);
  vid g_comps = 0;
  for (vid c : comp) g_comps = std::max(g_comps, c + 1);
  return edges.size() == static_cast<std::size_t>(g.num_vertices()) - g_comps;
}

}  // namespace parsh
