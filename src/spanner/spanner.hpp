// Spanner constructions (Section 3).
//
// * unweighted_spanner — Algorithm 2: one EST clustering with
//   beta = ln(n)/(2k); keep the cluster forest and one edge from each
//   boundary vertex to each adjacent cluster. O(k) stretch, expected size
//   O(n^{1+1/k}) (Lemma 3.2).
// * weighted_spanner — Theorem 3.3: bucket edges by powers of two, split
//   the buckets into O(log k) "well separated" subsequences (consecutive
//   used buckets differ by >= ~4k in weight), and run Algorithm 3
//   (WellSeparatedSpanner) on each: process buckets lightest-first,
//   contracting the forest built so far (AKPW-style), and apply the
//   unweighted construction on each quotient graph. O(k) stretch,
//   expected size O(n^{1+1/k} log k).
//
// Both return the spanner as an edge list over the input graph's vertex
// ids; every returned edge is an edge of the input graph.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/est_cluster.hpp"
#include "graph/graph.hpp"

namespace parsh {

struct SpannerResult {
  std::vector<Edge> edges;
  /// Synchronous rounds executed by the clustering stages (depth proxy).
  std::uint64_t rounds = 0;
  /// Number of EST clustering invocations (levels processed).
  std::uint64_t levels = 0;
};

/// Algorithm 2 on an unweighted graph. `k` is the stretch parameter
/// (stretch O(k)); size concentrates around n^{1+1/k}.
SpannerResult unweighted_spanner(const Graph& g, double k, std::uint64_t seed);

/// Theorem 3.3 on a weighted graph with positive integer weights.
SpannerResult weighted_spanner(const Graph& g, double k, std::uint64_t seed);

/// Algorithm 3 run on one well-separated bucket subsequence, exposed for
/// tests. `buckets[i]` holds the edges of level i (weights within a
/// factor-2 band, consecutive bands >= ~4k apart). `n` is the host vertex
/// count.
SpannerResult well_separated_spanner(vid n, const std::vector<std::vector<Edge>>& buckets,
                                     double k, std::uint64_t seed);

/// Split the edges of g into power-of-two weight buckets; bucket b holds
/// weights in [2^b, 2^{b+1}). Exposed for tests and benches.
std::vector<std::vector<Edge>> weight_buckets(const Graph& g);

}  // namespace parsh
