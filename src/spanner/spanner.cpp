#include "spanner/spanner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <tuple>

#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// beta = ln(n) / (2k), the decomposition rate of Algorithm 2 / 3.
double spanner_beta(vid n, double k) {
  return std::log(std::max<vid>(n, 2)) / (2.0 * k);
}

/// Canonicalize (u < v) and drop duplicates — the two endpoints of a
/// cluster-crossing edge may both nominate it as their boundary pick.
void dedup_edges(std::vector<Edge>& edges) {
  for (Edge& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());
}

/// Forest + boundary edges of one EST clustering, reported through a
/// caller-supplied edge resolver (identity for the unweighted algorithm;
/// quotient-edge representatives for Algorithm 3).
///
/// `emit_forest(v, parent)` and `emit_boundary(u, v)` receive local vertex
/// ids of `g`.
template <typename EmitForest, typename EmitBoundary>
void cluster_and_emit(const Graph& g, double k, std::uint64_t seed,
                      EstClusterWorkspace& ws, std::uint64_t* rounds,
                      EmitForest emit_forest, EmitBoundary emit_boundary) {
  const Clustering c = est_cluster(g, spanner_beta(g.num_vertices(), k), seed, ws);
  *rounds += c.rounds;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (c.parent[v] != kNoVertex) emit_forest(v, c.parent[v]);
  }
  // Line 2 of Algorithm 2: from each boundary vertex add one edge to each
  // adjacent cluster. Deterministic pick: the smallest-id neighbour in
  // that cluster.
  std::vector<std::pair<vid, vid>> picks;  // (cluster, neighbour), reused per vertex
  for (vid v = 0; v < g.num_vertices(); ++v) {
    picks.clear();
    const vid cv = c.cluster_of[v];
    for (eid e = g.begin(v); e < g.end(v); ++e) {
      const vid u = g.target(e);
      const vid cu = c.cluster_of[u];
      if (cu != cv) picks.emplace_back(cu, u);
    }
    if (picks.empty()) continue;
    std::sort(picks.begin(), picks.end());
    for (std::size_t i = 0; i < picks.size(); ++i) {
      if (i > 0 && picks[i].first == picks[i - 1].first) continue;
      emit_boundary(v, picks[i].second);
    }
  }
}

}  // namespace

SpannerResult unweighted_spanner(const Graph& g, double k, std::uint64_t seed) {
  SpannerResult r;
  r.levels = 1;
  auto edge_weight = [&](vid u, vid v) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      if (g.target(e) == v) return g.weight(e);
    }
    return weight_t{1};
  };
  EstClusterWorkspace ws;
  cluster_and_emit(
      g, k, seed, ws, &r.rounds,
      [&](vid v, vid p) { r.edges.push_back({v, p, edge_weight(v, p)}); },
      [&](vid u, vid v) { r.edges.push_back({u, v, edge_weight(u, v)}); });
  dedup_edges(r.edges);
  return r;
}

std::vector<std::vector<Edge>> weight_buckets(const Graph& g) {
  std::vector<std::vector<Edge>> buckets;
  for (const Edge& e : g.undirected_edges()) {
    auto b = static_cast<std::size_t>(std::floor(std::log2(std::max<weight_t>(e.w, 1))));
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(e);
  }
  return buckets;
}

namespace {

/// Incremental union-find over the host vertices; components are the
/// contracted pieces H_{i-1} of Algorithm 3.
class Dsu {
 public:
  explicit Dsu(vid n) : parent_(n) { std::iota(parent_.begin(), parent_.end(), 0); }
  vid find(vid v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void unite(vid a, vid b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<vid> parent_;
};

}  // namespace

namespace {

/// Algorithm 3 with a caller-owned clustering workspace: one engine warms
/// across every level's quotient clustering (and, via weighted_spanner,
/// across the O(log k) well-separated sub-runs too).
SpannerResult well_separated_spanner_ws(vid n,
                                        const std::vector<std::vector<Edge>>& buckets,
                                        double k, std::uint64_t seed,
                                        EstClusterWorkspace& ws) {
  SpannerResult r;
  Dsu dsu(n);
  for (std::size_t level = 0; level < buckets.size(); ++level) {
    const std::vector<Edge>& bucket = buckets[level];
    if (bucket.empty()) continue;
    ++r.levels;
    // Build the quotient graph Gamma_i = G[A_i] / H_{i-1} with uniform
    // weights. Vertices: contracted components touched by this bucket,
    // relabelled densely. Each quotient edge keeps one representative
    // original edge (min (u,v,w) for determinism).
    std::vector<vid> comp_of_host(n, kNoVertex);  // host component -> local id
    std::vector<vid> locals;                      // local id -> host component
    auto local_of = [&](vid host_comp) {
      if (comp_of_host[host_comp] == kNoVertex) {
        comp_of_host[host_comp] = static_cast<vid>(locals.size());
        locals.push_back(host_comp);
      }
      return comp_of_host[host_comp];
    };
    std::map<std::pair<vid, vid>, Edge> rep;  // quotient edge -> original edge
    for (const Edge& e : bucket) {
      const vid cu = dsu.find(e.u), cv = dsu.find(e.v);
      if (cu == cv) continue;  // already contracted — zero stretch cost
      vid a = local_of(cu), b = local_of(cv);
      if (a > b) std::swap(a, b);
      auto [it, inserted] = rep.try_emplace({a, b}, e);
      if (!inserted) {
        const Edge& cur = it->second;
        if (std::tie(e.w, e.u, e.v) < std::tie(cur.w, cur.u, cur.v)) it->second = e;
      }
    }
    if (rep.empty()) continue;
    std::vector<Edge> qedges;
    qedges.reserve(rep.size());
    for (const auto& [key, orig] : rep) {
      qedges.push_back({key.first, key.second, 1.0});  // uniform weights
      (void)orig;
    }
    const Graph quotient =
        Graph::from_edges(static_cast<vid>(locals.size()), std::move(qedges));
    auto resolve = [&](vid a, vid b) {
      if (a > b) std::swap(a, b);
      return rep.at({a, b});
    };
    std::vector<Edge> forest_edges;
    cluster_and_emit(
        quotient, k, seed + level + 1, ws, &r.rounds,
        [&](vid v, vid p) { forest_edges.push_back(resolve(v, p)); },
        [&](vid u, vid v) { r.edges.push_back(resolve(u, v)); });
    // S := S ∪ F and H_i := H_{i-1} ∪ F (contract the forest for the next
    // level).
    for (const Edge& e : forest_edges) {
      r.edges.push_back(e);
      dsu.unite(e.u, e.v);
    }
  }
  dedup_edges(r.edges);
  return r;
}

}  // namespace

SpannerResult well_separated_spanner(vid n, const std::vector<std::vector<Edge>>& buckets,
                                     double k, std::uint64_t seed) {
  EstClusterWorkspace ws;
  return well_separated_spanner_ws(n, buckets, k, seed, ws);
}

SpannerResult weighted_spanner(const Graph& g, double k, std::uint64_t seed) {
  // Break the graph into O(log k) edge-disjoint graphs whose used weight
  // buckets are >= ~4k apart (stride in bucket index), then run
  // Algorithm 3 on each. stride = ceil(log2(4k)) buckets ensures
  // consecutive levels' weights differ by >= 2^{stride-1} >= 2k.
  const auto buckets = weight_buckets(g);
  const auto stride =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(std::log2(4.0 * k))));
  SpannerResult r;
  EstClusterWorkspace ws;  // shared by all O(log k) sub-runs
  for (std::size_t j = 0; j < stride && j < buckets.size(); ++j) {
    std::vector<std::vector<Edge>> sub;
    for (std::size_t b = j; b < buckets.size(); b += stride) sub.push_back(buckets[b]);
    SpannerResult part =
        well_separated_spanner_ws(g.num_vertices(), sub, k, seed ^ (j * 0x9e37ULL), ws);
    r.edges.insert(r.edges.end(), part.edges.begin(), part.edges.end());
    r.rounds += part.rounds;
    r.levels += part.levels;
  }
  dedup_edges(r.edges);  // the G_j are edge-disjoint, but keep the invariant
  return r;
}

}  // namespace parsh
