#include "spanner/verify.hpp"

#include <algorithm>

#include "random/rng.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {

Graph spanner_graph(const Graph& g, const std::vector<Edge>& edges) {
  return Graph::from_edges(g.num_vertices(), edges);
}

bool is_subgraph(const Graph& g, const std::vector<Edge>& spanner) {
  for (const Edge& e : spanner) {
    if (e.u >= g.num_vertices() || e.v >= g.num_vertices()) return false;
    bool found = false;
    for (eid a = g.begin(e.u); a < g.end(e.u); ++a) {
      if (g.target(a) == e.v && g.weight(a) == e.w) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

namespace {

/// Max stretch of the edges incident to each vertex in `sources`.
double stretch_from_sources(const Graph& g, const Graph& h,
                            const std::vector<vid>& sources) {
  double worst = 0.0;
  for (vid s : sources) {
    if (g.degree(s) == 0) continue;
    const SsspResult sp = dijkstra(h, s);
    for (eid e = g.begin(s); e < g.end(s); ++e) {
      const vid v = g.target(e);
      const double ratio = sp.dist[v] / g.weight(e);
      worst = std::max(worst, ratio);
    }
  }
  return worst;
}

}  // namespace

double max_edge_stretch(const Graph& g, const std::vector<Edge>& spanner) {
  const Graph h = spanner_graph(g, spanner);
  std::vector<vid> all(g.num_vertices());
  for (vid v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return stretch_from_sources(g, h, all);
}

double sampled_edge_stretch(const Graph& g, const std::vector<Edge>& spanner,
                            vid samples, std::uint64_t seed) {
  const Graph h = spanner_graph(g, spanner);
  Rng rng(seed);
  std::vector<vid> sources(samples);
  for (vid i = 0; i < samples; ++i) {
    sources[i] = static_cast<vid>(rng.uniform_int(i, g.num_vertices()));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return stretch_from_sources(g, h, sources);
}

double sampled_pair_stretch(const Graph& g, const std::vector<Edge>& spanner,
                            vid pairs, std::uint64_t seed) {
  const Graph h = spanner_graph(g, spanner);
  Rng rng(seed);
  double worst = 0.0;
  for (vid i = 0; i < pairs; ++i) {
    const vid s = static_cast<vid>(rng.uniform_int(2 * i, g.num_vertices()));
    const vid t = static_cast<vid>(rng.uniform_int(2 * i + 1, g.num_vertices()));
    if (s == t) continue;
    const weight_t dg = st_distance(g, s, t);
    if (dg == kInfWeight || dg == 0) continue;
    const weight_t dh = st_distance(h, s, t);
    worst = std::max(worst, dh / dg);
  }
  return worst;
}

}  // namespace parsh
