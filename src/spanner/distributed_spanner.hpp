// Distributed (CONGEST-style) port of the unweighted spanner.
//
// Section 2.2: "Our spanner construction for unweighted graphs can also
// be ported to this distributed setting with similar guarantees, as it
// employs breadth first search, which admits a simple implementation in
// synchronized distributed networks." This module substantiates that
// claim: a synchronized message-passing simulator in which each vertex is
// a processor that only sees its own state and per-round messages from
// neighbours, plus Algorithm 2 implemented inside it. The simulator
// counts rounds and messages — the distributed complexity measures the
// claim is stated in (O(k) rounds, unit-size messages).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// Outcome of a distributed spanner execution.
struct DistributedSpannerResult {
  std::vector<Edge> edges;
  std::uint64_t rounds = 0;    ///< synchronized communication rounds
  std::uint64_t messages = 0;  ///< total messages sent (each O(1) words)
};

/// Run Algorithm 2 in the synchronized message-passing model on an
/// unweighted graph: vertices draw their shifts locally, race shifted
/// BFS waves (one message per edge per round), then exchange cluster ids
/// once to select boundary edges. Deterministic in `seed` and — by
/// construction — produces exactly the same spanner as
/// `unweighted_spanner` run with the same seed's clustering.
DistributedSpannerResult distributed_unweighted_spanner(const Graph& g, double k,
                                                        std::uint64_t seed);

}  // namespace parsh
