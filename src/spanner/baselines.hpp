// Baseline spanner constructions from Figure 1.
//
// * greedy_spanner — the classic (2k-1)-spanner of Althöfer et al.
//   [ADD+93]: scan edges lightest-first, keep an edge iff the spanner
//   built so far does not already connect its endpoints within
//   (2k-1) * w. Size <= n^{1+1/k} * O(1) (it is a sparsest-possible
//   construction) but O(m * n^{1+1/k}) work and inherently sequential —
//   the first row of the paper's Figure 1.
// * baswana_sen_spanner — the randomized linear-work (2k-1)-spanner of
//   Baswana & Sen [BS07]: k-1 rounds of cluster sampling with probability
//   n^{-1/k} followed by the vertex-cluster joining phase; size
//   O(k n^{1+1/k}). The second row of Figure 1 and the strongest prior
//   parallel baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// [ADD+93] greedy (2k-1)-spanner. Exact stretch guarantee; use on small
/// and mid-size graphs only (quadratic-ish work).
std::vector<Edge> greedy_spanner(const Graph& g, double k);

/// [BS07] randomized (2k-1)-spanner; k must be a positive integer.
std::vector<Edge> baswana_sen_spanner(const Graph& g, int k, std::uint64_t seed);

}  // namespace parsh
