#include "spanner/distributed_spanner.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "cluster/est_cluster.hpp"
#include "graph/validation.hpp"

namespace parsh {

namespace {

/// A BFS-wave message: "I joined cluster `cluster`; through me your key
/// would be `key`". One O(1)-word message per edge per wave step.
struct WaveMessage {
  vid to;
  vid from;
  vid cluster;
  double key;
};

}  // namespace

DistributedSpannerResult distributed_unweighted_spanner(const Graph& g, double k,
                                                        std::uint64_t seed) {
  if (g.weighted()) {
    throw InvalidGraphError(
        "distributed_unweighted_spanner: the distributed port exists only for "
        "unweighted graphs (Section 2.2 — weighted needs contractions, which "
        "the message-passing model does not support)");
  }
  DistributedSpannerResult out;
  const vid n = g.num_vertices();
  if (n == 0) return out;

  // Local coin flips: each processor draws its own shift (same stream as
  // the shared-memory implementation — and the same draws the workspace
  // path of est_cluster makes — so the outputs coincide).
  const double beta = std::log(std::max<vid>(n, 2)) / (2.0 * k);
  std::vector<double> delta;
  est_shifts_into(delta, n, beta, seed);
  double delta_max = 0;
  for (double d : delta) delta_max = std::max(delta_max, d);

  // Per-processor state.
  std::vector<double> key(n, kInfWeight);
  std::vector<vid> cluster(n, kNoVertex);
  std::vector<vid> parent(n, kNoVertex);

  // Message queues indexed by delivery round.
  std::vector<std::vector<WaveMessage>> inbox;
  auto deliver_at = [&](std::size_t round, WaveMessage m) {
    if (round >= inbox.size()) inbox.resize(round + 1);
    inbox[round].push_back(m);
    ++out.messages;
  };

  vid settled = 0;
  for (std::size_t t = 0; settled < n; ++t) {
    ++out.rounds;
    // Collect this round's candidates: delivered messages plus local
    // wake-ups (floor(start) == t).
    std::vector<WaveMessage> cand;
    if (t < inbox.size()) cand.swap(inbox[t]);
    for (vid v = 0; v < n; ++v) {
      const double start = delta_max - delta[v];
      if (cluster[v] == kNoVertex && static_cast<std::size_t>(start) == t) {
        cand.push_back({v, kNoVertex, v, start});
      }
    }
    if (cand.empty()) continue;
    // Each processor resolves its own minimum (ties toward smaller
    // sender, mirroring the CRCW priority write).
    std::sort(cand.begin(), cand.end(), [](const WaveMessage& a, const WaveMessage& b) {
      if (a.to != b.to) return a.to < b.to;
      if (a.key != b.key) return a.key < b.key;
      return a.from < b.from;
    });
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (i > 0 && cand[i].to == cand[i - 1].to) continue;
      const WaveMessage& m = cand[i];
      if (cluster[m.to] != kNoVertex) continue;
      cluster[m.to] = m.cluster;
      parent[m.to] = m.from;
      key[m.to] = m.key;
      ++settled;
      // Broadcast the wave to all neighbours for the next round.
      for (eid e = g.begin(m.to); e < g.end(m.to); ++e) {
        const vid u = g.target(e);
        if (cluster[u] != kNoVertex) continue;  // settled ignore the wave
        deliver_at(t + 1, {u, m.to, cluster[m.to], key[m.to] + 1.0});
      }
    }
  }

  // One synchronous exchange of cluster ids across every edge, after
  // which boundary selection is a local decision.
  ++out.rounds;
  out.messages += g.num_arcs();

  for (vid v = 0; v < n; ++v) {
    if (parent[v] != kNoVertex) out.edges.push_back({v, parent[v], 1.0});
  }
  std::vector<std::pair<vid, vid>> picks;
  for (vid v = 0; v < n; ++v) {
    picks.clear();
    for (eid e = g.begin(v); e < g.end(v); ++e) {
      const vid u = g.target(e);
      if (cluster[u] != cluster[v]) picks.emplace_back(cluster[u], u);
    }
    std::sort(picks.begin(), picks.end());
    for (std::size_t i = 0; i < picks.size(); ++i) {
      if (i > 0 && picks[i].first == picks[i - 1].first) continue;
      out.edges.push_back({v, picks[i].second, 1.0});
    }
  }
  // Canonicalize and dedup (both endpoints may nominate the same edge) —
  // identical to the shared-memory construction's post-pass.
  for (Edge& e : out.edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(out.edges.begin(), out.edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end(),
                              [](const Edge& a, const Edge& b) {
                                return a.u == b.u && a.v == b.v;
                              }),
                  out.edges.end());
  return out;
}

}  // namespace parsh
