// Low-stretch spanning trees via hierarchical EST contraction.
//
// The paper's introduction traces EST clustering to the low-stretch
// spanning tree line ([AKPW95]; "stretching stretch" [CMP+14]): contract
// exponential-shift clusters level by level, keeping the cluster forests,
// and a spanning tree with polylog-ish average stretch falls out. This
// module implements that AKPW-style construction on top of the same
// est_cluster / bucket machinery the spanner uses (Algorithm 3 minus the
// boundary edges), plus a Kruskal MST baseline for stretch comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct TreeResult {
  /// Forest edges: |edges| = n - #components for valid output.
  std::vector<Edge> edges;
  /// Contraction iterations performed (depth proxy: each is one EST
  /// clustering round-set).
  std::uint64_t iterations = 0;
};

/// AKPW-style low-stretch spanning forest. `k` plays the same role as in
/// the spanner (beta = ln(n)/2k per level); larger k gives deeper
/// clusters per level and fewer levels.
TreeResult akpw_low_stretch_tree(const Graph& g, double k, std::uint64_t seed);

/// Kruskal minimum spanning forest (the classical baseline: minimum
/// weight, but worst-case stretch Omega(n) even on a cycle).
TreeResult minimum_spanning_tree(const Graph& g);

/// Average and maximum stretch of g's edges in the tree:
/// stretch(e) = dist_T(u,v) / w(e). Exact; small graphs only.
struct TreeStretch {
  double average = 0;
  double maximum = 0;
};
TreeStretch tree_stretch(const Graph& g, const std::vector<Edge>& tree);

/// True iff `edges` forms a spanning forest of g (acyclic, within g,
/// spanning every connected component).
bool is_spanning_forest(const Graph& g, const std::vector<Edge>& edges);

}  // namespace parsh
