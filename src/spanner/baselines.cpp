#include "spanner/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <queue>

#include "random/rng.hpp"

namespace parsh {

namespace {

/// Dynamic adjacency list used by the greedy construction.
class DynGraph {
 public:
  explicit DynGraph(vid n) : adj_(n) {}

  void add_edge(vid u, vid v, weight_t w) {
    adj_[u].push_back({v, w});
    adj_[v].push_back({u, w});
  }

  /// Is dist(u, v) <= limit in the current graph? Early-exit Dijkstra.
  bool within(vid u, vid v, weight_t limit) const {
    if (u == v) return true;
    std::vector<std::pair<vid, weight_t>> touched;
    dist_[u] = 0;
    touched.push_back({u, 0});
    using QItem = std::pair<weight_t, vid>;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    pq.push({0, u});
    bool found = false;
    while (!pq.empty()) {
      auto [d, x] = pq.top();
      pq.pop();
      if (d > dist_[x]) continue;
      if (x == v) {
        found = true;
        break;
      }
      for (auto [y, w] : adj_[x]) {
        const weight_t nd = d + w;
        if (nd > limit) continue;
        if (nd < dist_[y]) {
          if (dist_[y] == kInfWeight) touched.push_back({y, 0});
          dist_[y] = nd;
          pq.push({nd, y});
        }
      }
    }
    for (auto [x, unused] : touched) {
      (void)unused;
      dist_[x] = kInfWeight;
    }
    return found;
  }

  void ensure_scratch() const {
    if (dist_.size() != adj_.size()) dist_.assign(adj_.size(), kInfWeight);
  }

 private:
  std::vector<std::vector<std::pair<vid, weight_t>>> adj_;
  mutable std::vector<weight_t> dist_;
};

}  // namespace

std::vector<Edge> greedy_spanner(const Graph& g, double k) {
  std::vector<Edge> edges = g.undirected_edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.w, a.u, a.v) < std::tie(b.w, b.u, b.v);
  });
  const double stretch = 2.0 * k - 1.0;
  DynGraph h(g.num_vertices());
  h.ensure_scratch();
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    if (!h.within(e.u, e.v, stretch * e.w)) {
      h.add_edge(e.u, e.v, e.w);
      out.push_back(e);
    }
  }
  return out;
}

std::vector<Edge> baswana_sen_spanner(const Graph& g, int k, std::uint64_t seed) {
  const vid n = g.num_vertices();
  const double sample_p = std::pow(static_cast<double>(std::max<vid>(n, 2)), -1.0 / k);
  Rng rng(seed);

  // cluster[v]: id of v's cluster (center vertex id) or kNoVertex if v has
  // been discarded from the clustering (its edges were resolved).
  std::vector<vid> cluster(n);
  for (vid v = 0; v < n; ++v) cluster[v] = v;
  std::vector<Edge> spanner;

  // Active edge list; edges are removed once resolved.
  std::vector<Edge> edges = g.undirected_edges();

  for (int phase = 1; phase <= k - 1; ++phase) {
    // 1. Sample cluster centers.
    std::vector<char> sampled_cluster(n, 0);
    Rng phase_rng = rng.split(phase);
    for (vid c = 0; c < n; ++c) {
      sampled_cluster[c] = phase_rng.uniform(c) < sample_p ? 1 : 0;
    }
    // 2. For every vertex in an unsampled cluster: find the lightest edge
    //    to each adjacent cluster; if some neighbour cluster is sampled,
    //    join the lightest sampled one and keep edges lighter than it;
    //    otherwise keep one lightest edge per adjacent cluster and drop
    //    out.
    // Group incident edges per vertex (only edges between clusters).
    std::vector<std::vector<Edge>> inc(n);
    for (const Edge& e : edges) {
      if (cluster[e.u] == kNoVertex || cluster[e.v] == kNoVertex) continue;
      if (cluster[e.u] == cluster[e.v]) continue;  // intra-cluster: drop
      inc[e.u].push_back(e);
      inc[e.v].push_back({e.v, e.u, e.w});
    }
    std::vector<vid> new_cluster = cluster;
    for (vid v = 0; v < n; ++v) {
      if (cluster[v] == kNoVertex) continue;
      if (sampled_cluster[cluster[v]]) continue;  // survives as-is
      // Lightest edge per adjacent cluster.
      std::vector<std::pair<vid, Edge>> best;  // (cluster, lightest edge)
      {
        std::vector<std::pair<vid, Edge>> cand;
        cand.reserve(inc[v].size());
        for (const Edge& e : inc[v]) cand.push_back({cluster[e.v], e});
        std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first < b.first;
          return std::tie(a.second.w, a.second.v) < std::tie(b.second.w, b.second.v);
        });
        for (std::size_t i = 0; i < cand.size(); ++i) {
          if (i > 0 && cand[i].first == cand[i - 1].first) continue;
          best.push_back(cand[i]);
        }
      }
      // Lightest edge to a *sampled* adjacent cluster, if any.
      const std::pair<vid, Edge>* join = nullptr;
      for (const auto& ce : best) {
        if (!sampled_cluster[ce.first]) continue;
        if (!join || std::tie(ce.second.w, ce.second.v) <
                         std::tie(join->second.w, join->second.v)) {
          join = &ce;
        }
      }
      if (join) {
        spanner.push_back({v, join->second.v, join->second.w});
        new_cluster[v] = join->first;
        // Also keep every strictly lighter inter-cluster edge.
        for (const auto& ce : best) {
          if (&ce == join) continue;
          if (ce.second.w < join->second.w) {
            spanner.push_back({v, ce.second.v, ce.second.w});
          }
        }
      } else {
        for (const auto& ce : best) spanner.push_back({v, ce.second.v, ce.second.w});
        new_cluster[v] = kNoVertex;  // v leaves the clustering
      }
    }
    cluster = std::move(new_cluster);
    // Drop edges now internal to a cluster or incident to discarded
    // vertices (their requirements were just satisfied).
    std::vector<Edge> next_edges;
    next_edges.reserve(edges.size());
    for (const Edge& e : edges) {
      if (cluster[e.u] == kNoVertex || cluster[e.v] == kNoVertex) continue;
      if (cluster[e.u] == cluster[e.v]) continue;
      next_edges.push_back(e);
    }
    edges = std::move(next_edges);
  }

  // Phase 2: vertex-cluster joining — every remaining vertex keeps the
  // lightest edge to each adjacent surviving cluster.
  std::vector<std::vector<Edge>> inc(n);
  for (const Edge& e : edges) {
    inc[e.u].push_back(e);
    inc[e.v].push_back({e.v, e.u, e.w});
  }
  for (vid v = 0; v < n; ++v) {
    if (inc[v].empty()) continue;
    std::vector<std::pair<vid, Edge>> cand;
    cand.reserve(inc[v].size());
    for (const Edge& e : inc[v]) cand.push_back({cluster[e.v], e});
    std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return std::tie(a.second.w, a.second.v) < std::tie(b.second.w, b.second.v);
    });
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (i > 0 && cand[i].first == cand[i - 1].first) continue;
      spanner.push_back({v, cand[i].second.v, cand[i].second.w});
    }
  }
  // Dedup (an edge may be added from both sides).
  for (Edge& e : spanner) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(spanner.begin(), spanner.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });
  spanner.erase(std::unique(spanner.begin(), spanner.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.u == b.u && a.v == b.v;
                            }),
                spanner.end());
  return spanner;
}

}  // namespace parsh
