// Spanner verification and measurement.
//
// A subgraph H is a t-spanner iff dist_H(u,v) <= t * w(u,v) for every
// *edge* (u,v) of G (the per-edge bound implies the all-pairs bound).
// These helpers measure the exact maximum edge stretch (small graphs) or a
// sampled estimate (bench sizes), which fills the "distortion" column of
// Figure 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// Build a Graph from spanner edges over the same vertex set as g.
Graph spanner_graph(const Graph& g, const std::vector<Edge>& edges);

/// True iff every edge of `spanner` is an edge of g (same weight).
bool is_subgraph(const Graph& g, const std::vector<Edge>& spanner);

/// Exact max over all edges (u,v) of dist_H(u,v) / w(u,v). O(n * Dijkstra)
/// — use on small graphs. Returns +inf if some edge is disconnected in H.
double max_edge_stretch(const Graph& g, const std::vector<Edge>& spanner);

/// Sampled estimate: max stretch over the edges incident to `samples`
/// randomly chosen vertices. Cheap enough for bench-size graphs.
double sampled_edge_stretch(const Graph& g, const std::vector<Edge>& spanner,
                            vid samples, std::uint64_t seed);

/// Sampled stretch over `pairs` random vertex pairs (not just edges).
double sampled_pair_stretch(const Graph& g, const std::vector<Edge>& spanner,
                            vid pairs, std::uint64_t seed);

}  // namespace parsh
