// Umbrella header: the full public API of the parsh library — a
// reproduction of Miller, Peng, Vladu, Xu, "Improved Parallel Algorithms
// for Spanners and Hopsets" (SPAA 2015).
//
// Quick tour:
//   est_cluster            — Algorithm 1 (exponential start time clustering)
//   unweighted_spanner     — Algorithm 2 (O(k)-spanner, size n^{1+1/k})
//   weighted_spanner       — Theorem 3.3 (O(k)-spanner, size n^{1+1/k} log k)
//   build_hopset           — Algorithm 4 (unweighted/integer-weight hopsets)
//   build_weighted_hopset  — Section 5 (rounding + per-scale hopsets)
//   WeightDecomposition    — Appendix B (weight-ratio reduction)
//   build_limited_hopset   — Appendix C (depth n^alpha hopsets)
//   ApproxShortestPaths    — Theorem 1.2 ((1+eps) s-t query engine)
//   DynamicApproxShortestPaths — batched edge updates, epoch-swapped
//                            incremental re-serving over apply_delta
// plus the substrates: CSR graphs, generators, parallel primitives, BFS /
// weighted BFS / Dijkstra / delta-stepping / hop-limited search.
#pragma once

#include "cluster/cluster_connectivity.hpp"
#include "cluster/cluster_stats.hpp"
#include "cluster/est_cluster.hpp"
#include "graph/connectivity.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/pcsr.hpp"
#include "graph/storage.hpp"
#include "graph/subgraph.hpp"
#include "graph/validation.hpp"
#include "hopset/baseline_cohen.hpp"
#include "hopset/baseline_ks97.hpp"
#include "hopset/hopset.hpp"
#include "hopset/limited_hopset.hpp"
#include "hopset/rounding.hpp"
#include "hopset/verify.hpp"
#include "hopset/weight_reduction.hpp"
#include "hopset/weighted_hopset.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"
#include "parallel/work_depth.hpp"
#include "random/rng.hpp"
#include "spanner/baselines.hpp"
#include "spanner/distributed_spanner.hpp"
#include "spanner/low_stretch_tree.hpp"
#include "spanner/spanner.hpp"
#include "spanner/verify.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/bfs.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/dynamic_approx.hpp"
#include "sssp/hop_limited.hpp"
#include "sssp/sssp_workspace.hpp"
#include "sssp/weighted_bfs.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
