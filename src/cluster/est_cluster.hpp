// Exponential Start Time clustering (Algorithm 1; [MPX13]).
//
// Every vertex u draws delta_u ~ Exp(beta); vertex v joins the cluster of
//     argmin_u { dist(u, v) - delta_u }.
// Equivalently, with start times s_u = delta_max - delta_u >= 0, u "wakes
// up" at time s_u and grows a ball at unit speed; v belongs to the first
// ball to reach it. The output is a partition of V into clusters, each
// certified by a spanning tree rooted at its center (Lemma 2.1: tree
// radius <= k beta^-1 log n w.p. >= 1 - n^{1-k}).
//
// Two implementations:
//  * est_cluster — the parallel round-synchronous engine, built on the
//    shared bucketed frontier engine (parallel/bucket_engine.hpp). For
//    integer weights the key s_u + dist(u,v) of a vertex settled in round
//    t lies in [t, t+1) and every edge relaxation moves a key to a
//    strictly later round, so processing integer rounds with a per-round
//    min-reduction is an EXACT evaluation of the argmin (not the
//    fractional-tie-break approximation discussed in [MPX13] — integer
//    weights make it free). The min-reduction is a CRCW-style atomic
//    priority write resolved by (key, via) minimum, so the clustering is
//    identical at every thread count. Depth = O(delta_max + radius)
//    rounds; work O(m).
//  * est_cluster_reference — sequential super-source Dijkstra with real
//    keys. Same draws, same argmin; the test-suite oracle.
//
// Weights must be positive integers (the paper normalises to
// min_e w(e) = 1 and rounds; see Lemma 2.1's statement). Unweighted graphs
// trivially qualify.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// A low-diameter decomposition: partition + per-cluster spanning tree.
struct Clustering {
  /// Dense cluster id per vertex, in [0, num_clusters).
  std::vector<vid> cluster_of;
  /// Center vertex of each cluster.
  std::vector<vid> center;
  /// Spanning-forest parent per vertex (kNoVertex at cluster centers).
  std::vector<vid> parent;
  /// Distance from the cluster center along the tree (equals the
  /// shifted-search distance; 0 at centers).
  std::vector<weight_t> dist_to_center;
  vid num_clusters = 0;
  /// Synchronous rounds the parallel engine executed (depth proxy).
  std::uint64_t rounds = 0;

  /// Member lists, ordered by cluster id then vertex id.
  [[nodiscard]] std::vector<std::vector<vid>> members() const;
  /// Size of each cluster.
  [[nodiscard]] std::vector<vid> sizes() const;
};

/// Parallel EST clustering. `seed` fixes the delta draws; results are
/// deterministic in (graph, beta, seed).
Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed);

/// Sequential exact oracle (super-source Dijkstra over real-valued keys).
Clustering est_cluster_reference(const Graph& g, double beta, std::uint64_t seed);

/// The delta_u draws both implementations use (exposed for tests and for
/// the diagnostics in cluster_stats).
std::vector<double> est_shifts(vid n, double beta, std::uint64_t seed);

}  // namespace parsh
