// Exponential Start Time clustering (Algorithm 1; [MPX13]).
//
// Every vertex u draws delta_u ~ Exp(beta); vertex v joins the cluster of
//     argmin_u { dist(u, v) - delta_u }.
// Equivalently, with start times s_u = delta_max - delta_u >= 0, u "wakes
// up" at time s_u and grows a ball at unit speed; v belongs to the first
// ball to reach it. The output is a partition of V into clusters, each
// certified by a spanning tree rooted at its center (Lemma 2.1: tree
// radius <= k beta^-1 log n w.p. >= 1 - n^{1-k}).
//
// Two implementations:
//  * est_cluster — the parallel round-synchronous engine, built on the
//    shared bucketed frontier engine (parallel/bucket_engine.hpp). For
//    integer weights the key s_u + dist(u,v) of a vertex settled in round
//    t lies in [t, t+1) and every edge relaxation moves a key to a
//    strictly later round, so processing integer rounds with a per-round
//    min-reduction is an EXACT evaluation of the argmin (not the
//    fractional-tie-break approximation discussed in [MPX13] — integer
//    weights make it free). The min-reduction is a CRCW-style atomic
//    priority write resolved by (key, via) minimum, so the clustering is
//    identical at every thread count. Depth = O(delta_max + radius)
//    rounds; work O(m).
//  * est_cluster_reference — sequential super-source Dijkstra with real
//    keys. Same draws, same argmin; the test-suite oracle.
//
// Weights must be positive integers (the paper normalises to
// min_e w(e) = 1 and rounds; see Lemma 2.1's statement). Unweighted graphs
// trivially qualify.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/bucket_engine.hpp"

namespace parsh {

/// A low-diameter decomposition: partition + per-cluster spanning tree.
struct Clustering {
  /// Dense cluster id per vertex, in [0, num_clusters).
  std::vector<vid> cluster_of;
  /// Center vertex of each cluster.
  std::vector<vid> center;
  /// Spanning-forest parent per vertex (kNoVertex at cluster centers).
  std::vector<vid> parent;
  /// Distance from the cluster center along the tree (equals the
  /// shifted-search distance; 0 at centers).
  std::vector<weight_t> dist_to_center;
  vid num_clusters = 0;
  /// Synchronous rounds the parallel engine executed (depth proxy).
  std::uint64_t rounds = 0;

  /// Member lists, ordered by cluster id then vertex id.
  [[nodiscard]] std::vector<std::vector<vid>> members() const;
  /// Size of each cluster.
  [[nodiscard]] std::vector<vid> sizes() const;
};

/// A claim on vertex `v` through neighbour `via` (kNoVertex = v starts its
/// own cluster) with key = s_center + dist(center, v) and tree distance dw.
/// The payload of the bucketed frontier engine inside est_cluster.
struct EstProposal {
  vid v;
  vid via;
  double key;
  weight_t dw;
};

class EstClusterWorkspace;

/// Parallel EST clustering. `seed` fixes the delta draws; results are
/// deterministic in (graph, beta, seed).
Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed);

/// Same algorithm, same output, but every allocation that can outlive one
/// call lives in `ws`: the bucket engine (calendar slots, staging buffers,
/// overflow store) and the per-vertex priority arrays. Iterated drivers —
/// cluster_connectivity's quotient loop, AKPW's weight classes, the
/// spanner levels, the hopset recursion — pass one workspace across calls
/// so warm calls on graphs no larger than already seen do zero engine heap
/// allocations (for runs whose key spread fits the calendar span, as all
/// the drivers' do; overflow-store map nodes are per-run). This overload
/// also enables the packed-word fast path: when
/// a round's key range quantizes into 40 bits (see atomics.hpp), the
/// three-phase (key, via) min-reduce collapses into a single
/// atomic_write_min on a packed 64-bit word, bit-identical to the
/// three-phase result at every thread count.
Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed,
                       EstClusterWorkspace& ws);

/// Reusable scratch for est_cluster: one BucketEngine plus the per-vertex
/// priority arrays, grown monotonically and never shrunk. Not thread-safe
/// across concurrent est_cluster calls (one workspace per call chain).
class EstClusterWorkspace {
 public:
  EstClusterWorkspace();

  /// Heap-allocation events inside the bucket engine so far (cumulative).
  /// A warm call that reuses every buffer leaves this unchanged — the
  /// reuse guarantee the iterated drivers' tests pin down.
  [[nodiscard]] std::uint64_t engine_alloc_events() const {
    return engine_.alloc_events();
  }
  /// Times the per-vertex arrays had to grow (once per high-water n).
  [[nodiscard]] std::uint64_t array_grow_events() const { return grow_events_; }
  /// Rounds resolved by the packed-word fast path / the three-phase
  /// fallback (cumulative across calls; diagnostics and tests).
  [[nodiscard]] std::uint64_t packed_rounds() const { return packed_rounds_; }
  [[nodiscard]] std::uint64_t fallback_rounds() const { return fallback_rounds_; }

  /// Test hook: force the three-phase reduce even when a round's keys
  /// would fit the packed word (for packed-vs-fallback equivalence tests).
  void force_three_phase(bool on) { force_three_phase_ = on; }

  /// Test hook mirroring force_three_phase: run the drain loop with the
  /// historical fork-join-per-phase scheduling instead of one persistent
  /// parallel region (team-vs-fork-join equivalence tests; bit-identical
  /// by the Team contract, parallel/team.hpp).
  void force_fork_join(bool on) { force_fork_join_ = on; }

  /// Test hook mirroring force_fork_join: disable the adaptive sequential
  /// round fast path, so every round runs through the parallel phases
  /// even below the threshold (sequential-vs-parallel-round equivalence
  /// tests; bit-identical by the determinism contract).
  void force_parallel_rounds(bool on) { force_parallel_rounds_ = on; }

  /// Rounds executed entirely on one worker via the adaptive sequential
  /// fast path / through the parallel (team or fork-join) phases
  /// (cumulative across calls; deterministic in the inputs and hooks,
  /// independent of thread count).
  [[nodiscard]] std::uint64_t sequential_rounds() const { return sequential_rounds_; }
  [[nodiscard]] std::uint64_t team_rounds() const { return team_rounds_; }

  /// Bench hook: while `sink` is non-null, every expansion records its
  /// round's frontier edge total (see FrontierRelaxer::record_round_edges).
  void record_round_edges(std::vector<std::size_t>* sink) {
    relaxer_.record_round_edges(sink);
  }

  /// Test hook mirroring force_three_phase: schedule every expansion as
  /// whole vertices, disabling the degree-aware stolen edge ranges and
  /// the sequential fast path (for edge-grain-vs-vertex-grain equivalence
  /// tests; both paths are bit-identical by the FrontierRelaxer contract).
  void force_vertex_grain(bool on) { relaxer_.force_vertex_grain(on); }
  /// Expansion rounds scheduled as stolen edge ranges / whole vertices
  /// (cumulative across calls; diagnostics and tests).
  [[nodiscard]] std::uint64_t edge_grain_rounds() const {
    return relaxer_.edge_grain_rounds();
  }
  [[nodiscard]] std::uint64_t vertex_grain_rounds() const {
    return relaxer_.vertex_grain_rounds();
  }

  /// Direction hooks mirroring force_vertex_grain: pin every
  /// direction-capable expansion to push / to pull regardless of the
  /// edge-fraction heuristic (push-vs-pull equivalence tests; bit-identical
  /// by the FrontierRelaxer contract). Forcing one clears the other.
  void force_push(bool on) { relaxer_.force_push(on); }
  void force_pull(bool on) { relaxer_.force_pull(on); }
  /// Expansions run in pull (bitmap) mode, and the edges their candidate
  /// scans examined (cumulative across calls; diagnostics and benches).
  [[nodiscard]] std::uint64_t pull_rounds() const { return relaxer_.pull_rounds(); }
  [[nodiscard]] std::uint64_t pull_edges_scanned() const {
    return relaxer_.pull_edges_scanned();
  }

  /// Expansion rounds whose adjacency was decoded from the delta-varint
  /// compressed representation (zero on flat graphs; mirrors pull_rounds
  /// as the observable for the compressed-vs-flat equivalence tests —
  /// outputs are bit-identical, this counter proves the compressed decode
  /// actually ran).
  [[nodiscard]] std::uint64_t compressed_rounds() const {
    return compressed_rounds_;
  }

  /// Heap-allocation events in the relaxer's prefix-sum scratch (warm
  /// calls on frontiers no larger than already seen add none).
  [[nodiscard]] std::uint64_t relax_alloc_events() const {
    return relaxer_.alloc_events();
  }

 private:
  friend Clustering est_cluster(const Graph&, double, std::uint64_t,
                                EstClusterWorkspace&);

  /// Grow every per-vertex array to hold n vertices (no-op when already
  /// large enough; the atomic arrays are reconstructed, the plain ones
  /// resized in place).
  void ensure_(vid n);

  BucketEngine<EstProposal> engine_;
  FrontierRelaxer relaxer_;  // degree-aware expansion scheduling
  // Per-vertex state (sized to the high-water n; only [0, n) touched).
  std::vector<double> start_;     // delta draws, then start times
  std::vector<double> key_;       // settled key per vertex
  std::vector<vid> parent_;       // settled tree parent
  std::vector<weight_t> hops_;    // settled tree distance
  std::vector<vid> center_of_;    // final center per vertex (densify input)
  std::vector<std::atomic<vid>> center_;      // claimed center (kNoVertex = open)
  std::vector<std::atomic<double>> best_key_;             // three-phase scratch
  std::vector<std::atomic<vid>> best_via_;                // three-phase scratch
  std::vector<std::atomic<std::uint64_t>> best_packed_;   // packed-word scratch
  // Per-round scratch independent of n.
  std::vector<EstProposal> props_;            // the popped bucket
  std::vector<std::vector<vid>> newly_local_; // per-worker winner lists
  std::vector<vid> newly_;                    // concatenated winners
  std::vector<std::size_t> offset_;           // winner-concat scan
  WorkerCounter tally_;
  std::size_t vertex_capacity_ = 0;
  std::uint64_t grow_events_ = 0;
  std::uint64_t packed_rounds_ = 0;
  std::uint64_t fallback_rounds_ = 0;
  std::uint64_t sequential_rounds_ = 0;
  std::uint64_t team_rounds_ = 0;
  std::uint64_t compressed_rounds_ = 0;
  bool force_three_phase_ = false;
  bool force_fork_join_ = false;
  bool force_parallel_rounds_ = false;
};

/// Sequential exact oracle (super-source Dijkstra over real-valued keys).
Clustering est_cluster_reference(const Graph& g, double beta, std::uint64_t seed);

/// The delta_u draws both implementations use (exposed for tests and for
/// the diagnostics in cluster_stats).
std::vector<double> est_shifts(vid n, double beta, std::uint64_t seed);

/// est_shifts into a caller-owned buffer (resized to n, capacity reused):
/// the allocation-free variant for iterated drivers like the distributed
/// spanner port that redraw shifts per run.
void est_shifts_into(std::vector<double>& out, vid n, double beta, std::uint64_t seed);

}  // namespace parsh
