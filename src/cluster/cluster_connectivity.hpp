// Connectivity via repeated EST clustering ([SDB14], cited in the
// paper's introduction: "The clustering algorithm itself has properties
// suitable for reducing the communication required in parallel
// connectivity algorithms").
//
// Each round clusters the current quotient graph with a constant beta and
// contracts every cluster; Corollary 2.3 says each edge survives
// contraction with probability < beta, so the vertex count drops
// geometrically and O(log n) rounds suffice w.h.p. — a linear-work,
// polylog-depth connectivity algorithm whose only primitive is the same
// ESTCluster the spanners and hopsets use.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct ClusterConnectivityResult {
  /// Component label per vertex, dense in [0, num_components), ordered by
  /// smallest member (same contract as connected_components()).
  std::vector<vid> component;
  vid num_components = 0;
  /// Contraction rounds executed (depth proxy; O(log n) w.h.p.).
  std::uint64_t rounds = 0;
  /// Bucket-engine heap-allocation events after the first quotient round
  /// and in total: equal iff every warm round ran entirely inside the
  /// reused clustering workspace (the zero-allocation guarantee the test
  /// suite pins down).
  std::uint64_t engine_allocs_first_round = 0;
  std::uint64_t engine_allocs_total = 0;
};

/// Compute connected components by iterated EST-cluster contraction.
/// `beta` is the per-round decomposition rate (0 picks 0.2, a good
/// geometric-decay constant).
ClusterConnectivityResult cluster_connectivity(const Graph& g, std::uint64_t seed,
                                               double beta = 0);

}  // namespace parsh
