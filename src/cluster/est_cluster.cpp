#include "cluster/est_cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <queue>

#include "graph/validation.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/work_depth.hpp"
#include "random/rng.hpp"

namespace parsh {

std::vector<double> est_shifts(vid n, double beta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> delta(n);
  parallel_for(0, n, [&](std::size_t v) { delta[v] = rng.exponential(v, beta); });
  return delta;
}

std::vector<std::vector<vid>> Clustering::members() const {
  std::vector<std::vector<vid>> out(num_clusters);
  for (vid v = 0; v < cluster_of.size(); ++v) out[cluster_of[v]].push_back(v);
  return out;
}

std::vector<vid> Clustering::sizes() const {
  std::vector<vid> out(num_clusters, 0);
  for (vid c : cluster_of) ++out[c];
  return out;
}

namespace {

/// Densify cluster labels (currently center vertex ids) to [0, k) ordered
/// by center vertex id, and fill the center list.
void finalize_labels(Clustering& c, const std::vector<vid>& center_of) {
  const vid n = static_cast<vid>(center_of.size());
  std::vector<vid> remap(n, kNoVertex);
  std::vector<vid> centers;
  std::vector<char> is_center(n, 0);
  for (vid v = 0; v < n; ++v) {
    assert(center_of[v] != kNoVertex && "every vertex must be clustered");
    if (!is_center[center_of[v]]) {
      is_center[center_of[v]] = 1;
      centers.push_back(center_of[v]);
    }
  }
  std::sort(centers.begin(), centers.end());
  for (vid i = 0; i < centers.size(); ++i) remap[centers[i]] = i;
  c.num_clusters = static_cast<vid>(centers.size());
  c.center = centers;
  c.cluster_of.resize(n);
  for (vid v = 0; v < n; ++v) c.cluster_of[v] = remap[center_of[v]];
}

}  // namespace

Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed) {
  require_integer_weights(g, "est_cluster");
  if (!(beta > 0)) throw std::invalid_argument("est_cluster: beta must be positive");
  const vid n = g.num_vertices();
  Clustering c;
  c.parent.assign(n, kNoVertex);
  c.dist_to_center.assign(n, 0);
  if (n == 0) return c;

  const std::vector<double> delta = est_shifts(n, beta, seed);
  double delta_max = 0;
  for (double d : delta) delta_max = std::max(delta_max, d);

  // Start time per vertex; key(v) = s_u + dist(u,v) for its final center u.
  std::vector<double> start(n);
  for (vid v = 0; v < n; ++v) start[v] = delta_max - delta[v];

  std::vector<double> key(n, kInfWeight);
  std::vector<vid> center_of(n, kNoVertex);
  std::vector<vid> parent(n, kNoVertex);
  std::vector<weight_t> hops(n, 0);

  // Dial-style buckets of proposals, stored sparsely (after weight
  // rounding the integer key range can be large while only few rounds are
  // nonempty). A proposal (v, via, key, dw) claims v through neighbour
  // `via` (kNoVertex = v starts its own cluster).
  struct Proposal {
    vid v;        // vertex being claimed
    vid via;      // neighbour it is claimed through (kNoVertex = self)
    double key;   // s_center + dist(center, v)
    weight_t dw;  // tree distance of v from the center
  };
  std::map<std::uint64_t, std::vector<Proposal>> prop_bucket;
  auto push_prop = [&](Proposal p) {
    prop_bucket[static_cast<std::uint64_t>(p.key)].push_back(p);
  };
  // Self-start proposals: every vertex may found its own cluster at time
  // s_v (bucket floor(s_v)).
  for (vid v = 0; v < n; ++v) push_prop({v, kNoVertex, start[v], 0});

  vid assigned = 0;
  std::uint64_t rounds = 0;
  while (assigned < n && !prop_bucket.empty()) {
    // Gather this round's proposals: all keys in [t, t+1).
    auto it = prop_bucket.begin();
    std::vector<Proposal> props = std::move(it->second);
    prop_bucket.erase(it);
    // Drop proposals for vertices settled in earlier rounds.
    std::erase_if(props, [&](const Proposal& p) { return center_of[p.v] != kNoVertex; });
    if (props.empty()) continue;
    ++rounds;
    wd::add_round();
    wd::add_work(props.size());
    // Min-reduce proposals per vertex (the CRCW priority write). Keys are
    // distinct real numbers with probability 1; ties break toward the
    // smaller via-vertex for determinism.
    std::sort(props.begin(), props.end(), [](const Proposal& a, const Proposal& b) {
      if (a.v != b.v) return a.v < b.v;
      if (a.key != b.key) return a.key < b.key;
      return a.via < b.via;
    });
    std::vector<vid> newly;
    for (std::size_t i = 0; i < props.size(); ++i) {
      if (i > 0 && props[i].v == props[i - 1].v) continue;  // lost the min-reduce
      const Proposal& p = props[i];
      if (center_of[p.v] != kNoVertex) continue;  // settled in an earlier round
      key[p.v] = p.key;
      if (p.via == kNoVertex) {
        center_of[p.v] = p.v;  // becomes a center
      } else {
        center_of[p.v] = center_of[p.via];
        parent[p.v] = p.via;
      }
      hops[p.v] = p.dw;
      newly.push_back(p.v);
      ++assigned;
    }
    // Expand: settled vertices propagate along their edges. With integer
    // weights, key + w lands exactly in bucket t + w.
    std::uint64_t touched = 0;
    for (vid u : newly) {
      touched += g.degree(u);
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const vid v = g.target(e);
        if (center_of[v] != kNoVertex) continue;
        const weight_t w = g.weight(e);
        assert(w >= 1 && w == std::floor(w) &&
               "est_cluster requires positive integer weights");
        push_prop({v, u, key[u] + w, hops[u] + w});
      }
    }
    wd::add_work(touched);
  }

  c.parent = std::move(parent);
  c.dist_to_center = std::move(hops);
  c.rounds = rounds;
  finalize_labels(c, center_of);
  return c;
}

Clustering est_cluster_reference(const Graph& g, double beta, std::uint64_t seed) {
  require_positive_weights(g, "est_cluster_reference");
  if (!(beta > 0)) {
    throw std::invalid_argument("est_cluster_reference: beta must be positive");
  }
  const vid n = g.num_vertices();
  Clustering c;
  c.parent.assign(n, kNoVertex);
  c.dist_to_center.assign(n, 0);
  if (n == 0) return c;
  const std::vector<double> delta = est_shifts(n, beta, seed);
  double delta_max = 0;
  for (double d : delta) delta_max = std::max(delta_max, d);

  // Super-source Dijkstra: every vertex is a source with offset
  // s_v = delta_max - delta_v; the winning source is the cluster center.
  std::vector<double> key(n, kInfWeight);
  std::vector<vid> center_of(n, kNoVertex);
  std::vector<weight_t> dist_in_tree(n, 0);
  struct QItem {
    double key;
    vid v;
    vid center;
    vid via;
    weight_t d;
    bool operator>(const QItem& o) const {
      if (key != o.key) return key > o.key;
      return center > o.center;  // deterministic tie-break
    }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (vid v = 0; v < n; ++v) pq.push({delta_max - delta[v], v, v, kNoVertex, 0});
  while (!pq.empty()) {
    QItem it = pq.top();
    pq.pop();
    if (center_of[it.v] != kNoVertex) continue;
    center_of[it.v] = it.center;
    key[it.v] = it.key;
    c.parent[it.v] = it.via;
    dist_in_tree[it.v] = it.d;
    for (eid e = g.begin(it.v); e < g.end(it.v); ++e) {
      const vid u = g.target(e);
      if (center_of[u] != kNoVertex) continue;
      pq.push({it.key + g.weight(e), u, it.center, it.v, it.d + g.weight(e)});
    }
  }
  c.dist_to_center = std::move(dist_in_tree);
  c.rounds = 0;  // sequential oracle: rounds not meaningful
  finalize_labels(c, center_of);
  return c;
}

}  // namespace parsh
