#include "cluster/est_cluster.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"
#include "random/rng.hpp"

#include <queue>

namespace parsh {

std::vector<double> est_shifts(vid n, double beta, std::uint64_t seed) {
  std::vector<double> delta;
  est_shifts_into(delta, n, beta, seed);
  return delta;
}

void est_shifts_into(std::vector<double>& out, vid n, double beta,
                     std::uint64_t seed) {
  const Rng rng(seed);
  out.resize(n);
  parallel_for(0, n, [&](std::size_t v) { out[v] = rng.exponential(v, beta); });
}

std::vector<vid> Clustering::sizes() const {
  // Single counting pass. One partial histogram per *worker* (not per
  // fixed-size block): with num_clusters up to Theta(n), per-block
  // histograms would cost O(blocks * clusters) memory and merge work.
  const std::size_t n = cluster_of.size();
  const auto nb = static_cast<std::size_t>(num_workers());
  if (nb <= 1 || n < kParallelGrain) {
    std::vector<vid> out(num_clusters, 0);
    for (vid c : cluster_of) ++out[c];
    return out;
  }
  const std::size_t block = (n + nb - 1) / nb;
  std::vector<std::vector<vid>> partial(nb);
  parallel_for_grain(0, nb, 1, [&](std::size_t b) {
    std::vector<vid>& mine = partial[b];
    mine.assign(num_clusters, 0);
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    for (std::size_t v = lo; v < hi; ++v) ++mine[cluster_of[v]];
  });
  std::vector<vid> out(num_clusters, 0);
  parallel_for(0, num_clusters, [&](std::size_t c) {
    vid acc = 0;
    for (const auto& mine : partial) acc += mine[c];
    out[c] = acc;
  });
  return out;
}

std::vector<std::vector<vid>> Clustering::members() const {
  // Counting pass + prefix-sum offsets + one scatter pass: each member
  // vector is allocated exactly once at its final size, instead of the
  // push_back growth that reallocates per cluster as it fills.
  const std::vector<vid> count = sizes();
  std::vector<std::vector<vid>> out(num_clusters);
  parallel_for(0, num_clusters, [&](std::size_t c) {
    out[c].resize(count[c]);
  });
  std::vector<vid> cursor(num_clusters, 0);  // next write slot per cluster
  for (vid v = 0; v < cluster_of.size(); ++v) {
    const vid c = cluster_of[v];
    out[c][cursor[c]++] = v;  // sequential scatter keeps vertex-id order
  }
  return out;
}

namespace {

/// Densify cluster labels (center vertex ids) to [0, k) ordered by center
/// vertex id, and fill the center list. A center is exactly a vertex that
/// is its own center, so the center list is a pack (already sorted by
/// vertex id) and the remap two scan-free parallel passes.
void finalize_labels(Clustering& c, const std::vector<vid>& center_of) {
  const vid n = static_cast<vid>(center_of.size());
  assert(parallel_count(n, [&](std::size_t v) { return center_of[v] == kNoVertex; }) == 0 &&
         "every vertex must be clustered");
  std::vector<std::size_t> centers =
      pack_indices(n, [&](std::size_t v) { return center_of[v] == static_cast<vid>(v); });
  std::vector<vid> remap(n, kNoVertex);
  parallel_for(0, centers.size(), [&](std::size_t i) {
    remap[centers[i]] = static_cast<vid>(i);
  });
  c.num_clusters = static_cast<vid>(centers.size());
  c.center.resize(centers.size());
  parallel_for(0, centers.size(), [&](std::size_t i) {
    c.center[i] = static_cast<vid>(centers[i]);
  });
  c.cluster_of.resize(n);
  parallel_for(0, n, [&](std::size_t v) { c.cluster_of[v] = remap[center_of[v]]; });
}

}  // namespace

EstClusterWorkspace::EstClusterWorkspace()
    : engine_({.span = 256}),
      newly_local_(static_cast<std::size_t>(num_workers())),
      offset_(static_cast<std::size_t>(num_workers())) {}

void EstClusterWorkspace::ensure_(vid n) {
  // The worker count may have been raised since construction (the engine
  // handles its own staging in reset()); the per-worker winner lists and
  // scan scratch are indexed by worker_id() and must cover it too.
  const auto workers = static_cast<std::size_t>(num_workers());
  if (workers > newly_local_.size()) {
    newly_local_.resize(workers);
    offset_.resize(workers);
    tally_ = WorkerCounter();
  }
  if (static_cast<std::size_t>(n) <= vertex_capacity_) return;
  ++grow_events_;
  // Geometric headroom: a driver whose quotient sizes creep upwards
  // (AKPW's weight classes can enlarge the active component set) pays
  // O(log n) reallocations, not one per new high-water mark.
  const std::size_t cap = std::max<std::size_t>(n, 2 * vertex_capacity_);
  start_.resize(cap);
  key_.resize(cap);
  parent_.resize(cap);
  hops_.resize(cap);
  center_of_.resize(cap);
  // std::atomic is immovable, so the atomic arrays are reconstructed at
  // the new size (their values are re-initialized per call anyway).
  center_ = std::vector<std::atomic<vid>>(cap);
  best_key_ = std::vector<std::atomic<double>>(cap);
  best_via_ = std::vector<std::atomic<vid>>(cap);
  best_packed_ = std::vector<std::atomic<std::uint64_t>>(cap);
  vertex_capacity_ = cap;
}

Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed) {
  EstClusterWorkspace ws;
  return est_cluster(g, beta, seed, ws);
}

Clustering est_cluster(const Graph& g, double beta, std::uint64_t seed,
                       EstClusterWorkspace& ws) {
  require_integer_weights(g, "est_cluster");
  if (!(beta > 0)) throw std::invalid_argument("est_cluster: beta must be positive");
  const vid n = g.num_vertices();
  Clustering c;
  c.parent.assign(n, kNoVertex);
  c.dist_to_center.assign(n, 0);
  if (n == 0) return c;

  ws.ensure_(n);
  ws.engine_.reset();
  ws.relaxer_.begin_run();  // fresh direction hysteresis per run

  // Same draws as est_shifts, written into the reused start buffer:
  // first the raw delta, then start = delta_max - delta in place.
  std::vector<double>& start = ws.start_;
  est_shifts_into(start, n, beta, seed);
  const double delta_max =
      parallel_reduce_max<double>(n, [&](std::size_t v) { return start[v]; }, 0.0);
  // Start time per vertex; key(v) = s_u + dist(u,v) for its final center u.
  parallel_for(0, n, [&](std::size_t v) { start[v] = delta_max - start[v]; });

  std::vector<double>& key = ws.key_;
  std::vector<vid>& parent = ws.parent_;
  std::vector<weight_t>& hops = ws.hops_;
  // Settled state: the claimed center per vertex (kNoVertex = open).
  std::vector<std::atomic<vid>>& center = ws.center_;
  // Per-round CRCW priority-write scratch: the minimum proposal key seen
  // for v this round, and the smallest via among proposals at that key —
  // either as the (best_key, best_via) pair of the three-phase reduce or
  // as the single packed word of the fast path. Reset per round for the
  // touched vertices only.
  std::vector<std::atomic<double>>& best_key = ws.best_key_;
  std::vector<std::atomic<vid>>& best_via = ws.best_via_;
  std::vector<std::atomic<std::uint64_t>>& best_packed = ws.best_packed_;
  parallel_for(0, n, [&](std::size_t v) {
    key[v] = kInfWeight;
    parent[v] = kNoVertex;
    hops[v] = 0;
    center[v].store(kNoVertex, std::memory_order_relaxed);
    best_key[v].store(kInfWeight, std::memory_order_relaxed);
    best_via[v].store(kNoVertex, std::memory_order_relaxed);
    best_packed[v].store(kPackedInf, std::memory_order_relaxed);
  });

  // Proposals live in the shared bucketed frontier engine; with integer
  // weights every key s_u + dist lands in bucket floor(key) and every edge
  // relaxation moves a proposal to a strictly later bucket, so one popped
  // bucket is one exact synchronous round of the CRCW algorithm.
  BucketEngine<EstProposal>& engine = ws.engine_;
  // Calendar alignment: every vertex settles by time s_v <= delta_max, so
  // the settlement mass concentrates just below delta_max — whose value
  // shifts with n across the iterated drivers' calls. Offsetting bucket
  // keys so floor(delta_max) always lands on the same calendar slot makes
  // the per-slot demand profile nest across shrinking warm calls, which is
  // what lets them reuse every slot buffer without growing it. The offset
  // is bookkeeping only: bucket = floor(key) + cal_off, popped in the same
  // order, with the true round recovered by subtraction.
  const std::uint64_t span = engine.span();
  const std::uint64_t cal_off =
      (span - static_cast<std::uint64_t>(delta_max) % span) % span;
  engine.start_at(cal_off);  // seeds occupy [cal_off, cal_off + delta_max]
  // Self-start proposals: every vertex may found its own cluster at time
  // s_v (bucket floor(s_v)).
  parallel_for(0, n, [&](std::size_t v) {
    const vid u = static_cast<vid>(v);
    engine.push_from_worker(static_cast<std::uint64_t>(start[v]) + cal_off,
                            {u, kNoVertex, start[v], 0});
  });

  // Per-worker scratch for the round phases: live-proposal/work tallies
  // and winner lists (padded so the hot path never shares cache lines).
  const std::size_t workers = ws.newly_local_.size();
  WorkerCounter& tally = ws.tally_;
  std::vector<std::vector<vid>>& newly_local = ws.newly_local_;
  std::vector<vid>& newly = ws.newly_;

  // The packed fast path needs every via id representable in 24 bits
  // (kPackedNoVia is reserved for kNoVertex).
  const bool via_packs = !ws.force_three_phase_ &&
                         static_cast<std::uint64_t>(n) <= kPackedNoVia;

  vid assigned = 0;
  std::uint64_t rounds = 0;
  std::vector<EstProposal>& props = ws.props_;
  auto alive = [&](const EstProposal& p) {
    return center[p.v].load(std::memory_order_relaxed) == kNoVertex;
  };
  // Phase "settle": p won the round's priority write for p.v; the CAS
  // admits one of possibly several exact duplicates (parallel edges of
  // equal weight carry identical (key, via, dw)), so the settled state is
  // schedule-independent either way.
  auto settle = [&](const EstProposal& p) {
    const vid ctr =
        p.via == kNoVertex ? p.v : center[p.via].load(std::memory_order_relaxed);
    vid open = kNoVertex;
    if (center[p.v].compare_exchange_strong(open, ctr, std::memory_order_relaxed)) {
      key[p.v] = p.key;
      parent[p.v] = p.via;
      hops[p.v] = p.dw;
      newly_local[static_cast<std::size_t>(worker_id())].push_back(p.v);
    }
  };
  // The sequential-round form of settle: plain relaxed loads/stores (one
  // worker owns the whole round), winners straight into `newly` — the
  // first of exact duplicates wins, like the CAS. Same settled state.
  auto settle_seq = [&](const EstProposal& p) {
    if (center[p.v].load(std::memory_order_relaxed) != kNoVertex) return;
    const vid ctr =
        p.via == kNoVertex ? p.v : center[p.via].load(std::memory_order_relaxed);
    center[p.v].store(ctr, std::memory_order_relaxed);
    key[p.v] = p.key;
    parent[p.v] = p.via;
    hops[p.v] = p.dw;
    newly.push_back(p.v);
  };

  // A round below this many items (proposals for the reduce, frontier
  // edges for the expansion — the relaxer's prefix scan supplies the
  // latter) runs entirely on one worker: plain writes, no atomics, direct
  // calendar pushes, no barriers. The decision depends only on the
  // (deterministic) round contents, so counters match at every thread
  // count; output is bit-identical either way because both paths compute
  // the same (key, via) argmin.
  const std::size_t seq_threshold =
      ws.force_parallel_rounds_ ? 0 : FrontierRelaxer::kSequentialRoundEdges;
  // Per-stage chunk for the proposal-indexed phases below.
  constexpr std::size_t kStageGrain = 512;

  // One persistent parallel region for the whole drain (one fork/join
  // total instead of ~5 per round); every phase below is a
  // barrier-separated Team stage. force_fork_join pins the historical
  // per-phase fork-join scheduling instead.
  Team::drive(!ws.force_fork_join_, [&](Team& team) {
    std::uint64_t round_key;
    while (assigned < n && (round_key = engine.pop_round(team, props)) != kNoBucket) {
      round_key -= cal_off;  // back to the true time floor(key)
      // Min-reduce proposals per vertex (the CRCW priority write). Keys
      // are distinct reals with probability 1; ties break toward the
      // smaller via-vertex, so the winner — and with it the whole
      // clustering — is independent of thread count and schedule.
      // Proposals for vertices settled in earlier rounds ride along dead;
      // each phase skips them with one relaxed load.
      //
      // Two equivalent reduction strategies, chosen per round:
      //  * packed fast path — the round's keys quantize order-exactly
      //    into 40 bits (atomics.hpp), so (key, via) fuses into one
      //    64-bit word and the reduce is a single atomic_write_min pass;
      //  * three-phase fallback — min key, then min via at that key,
      //    then settle, barrier-separated.
      // Both compute the same argmin, so the output is bit-identical —
      // and each has a sequential-round form performing the same passes
      // with plain writes.
      const bool packed = via_packs && packed_round_fits(round_key);
      const std::uint64_t base_bits =
          packed ? double_order_bits(static_cast<double>(round_key)) : 0;
      const bool seq_round = props.size() <= seq_threshold;
      std::uint64_t live = 0;
      std::size_t settled_now = 0;
      if (seq_round) {
        newly.clear();
        if (packed) {
          for (const EstProposal& p : props) {
            if (!alive(p)) continue;
            ++live;
            const std::uint64_t word = pack_key_via(p.key, base_bits, p.via);
            if (word < best_packed[p.v].load(std::memory_order_relaxed)) {
              best_packed[p.v].store(word, std::memory_order_relaxed);
            }
          }
          if (live == 0) continue;  // a fully-stale bucket is not a round
          ++ws.packed_rounds_;
          for (const EstProposal& p : props) {
            if (best_packed[p.v].load(std::memory_order_relaxed) ==
                pack_key_via(p.key, base_bits, p.via)) {
              settle_seq(p);
            }
          }
          for (const EstProposal& p : props) {
            best_packed[p.v].store(kPackedInf, std::memory_order_relaxed);
          }
        } else {
          for (const EstProposal& p : props) {
            if (!alive(p)) continue;
            ++live;
            if (p.key < best_key[p.v].load(std::memory_order_relaxed)) {
              best_key[p.v].store(p.key, std::memory_order_relaxed);
            }
          }
          if (live == 0) continue;  // a fully-stale bucket is not a round
          ++ws.fallback_rounds_;
          for (const EstProposal& p : props) {
            if (alive(p) &&
                p.key == best_key[p.v].load(std::memory_order_relaxed) &&
                p.via < best_via[p.v].load(std::memory_order_relaxed)) {
              best_via[p.v].store(p.via, std::memory_order_relaxed);
            }
          }
          for (const EstProposal& p : props) {
            if (p.key == best_key[p.v].load(std::memory_order_relaxed) &&
                p.via == best_via[p.v].load(std::memory_order_relaxed)) {
              settle_seq(p);
            }
          }
          for (const EstProposal& p : props) {
            best_key[p.v].store(kInfWeight, std::memory_order_relaxed);
            best_via[p.v].store(kNoVertex, std::memory_order_relaxed);
          }
        }
        ++ws.sequential_rounds_;
      } else if (packed) {
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const EstProposal& p = props[i];
          if (!alive(p)) return;
          tally.add(1);
          atomic_write_min(&best_packed[p.v], pack_key_via(p.key, base_bits, p.via));
        });
        live = tally.drain();
        if (live == 0) continue;  // a fully-stale bucket is not a round
        ++ws.packed_rounds_;
        ++ws.team_rounds_;
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const EstProposal& p = props[i];
          if (best_packed[p.v].load(std::memory_order_relaxed) ==
              pack_key_via(p.key, base_bits, p.via)) {
            settle(p);
          }
        });
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          best_packed[props[i].v].store(kPackedInf, std::memory_order_relaxed);
        });
      } else {
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const EstProposal& p = props[i];
          if (!alive(p)) return;
          tally.add(1);
          atomic_write_min(&best_key[p.v], p.key);
        });
        live = tally.drain();
        if (live == 0) continue;  // a fully-stale bucket is not a round
        ++ws.fallback_rounds_;
        ++ws.team_rounds_;
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const EstProposal& p = props[i];
          if (alive(p) && p.key == best_key[p.v].load(std::memory_order_relaxed)) {
            atomic_write_min(&best_via[p.v], p.via);
          }
        });
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const EstProposal& p = props[i];
          if (p.key == best_key[p.v].load(std::memory_order_relaxed) &&
              p.via == best_via[p.v].load(std::memory_order_relaxed)) {
            settle(p);
          }
        });
        // Reset the scratch minima for next rounds (touched only).
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          best_key[props[i].v].store(kInfWeight, std::memory_order_relaxed);
          best_via[props[i].v].store(kNoVertex, std::memory_order_relaxed);
        });
      }
      ++rounds;
      wd::add_round();
      wd::add_work(live);
      // Concatenate the per-worker winner lists with an exclusive scan.
      // A sequential round wrote `newly` directly and staged nothing.
      if (!seq_round) {
        std::vector<std::size_t>& offset = ws.offset_;
        for (std::size_t t = 0; t < workers; ++t) offset[t] = newly_local[t].size();
        settled_now = exclusive_scan_inplace(offset);
        newly.resize(settled_now);
        team.loop(0, workers, 1, [&](std::size_t t) {
          std::copy(newly_local[t].begin(), newly_local[t].end(),
                    newly.begin() + offset[t]);
          newly_local[t].clear();
        });
      } else {
        settled_now = newly.size();
      }
      assigned += static_cast<vid>(settled_now);

      // Expand: settled vertices propagate along their edges into
      // strictly later buckets (w >= 1). Scheduling is degree-aware and
      // adaptive: above the threshold the relaxer splits the round's edge
      // total into stolen ranges across the team (a hub vertex is
      // expanded by many workers); at or below it the whole expansion
      // runs on this thread with direct calendar pushes — no staging, no
      // flush. The proposal multiset is partition-independent and the
      // min-reduce above order-independent, so the output is identical.
      // One body, two emission routes: the sequential round places
      // straight into the calendar, the parallel round stages per worker.
      auto expand_with = [&](auto push) {
        return [&, push](std::size_t i, std::size_t lo, std::size_t hi) {
          const vid u = newly[i];
          tally.add(hi - lo);
          g.for_arcs(
              u, lo, hi,
              [&](vid ahead) { prefetch_read(&center[ahead]); },
              [&](eid e, vid v) {
                if (center[v].load(std::memory_order_relaxed) != kNoVertex) return;
                const weight_t w = g.weight(e);
                assert(w >= 1 && w == std::floor(w) &&
                       "est_cluster requires positive integer weights");
                const double k = key[u] + w;
                push(static_cast<std::uint64_t>(k) + cal_off,
                     EstProposal{v, u, k, hops[u] + w});
              });
        };
      };
      // Pull candidate scan for dense rounds: an open vertex scans its own
      // (symmetric, equal-mirror-weight) adjacency for frontier neighbours
      // and emits at most its lexicographic (key, via) minimum — exactly
      // the proposal the push multiset's min-reduce would have settled,
      // with k = key[u] + w the same double operation either way, so the
      // clustering is bit-identical. The suppressed proposals are strict
      // losers of that very reduce (a later-bucket loser finds v settled
      // at or before the winner's bucket and dies in the alive() filter).
      auto pull_expand = [&](vid v) -> std::size_t {
        if (center[v].load(std::memory_order_relaxed) != kNoVertex) return 0;
        const std::size_t deg = g.degree(v);
        double bk = kInfWeight;
        vid bu = kNoVertex;
        weight_t bw = 0;
        g.for_arcs(
            v, 0, deg,
            [&](vid ahead) { ws.relaxer_.prefetch_frontier_bit(ahead); },
            [&](eid e, vid u) {
              if (!ws.relaxer_.in_frontier(u)) return;
              const weight_t w = g.weight(e);
              const double k = key[u] + w;
              if (k < bk || (k == bk && u < bu)) {
                bk = k;
                bu = u;
                bw = hops[u] + w;
              }
            });
        tally.add(deg);
        if (bu != kNoVertex) {
          engine.push_from_worker(static_cast<std::uint64_t>(bk) + cal_off,
                                  EstProposal{v, bu, bk, bw});
        }
        return deg;
      };
      ws.relaxer_.relax(
          team, newly, g.num_vertices(), g.num_arcs(), seq_threshold,
          [&](std::size_t i) { return static_cast<std::size_t>(g.degree(newly[i])); },
          expand_with([&](std::uint64_t b, EstProposal p) {
            engine.push(b, std::move(p));
          }),
          expand_with([&](std::uint64_t b, EstProposal p) {
            engine.push_from_worker(b, std::move(p));
          }),
          pull_expand);
      if (!g.has_flat_adjacency()) ++ws.compressed_rounds_;
      wd::add_work(tally.drain());
    }
  });

  std::vector<vid>& center_of = ws.center_of_;
  center_of.resize(n);  // finalize_labels reads the size as the vertex count
  parallel_for(0, n, [&](std::size_t v) {
    center_of[v] = center[v].load(std::memory_order_relaxed);
  });
  // Copy (not move) the settled arrays out so the workspace keeps its
  // capacity for the next call.
  c.parent.assign(parent.begin(), parent.begin() + n);
  c.dist_to_center.assign(hops.begin(), hops.begin() + n);
  c.rounds = rounds;
  finalize_labels(c, center_of);
  return c;
}

Clustering est_cluster_reference(const Graph& g, double beta, std::uint64_t seed) {
  require_positive_weights(g, "est_cluster_reference");
  if (!(beta > 0)) {
    throw std::invalid_argument("est_cluster_reference: beta must be positive");
  }
  const vid n = g.num_vertices();
  Clustering c;
  c.parent.assign(n, kNoVertex);
  c.dist_to_center.assign(n, 0);
  if (n == 0) return c;
  const std::vector<double> delta = est_shifts(n, beta, seed);
  double delta_max = 0;
  for (double d : delta) delta_max = std::max(delta_max, d);

  // Super-source Dijkstra: every vertex is a source with offset
  // s_v = delta_max - delta_v; the winning source is the cluster center.
  std::vector<double> key(n, kInfWeight);
  std::vector<vid> center_of(n, kNoVertex);
  std::vector<weight_t> dist_in_tree(n, 0);
  struct QItem {
    double key;
    vid v;
    vid center;
    vid via;
    weight_t d;
    bool operator>(const QItem& o) const {
      if (key != o.key) return key > o.key;
      return center > o.center;  // deterministic tie-break
    }
  };
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  for (vid v = 0; v < n; ++v) pq.push({delta_max - delta[v], v, v, kNoVertex, 0});
  while (!pq.empty()) {
    QItem it = pq.top();
    pq.pop();
    if (center_of[it.v] != kNoVertex) continue;
    center_of[it.v] = it.center;
    key[it.v] = it.key;
    c.parent[it.v] = it.via;
    dist_in_tree[it.v] = it.d;
    for (eid e = g.begin(it.v); e < g.end(it.v); ++e) {
      const vid u = g.target(e);
      if (center_of[u] != kNoVertex) continue;
      pq.push({it.key + g.weight(e), u, it.center, it.v, it.d + g.weight(e)});
    }
  }
  c.dist_to_center = std::move(dist_in_tree);
  c.rounds = 0;  // sequential oracle: rounds not meaningful
  finalize_labels(c, center_of);
  return c;
}

}  // namespace parsh
