#include "cluster/cluster_connectivity.hpp"

#include <algorithm>

#include "cluster/est_cluster.hpp"
#include "graph/subgraph.hpp"

namespace parsh {

ClusterConnectivityResult cluster_connectivity(const Graph& g, std::uint64_t seed,
                                               double beta) {
  if (beta <= 0) beta = 0.2;
  ClusterConnectivityResult out;
  const vid n = g.num_vertices();
  out.component.resize(n);
  if (n == 0) return out;

  // label[v]: current quotient vertex of v.
  std::vector<vid> label(n);
  for (vid v = 0; v < n; ++v) label[v] = v;
  // Work on unit weights: connectivity ignores lengths.
  Graph quotient = g.as_unweighted();

  // One workspace across the quotient loop: the first round warms the
  // bucket engine and the priority arrays at full size, and every later
  // round runs on a strictly smaller quotient inside the same buffers —
  // zero engine heap allocations (ws.engine_alloc_events() stops moving,
  // pinned by the reuse test in tests/test_est_cluster.cpp).
  EstClusterWorkspace ws;
  while (quotient.num_edges() > 0) {
    ++out.rounds;
    const Clustering c = est_cluster(quotient, beta, seed + out.rounds, ws);
    if (out.rounds == 1) out.engine_allocs_first_round = ws.engine_alloc_events();
    out.engine_allocs_total = ws.engine_alloc_events();
    // Contract every cluster; re-point host labels through the clustering.
    const QuotientGraph q = quotient_graph(quotient, c.cluster_of, c.num_clusters);
    for (vid v = 0; v < n; ++v) label[v] = c.cluster_of[label[v]];
    quotient = q.graph.as_unweighted();
    // A round can in principle contract nothing (every cluster a
    // singleton); the next round draws fresh shifts, so termination is
    // almost sure and O(log n) rounds w.h.p. by Corollary 2.3.
  }

  // Densify by smallest member vertex (match connected_components()).
  std::vector<vid> remap(n, kNoVertex);
  vid next = 0;
  for (vid v = 0; v < n; ++v) {
    if (remap[label[v]] == kNoVertex) remap[label[v]] = next++;
    out.component[v] = remap[label[v]];
  }
  out.num_components = next;
  return out;
}

}  // namespace parsh
