#include "cluster/cluster_stats.hpp"

#include <algorithm>

#include "sssp/dijkstra.hpp"

namespace parsh {

bool validate_clustering(const Graph& g, const Clustering& c) {
  const vid n = g.num_vertices();
  if (c.cluster_of.size() != n || c.parent.size() != n ||
      c.dist_to_center.size() != n) {
    return false;
  }
  if (c.center.size() != c.num_clusters) return false;
  for (vid v = 0; v < n; ++v) {
    if (c.cluster_of[v] >= c.num_clusters) return false;
  }
  // Centers are their own cluster members with dist 0 and no parent.
  for (vid i = 0; i < c.num_clusters; ++i) {
    const vid ctr = c.center[i];
    if (c.cluster_of[ctr] != i) return false;
    if (c.parent[ctr] != kNoVertex) return false;
    if (c.dist_to_center[ctr] != 0) return false;
  }
  for (vid v = 0; v < n; ++v) {
    const vid p = c.parent[v];
    if (p == kNoVertex) {
      // Must be the center of its cluster.
      if (c.center[c.cluster_of[v]] != v) return false;
      continue;
    }
    // Parent in the same cluster, strictly closer to the center, and
    // actually adjacent in g with the matching edge weight.
    if (c.cluster_of[p] != c.cluster_of[v]) return false;
    if (!(c.dist_to_center[p] < c.dist_to_center[v])) return false;
    bool adjacent = false;
    for (eid e = g.begin(v); e < g.end(v); ++e) {
      if (g.target(e) == p &&
          c.dist_to_center[p] + g.weight(e) == c.dist_to_center[v]) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) return false;
  }
  return true;
}

std::vector<weight_t> cluster_radii(const Clustering& c) {
  std::vector<weight_t> r(c.num_clusters, 0);
  for (vid v = 0; v < c.cluster_of.size(); ++v) {
    r[c.cluster_of[v]] = std::max(r[c.cluster_of[v]], c.dist_to_center[v]);
  }
  return r;
}

weight_t max_cluster_radius(const Clustering& c) {
  weight_t m = 0;
  for (weight_t r : cluster_radii(c)) m = std::max(m, r);
  return m;
}

eid count_cut_edges(const Graph& g, const Clustering& c) {
  eid cut = 0;
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      if (u < v && c.cluster_of[u] != c.cluster_of[v]) ++cut;
    }
  }
  return cut;
}

double cut_fraction(const Graph& g, const Clustering& c) {
  const eid m = g.num_edges();
  return m == 0 ? 0.0 : static_cast<double>(count_cut_edges(g, c)) / static_cast<double>(m);
}

std::vector<vid> ball_cluster_counts(const Graph& g, const Clustering& c,
                                     const std::vector<vid>& queries, weight_t radius) {
  std::vector<vid> out(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SsspResult sp = dijkstra_limited(g, queries[i], radius);
    std::vector<vid> seen;
    for (vid v = 0; v < g.num_vertices(); ++v) {
      if (sp.dist[v] <= radius) seen.push_back(c.cluster_of[v]);
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    out[i] = static_cast<vid>(seen.size());
  }
  return out;
}

}  // namespace parsh
