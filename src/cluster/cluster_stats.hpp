// Diagnostics over a Clustering: the measurable quantities behind
// Lemma 2.1 (tree radius), Corollary 2.3 (cut probability) and
// Lemma 2.2 / Corollary 3.1 (ball-cluster intersections). Used by the
// property tests and by bench_cluster_properties.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/est_cluster.hpp"
#include "graph/graph.hpp"

namespace parsh {

/// True iff the parent pointers form, per cluster, a spanning tree rooted
/// at the cluster center with consistent tree distances, and every vertex
/// is assigned to exactly one cluster.
bool validate_clustering(const Graph& g, const Clustering& c);

/// Tree radius (max dist_to_center) per cluster.
std::vector<weight_t> cluster_radii(const Clustering& c);

/// Maximum tree radius over all clusters (0 if no vertices).
weight_t max_cluster_radius(const Clustering& c);

/// Number of inter-cluster edges (each undirected edge counted once).
eid count_cut_edges(const Graph& g, const Clustering& c);

/// Fraction of undirected edges cut.
double cut_fraction(const Graph& g, const Clustering& c);

/// For each queried vertex, the number of distinct clusters intersecting
/// the ball B(v, r) (hop-ball for unweighted, weighted ball otherwise).
/// This is the quantity of Lemma 2.2 / Corollary 3.1.
std::vector<vid> ball_cluster_counts(const Graph& g, const Clustering& c,
                                     const std::vector<vid>& queries, weight_t radius);

}  // namespace parsh
