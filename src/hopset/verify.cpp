#include "hopset/verify.hpp"

#include <algorithm>

#include "random/rng.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/hop_limited.hpp"

namespace parsh {

bool hopset_weights_are_path_weights(const Graph& g, const std::vector<Edge>& hopset) {
  // Group hopset edges by source to reuse Dijkstra runs.
  std::vector<Edge> sorted = hopset;
  std::sort(sorted.begin(), sorted.end(),
            [](const Edge& a, const Edge& b) { return a.u < b.u; });
  const double tol = 1e-9;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const vid u = sorted[i].u;
    const SsspResult sp = dijkstra(g, u);
    for (; i < sorted.size() && sorted[i].u == u; ++i) {
      const Edge& e = sorted[i];
      if (sp.dist[e.v] == kInfWeight) return false;          // no path at all
      if (e.w + tol < sp.dist[e.v]) return false;            // undercut: impossible weight
    }
  }
  return true;
}

std::vector<HopMeasurement> measure_hopset(const Graph& g, const std::vector<Edge>& hopset,
                                           double eps, vid pairs, std::uint64_t h_cap,
                                           std::uint64_t seed) {
  const Graph augmented = g.with_extra_edges(hopset);
  Rng rng(seed);
  std::vector<HopMeasurement> out;
  out.reserve(pairs);
  std::uint64_t ctr = 0;
  for (vid i = 0; i < pairs; ++i) {
    HopMeasurement m;
    // Rejection-sample a connected pair.
    weight_t d = kInfWeight;
    int attempts = 0;
    do {
      m.s = static_cast<vid>(rng.uniform_int(ctr++, g.num_vertices()));
      m.t = static_cast<vid>(rng.uniform_int(ctr++, g.num_vertices()));
      if (m.s != m.t) d = st_distance(g, m.s, m.t);
    } while ((m.s == m.t || d == kInfWeight) && ++attempts < 32);
    if (d == kInfWeight || m.s == m.t) continue;
    m.true_dist = d;
    m.hops_plain = hops_to_approx(g, m.s, m.t, d, eps, h_cap);
    m.hops_with_set = hops_to_approx(augmented, m.s, m.t, d, eps, h_cap);
    out.push_back(m);
  }
  return out;
}

double fraction_within_hop_bound(const std::vector<HopMeasurement>& ms, double bound) {
  if (ms.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& m : ms) {
    if (static_cast<double>(m.hops_with_set) <= bound) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(ms.size());
}

}  // namespace parsh
