#include "hopset/weight_reduction.hpp"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"

namespace parsh {

WeightDecomposition WeightDecomposition::build(const Graph& g, double eps) {
  WeightDecomposition d;
  const vid n = g.num_vertices();
  d.base_ = std::max(2.0, static_cast<double>(std::max<vid>(n, 2)) / eps);
  if (g.num_edges() == 0) return d;

  // Category of each arc: floor(log_base(w)), normalised so the lightest
  // edge sits in category 0.
  const weight_t min_w = g.min_weight();
  const double log_base = std::log(d.base_);
  auto category_of = [&](weight_t w) {
    return static_cast<int>(std::floor(std::log(w / min_w) / log_base + 1e-12));
  };
  std::vector<int> arc_cat(g.num_arcs());
  std::vector<int> cats;
  for (vid u = 0; u < n; ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      arc_cat[e] = category_of(g.weight(e));
      cats.push_back(arc_cat[e]);
    }
  }
  std::sort(cats.begin(), cats.end());
  cats.erase(std::unique(cats.begin(), cats.end()), cats.end());
  const std::size_t k = cats.size();  // non-empty categories q(0..k-1)

  // Components under each prefix P_{q(j)}.
  d.comp_at_.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<char> keep(g.num_arcs());
    for (eid e = 0; e < g.num_arcs(); ++e) keep[e] = arc_cat[e] <= cats[j] ? 1 : 0;
    d.comp_at_[j] = connected_components_filtered(g, keep);
  }

  // Level graphs: G[P_{q(j+1)}] / P_{q(j-1)}.
  d.levels_.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    Level& lv = d.levels_[j];
    // Contraction labels: components under P_{q(j-1)} (identity at j=0).
    std::vector<vid> contract(n);
    if (j == 0) {
      for (vid v = 0; v < n; ++v) contract[v] = v;
    } else {
      contract = d.comp_at_[j - 1];
    }
    vid num_quot = 0;
    for (vid c : contract) num_quot = std::max(num_quot, c + 1);
    const int cat_hi = j + 1 < k ? cats[j + 1] : cats[j];
    // A query resolved at level j has its endpoints connected within
    // P_{q(j)}, so its distance is < n * base^{q(j)+1} (n-1 edges of the
    // heaviest in-prefix category). Heavier edges can never lie on such a
    // path and are dropped — this is what bounds the level's weight ratio
    // by base^2 <= base^3 even when non-empty categories have gaps.
    const weight_t weight_cap = static_cast<weight_t>(n) * min_w *
                                std::pow(d.base_, static_cast<double>(cats[j]) + 1.0);
    std::vector<Edge> qedges;
    for (vid u = 0; u < n; ++u) {
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const vid v = g.target(e);
        if (u >= v) continue;
        if (arc_cat[e] > cat_hi) continue;
        if (g.weight(e) > weight_cap) continue;
        const vid cu = contract[u], cv = contract[v];
        if (cu == cv) continue;  // contracted (or intra-component light edge)
        qedges.push_back({cu, cv, g.weight(e)});
      }
    }
    lv.graph = Graph::from_edges(num_quot, std::move(qedges));
    lv.host_to_local = std::move(contract);
  }
  return d;
}

WeightDecomposition::QueryTarget WeightDecomposition::map_query(vid s, vid t) const {
  QueryTarget q;
  if (comp_at_.empty()) return q;
  // Smallest level j with s,t connected under P_{q(j)} (connectivity is
  // monotone in j, so binary search would work; the level count is tiny).
  for (std::size_t j = 0; j < comp_at_.size(); ++j) {
    if (comp_at_[j][s] == comp_at_[j][t]) {
      q.level = j;
      q.s = levels_[j].host_to_local[s];
      q.t = levels_[j].host_to_local[t];
      q.connected = true;
      return q;
    }
  }
  return q;  // disconnected in g
}

}  // namespace parsh
