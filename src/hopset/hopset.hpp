// Hopset construction (Algorithm 4, Sections 4-5).
//
// Recursively applies EST clustering. At each recursion level below the
// first, clusters holding at least a 1/rho fraction of the level's
// vertices are "large": the construction adds
//   * star edges   (v, center)   for every v in a large cluster, weighted
//                                by v's tree distance to the center, and
//   * clique edges (c1, c2)      between all pairs of large-cluster
//                                centers, weighted by their exact distance
//                                within the current subgraph,
// then recurses on the small clusters with beta grown by a fixed factor
// per level. Every hopset edge's weight is the weight of an actual path
// in the input graph (Definition 2.4, property 2).
//
// Guarantees (Lemmas 4.2, 4.3; Theorem 4.4): for any u,v, with
// probability >= 1/2 the h-hop distance in G ∪ E' is within
// (1 + O(eps_level * levels)) of dist(u,v) for
// h ~ n^{1/delta} * n_final^{1-1/delta} * beta0 * dist(u,v); the hopset
// has at most n star edges and O((n/n_final) * rho^2) clique edges.
//
// Weights must be positive integers (round first — see
// weighted_hopset.hpp for the Section 5 pipeline that does this).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct HopsetParams {
  /// Per-level distortion budget (the paper's eps; total distortion is
  /// ~eps * recursion levels, Lemma 4.2).
  double epsilon = 0.25;
  /// rho = growth^delta; delta > 1 makes cluster sizes shrink faster than
  /// beta grows, which terminates the recursion (Section 4).
  double delta = 1.1;
  /// n_final = max(floor, n^gamma1): recursion stops below this size.
  double gamma1 = 0.2;
  /// beta0 = n^{-gamma2}: top-level decomposition rate. Larger gamma2 =>
  /// bigger top-level clusters => fewer hops but deeper recursion.
  double gamma2 = 0.6;
  /// Confidence constant k of Lemma 2.1 (radius <= k beta^-1 log n whp).
  double k_conf = 2.0;
  /// Hard floor on n_final so tiny graphs terminate immediately.
  vid n_final_floor = 16;
  std::uint64_t seed = 1;
  /// If > 0, use this beta0 instead of n^{-gamma2} (the Appendix C
  /// limited-hopset iteration sets beta0 = 1/d directly).
  double beta0_override = 0;
  /// If > 0, use this n_final instead of n^{gamma1}.
  vid n_final_override = 0;
};

struct HopsetResult {
  std::vector<Edge> edges;  ///< star + clique edges, weights = path weights
  std::uint64_t star_edges = 0;
  std::uint64_t clique_edges = 0;
  std::uint64_t levels = 0;       ///< deepest recursion level reached
  std::uint64_t clusterings = 0;  ///< EST clustering invocations
  std::uint64_t rounds = 0;       ///< synchronous rounds (depth proxy)

  /// Derived parameters actually used (for logging/EXPERIMENTS.md).
  double beta0 = 0;
  double growth = 0;
  double rho = 0;
  vid n_final = 0;
};

class EstClusterWorkspace;
class SsspWorkspacePool;
struct Clustering;

/// Build a hopset for g (positive integer weights). Deterministic in
/// (g, params).
HopsetResult build_hopset(const Graph& g, const HopsetParams& params);

/// Workspace form for iterated callers (the weighted-hopset build runs
/// one of these per distance scale): the recursion's est_cluster calls
/// share `cluster_ws` and the per-center weighted-BFS fan-out draws
/// per-worker traversal workspaces from `sssp_ws`. Same output.
HopsetResult build_hopset(const Graph& g, const HopsetParams& params,
                          EstClusterWorkspace& cluster_ws,
                          SsspWorkspacePool& sssp_ws);

/// Like the workspace form, but additionally copies the level-0 EST
/// clustering (the one Algorithm 4's first call computes over the whole
/// graph) into `*top_clustering` when non-null. If the graph is at most
/// n_final vertices the recursion never clusters and the output is left
/// empty (num_clusters == 0). The incremental rebuild keys its
/// dirty-region accounting off this partition.
HopsetResult build_hopset(const Graph& g, const HopsetParams& params,
                          EstClusterWorkspace& cluster_ws,
                          SsspWorkspacePool& sssp_ws,
                          Clustering* top_clustering);

/// The per-level beta growth factor (k_conf * eps^{-1} * log n, floored at
/// 2) and rho = growth^delta, exposed for tests.
double hopset_growth(vid n, const HopsetParams& params);
double hopset_rho(vid n, const HopsetParams& params);

/// Expected hop bound of Lemma 4.2 for a path of weight d (the quantity
/// benches compare measured hop counts against).
double hopset_hop_bound(vid n, const HopsetParams& params, double d);

}  // namespace parsh
