#include "hopset/rounding.hpp"

#include <cmath>

namespace parsh {

RoundedGraph round_weights(const Graph& g, weight_t d, double k_hops, double zeta) {
  RoundedGraph out;
  out.w_hat = zeta * d / k_hops;
  const weight_t w_hat = out.w_hat;
  out.graph = g.map_weights([w_hat](weight_t w) {
    return std::max<weight_t>(1.0, std::ceil(w / w_hat));
  });
  return out;
}

weight_t rounded_weight_bound(double c, double k_hops, double zeta) {
  return std::ceil(c * k_hops / zeta);
}

}  // namespace parsh
