#include "hopset/hopset.hpp"

#include <algorithm>
#include <cmath>

#include "cluster/est_cluster.hpp"
#include "graph/validation.hpp"
#include "graph/subgraph.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/sssp_workspace.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {

double hopset_growth(vid n, const HopsetParams& p) {
  const double ln_n = std::log(std::max<vid>(n, 3));
  return std::max(2.0, p.k_conf * ln_n / p.epsilon);
}

double hopset_rho(vid n, const HopsetParams& p) {
  return std::pow(hopset_growth(n, p), p.delta);
}

double hopset_hop_bound(vid n, const HopsetParams& p, double d) {
  const double n_final = std::max<double>(
      p.n_final_floor, std::pow(static_cast<double>(n), p.gamma1));
  const double beta0 = std::pow(static_cast<double>(n), -p.gamma2);
  return std::pow(static_cast<double>(n), 1.0 / p.delta) *
             std::pow(n_final, 1.0 - 1.0 / p.delta) * beta0 * d +
         n_final;  // +n_final: base-case segments contribute their own hops
}

namespace {

struct BuildContext {
  const HopsetParams& params;
  double growth;
  double rho;
  vid n_final;
  HopsetResult* result;
  /// One clustering workspace for the whole recursion: the level-0 call
  /// warms the engine at full size; every recursive call clusters a
  /// strictly smaller induced subgraph inside the same buffers. Safe
  /// because hopset_recurse descends into sibling clusters sequentially.
  EstClusterWorkspace* ws;
  /// Per-worker traversal workspaces for the per-center weighted-BFS
  /// fan-out (each center's search is sequential; the parallelism is
  /// across centers). Shared across the recursion for the same reason.
  SsspWorkspacePool* sssp;
  /// When non-null, receives a copy of the level-0 clustering.
  Clustering* top_out = nullptr;
};

std::uint64_t splitmix_hash_impl(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Independent per-(level, cluster) seed for the recursive clusterings —
/// the paper's analysis treats the levels' randomness as independent.
std::uint64_t child_seed(std::uint64_t seed, std::uint64_t level, std::uint64_t idx) {
  return splitmix_hash_impl(seed ^ splitmix_hash_impl(level * 0x100000001b3ULL + idx));
}

/// Recursive step of Algorithm 4 on an induced subgraph. `sub.original_id`
/// maps local vertices back to the host graph, where hopset edges live.
void hopset_recurse(const Subgraph& sub, double beta, std::uint64_t level,
                    std::uint64_t seed, BuildContext& ctx) {
  const Graph& g = sub.graph;
  const vid n = g.num_vertices();
  HopsetResult& out = *ctx.result;
  out.levels = std::max(out.levels, level);
  if (n <= ctx.n_final) return;  // Line 1: base case

  // Line 2: exponential start time clustering.
  const Clustering c = est_cluster(g, beta, seed, *ctx.ws);
  if (level == 0 && ctx.top_out) *ctx.top_out = c;
  ++out.clusterings;
  out.rounds += c.rounds;
  const std::vector<vid> sizes = c.sizes();

  std::vector<vid> small_clusters;
  if (level == 0) {
    // Lines 3-4: the first call recurses on every cluster.
    small_clusters.resize(c.num_clusters);
    for (vid i = 0; i < c.num_clusters; ++i) small_clusters[i] = i;
  } else {
    // Lines 6-7: split by the size threshold |V|/rho.
    const double threshold = static_cast<double>(n) / ctx.rho;
    std::vector<vid> large_clusters;
    for (vid i = 0; i < c.num_clusters; ++i) {
      if (static_cast<double>(sizes[i]) >= threshold) {
        large_clusters.push_back(i);
      } else {
        small_clusters.push_back(i);
      }
    }
    if (!large_clusters.empty()) {
      // Line 8: star edges center -> every member, weight = tree distance
      // (an actual path inside the cluster).
      std::vector<char> is_large_cluster(c.num_clusters, 0);
      for (vid lc : large_clusters) is_large_cluster[lc] = 1;
      for (vid v = 0; v < n; ++v) {
        const vid cl = c.cluster_of[v];
        if (!is_large_cluster[cl]) continue;
        const vid ctr = c.center[cl];
        if (v == ctr) continue;
        out.edges.push_back(
            {sub.original_id[v], sub.original_id[ctr], c.dist_to_center[v]});
        ++out.star_edges;
      }
      // Line 9: clique edges between large-cluster centers, weight =
      // exact distance within this subgraph (one weighted BFS per center;
      // [UY91]-style parallel BFS in the PRAM reading).
      std::vector<vid> centers(large_clusters.size());
      for (std::size_t i = 0; i < large_clusters.size(); ++i) {
        centers[i] = c.center[large_clusters[i]];
      }
      std::vector<WeightedBfsResult> from_center(centers.size());
      ctx.sssp->prepare();
      parallel_for_grain(0, centers.size(), 1, [&](std::size_t i) {
        from_center[i] = weighted_bfs(g, centers[i], kInfWeight, ctx.sssp->local());
      });
      for (std::size_t i = 0; i < centers.size(); ++i) {
        out.rounds += from_center[i].rounds;
        for (std::size_t j = i + 1; j < centers.size(); ++j) {
          const weight_t d = from_center[i].dist[centers[j]];
          if (d == kInfWeight) continue;  // different components
          out.edges.push_back(
              {sub.original_id[centers[i]], sub.original_id[centers[j]], d});
          ++out.clique_edges;
        }
      }
    }
  }

  // Line 10 (and 4): recurse on (small) clusters with grown beta.
  if (small_clusters.empty()) return;
  std::vector<char> selected(c.num_clusters, 0);
  for (vid sc : small_clusters) selected[sc] = 1;
  // Gather members of the selected clusters and build their subgraphs.
  std::vector<std::vector<vid>> members(c.num_clusters);
  for (vid v = 0; v < n; ++v) {
    if (selected[c.cluster_of[v]]) members[c.cluster_of[v]].push_back(v);
  }
  const double next_beta = beta * ctx.growth;
  for (vid sc : small_clusters) {
    if (members[sc].size() <= 1) continue;
    Subgraph child = induced_subgraph(g, members[sc]);
    // Re-map the child's original ids through this subgraph's map.
    for (vid& ov : child.original_id) ov = sub.original_id[ov];
    hopset_recurse(child, next_beta, level + 1, child_seed(seed, level, sc), ctx);
  }
}

}  // namespace

HopsetResult build_hopset(const Graph& g, const HopsetParams& p) {
  EstClusterWorkspace cluster_ws;
  SsspWorkspacePool sssp_ws;
  return build_hopset(g, p, cluster_ws, sssp_ws);
}

HopsetResult build_hopset(const Graph& g, const HopsetParams& p,
                          EstClusterWorkspace& cluster_ws,
                          SsspWorkspacePool& sssp_ws) {
  return build_hopset(g, p, cluster_ws, sssp_ws, nullptr);
}

HopsetResult build_hopset(const Graph& g, const HopsetParams& p,
                          EstClusterWorkspace& cluster_ws,
                          SsspWorkspacePool& sssp_ws,
                          Clustering* top_clustering) {
  require_integer_weights(g, "build_hopset");
  if (!(p.delta > 1.0)) {
    throw std::invalid_argument("build_hopset: delta must exceed 1 (Section 4)");
  }
  if (!(p.epsilon > 0)) {
    throw std::invalid_argument("build_hopset: epsilon must be positive");
  }
  HopsetResult out;
  const vid n = g.num_vertices();
  if (n == 0) return out;
  const vid n_final =
      p.n_final_override > 0
          ? p.n_final_override
          : std::max<vid>(p.n_final_floor,
                          static_cast<vid>(std::pow(static_cast<double>(n), p.gamma1)));
  if (top_clustering) *top_clustering = Clustering{};
  BuildContext ctx{p,     hopset_growth(n, p), hopset_rho(n, p),
                   n_final, &out,              &cluster_ws,
                   &sssp_ws, top_clustering};
  out.growth = ctx.growth;
  out.rho = ctx.rho;
  out.n_final = ctx.n_final;
  out.beta0 = p.beta0_override > 0 ? p.beta0_override
                                   : std::pow(static_cast<double>(n), -p.gamma2);

  Subgraph whole;
  whole.graph = g;
  whole.original_id.resize(n);
  for (vid v = 0; v < n; ++v) whole.original_id[v] = v;
  hopset_recurse(whole, out.beta0, 0, p.seed, ctx);
  return out;
}

}  // namespace parsh
