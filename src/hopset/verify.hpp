// Hopset verification and measurement (the quantities of Definition 2.4
// and Lemma 4.2 that fill Figure 2's columns).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// Property 2 of Definition 2.4 demands every hopset edge's weight equal
/// the weight of an actual u-v path; in particular it can never undercut
/// the true distance. Checks w(uv) >= dist_G(u,v) for every hopset edge
/// (exact Dijkstra per edge endpoint — small graphs only).
bool hopset_weights_are_path_weights(const Graph& g, const std::vector<Edge>& hopset);

/// Per-pair measurement of a hopset's effect.
struct HopMeasurement {
  vid s = 0, t = 0;
  weight_t true_dist = 0;
  std::uint64_t hops_plain = 0;    ///< hops to (1+eps)-approx in G alone
  std::uint64_t hops_with_set = 0; ///< hops to (1+eps)-approx in G ∪ E'
};

/// Measure `pairs` random connected s-t pairs: the number of hop-rounds
/// needed to reach a (1+eps)-approximation with and without the hopset.
/// `h_cap` bounds the search (pairs that fail to converge report h_cap).
std::vector<HopMeasurement> measure_hopset(const Graph& g, const std::vector<Edge>& hopset,
                                           double eps, vid pairs, std::uint64_t h_cap,
                                           std::uint64_t seed);

/// Fraction of measured pairs whose hops_with_set <= bound — the
/// "probability >= 1/2" clause of Definition 2.4 made empirical.
double fraction_within_hop_bound(const std::vector<HopMeasurement>& ms, double bound);

}  // namespace parsh
