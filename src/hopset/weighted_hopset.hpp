// Weighted hopsets (Section 5, Theorem 5.3).
//
// For weighted graphs the construction runs once per distance scale
// d = (n^eta)^i covering [min weight, n * max weight]: weights are rounded
// with granularity w_hat = zeta * d / n (Lemma 5.2), Algorithm 4 runs on
// the rounded integer-weight graph, and the per-scale hopsets answer
// queries whose true distance falls in [d, n^eta * d]. A query tries every
// scale (there are O(3/eta) of them when the weight ratio is polynomial —
// see weight_reduction.hpp for the Appendix B reduction that guarantees
// this) and returns the best estimate; rounding up means every scale's
// estimate is a valid upper bound, and the matching scale is
// (1+eps)-accurate with the hopset's probability guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "hopset/hopset.hpp"

namespace parsh {

struct WeightedHopsetParams {
  HopsetParams hopset;
  /// Scale ratio exponent: consecutive scales differ by n^eta.
  double eta = 1.0 / 3.0;
  /// Rounding distortion (Lemma 5.2's zeta); default eps/2.
  double zeta = 0.125;
  /// Hop budget charged to the rounding (the k of Lemma 5.2). The paper's
  /// query stage recovers *hopset* paths, which have <= h hops — so k is
  /// set to the hop budget, not to n; that keeps rounded weights small
  /// enough that out-of-scale searches terminate quickly. 0 = auto
  /// (8 sqrt(n), the laptop-scale analogue of the paper's h ~ n^gamma2).
  double k_hops = 0;
};

/// One distance scale: the rounded graph, its hopset, and the granularity
/// needed to convert rounded distances back.
struct HopsetScale {
  weight_t d = 1;         ///< scale lower bound
  weight_t w_hat = 1;     ///< rounding granularity
  Graph rounded;          ///< rounded G ∪ E' (hopset edges merged in)
  std::uint64_t hopset_edges = 0;
  std::uint64_t rounds = 0;  ///< this scale's share of the build rounds
  /// The level-0 EST partition of this scale's rounded graph: cluster id
  /// per vertex (empty when the scale never clustered, i.e. n <= n_final).
  /// This is the dirty-region map — an edge change can only perturb the
  /// scale through the clusters its endpoints sit in.
  std::vector<vid> top_cluster_of;
  vid top_clusters = 0;
};

struct WeightedHopset {
  std::vector<HopsetScale> scales;
  std::uint64_t total_hopset_edges = 0;
  std::uint64_t rounds = 0;
  double eta = 0;
  /// The k of Lemma 5.2 actually used (also the natural query hop budget).
  double k_hops = 0;
};

/// Build per-scale hopsets for a positively weighted graph.
WeightedHopset build_weighted_hopset(const Graph& g, const WeightedHopsetParams& params);

/// Workspace form: all scales run through the caller's clustering
/// workspace and traversal pool (the epoch-swap rebuild path keeps these
/// warm across batches). Same output as the plain form.
WeightedHopset build_weighted_hopset(const Graph& g, const WeightedHopsetParams& params,
                                     EstClusterWorkspace& cluster_ws,
                                     SsspWorkspacePool& sssp_ws);

/// What an incremental rebuild actually recomputed. Scales whose distance
/// band cannot see any changed edge (every change is heavier than the
/// scale's Klein-Subramanian cap) are reused wholesale; `dirty_clusters`
/// counts, over the rebuilt scales, the previous top-level clusters the
/// relevant changes touch — the paper's dirty-region reading of the EST
/// partition. Scales that never clustered count as one cluster.
struct HopsetRebuildStats {
  std::uint64_t dirty_scales = 0;
  std::uint64_t total_scales = 0;
  std::uint64_t dirty_clusters = 0;
  std::uint64_t total_clusters = 0;
  bool full_rebuild = false;  ///< the scale ladder itself moved
};

/// Rebuild `prev` (built from the pre-delta graph with the same params)
/// for the post-delta graph `g`, recomputing only dirty scales. The
/// result is bit-identical to build_weighted_hopset(g, params): a clean
/// scale's pruned edge set is provably unchanged, and the per-scale build
/// is deterministic in (pruned graph, d, params, scale index), so reusing
/// it is exact — the differential harness in tests/test_dynamic.cpp pins
/// this. Falls back to a full rebuild when the scale ladder moves (the
/// delta changed min/max weight enough to shift the d sequence).
WeightedHopset rebuild_weighted_hopset(const Graph& g, const WeightedHopsetParams& params,
                                       const WeightedHopset& prev,
                                       const std::vector<EdgeChange>& changes,
                                       EstClusterWorkspace& cluster_ws,
                                       SsspWorkspacePool& sssp_ws,
                                       HopsetRebuildStats* stats = nullptr);

}  // namespace parsh
