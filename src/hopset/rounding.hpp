// Klein–Subramanian weight rounding (Section 5, Lemma 5.2).
//
// For a distance scale d, rounding granularity w_hat = zeta * d / k turns
// edge weights into the positive integers w_tilde(e) = ceil(w(e) / w_hat).
// Any path p with <= k hops and d <= w(p) <= c*d then satisfies
//   w_tilde(p) <= ceil(c k / zeta)   and   w_hat * w_tilde(p) <= (1+zeta) w(p),
// so running the integer-weight machinery on the rounded graph loses only
// a (1+zeta) factor while bounding the search radius by O(ck/zeta).
#pragma once

#include "graph/graph.hpp"

namespace parsh {

struct RoundedGraph {
  Graph graph;     ///< integer weights w_tilde >= 1
  weight_t w_hat;  ///< granularity: true weight ~ w_hat * rounded weight
};

/// Round g's weights for scale d with hop budget k and distortion zeta.
RoundedGraph round_weights(const Graph& g, weight_t d, double k_hops, double zeta);

/// The rounded-weight upper bound ceil(c*k/zeta) of Lemma 5.2.
weight_t rounded_weight_bound(double c, double k_hops, double zeta);

}  // namespace parsh
