#include "hopset/limited_hopset.hpp"

#include <cmath>

#include "hopset/hopset.hpp"
#include "hopset/rounding.hpp"

namespace parsh {

LimitedHopsetResult build_limited_hopset(const Graph& g, const LimitedHopsetParams& p) {
  LimitedHopsetResult out;
  const vid n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0) return out;

  const double eta = p.alpha / 2.0;
  const double nd = static_cast<double>(std::max<vid>(n, 2));
  const double k_hops = std::max(4.0, std::pow(nd, 2.0 * eta));  // n^{2 eta}
  const double scale_ratio = std::max(2.0, std::pow(nd, eta));   // c = n^eta
  const int iterations = std::min<int>(p.max_iterations,
                                       static_cast<int>(std::ceil(1.0 / eta)));

  Graph work = g;  // G plus the hopset edges added so far
  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<Edge> added_this_iter;
    const weight_t lo = work.min_weight();
    const weight_t hi = static_cast<weight_t>(n) * work.max_weight();
    std::uint64_t scale_idx = 0;
    for (weight_t d = lo; d / scale_ratio <= hi; d *= scale_ratio, ++scale_idx) {
      // Only paths of weight in [d, c*d] matter at this scale.
      const weight_t cap = d * scale_ratio;
      std::vector<Edge> kept;
      for (const Edge& e : work.undirected_edges()) {
        if (e.w <= cap) kept.push_back(e);
      }
      if (kept.empty()) continue;
      const Graph pruned = Graph::from_edges(n, std::move(kept));
      RoundedGraph rg = round_weights(pruned, d, k_hops, p.epsilon);
      // Rounded path weights are <= ~c*k/zeta =: d_rounded.
      const double d_rounded = rounded_weight_bound(scale_ratio, k_hops, p.epsilon);
      HopsetParams hp;
      hp.epsilon = p.epsilon / std::log(nd);  // eps' = eps / log n (Lemma C.1)
      hp.delta = 2.0 / eta;
      hp.beta0_override = 1.0 / d_rounded;
      hp.n_final_override =
          std::max<vid>(8, static_cast<vid>(std::pow(nd, eta / 2.0)));
      hp.seed = p.seed ^ (0x9e3779b9ULL * (iter * 131 + scale_idx + 1));
      HopsetResult hr = build_hopset(rg.graph, hp);
      out.rounds += hr.rounds;
      for (const Edge& e : hr.edges) {
        // Convert rounded weight back to a true-weight upper bound.
        added_this_iter.push_back({e.u, e.v, e.w * rg.w_hat});
      }
    }
    ++out.iterations;
    if (added_this_iter.empty()) break;
    out.edges.insert(out.edges.end(), added_this_iter.begin(), added_this_iter.end());
    work = work.with_extra_edges(added_this_iter);
  }
  return out;
}

}  // namespace parsh
