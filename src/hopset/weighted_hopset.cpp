#include "hopset/weighted_hopset.hpp"

#include <cmath>

#include "cluster/est_cluster.hpp"
#include "graph/validation.hpp"
#include "hopset/rounding.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

WeightedHopset build_weighted_hopset(const Graph& g, const WeightedHopsetParams& p) {
  require_positive_weights(g, "build_weighted_hopset");
  WeightedHopset out;
  out.eta = p.eta;
  const vid n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0) return out;

  const double k_hops =
      p.k_hops > 0 ? p.k_hops : 8.0 * std::sqrt(static_cast<double>(n));
  out.k_hops = k_hops;
  const double scale_ratio = std::pow(static_cast<double>(std::max<vid>(n, 2)), p.eta);
  // Distances lie in [min_w, n * max_w]; scales cover that range.
  const weight_t lo = g.min_weight();
  const weight_t hi = static_cast<weight_t>(n) * g.max_weight();

  // One clustering workspace + one traversal-workspace pool for every
  // scale's hopset build: the first scale warms the buffers, the rest run
  // inside them (the preprocessing half of the reuse story; queries get
  // the same treatment through ApproxShortestPaths::query_batch).
  EstClusterWorkspace cluster_ws;
  SsspWorkspacePool sssp_ws;
  std::uint64_t scale_idx = 0;
  for (weight_t d = lo; d / scale_ratio <= hi; d *= scale_ratio, ++scale_idx) {
    HopsetScale scale;
    scale.d = d;
    // Klein-Subramanian prune: a path of weight <= c*d cannot use an edge
    // heavier than c*d, so those edges are dropped for this scale. This
    // caps the rounded weights at ~c*k/zeta (Lemma 5.2) and keeps the
    // bucketed searches shallow.
    const weight_t cap = d * scale_ratio;
    std::vector<Edge> kept;
    for (const Edge& e : g.undirected_edges()) {
      if (e.w <= cap) kept.push_back(e);
    }
    const Graph pruned = Graph::from_edges(n, std::move(kept));
    RoundedGraph rg = round_weights(pruned, d, k_hops, p.zeta);
    scale.w_hat = rg.w_hat;
    HopsetParams hp = p.hopset;
    hp.seed = p.hopset.seed ^ (0x5bd1e995ULL * (scale_idx + 1));
    if (hp.beta0_override <= 0 && rg.graph.num_edges() > 0) {
      // beta0 = n^{-gamma2} is calibrated to unit weights; the rounded
      // graph's distances are inflated by its mean edge weight, so scale
      // beta0 down by it — top-level clusters then span ~n^{gamma2} hops
      // at every scale (the quantity Theorem 4.4's depth is stated in).
      double mean_w = 0;
      for (const Edge& e : rg.graph.undirected_edges()) mean_w += e.w;
      mean_w /= static_cast<double>(rg.graph.num_edges());
      hp.beta0_override =
          std::pow(static_cast<double>(n), -hp.gamma2) / std::max(1.0, mean_w);
    }
    HopsetResult hr = build_hopset(rg.graph, hp, cluster_ws, sssp_ws);
    out.rounds += hr.rounds;
    scale.hopset_edges = hr.edges.size();
    out.total_hopset_edges += hr.edges.size();
    // Merge the hopset into the rounded graph once, so queries run on a
    // single CSR structure.
    scale.rounded = rg.graph.with_extra_edges(hr.edges);
    out.scales.push_back(std::move(scale));
  }
  return out;
}

}  // namespace parsh
