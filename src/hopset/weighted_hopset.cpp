#include "hopset/weighted_hopset.hpp"

#include <cmath>

#include "cluster/est_cluster.hpp"
#include "graph/validation.hpp"
#include "hopset/rounding.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

namespace {

double resolve_k_hops(const WeightedHopsetParams& p, vid n) {
  return p.k_hops > 0 ? p.k_hops : 8.0 * std::sqrt(static_cast<double>(n));
}

double resolve_scale_ratio(const WeightedHopsetParams& p, vid n) {
  return std::pow(static_cast<double>(std::max<vid>(n, 2)), p.eta);
}

/// The d sequence the build walks: d = min_w * ratio^i while
/// d / ratio <= n * max_w. Deterministic in (min_w, max_w, n, ratio), so
/// comparing two ladders is how the incremental rebuild decides whether
/// the delta moved the scale structure itself.
std::vector<weight_t> scale_ladder(const Graph& g, double scale_ratio) {
  std::vector<weight_t> ds;
  const weight_t lo = g.min_weight();
  const weight_t hi = static_cast<weight_t>(g.num_vertices()) * g.max_weight();
  for (weight_t d = lo; d / scale_ratio <= hi; d *= scale_ratio) ds.push_back(d);
  return ds;
}

/// Build one distance scale: Klein-Subramanian prune, Lemma 5.2 rounding,
/// Algorithm 4 hopset, merge. Deterministic in (g's edge multiset, d,
/// params, scale_idx) — the incremental rebuild leans on this to reuse
/// clean scales bit-for-bit.
HopsetScale build_one_scale(const Graph& g, const WeightedHopsetParams& p,
                            weight_t d, double scale_ratio, double k_hops,
                            std::uint64_t scale_idx,
                            EstClusterWorkspace& cluster_ws,
                            SsspWorkspacePool& sssp_ws) {
  const vid n = g.num_vertices();
  HopsetScale scale;
  scale.d = d;
  // Klein-Subramanian prune: a path of weight <= c*d cannot use an edge
  // heavier than c*d, so those edges are dropped for this scale. This
  // caps the rounded weights at ~c*k/zeta (Lemma 5.2) and keeps the
  // bucketed searches shallow.
  const weight_t cap = d * scale_ratio;
  std::vector<Edge> kept;
  for (const Edge& e : g.undirected_edges()) {
    if (e.w <= cap) kept.push_back(e);
  }
  const Graph pruned = Graph::from_edges(n, std::move(kept));
  RoundedGraph rg = round_weights(pruned, d, k_hops, p.zeta);
  scale.w_hat = rg.w_hat;
  HopsetParams hp = p.hopset;
  hp.seed = p.hopset.seed ^ (0x5bd1e995ULL * (scale_idx + 1));
  if (hp.beta0_override <= 0 && rg.graph.num_edges() > 0) {
    // beta0 = n^{-gamma2} is calibrated to unit weights; the rounded
    // graph's distances are inflated by its mean edge weight, so scale
    // beta0 down by it — top-level clusters then span ~n^{gamma2} hops
    // at every scale (the quantity Theorem 4.4's depth is stated in).
    double mean_w = 0;
    for (const Edge& e : rg.graph.undirected_edges()) mean_w += e.w;
    mean_w /= static_cast<double>(rg.graph.num_edges());
    hp.beta0_override =
        std::pow(static_cast<double>(n), -hp.gamma2) / std::max(1.0, mean_w);
  }
  Clustering top;
  HopsetResult hr = build_hopset(rg.graph, hp, cluster_ws, sssp_ws, &top);
  scale.rounds = hr.rounds;
  scale.hopset_edges = hr.edges.size();
  scale.top_cluster_of = std::move(top.cluster_of);
  scale.top_clusters = top.num_clusters;
  // Merge the hopset into the rounded graph once, so queries run on a
  // single CSR structure.
  scale.rounded = rg.graph.with_extra_edges(hr.edges);
  return scale;
}

}  // namespace

WeightedHopset build_weighted_hopset(const Graph& g, const WeightedHopsetParams& p,
                                     EstClusterWorkspace& cluster_ws,
                                     SsspWorkspacePool& sssp_ws) {
  require_positive_weights(g, "build_weighted_hopset");
  WeightedHopset out;
  out.eta = p.eta;
  const vid n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0) return out;

  const double k_hops = resolve_k_hops(p, n);
  out.k_hops = k_hops;
  const double scale_ratio = resolve_scale_ratio(p, n);
  const std::vector<weight_t> ladder = scale_ladder(g, scale_ratio);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    HopsetScale scale = build_one_scale(g, p, ladder[i], scale_ratio, k_hops,
                                        i, cluster_ws, sssp_ws);
    out.rounds += scale.rounds;
    out.total_hopset_edges += scale.hopset_edges;
    out.scales.push_back(std::move(scale));
  }
  return out;
}

WeightedHopset build_weighted_hopset(const Graph& g, const WeightedHopsetParams& p) {
  // One clustering workspace + one traversal-workspace pool for every
  // scale's hopset build: the first scale warms the buffers, the rest run
  // inside them (the preprocessing half of the reuse story; queries get
  // the same treatment through ApproxShortestPaths::query_batch).
  EstClusterWorkspace cluster_ws;
  SsspWorkspacePool sssp_ws;
  return build_weighted_hopset(g, p, cluster_ws, sssp_ws);
}

WeightedHopset rebuild_weighted_hopset(const Graph& g, const WeightedHopsetParams& p,
                                       const WeightedHopset& prev,
                                       const std::vector<EdgeChange>& changes,
                                       EstClusterWorkspace& cluster_ws,
                                       SsspWorkspacePool& sssp_ws,
                                       HopsetRebuildStats* stats) {
  HopsetRebuildStats local;
  HopsetRebuildStats& st = stats ? *stats : local;
  st = HopsetRebuildStats{};
  for (const HopsetScale& s : prev.scales) {
    st.total_clusters += std::max<vid>(s.top_clusters, 1);
  }

  const vid n = g.num_vertices();
  const double k_hops = n > 0 ? resolve_k_hops(p, n) : 0;
  const double scale_ratio = resolve_scale_ratio(p, n);
  const std::vector<weight_t> ladder =
      (n == 0 || g.num_edges() == 0) ? std::vector<weight_t>{}
                                     : scale_ladder(g, scale_ratio);

  // The ladder is a pure function of (min_w, n * max_w, ratio); if the
  // delta moved it (or the knobs changed), per-scale reuse is meaningless
  // — scale i before and after are different bands. Rebuild from scratch
  // (still through the caller's warm workspaces).
  bool ladder_moved = ladder.size() != prev.scales.size() ||
                      prev.eta != p.eta ||
                      (n > 0 && prev.k_hops != k_hops && !prev.scales.empty());
  if (!ladder_moved) {
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      if (ladder[i] != prev.scales[i].d) ladder_moved = true;
    }
  }
  if (ladder_moved) {
    st.full_rebuild = true;
    st.total_scales = ladder.size();
    st.dirty_scales = ladder.size();
    st.dirty_clusters = st.total_clusters;
    return build_weighted_hopset(g, p, cluster_ws, sssp_ws);
  }

  // A change is visible to a scale iff it survives that scale's prune on
  // at least one side: rel = min over present sides of (w_old, w_new).
  // rel > cap means the edge was absent from the pruned graph before AND
  // after — the scale's input is untouched.
  auto rel_weight = [](const EdgeChange& c) {
    if (c.w_old == 0) return c.w_new;
    if (c.w_new == 0) return c.w_old;
    return std::min(c.w_old, c.w_new);
  };

  WeightedHopset out;
  out.eta = p.eta;
  out.k_hops = prev.k_hops;
  st.total_scales = ladder.size();
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const weight_t cap = ladder[i] * scale_ratio;
    bool dirty = false;
    for (const EdgeChange& c : changes) {
      if (rel_weight(c) <= cap) {
        dirty = true;
        break;
      }
    }
    if (!dirty) {
      // Clean scale: identical pruned input + deterministic build =>
      // reusing the previous scale IS the rebuild, bit for bit. O(1):
      // Graph copies share handles.
      out.scales.push_back(prev.scales[i]);
    } else {
      ++st.dirty_scales;
      // Dirty-region accounting against the PREVIOUS partition: which
      // top-level clusters do the scale-relevant changes touch?
      const HopsetScale& ps = prev.scales[i];
      if (ps.top_cluster_of.empty()) {
        ++st.dirty_clusters;  // never clustered: one base-case region
      } else {
        std::vector<char> seen(std::max<vid>(ps.top_clusters, 1), 0);
        for (const EdgeChange& c : changes) {
          if (rel_weight(c) > cap) continue;
          for (vid v : {c.u, c.v}) {
            if (v < ps.top_cluster_of.size()) {
              const vid cl = ps.top_cluster_of[v];
              if (cl < seen.size() && !seen[cl]) {
                seen[cl] = 1;
                ++st.dirty_clusters;
              }
            }
          }
        }
      }
      out.scales.push_back(build_one_scale(g, p, ladder[i], scale_ratio,
                                           prev.k_hops, i, cluster_ws, sssp_ws));
    }
    out.rounds += out.scales.back().rounds;
    out.total_hopset_edges += out.scales.back().hopset_edges;
  }
  return out;
}

}  // namespace parsh
