#include "hopset/baseline_cohen.hpp"

#include <algorithm>
#include <cmath>

#include "graph/validation.hpp"
#include "parallel/parallel_for.hpp"
#include "random/rng.hpp"
#include "sssp/sssp_workspace.hpp"
#include "sssp/weighted_bfs.hpp"

namespace parsh {

CohenLiteResult cohen_lite_hopset(const Graph& g, const CohenLiteParams& p) {
  require_integer_weights(g, "cohen_lite_hopset");
  CohenLiteResult out;
  const vid n = g.num_vertices();
  if (n == 0) return out;
  Rng rng(p.seed);

  // Landmark levels: level 0 is every vertex; level l >= 1 samples with
  // probability decay^l (nested sampling — a level-(l+1) landmark is also
  // a level-l landmark, matching the cover hierarchy's nesting).
  std::vector<std::vector<vid>> level(p.levels + 1);
  for (vid v = 0; v < n; ++v) level[0].push_back(v);
  for (int l = 1; l <= p.levels; ++l) {
    const double keep = p.decay;  // relative to the previous level
    for (vid v : level[l - 1]) {
      if (rng.split(l).uniform(v) < keep) level[l].push_back(v);
    }
  }
  out.landmarks_per_level.resize(level.size());
  for (std::size_t l = 0; l < level.size(); ++l) {
    out.landmarks_per_level[l] = level[l].size();
  }

  // Mark landmark levels per vertex for the radius-limited connection
  // step (top_level[v] = highest level containing v).
  std::vector<int> top_level(n, 0);
  for (int l = 1; l <= p.levels; ++l) {
    for (vid v : level[l]) top_level[v] = l;
  }

  // For each level l < L: every level-l landmark searches to radius
  // r_l and links to the level-(l+1) landmarks it finds. The searches
  // run from the *upper* level's landmarks instead (fewer sources, same
  // edges): a level-(l+1) landmark claims every level-l landmark within
  // r_l.
  const weight_t mean_w = g.num_edges()
                              ? [&] {
                                  double s = 0;
                                  for (const Edge& e : g.undirected_edges()) s += e.w;
                                  return s / static_cast<double>(g.num_edges());
                                }()
                              : 1.0;
  // Per-worker traversal workspaces, shared by every level's landmark
  // fan-out: the radius-limited searches reach few vertices, so warm
  // searches run entirely inside the first level's buffers.
  SsspWorkspacePool sssp_ws;
  double radius = p.base_radius * mean_w;
  for (int l = 0; l < p.levels; ++l, radius *= p.radius_growth) {
    const std::vector<vid>& uppers = level[l + 1];
    if (uppers.empty()) break;
    std::vector<WeightedBfsResult> search(uppers.size());
    sssp_ws.prepare();
    parallel_for_grain(0, uppers.size(), 1, [&](std::size_t i) {
      search[i] = weighted_bfs(g, uppers[i], radius, sssp_ws.local());
    });
    out.searches += uppers.size();
    for (std::size_t i = 0; i < uppers.size(); ++i) {
      for (vid v = 0; v < n; ++v) {
        if (top_level[v] < l) continue;          // below this level
        if (v == uppers[i]) continue;
        const weight_t d = search[i].dist[v];
        if (d == kInfWeight) continue;
        out.edges.push_back({uppers[i], v, d});
      }
    }
  }
  // Dedup (nested levels can produce the same pair at several scales;
  // keep the min = the tightest search's distance, which is exact).
  for (Edge& e : out.edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(out.edges.begin(), out.edges.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end(),
                              [](const Edge& a, const Edge& b) {
                                return a.u == b.u && a.v == b.v;
                              }),
                  out.edges.end());
  return out;
}

}  // namespace parsh
