// Klein–Subramanian-style sampled hopset ([KS97]; first row of Figure 2).
//
// Sample `samples` vertices uniformly and connect them into a clique
// weighted by their exact pairwise distances. With s = Theta(sqrt(n))
// samples a shortest path acquires a sampled vertex every ~ (n/s) log n
// hops w.h.p., giving the O(sqrt(n))-hop / O(n)-size / O(m sqrt(n))-work
// row of the paper's comparison table. Exact distances come from one
// Dijkstra per sample, which *is* the O(m n^0.5) work the paper charges
// this baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct Ks97Result {
  std::vector<Edge> edges;
  std::vector<vid> samples;
};

/// Build the sampled-clique hopset. `samples = 0` picks ceil(sqrt(n)).
Ks97Result ks97_hopset(const Graph& g, vid samples, std::uint64_t seed);

}  // namespace parsh
