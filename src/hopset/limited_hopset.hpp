// Limited hopsets (Appendix C, Theorem C.2).
//
// To push query depth to n^alpha for arbitrary alpha > 0, the construction
// iterates a weaker primitive: "approximate n^{2 eta}-hop paths by
// n^eta-hop paths" (Lemma C.1), with eta = alpha / 2. One iteration runs,
// for every distance scale d, Algorithm 4 on the d-scale rounded graph
// with delta = 2/eta, beta0 = 1/d_rounded and n_final = n^{eta/2}; each
// iteration shortens every path's hop count by a factor n^eta, so 1/eta
// iterations handle paths of any length. Hopset edges produced by earlier
// iterations participate in later ones (they are added to the working
// graph).
//
// Edge weights of the returned set are (1+zeta)-upper bounds on real path
// weights (rounding rounds up), so estimates through them remain valid
// upper bounds; the documented distortion accounts for this.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct LimitedHopsetParams {
  double alpha = 0.6;    ///< target hop exponent (h ~ n^alpha)
  double epsilon = 0.3;  ///< per-iteration distortion budget
  std::uint64_t seed = 1;
  /// Cap on iterations (the theory needs 1/eta = 2/alpha; small graphs
  /// converge earlier and benches can trim).
  int max_iterations = 4;
};

struct LimitedHopsetResult {
  std::vector<Edge> edges;
  int iterations = 0;
  std::uint64_t rounds = 0;
};

/// Build an Appendix C limited hopset for a positively weighted graph
/// with polynomially bounded weight ratio.
LimitedHopsetResult build_limited_hopset(const Graph& g, const LimitedHopsetParams& p);

}  // namespace parsh
