#include "hopset/baseline_ks97.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "random/rng.hpp"
#include "sssp/dijkstra.hpp"

namespace parsh {

Ks97Result ks97_hopset(const Graph& g, vid samples, std::uint64_t seed) {
  Ks97Result r;
  const vid n = g.num_vertices();
  if (n == 0) return r;
  if (samples == 0) {
    samples = static_cast<vid>(std::ceil(std::sqrt(static_cast<double>(n))));
  }
  Rng rng(seed);
  std::vector<vid> picks(samples);
  for (vid i = 0; i < samples; ++i) {
    picks[i] = static_cast<vid>(rng.uniform_int(i, n));
  }
  std::sort(picks.begin(), picks.end());
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  r.samples = picks;

  std::vector<SsspResult> sp(picks.size());
  parallel_for_grain(0, picks.size(), 1,
                     [&](std::size_t i) { sp[i] = dijkstra(g, picks[i]); });
  for (std::size_t i = 0; i < picks.size(); ++i) {
    for (std::size_t j = i + 1; j < picks.size(); ++j) {
      const weight_t d = sp[i].dist[picks[j]];
      if (d == kInfWeight) continue;
      r.edges.push_back({picks[i], picks[j], d});
    }
  }
  return r;
}

}  // namespace parsh
