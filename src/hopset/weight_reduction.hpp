// Hierarchical weight-class decomposition (Lemma 5.1 / Appendix B).
//
// Edges are grouped into categories by powers of base = n/eps. For a
// query whose endpoints first become connected at category level j, only
// edges of categories j-1, j, j+1 matter: lighter edges can be contracted
// (they change any <=n-edge path by a factor <= eps) and heavier edges can
// never appear on the path. The decomposition therefore prepares, per
// level j, the quotient graph G[P_{q(j+1)}] / P_{q(j-1)} whose weight
// ratio is O((n/eps)^3) — making every level safe for the polynomial-
// ratio machinery of Section 5 — and maps each query to one level with a
// (1-eps)-approximation guarantee.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

class WeightDecomposition {
 public:
  struct Level {
    Graph graph;                    ///< G[P_{q(j+1)}] / P_{q(j-1)}
    std::vector<vid> host_to_local; ///< host vertex -> quotient vertex
  };

  struct QueryTarget {
    std::size_t level = 0;
    vid s = kNoVertex;
    vid t = kNoVertex;
    bool connected = false;  ///< false if s,t are in different components of g
  };

  /// Build the decomposition. `eps` controls both the category base (n/eps)
  /// and the approximation loss.
  static WeightDecomposition build(const Graph& g, double eps);

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const Level& level(std::size_t j) const { return levels_[j]; }

  /// Map an s-t query to the level whose quotient graph answers it.
  [[nodiscard]] QueryTarget map_query(vid s, vid t) const;

  /// Weight-ratio bound each level is guaranteed to satisfy (base^3).
  [[nodiscard]] double ratio_bound() const { return base_ * base_ * base_; }

 private:
  double base_ = 0;
  std::vector<Level> levels_;
  /// comp_at_[j][v] = component of v using edges of category <= q(j).
  std::vector<std::vector<vid>> comp_at_;
};

}  // namespace parsh
