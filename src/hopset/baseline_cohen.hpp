// Cohen-flavored hierarchical-landmark hopset (the [Coh00] row of
// Figure 2, simplified).
//
// Cohen's construction achieves polylog hop counts by layering
// "pairwise covers" at geometrically growing radii. A faithful
// reimplementation is a research project of its own (and no reference
// code exists); this module implements the standard simplification that
// preserves the row's character for comparison purposes:
//
//   * L+1 landmark levels; level l samples each vertex w.p. p^l,
//   * each level-l landmark connects to every level-(l+1) landmark
//     within a radius growing geometrically with l (truncated searches),
//     plus every vertex connects to its nearest level-1 landmarks.
//
// The result approximates long paths through the landmark hierarchy in
// O(L) hops per radius scale — polylog hops like Cohen's bound — at a
// superlinear size/work cost (the n^{1+alpha}/Õ(m n^alpha) columns of the
// paper's table). DESIGN.md documents this substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct CohenLiteParams {
  /// Number of landmark levels above the base (L).
  int levels = 3;
  /// Per-level sampling decay: level l keeps each vertex w.p. decay^l.
  double decay = 0.25;
  /// Radius multiplier between consecutive levels.
  double radius_growth = 4.0;
  /// Base search radius (hops) for level 0 -> 1 connections.
  double base_radius = 4.0;
  std::uint64_t seed = 1;
};

struct CohenLiteResult {
  std::vector<Edge> edges;
  std::vector<std::size_t> landmarks_per_level;
  std::uint64_t searches = 0;  ///< truncated BFS invocations (work proxy)
};

/// Build the hierarchical-landmark hopset for an integer-weight graph.
CohenLiteResult cohen_lite_hopset(const Graph& g, const CohenLiteParams& params);

}  // namespace parsh
