// Deterministic, splittable random number generation.
//
// Every randomized routine in the library draws per-element values from a
// counter-based stream: value(i) = hash(seed, stream, i). This makes the
// algorithms schedule-independent (the same seed yields the same clustering
// regardless of thread count), which the test suite relies on, and mirrors
// the paper's model where each vertex independently draws
// delta_u ~ Exp(beta).
#pragma once

#include <cmath>
#include <cstdint>

namespace parsh {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A counter-based random stream. Cheap to copy; `split` derives an
/// independent child stream (used to give recursion levels independent
/// randomness, as the paper's analysis assumes).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(splitmix64(seed ^ 0x243f6a8885a308d3ULL)) {}

  /// Derive an independent stream identified by `stream_id`.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    return Rng(splitmix64(state_ ^ splitmix64(stream_id + 0x1000193ULL)));
  }

  /// i-th 64-bit value of this stream (pure function of (stream, i)).
  [[nodiscard]] std::uint64_t bits(std::uint64_t i) const {
    return splitmix64(state_ + 0x9e3779b97f4a7c15ULL * (i + 1));
  }

  /// i-th uniform double in (0, 1) — never exactly 0 or 1, safe for log().
  [[nodiscard]] double uniform(std::uint64_t i) const {
    // 53 random mantissa bits, then shift into (0,1).
    return (static_cast<double>(bits(i) >> 11) + 0.5) * (1.0 / 9007199254740992.0);
  }

  /// i-th uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t i, std::uint64_t bound) const {
    // Multiplicative range reduction (Lemire); bias is < 2^-64 * bound,
    // immaterial for graph workloads.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(bits(i)) * bound) >> 64);
  }

  /// i-th Exp(beta) draw: mean 1/beta. This is the delta_u of Algorithm 1.
  [[nodiscard]] double exponential(std::uint64_t i, double beta) const {
    return -std::log(uniform(i)) / beta;
  }

  /// Raw state (for tests that assert splitting independence).
  [[nodiscard]] std::uint64_t state() const { return state_; }

 private:
  explicit Rng(std::uint64_t state, int) : state_(state) {}
  std::uint64_t state_;
};

}  // namespace parsh
