#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace parsh {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision + 3, value);
  // %.*g with generous precision, then trim: use fixed formatting for
  // moderate magnitudes so columns read like the paper's tables.
  if (value != 0 && (std::abs(value) >= 1e7 || std::abs(value) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  }
  return cell(std::string(buf));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "| " : " | ");
      out << v;
      out << std::string(width[c] - v.size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  std::size_t total = 1;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + 3;
  out << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace parsh
