// Fundamental scalar types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace parsh {

/// Vertex identifier. 32 bits suffice for the laptop-scale graphs this
/// reproduction targets (up to ~4e9 vertices).
using vid = std::uint32_t;

/// Edge identifier / offset into CSR arrays. 64 bits so that m can exceed
/// 2^32 without overflow in prefix sums.
using eid = std::uint64_t;

/// Edge weight / distance. The paper normalises weights to be >= 1 and
/// rounds to integers where the parallel algorithms need it; `double`
/// represents both regimes exactly for the integer ranges we use (< 2^53).
using weight_t = double;

inline constexpr vid kNoVertex = std::numeric_limits<vid>::max();
inline constexpr weight_t kInfWeight = std::numeric_limits<weight_t>::infinity();

}  // namespace parsh
