#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace parsh {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty()) throw CliError(name, v, "empty value; expected an integer");
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno == ERANGE) throw CliError(name, v, "integer overflows long long");
  if (end != v.c_str() + v.size() || end == v.c_str()) {
    throw CliError(name, v, "expected an integer");
  }
  return parsed;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty()) throw CliError(name, v, "empty value; expected a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || end == v.c_str()) {
    throw CliError(name, v, "expected a number");
  }
  if (errno == ERANGE || !std::isfinite(parsed)) {
    throw CliError(name, v, "magnitude overflows double");
  }
  return parsed;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw CliError(name, v, "expected true/1/yes or false/0/no");
}

std::uint64_t Cli::get_seed(const std::string& name, std::uint64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v.empty()) throw CliError(name, v, "empty value; expected an unsigned integer");
  // Reject signs explicitly: strtoull would happily wrap "-1" to 2^64 - 1
  // and hand back a "random" seed nobody asked for.
  if (v[0] == '-' || v[0] == '+') {
    throw CliError(name, v, "expected an unsigned integer (no sign)");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (errno == ERANGE) throw CliError(name, v, "integer overflows uint64");
  if (end != v.c_str() + v.size() || end == v.c_str()) {
    throw CliError(name, v, "expected an unsigned integer");
  }
  return parsed;
}

}  // namespace parsh
