#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace parsh {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atoll(it->second.c_str());
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::uint64_t Cli::get_seed(const std::string& name, std::uint64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace parsh
