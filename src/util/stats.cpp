#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace parsh {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0;
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  auto interp = [&](double p) {
    double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p50 = interp(50);
  s.p90 = interp(90);
  s.p99 = interp(99);
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  LinearFit f;
  if (xs.size() != ys.size() || xs.size() < 2) return f;
  auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0, ss_tot = 0, ybar = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

LinearFit fit_power_law(const std::vector<double>& xs, const std::vector<double>& ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) lx[i] = std::log(xs[i]);
  for (std::size_t i = 0; i < ys.size(); ++i) ly[i] = std::log(ys[i]);
  return fit_line(lx, ly);
}

}  // namespace parsh
