// Minimal command-line flag parser for benches and examples.
//
// Usage:
//   parsh::Cli cli(argc, argv);
//   int n = cli.get_int("n", 10000);
//   double eps = cli.get_double("eps", 0.25);
// Flags are written `--name value` or `--name=value`.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace parsh {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;
  [[nodiscard]] std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace parsh
