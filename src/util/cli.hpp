// Minimal command-line flag parser for benches and examples.
//
// Usage:
//   parsh::Cli cli(argc, argv);
//   int n = cli.get_int("n", 10000);
//   double eps = cli.get_double("eps", 0.25);
// Flags are written `--name value` or `--name=value`.
//
// Typed getters are strict: a value that is not fully parseable as the
// requested type — garbage, trailing junk, a negative where the flag's
// range forbids it, or an overflowing magnitude — throws CliError naming
// the flag, instead of the old atoll/atof behavior of silently yielding
// 0 and burning a benchmark run on meaningless parameters.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace parsh {

/// A flag value that failed to parse; what() names the flag and value.
class CliError : public std::runtime_error {
 public:
  CliError(const std::string& flag, const std::string& value, const std::string& why)
      : std::runtime_error("--" + flag + ": cannot parse '" + value + "' (" + why +
                           ")"),
        flag_(flag) {}

  [[nodiscard]] const std::string& flag() const { return flag_; }

 private:
  std::string flag_;
};

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  /// Strict signed integer ("-5" is fine, "5x"/"1e99"/"" are CliError).
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  /// Strict finite double (overflow to inf is CliError).
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  /// true/1/yes vs false/0/no; anything else is CliError.
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;
  /// Strict unsigned 64-bit (negatives are CliError, not 2^64 - k).
  [[nodiscard]] std::uint64_t get_seed(const std::string& name, std::uint64_t def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace parsh
