// Cooperative cancellation budget for the query path and the serving
// layer.
//
// A Deadline is polled, never enforced: long-running loops (the
// hop-limited sweep's round loop, ApproxShortestPaths' per-scale loop,
// query_batch's per-request loop, the server's admission and I/O paths)
// call expired() at their natural yield points and unwind with a partial,
// DEADLINE_EXCEEDED-flagged answer instead of blocking a worker. Three
// flavors share the type:
//
//  * never()        — the default; expired() is a flag test, no clock read,
//                     so pre-deadline callers pay nothing;
//  * after()/at()   — wall-clock deadlines (steady_clock), what the server
//                     derives from a request's deadline_ms;
//  * after_checks() — a deterministic test seam: expires after being
//                     polled exactly n times, independent of wall time, so
//                     "deadline hit between round k and k+1" is a
//                     reproducible fixture instead of a timing race.
//                     Copies share the countdown (a copied deadline is the
//                     same budget, not a fresh one).
//
// Check-based deadlines gate the cooperative poll sites only; blocking
// I/O waits (poll(2) in the transport) time out on the wall-clock kinds
// and fall back to a bounded re-poll interval on the check-based kind.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace parsh {

class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// Never expires (the default).
  Deadline() = default;
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now (non-positive: already expired).
  static Deadline after(double seconds) {
    Deadline d;
    d.has_time_ = true;
    d.at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  /// Expires `ms` milliseconds from now.
  static Deadline after_ms(double ms) { return after(ms * 1e-3); }

  /// Expires at the given time point.
  static Deadline at(clock::time_point tp) {
    Deadline d;
    d.has_time_ = true;
    d.at_ = tp;
    return d;
  }

  /// Test seam: expires once expired() has been called n times (the
  /// (n+1)-th and later polls return true). Deterministic — no clock.
  static Deadline after_checks(std::uint64_t n) {
    Deadline d;
    d.checks_ = std::make_shared<std::atomic<std::uint64_t>>(n);
    return d;
  }

  [[nodiscard]] bool never_expires() const { return !has_time_ && !checks_; }

  /// Poll the budget. Monotone: once true, stays true.
  [[nodiscard]] bool expired() const {
    if (checks_) {
      // fetch_sub on an exhausted counter would wrap; decrement only
      // while positive (CAS loop — polls can race in parallel phases).
      std::uint64_t left = checks_->load(std::memory_order_relaxed);
      while (left > 0) {
        if (checks_->compare_exchange_weak(left, left - 1,
                                           std::memory_order_relaxed)) {
          return false;
        }
      }
      return true;
    }
    if (!has_time_) return false;
    return clock::now() >= at_;
  }

  /// Seconds until expiry: +inf when the deadline never expires or is
  /// check-based (callers bound their own waits there), else >= 0.
  [[nodiscard]] double remaining_seconds() const {
    if (!has_time_) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double>(at_ - clock::now()).count();
    return left > 0 ? left : 0.0;
  }

  /// Milliseconds until expiry clamped to [0, cap_ms] — the shape poll(2)
  /// wants. Never/check-based deadlines return cap_ms (bounded re-poll).
  [[nodiscard]] int remaining_ms_clamped(int cap_ms) const {
    if (!has_time_) return cap_ms;
    const double ms = remaining_seconds() * 1e3;
    if (ms <= 0) return 0;
    return ms >= static_cast<double>(cap_ms) ? cap_ms : static_cast<int>(ms) + 1;
  }

 private:
  clock::time_point at_{};
  std::shared_ptr<std::atomic<std::uint64_t>> checks_;
  bool has_time_ = false;
};

}  // namespace parsh
