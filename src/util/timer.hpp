// Wall-clock timing helper used by benches and examples.
#pragma once

#include <chrono>

namespace parsh {

/// Monotonic wall-clock timer. Construction starts the clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the clock.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace parsh
