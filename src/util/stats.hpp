// Summary statistics and small regression helpers used by the benchmark
// harness (e.g. fitting the size exponent in Theorem 1.1 experiments).
#pragma once

#include <cstddef>
#include <vector>

namespace parsh {

/// Summary of a sample: count, mean, standard deviation, extremes and
/// selected percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary of `xs`. Empty input yields a zero Summary.
Summary summarize(const std::vector<double>& xs);

/// Percentile in [0,100] by linear interpolation on the sorted sample.
double percentile(std::vector<double> xs, double p);

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1].
  double r2 = 0.0;
};

/// Least-squares line through (xs[i], ys[i]). Requires xs.size()==ys.size()
/// and at least two points; otherwise returns a zero fit.
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fit y = c * x^e by regressing log y on log x; returns {slope=e,
/// intercept=log c, r2}. All inputs must be positive.
LinearFit fit_power_law(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace parsh
