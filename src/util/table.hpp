// Console table printer. The benchmark harness uses it to emit rows in the
// same layout as the paper's Figures 1 and 2.
#pragma once

#include <string>
#include <vector>

namespace parsh {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Numeric convenience overloads format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  /// Render to stdout with a title line and column separators.
  void print(const std::string& title = "") const;

  /// Render as a string (used by tests).
  [[nodiscard]] std::string to_string(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parsh
