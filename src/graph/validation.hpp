// Input validation with diagnosable errors.
//
// The integer-weight requirement of the bucketed engines (est_cluster,
// weighted_bfs) is a *precondition*, not an internal invariant: user
// input can violate it. These helpers turn violations into exceptions
// with actionable messages instead of release-build undefined behaviour;
// the public entry points call them on their inputs.
#pragma once

#include <stdexcept>

#include "graph/graph.hpp"

namespace parsh {

/// Thrown when a graph violates a routine's documented precondition.
class InvalidGraphError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Throws InvalidGraphError unless every weight is a positive integer
/// (the normalised setting of Lemma 2.1). `who` names the caller in the
/// message.
void require_integer_weights(const Graph& g, const char* who);

/// Throws InvalidGraphError unless every weight is positive and finite.
void require_positive_weights(const Graph& g, const char* who);

/// Throws std::out_of_range unless v < g.num_vertices().
void require_vertex(const Graph& g, vid v, const char* who);

}  // namespace parsh
