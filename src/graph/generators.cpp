#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/pcsr.hpp"
#include "parallel/parallel_for.hpp"
#include "random/rng.hpp"

namespace parsh {

Graph make_path(vid n) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (vid i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_cycle(vid n) {
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  if (n > 2) edges.push_back({n - 1, 0, 1.0});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_star(vid n) {
  std::vector<Edge> edges;
  for (vid i = 1; i < n; ++i) edges.push_back({0, i, 1.0});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_complete(vid n) {
  std::vector<Edge> edges;
  for (vid i = 0; i < n; ++i) {
    for (vid j = i + 1; j < n; ++j) edges.push_back({i, j, 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_binary_tree(vid n) {
  std::vector<Edge> edges;
  for (vid i = 1; i < n; ++i) edges.push_back({(i - 1) / 2, i, 1.0});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_grid(vid rows, vid cols) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  auto id = [cols](vid r, vid c) { return r * cols + c; };
  for (vid r = 0; r < rows; ++r) {
    for (vid c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1), 1.0});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c), 1.0});
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph make_torus(vid rows, vid cols) {
  std::vector<Edge> edges;
  auto id = [cols](vid r, vid c) { return r * cols + c; };
  for (vid r = 0; r < rows; ++r) {
    for (vid c = 0; c < cols; ++c) {
      edges.push_back({id(r, c), id(r, (c + 1) % cols), 1.0});
      edges.push_back({id(r, c), id((r + 1) % rows, c), 1.0});
    }
  }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph make_random_graph(vid n, eid m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    // Resample (deterministically, by stepping the counter in a disjoint
    // subspace) until u != v. Duplicate edges are merged by the builder.
    std::uint64_t ctr = i * 64;
    vid u, v;
    do {
      u = static_cast<vid>(rng.uniform_int(ctr++, n));
      v = static_cast<vid>(rng.uniform_int(ctr++, n));
    } while (u == v);
    edges[i] = {u, v, 1.0};
  });
  return Graph::from_edges(n, std::move(edges));
}

Graph make_rmat(vid n, eid m, std::uint64_t seed, double a, double b, double c) {
  // Round n up to a power of two for the recursive quadrant construction,
  // then clamp ids back into [0, n).
  int levels = 0;
  while ((vid{1} << levels) < n) ++levels;
  Rng rng(seed);
  std::vector<Edge> edges(m);
  parallel_for(0, m, [&](std::size_t i) {
    std::uint64_t ctr = i * (levels + 2) * 4;
    vid u = 0, v = 0;
    for (int l = 0; l < levels; ++l) {
      double r = rng.uniform(ctr++);
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    u %= n;
    v %= n;
    if (u == v) v = (v + 1) % n;
    edges[i] = {u, v, 1.0};
  });
  return Graph::from_edges(n, std::move(edges));
}

Graph make_rmat_heavy(vid n, eid m, std::uint64_t seed) {
  return make_rmat(n, m, seed, 0.72, 0.12, 0.12);
}

Graph make_hubs(vid n, vid hubs, std::uint64_t seed) {
  if (n == 0) return Graph();
  hubs = std::max<vid>(1, std::min(hubs, n));
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (vid h = 0; h + 1 < hubs; ++h) edges.push_back({h, h + 1, 1.0});
  if (hubs > 2) edges.push_back({hubs - 1, 0, 1.0});
  for (vid v = hubs; v < n; ++v) {
    edges.push_back({static_cast<vid>(rng.uniform_int(v, hubs)), v, 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_geometric(vid n, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  parallel_for(0, n, [&](std::size_t i) {
    x[i] = rng.uniform(2 * i);
    y[i] = rng.uniform(2 * i + 1);
  });
  // Grid-bucket the points so neighbour search is O(n) expected.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  std::vector<std::vector<vid>> bucket(static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](double p) {
    return std::min(cells - 1, static_cast<int>(p * cells));
  };
  for (vid i = 0; i < n; ++i) {
    bucket[static_cast<std::size_t>(cell_of(x[i])) * cells + cell_of(y[i])].push_back(i);
  }
  std::vector<Edge> edges;
  const double r2 = radius * radius;
  for (vid i = 0; i < n; ++i) {
    int cx = cell_of(x[i]), cy = cell_of(y[i]);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (vid j : bucket[static_cast<std::size_t>(nx) * cells + ny]) {
          if (j <= i) continue;
          double dx2 = x[i] - x[j], dy2 = y[i] - y[j];
          double d2 = dx2 * dx2 + dy2 * dy2;
          if (d2 <= r2) {
            // Scale distances so min weight ~1; ceil to keep integers.
            double w = std::max(1.0, std::ceil(std::sqrt(d2) / radius * 16.0));
            edges.push_back({i, j, w});
          }
        }
      }
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_path_with_chords(vid n, eid extra, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n + extra);
  for (vid i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1, 1.0});
  for (eid i = 0; i < extra; ++i) {
    vid u = static_cast<vid>(rng.uniform_int(2 * i, n));
    vid v = static_cast<vid>(rng.uniform_int(2 * i + 1, n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_hypercube(int dim) {
  const vid n = vid{1} << dim;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (vid v = 0; v < n; ++v) {
    for (int b = 0; b < dim; ++b) {
      const vid u = v ^ (vid{1} << b);
      if (v < u) edges.push_back({v, u, 1.0});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_random_regular(vid n, vid d, std::uint64_t seed) {
  // Configuration model: n*d stubs, paired by a random permutation.
  Rng rng(seed);
  std::vector<vid> stubs(static_cast<std::size_t>(n) * d);
  for (std::size_t i = 0; i < stubs.size(); ++i) stubs[i] = static_cast<vid>(i / d);
  // Fisher-Yates with the counter-based stream.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i, i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) edges.push_back({stubs[i], stubs[i + 1], 1.0});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_barbell(vid k, vid bridge) {
  std::vector<Edge> edges;
  const vid right = k + bridge;  // first vertex of the right clique
  for (vid i = 0; i < k; ++i) {
    for (vid j = i + 1; j < k; ++j) {
      edges.push_back({i, j, 1.0});
      edges.push_back({right + i, right + j, 1.0});
    }
  }
  // Bridge path: k-1 -> k -> ... -> right (bridge interior vertices).
  vid prev = k - 1;
  for (vid b = 0; b < bridge; ++b) {
    edges.push_back({prev, k + b, 1.0});
    prev = k + b;
  }
  edges.push_back({prev, right, 1.0});
  return Graph::from_edges(2 * k + bridge, std::move(edges));
}

Graph make_caterpillar(vid spine, vid legs) {
  std::vector<Edge> edges;
  for (vid i = 0; i + 1 < spine; ++i) edges.push_back({i, i + 1, 1.0});
  vid next = spine;
  for (vid i = 0; i < spine; ++i) {
    for (vid l = 0; l < legs; ++l) edges.push_back({i, next++, 1.0});
  }
  return Graph::from_edges(spine * (legs + 1), std::move(edges));
}

void stream_rmat_pcsr(const std::string& path, vid n, eid m, std::uint64_t seed,
                      double a, double b, double c, bool compress) {
  // Mirrors make_rmat exactly — same counter layout, same quadrant walk —
  // so the streamed file loads back bit-identical to the in-memory build.
  int levels = 0;
  while ((vid{1} << levels) < n) ++levels;
  const Rng rng(seed);
  StreamCsrOptions opt;
  opt.compress = compress;
  stream_edges_to_pcsr(
      path, n, m,
      [=](eid i) -> Edge {
        std::uint64_t ctr = i * (levels + 2) * 4;
        vid u = 0, v = 0;
        for (int l = 0; l < levels; ++l) {
          double r = rng.uniform(ctr++);
          u <<= 1;
          v <<= 1;
          if (r < a) {
            // top-left quadrant: no bits set
          } else if (r < a + b) {
            v |= 1;
          } else if (r < a + b + c) {
            u |= 1;
          } else {
            u |= 1;
            v |= 1;
          }
        }
        u %= n;
        v %= n;
        if (u == v) v = (v + 1) % n;
        return {u, v, 1.0};
      },
      opt);
}

void stream_rmat_heavy_pcsr(const std::string& path, vid n, eid m,
                            std::uint64_t seed, bool compress) {
  stream_rmat_pcsr(path, n, m, seed, 0.72, 0.12, 0.12, compress);
}

void stream_grid_pcsr(const std::string& path, vid rows, vid cols,
                      bool compress) {
  // Horizontal edges first (rows * (cols-1)), then vertical; the builder
  // canonicalizes order, so this matches make_grid's output exactly.
  const eid horiz = cols > 0 ? static_cast<eid>(rows) * (cols - 1) : 0;
  const eid vert = rows > 0 ? static_cast<eid>(rows - 1) * cols : 0;
  StreamCsrOptions opt;
  opt.compress = compress;
  stream_edges_to_pcsr(
      path, rows * cols, horiz + vert,
      [=](eid i) -> Edge {
        if (i < horiz) {
          const vid r = static_cast<vid>(i / (cols - 1));
          const vid c = static_cast<vid>(i % (cols - 1));
          return {r * cols + c, r * cols + c + 1, 1.0};
        }
        const eid j = i - horiz;
        const vid r = static_cast<vid>(j / cols);
        const vid c = static_cast<vid>(j % cols);
        return {r * cols + c, (r + 1) * cols + c, 1.0};
      },
      opt);
}

namespace {

template <typename F>
Graph reweight(const Graph& g, F weight_of) {
  std::vector<Edge> edges = g.undirected_edges();
  std::size_t i = 0;
  for (Edge& e : edges) e.w = weight_of(i++, e);
  return Graph::from_edges(g.num_vertices(), std::move(edges));
}

}  // namespace

Graph with_uniform_weights(const Graph& g, std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t seed) {
  Rng rng(seed);
  return reweight(g, [&](std::size_t i, const Edge&) {
    return static_cast<weight_t>(lo + rng.uniform_int(i, hi - lo + 1));
  });
}

Graph with_log_uniform_weights(const Graph& g, double ratio, std::uint64_t seed) {
  Rng rng(seed);
  const double log_ratio = std::log(std::max(1.0, ratio));
  return reweight(g, [&](std::size_t i, const Edge&) {
    double w = std::exp(rng.uniform(i) * log_ratio);
    return std::max<weight_t>(1.0, std::floor(w));
  });
}

Graph ensure_connected(const Graph& g) {
  std::vector<vid> comp = connected_components(g);
  vid num = 0;
  for (vid c : comp) num = std::max(num, c + 1);
  if (num <= 1) return g;
  // Find the smallest vertex of each component, then chain them.
  std::vector<vid> rep(num, kNoVertex);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (rep[comp[v]] == kNoVertex) rep[comp[v]] = v;
  }
  std::vector<Edge> edges = g.undirected_edges();
  for (vid c = 0; c + 1 < num; ++c) edges.push_back({rep[c], rep[c + 1], 1.0});
  bool weighted = g.weighted();
  Graph out = Graph::from_edges(g.num_vertices(), std::move(edges));
  (void)weighted;
  return out;
}

}  // namespace parsh
