#include "graph/delta.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace parsh {

namespace {

/// One raw operation after endpoint normalization (u < v).
struct Op {
  vid u, v;
  bool is_insert;
  weight_t w;
};

/// One normalized per-pair group: the batch's net effect on {u,v}.
struct PairOp {
  vid u, v;
  weight_t w_new;        ///< 0 = absent after the batch
  std::uint64_t n_ops;   ///< raw operations that mapped to this pair
};

/// Directed half of an EdgeChange, for the per-vertex merge.
struct DirChange {
  vid src, dst;
  weight_t w_new;
  std::uint8_t kind;  // 0 = add, 1 = delete, 2 = reweight
};
constexpr std::uint8_t kAdd = 0, kDel = 1, kRew = 2;

/// Current weight of undirected edge {u,v}, or 0 if absent. Scans the
/// lower-degree endpoint's (sorted) adjacency with early exit; works on
/// flat and compressed representations alike.
weight_t current_weight(const Graph& g, vid u, vid v) {
  if (g.degree(v) < g.degree(u)) std::swap(u, v);
  weight_t w = 0;
  g.scan_arcs(u, [](vid) {}, [&](eid e, vid t) {
    if (t == v) {
      w = g.weight(e);
      return true;
    }
    return t > v;
  });
  return w;
}

/// Arc id of directed arc u->v; the edge must exist.
eid find_arc(const Graph& g, vid u, vid v) {
  eid arc = 0;
  bool found = false;
  g.scan_arcs(u, [](vid) {}, [&](eid e, vid t) {
    if (t == v) {
      arc = e;
      found = true;
      return true;
    }
    return t > v;
  });
  assert(found);
  (void)found;
  return arc;
}

[[noreturn]] void bad_delta(const char* what, vid u, vid v) {
  throw std::invalid_argument(std::string("GraphDelta: ") + what + " at edge {" +
                              std::to_string(u) + "," + std::to_string(v) + "}");
}

}  // namespace

DeltaResult Graph::apply_delta(const GraphDelta& delta) const {
  const vid n = n_;

  // -- Validate and normalize raw ops (self loops become counted no-ops). --
  DeltaResult res;
  std::vector<Op> ops;
  ops.reserve(delta.insert.size() + delta.remove.size());
  for (const Edge& e : delta.remove) {
    if (e.u >= n || e.v >= n) bad_delta("endpoint out of range", e.u, e.v);
    if (e.u == e.v) {
      ++res.noops;
      continue;
    }
    ops.push_back({std::min(e.u, e.v), std::max(e.u, e.v), false, 0});
  }
  for (const Edge& e : delta.insert) {
    if (e.u >= n || e.v >= n) bad_delta("endpoint out of range", e.u, e.v);
    if (!(e.w > 0)) bad_delta("non-positive insert weight", e.u, e.v);
    if (e.u == e.v) {
      ++res.noops;
      continue;
    }
    ops.push_back({std::min(e.u, e.v), std::max(e.u, e.v), true, e.w});
  }
  parallel_sort(ops, [](const Op& a, const Op& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  // -- Collapse each {u,v} group to its net effect. Inserts win over
  // removals in the same batch; duplicate inserts keep the minimum weight
  // (the from_edges parallel-edge convention). --
  std::vector<PairOp> pairs;
  for (std::size_t i = 0; i < ops.size();) {
    std::size_t j = i;
    weight_t w_new = 0;  // removes-only group => absent
    bool any_insert = false;
    while (j < ops.size() && ops[j].u == ops[i].u && ops[j].v == ops[i].v) {
      if (ops[j].is_insert) {
        w_new = any_insert ? std::min(w_new, ops[j].w) : ops[j].w;
        any_insert = true;
      }
      ++j;
    }
    pairs.push_back({ops[i].u, ops[i].v, w_new,
                     static_cast<std::uint64_t>(j - i)});
    i = j;
  }

  // -- Diff against the current graph: pairs whose net effect restates the
  // present state are no-ops; the rest become the change set (already
  // sorted by (u,v) since the ops were). --
  bool structural = false;
  bool any_nonunit_new = false;
  for (const PairOp& p : pairs) {
    const weight_t w_old = current_weight(*this, p.u, p.v);
    if (w_old == p.w_new) {
      res.noops += p.n_ops;
      continue;
    }
    res.changes.push_back({p.u, p.v, w_old, p.w_new});
    if (w_old == 0) ++res.inserted;
    else if (p.w_new == 0) ++res.removed;
    else ++res.reweighted;
    if (w_old == 0 || p.w_new == 0) structural = true;
    if (p.w_new != 0 && p.w_new != 1) any_nonunit_new = true;
  }

  // -- Tier 1: nothing changed — share every handle (O(1)). --
  if (res.changes.empty()) {
    res.graph = *this;
    return res;
  }

  res.touched.reserve(res.changes.size() * 2);
  for (const EdgeChange& c : res.changes) {
    res.touched.push_back(c.u);
    res.touched.push_back(c.v);
  }
  std::sort(res.touched.begin(), res.touched.end());
  res.touched.erase(std::unique(res.touched.begin(), res.touched.end()),
                    res.touched.end());

  // -- Tier 2: reweight-only — adjacency (flat or compressed) is shared;
  // only a new weights array is materialized. Distinct pairs touch
  // distinct arc slots, so the scatter parallelizes race-free. --
  if (!structural) {
    std::vector<weight_t> w;
    if (weighted()) {
      w.assign(storage_.weights.data(),
               storage_.weights.data() + storage_.weights.size());
    } else {
      w.assign(num_arcs(), weight_t{1});
    }
    std::atomic<bool> bad{false};
    parallel_for(0, res.changes.size(), [&](std::size_t i) {
      const EdgeChange& c = res.changes[i];
      try {
        w[find_arc(*this, c.u, c.v)] = c.w_new;
        w[find_arc(*this, c.v, c.u)] = c.w_new;
      } catch (const std::exception&) {
        bad.store(true, std::memory_order_relaxed);
      }
    });
    if (bad.load()) throw std::runtime_error("corrupt compressed adjacency stream");
    Graph g = *this;
    g.storage_.weights = ArrayHandle<weight_t>::adopt(std::move(w));
    res.graph = std::move(g);
    return res;
  }

  // -- Tier 3: structural — rebuild the adjacency with a parallel
  // per-vertex merge of the old (sorted) arcs and the sorted directed
  // change list. Count pass, exclusive scan, fill pass; every write goes
  // to a slot fixed by the inputs, so any worker count produces identical
  // arrays. --
  std::vector<DirChange> dir(res.changes.size() * 2);
  parallel_for(0, res.changes.size(), [&](std::size_t i) {
    const EdgeChange& c = res.changes[i];
    const std::uint8_t kind = c.w_old == 0 ? kAdd : (c.w_new == 0 ? kDel : kRew);
    dir[2 * i] = {c.u, c.v, c.w_new, kind};
    dir[2 * i + 1] = {c.v, c.u, c.w_new, kind};
  });
  parallel_sort(dir, [](const DirChange& a, const DirChange& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  std::vector<std::int64_t> ddeg(n, 0);
  for (const DirChange& d : dir) {
    if (d.kind == kAdd) ++ddeg[d.src];
    else if (d.kind == kDel) --ddeg[d.src];
  }

  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t v) {
    offsets[v] = static_cast<eid>(
        static_cast<std::int64_t>(degree(static_cast<vid>(v))) + ddeg[v]);
  });
  const eid m_new = exclusive_scan_inplace(offsets);

  const bool need_w = weighted() || any_nonunit_new;
  std::vector<vid> targets(m_new);
  std::vector<weight_t> weights(need_w ? m_new : 0);
  std::atomic<bool> bad{false};
  parallel_for(0, static_cast<std::size_t>(n), [&](std::size_t us) {
    const vid u = static_cast<vid>(us);
    auto by_src = [](const DirChange& d, vid s) { return d.src < s; };
    const auto lo = std::lower_bound(dir.begin(), dir.end(), u, by_src);
    const auto hi = std::lower_bound(lo, dir.end(), u + 1, by_src);
    const DirChange* p = dir.data() + (lo - dir.begin());
    const DirChange* pend = dir.data() + (hi - dir.begin());
    std::size_t pos = offsets[us];
    auto emit = [&](vid t, weight_t w) {
      targets[pos] = t;
      if (need_w) weights[pos] = w;
      ++pos;
    };
    // Exceptions (corrupt compressed stream) must not unwind out of a
    // parallel region; flag and rethrow after the join.
    try {
      for_arcs(u, 0, degree(u), [](vid) {}, [&](eid e, vid t) {
        while (p != pend && p->dst < t) {
          if (p->kind == kAdd) emit(p->dst, p->w_new);
          ++p;
        }
        if (p != pend && p->dst == t) {
          if (p->kind != kDel) emit(t, p->w_new);
          ++p;
          return;
        }
        emit(t, weight(e));
      });
      while (p != pend) {
        if (p->kind == kAdd) emit(p->dst, p->w_new);
        ++p;
      }
      assert(pos == offsets[us + 1]);
    } catch (const std::exception&) {
      bad.store(true, std::memory_order_relaxed);
    }
  });
  if (bad.load()) throw std::runtime_error("corrupt compressed adjacency stream");

  Graph g;
  g.n_ = n;
  g.storage_.offsets = ArrayHandle<eid>::adopt(std::move(offsets));
  g.storage_.targets = ArrayHandle<vid>::adopt(std::move(targets));
  if (need_w) g.storage_.weights = ArrayHandle<weight_t>::adopt(std::move(weights));
  if (compressed()) g = g.compress_adjacency();
  res.graph = std::move(g);
  return res;
}

}  // namespace parsh
