// Parallel connected components (hook-and-compress label propagation).
// Substrate for the Appendix B hierarchical weight decomposition and for
// graph validation in tests.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// Component label per vertex, relabelled to the dense range
/// [0, num_components). Deterministic: component ids are ordered by their
/// smallest member vertex.
std::vector<vid> connected_components(const Graph& g);

/// Number of connected components.
vid num_components(const Graph& g);

/// Components of the subgraph containing only edges passing `keep(e)`
/// (arc index into g). Used to contract weight classes in Appendix B.
std::vector<vid> connected_components_filtered(
    const Graph& g, const std::vector<char>& keep_arc);

}  // namespace parsh
