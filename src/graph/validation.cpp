#include "graph/validation.hpp"

#include <cmath>
#include <string>

namespace parsh {

void require_integer_weights(const Graph& g, const char* who) {
  if (!g.weighted()) return;  // unit weights qualify
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const weight_t w = g.weight(e);
      if (!(w >= 1) || w != std::floor(w) || !std::isfinite(w)) {
        throw InvalidGraphError(
            std::string(who) +
            ": requires positive integer edge weights (normalise and round "
            "first — see hopset/rounding.hpp); offending weight " +
            std::to_string(w) + " on an edge at vertex " + std::to_string(u));
      }
    }
  }
}

void require_positive_weights(const Graph& g, const char* who) {
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const weight_t w = g.weight(e);
      if (!(w > 0) || !std::isfinite(w)) {
        throw InvalidGraphError(std::string(who) +
                                ": requires positive finite edge weights; got " +
                                std::to_string(w) + " at vertex " + std::to_string(u));
      }
    }
  }
}

void require_vertex(const Graph& g, vid v, const char* who) {
  if (v >= g.num_vertices()) {
    throw std::out_of_range(std::string(who) + ": vertex " + std::to_string(v) +
                            " out of range [0, " + std::to_string(g.num_vertices()) +
                            ")");
  }
}

}  // namespace parsh
