// Immutable CSR (compressed sparse row) graph.
//
// All algorithms in the library operate on undirected graphs stored as
// symmetric arc lists: an undirected edge {u,v} appears as arcs (u,v) and
// (v,u). Weights are optional; an unweighted graph reports weight 1 for
// every arc (the paper's unit-weight setting).
#pragma once

#include <cassert>
#include <vector>

#include "util/types.hpp"

namespace parsh {

/// A weighted undirected edge. Builder input and spanner/hopset output.
struct Edge {
  vid u = 0;
  vid v = 0;
  weight_t w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() : offsets_(1, 0) {}

  /// Build from an edge list over vertices [0, n).
  ///
  /// If `symmetrize`, each input edge {u,v} produces both arcs; otherwise
  /// the input is assumed to already contain both directions. Self loops
  /// are dropped. Parallel edges are merged keeping the minimum weight
  /// (the quotient-graph convention from Section 2 of the paper).
  static Graph from_edges(vid n, std::vector<Edge> edges, bool symmetrize = true);

  /// Like from_edges but keeps parallel edges (used by tests).
  static Graph from_edges_keep_parallel(vid n, std::vector<Edge> edges,
                                        bool symmetrize = true);

  [[nodiscard]] vid num_vertices() const { return n_; }
  /// Number of directed arcs (2x the undirected edge count).
  [[nodiscard]] eid num_arcs() const { return static_cast<eid>(targets_.size()); }
  /// Number of undirected edges.
  [[nodiscard]] eid num_edges() const { return num_arcs() / 2; }
  [[nodiscard]] bool weighted() const { return !weights_.empty(); }

  [[nodiscard]] eid begin(vid v) const { return offsets_[v]; }
  [[nodiscard]] eid end(vid v) const { return offsets_[v + 1]; }
  [[nodiscard]] vid degree(vid v) const { return static_cast<vid>(end(v) - begin(v)); }
  [[nodiscard]] vid target(eid e) const { return targets_[e]; }
  [[nodiscard]] weight_t weight(eid e) const {
    return weights_.empty() ? weight_t{1} : weights_[e];
  }

  /// Min / max edge weight (1/1 for unweighted graphs; 0/0 if no edges).
  [[nodiscard]] weight_t min_weight() const;
  [[nodiscard]] weight_t max_weight() const;

  /// All undirected edges, each reported once with u < v.
  [[nodiscard]] std::vector<Edge> undirected_edges() const;

  /// A copy of this graph with the given extra undirected edges added
  /// (used to form G union E' when querying hopsets).
  [[nodiscard]] Graph with_extra_edges(const std::vector<Edge>& extra) const;

  /// A copy with all weights replaced by f(w) (weight rounding).
  template <typename F>
  [[nodiscard]] Graph map_weights(F f) const {
    Graph g = *this;
    if (g.weights_.empty()) g.weights_.assign(g.targets_.size(), weight_t{1});
    for (auto& w : g.weights_) w = f(w);
    return g;
  }

  /// Drop the weight array, making the graph unit-weight.
  [[nodiscard]] Graph as_unweighted() const {
    Graph g = *this;
    g.weights_.clear();
    return g;
  }

  /// Structural invariants: sorted adjacency, symmetric arcs, positive
  /// weights, no self loops. Used by tests and debug assertions.
  [[nodiscard]] bool validate() const;

 private:
  vid n_ = 0;
  std::vector<eid> offsets_;   // size n+1
  std::vector<vid> targets_;   // size num_arcs
  std::vector<weight_t> weights_;  // empty for unweighted, else size num_arcs

  friend Graph build_csr(vid n, std::vector<Edge>&& arcs, bool dedup, bool any_weighted);
};

}  // namespace parsh
