// Immutable CSR (compressed sparse row) graph.
//
// All algorithms in the library operate on undirected graphs stored as
// symmetric arc lists: an undirected edge {u,v} appears as arcs (u,v) and
// (v,u). Weights are optional; an unweighted graph reports weight 1 for
// every arc (the paper's unit-weight setting).
//
// Storage is pluggable (see graph/storage.hpp): the same Graph value can be
// backed by heap vectors (from_edges and friends) or by an mmap'ed .pcsr
// file (graph/pcsr.hpp), and its adjacency can be flat (`targets`, O(1)
// random access) or delta-varint compressed in kAdjChunk-neighbor chunks.
// Compressed adjacency has no random-access `target()`; consumers iterate
// through `for_arcs` / `scan_arcs`, whose [lo, hi) ranges line up with the
// FrontierRelaxer's stolen edge ranges so decompression parallelizes with
// the same work-stealing granularity as the flat path. Copying a Graph
// copies handles, not arrays — O(1) regardless of backing.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "graph/storage.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/types.hpp"

namespace parsh {

struct GraphDelta;
struct DeltaResult;

/// A weighted undirected edge. Builder input and spanner/hopset output.
struct Edge {
  vid u = 0;
  vid v = 0;
  weight_t w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() { storage_.offsets = ArrayHandle<eid>::adopt(std::vector<eid>(1, 0)); }

  /// Build from an edge list over vertices [0, n).
  ///
  /// If `symmetrize`, each input edge {u,v} produces both arcs; otherwise
  /// the input is assumed to already contain both directions. Self loops
  /// are dropped. Parallel edges are merged keeping the minimum weight
  /// (the quotient-graph convention from Section 2 of the paper).
  /// The build is parallel end to end (symmetrize, sort, dedup, offsets)
  /// and schedule-independent: any worker count yields identical arrays.
  static Graph from_edges(vid n, std::vector<Edge> edges, bool symmetrize = true);

  /// Like from_edges but keeps parallel edges (used by tests).
  static Graph from_edges_keep_parallel(vid n, std::vector<Edge> edges,
                                        bool symmetrize = true);

  /// Wrap pre-built storage (the .pcsr loader and the streamed builder).
  /// The caller vouches for CSR invariants; use validate() to deep-check.
  static Graph from_storage(vid n, GraphStorage storage) {
    Graph g;
    g.n_ = n;
    g.storage_ = std::move(storage);
    return g;
  }

  [[nodiscard]] vid num_vertices() const { return n_; }
  /// Number of directed arcs (2x the undirected edge count).
  [[nodiscard]] eid num_arcs() const { return storage_.offsets.back(); }
  /// Number of undirected edges.
  [[nodiscard]] eid num_edges() const { return num_arcs() / 2; }
  [[nodiscard]] bool weighted() const { return !storage_.weights.empty(); }

  /// True when `target()` is available (flat adjacency). Compressed-only
  /// graphs must be walked through for_arcs / scan_arcs instead.
  [[nodiscard]] bool has_flat_adjacency() const {
    return !storage_.targets.empty() || num_arcs() == 0;
  }
  /// True when a compressed adjacency section is present.
  [[nodiscard]] bool compressed() const {
    return !storage_.chunk_start.empty();
  }

  [[nodiscard]] eid begin(vid v) const { return storage_.offsets[v]; }
  [[nodiscard]] eid end(vid v) const { return storage_.offsets[v + 1]; }
  [[nodiscard]] vid degree(vid v) const { return static_cast<vid>(end(v) - begin(v)); }
  [[nodiscard]] vid target(eid e) const {
    assert(has_flat_adjacency() && "target() needs flat adjacency; use for_arcs");
    return storage_.targets[e];
  }
  /// O(1) in both representations: weights are always stored flat, indexed
  /// by arc id, even when the targets are compressed.
  [[nodiscard]] weight_t weight(eid e) const {
    return storage_.weights.empty() ? weight_t{1} : storage_.weights[e];
  }

  /// Visit arcs [begin(u)+lo, begin(u)+hi) of vertex u, in adjacency
  /// order: fn(arc id, target). `prefetch(v_ahead)` is invoked with the
  /// target kPrefetchAhead positions further into the range (never past
  /// hi), letting callers prime their per-vertex arrays exactly as the
  /// flat-path loops did with target(e + kPrefetchAhead). On compressed
  /// adjacency the range is decoded chunkwise into a stack buffer; [lo,
  /// hi) is the FrontierRelaxer's stolen edge range, so decompression
  /// inherits the relaxer's work-stealing granularity.
  template <typename Prefetch, typename Fn>
  void for_arcs(vid u, std::size_t lo, std::size_t hi, Prefetch&& prefetch,
                Fn&& fn) const {
    const eid base = begin(u);
    if (has_flat_adjacency()) {
      const vid* t = storage_.targets.data();
      for (std::size_t j = lo; j < hi; ++j) {
        if (j + kPrefetchAhead < hi) prefetch(t[base + j + kPrefetchAhead]);
        fn(base + j, t[base + j]);
      }
      return;
    }
    vid buf[kAdjChunk];
    const std::size_t first_chunk = lo / kAdjChunk;
    const std::size_t last_chunk = (hi + kAdjChunk - 1) / kAdjChunk;
    for (std::size_t c = first_chunk; c < last_chunk; ++c) {
      const std::size_t count = decode_adjacency_chunk(u, c, buf);
      const std::size_t chunk_lo = c * kAdjChunk;
      const std::size_t jlo = (lo > chunk_lo ? lo - chunk_lo : 0);
      std::size_t jhi = hi - chunk_lo;
      if (jhi > count) jhi = count;
      for (std::size_t j = jlo; j < jhi; ++j) {
        if (j + kPrefetchAhead < jhi) prefetch(buf[j + kPrefetchAhead]);
        fn(base + chunk_lo + j, buf[j]);
      }
    }
  }

  /// Scan vertex u's full adjacency in order until `fn(arc id, target)`
  /// returns true; returns the number of arcs examined (including the
  /// stopping one). The early exit is what the BFS pull path relies on:
  /// the first in-frontier neighbor of a sorted list is the argmin via.
  /// On compressed adjacency, chunks past the stop are never decoded.
  template <typename Prefetch, typename Fn>
  std::size_t scan_arcs(vid u, Prefetch&& prefetch, Fn&& fn) const {
    const eid base = begin(u);
    const std::size_t deg = degree(u);
    if (has_flat_adjacency()) {
      const vid* t = storage_.targets.data();
      for (std::size_t j = 0; j < deg; ++j) {
        if (j + kPrefetchAhead < deg) prefetch(t[base + j + kPrefetchAhead]);
        if (fn(base + j, t[base + j])) return j + 1;
      }
      return deg;
    }
    vid buf[kAdjChunk];
    const std::size_t chunks = (deg + kAdjChunk - 1) / kAdjChunk;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t count = decode_adjacency_chunk(u, c, buf);
      const std::size_t chunk_lo = c * kAdjChunk;
      for (std::size_t j = 0; j < count; ++j) {
        if (j + kPrefetchAhead < count) prefetch(buf[j + kPrefetchAhead]);
        if (fn(base + chunk_lo + j, buf[j])) return chunk_lo + j + 1;
      }
    }
    return deg;
  }

  /// A copy whose adjacency is delta-varint compressed (flat targets
  /// dropped); offsets and weights are shared, not copied. Requires flat
  /// adjacency. Outputs of every for_arcs/scan_arcs consumer are
  /// bit-identical to the flat graph by the argmin contracts.
  [[nodiscard]] Graph compress_adjacency() const;

  /// Inverse of compress_adjacency: decode everything back to a flat
  /// targets array (offsets and weights again shared).
  [[nodiscard]] Graph decompress_adjacency() const;

  /// Bytes spent on the adjacency representation (targets or varint
  /// stream + chunk index), for bytes-per-arc reporting.
  [[nodiscard]] std::size_t adjacency_bytes() const {
    if (compressed()) {
      return storage_.stream.size() +
             storage_.chunk_bytes.size() * sizeof(std::uint64_t);
    }
    return storage_.targets.size() * sizeof(vid);
  }

  /// The backing arrays (the .pcsr writer streams straight from these).
  [[nodiscard]] const GraphStorage& storage() const { return storage_; }

  /// Min / max edge weight (1/1 for unweighted graphs; 0/0 if no edges).
  [[nodiscard]] weight_t min_weight() const;
  [[nodiscard]] weight_t max_weight() const;

  /// All undirected edges, each reported once with u < v.
  [[nodiscard]] std::vector<Edge> undirected_edges() const;

  /// A copy of this graph with the given extra undirected edges added
  /// (used to form G union E' when querying hopsets).
  [[nodiscard]] Graph with_extra_edges(const std::vector<Edge>& extra) const;

  /// Apply a batch of edge inserts/removes/reweights, producing a new
  /// graph (this one is untouched — snapshots keep serving). Storage
  /// handles the batch does not invalidate are shared, not copied: an
  /// all-no-op delta is O(1), a reweight-only delta materializes just a
  /// new weights array, and a structural delta rebuilds the adjacency
  /// with a parallel per-vertex merge. See graph/delta.hpp for the full
  /// semantics and the change-set the result carries.
  [[nodiscard]] DeltaResult apply_delta(const GraphDelta& delta) const;

  /// A copy with all weights replaced by f(w) (weight rounding). Only the
  /// weights array is materialized; offsets and targets are shared.
  template <typename F>
  [[nodiscard]] Graph map_weights(F f) const {
    Graph g = *this;
    const eid m = num_arcs();
    std::vector<weight_t> w(m);
    parallel_for(0, static_cast<std::size_t>(m),
                 [&](std::size_t e) { w[e] = f(weight(static_cast<eid>(e))); });
    g.storage_.weights = ArrayHandle<weight_t>::adopt(std::move(w));
    return g;
  }

  /// Drop the weight array, making the graph unit-weight. O(1): every
  /// other array is shared with this graph.
  [[nodiscard]] Graph as_unweighted() const {
    Graph g = *this;
    g.storage_.weights.reset();
    return g;
  }

  /// Structural invariants: sorted adjacency, symmetric arcs, positive
  /// weights, no self loops. Used by tests and debug assertions. Works on
  /// both flat and compressed adjacency (everything goes through
  /// for_arcs/scan_arcs).
  [[nodiscard]] bool validate() const;

 private:
  /// Decode one kAdjChunk-neighbor chunk of u's compressed adjacency into
  /// `out` (capacity kAdjChunk); `chunk` is the chunk index local to u.
  /// Returns the neighbor count. Throws std::runtime_error on a corrupt
  /// stream (truncated varint, out-of-range target) — bounds-checked in
  /// the same strict spirit as the text readers' IoError.
  std::size_t decode_adjacency_chunk(vid u, std::size_t chunk, vid* out) const;

  vid n_ = 0;
  GraphStorage storage_;

  friend Graph build_csr(vid n, std::vector<Edge>&& arcs, bool dedup, bool any_weighted);
};

}  // namespace parsh
