#include "graph/io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace parsh {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ls(line);
  std::string tok;
  while (ls >> tok) out.push_back(std::move(tok));
  return out;
}

/// Strict unsigned parse: the whole token, base 10, no sign, no overflow.
bool parse_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno == ERANGE || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

/// Strict vertex-id parse: u64 rules plus the vid range.
bool parse_vid(const std::string& tok, vid* out) {
  std::uint64_t v = 0;
  if (!parse_u64(tok, &v) || v > std::numeric_limits<vid>::max()) return false;
  *out = static_cast<vid>(v);
  return true;
}

/// Strict weight parse: whole token, finite, no overflow.
bool parse_weight(const std::string& tok, weight_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (errno == ERANGE || end != tok.c_str() + tok.size() || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

/// Parse one "u v w" triple with every check the formats share: id
/// syntax, id range against n, weight syntax, weight positivity (the
/// library's algorithms assume positive weights).
Edge parse_edge(const std::vector<std::string>& toks, std::size_t base, vid n,
                std::size_t line_no) {
  Edge e;
  if (!parse_vid(toks[base], &e.u) || !parse_vid(toks[base + 1], &e.v)) {
    throw IoError("malformed vertex id ('" + toks[base] + "', '" + toks[base + 1] +
                      "')",
                  line_no);
  }
  if (e.u >= n || e.v >= n) {
    throw IoError("vertex id out of range (n = " + std::to_string(n) + ")", line_no);
  }
  if (!parse_weight(toks[base + 2], &e.w)) {
    throw IoError("malformed or overflowing weight '" + toks[base + 2] + "'", line_no);
  }
  if (e.w <= 0) {
    throw IoError("nonpositive weight " + toks[base + 2] +
                      " (edge weights must be > 0)",
                  line_no);
  }
  return e;
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.undirected_edges()) {
    out << e.u << " " << e.v << " " << e.w << "\n";
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_edge_list(out, g);
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  vid n = 0;
  eid m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> toks = split_ws(line);
    if (toks.empty()) continue;  // blank lines are harmless
    if (!have_header) {
      std::uint64_t hn = 0, hm = 0;
      if (toks.size() != 2 || !parse_u64(toks[0], &hn) || !parse_u64(toks[1], &hm) ||
          hn > std::numeric_limits<vid>::max()) {
        throw IoError("edge list: bad header (want 'n m', got '" + line + "')",
                      line_no);
      }
      n = static_cast<vid>(hn);
      m = hm;
      edges.reserve(m);
      have_header = true;
      continue;
    }
    if (edges.size() == m) {
      throw IoError("edge list: trailing data after the declared " +
                        std::to_string(m) + " edges",
                    line_no);
    }
    if (toks.size() != 3) {
      throw IoError("edge list: malformed edge line (want 'u v w', got '" + line +
                        "')",
                    line_no);
    }
    edges.push_back(parse_edge(toks, 0, n, line_no));
  }
  if (!have_header) throw IoError("edge list: bad header (empty input)", line_no + 1);
  if (edges.size() < m) {
    throw IoError("edge list: truncated (header declared " + std::to_string(m) +
                      " edges, got " + std::to_string(edges.size()) + ")",
                  line_no + 1);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_edge_list(in);
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  vid n = 0;
  eid m = 0;
  bool have_problem = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> toks = split_ws(line);
    if (toks.empty() || toks[0] == "c") continue;
    if (toks[0] == "p") {
      if (have_problem) throw IoError("dimacs: duplicate problem line", line_no);
      std::uint64_t hn = 0, hm = 0;
      if (toks.size() != 4 || !parse_u64(toks[2], &hn) || !parse_u64(toks[3], &hm) ||
          hn > std::numeric_limits<vid>::max()) {
        throw IoError("dimacs: bad problem line (want 'p sp n m', got '" + line +
                          "')",
                      line_no);
      }
      n = static_cast<vid>(hn);
      m = hm;
      edges.reserve(m);
      have_problem = true;
    } else if (toks[0] == "a") {
      if (!have_problem) {
        throw IoError("dimacs: arc line before the problem line", line_no);
      }
      if (toks.size() != 4) {
        throw IoError("dimacs: malformed arc line (want 'a u v w', got '" + line +
                          "')",
                      line_no);
      }
      vid u = 0, v = 0;
      if (!parse_vid(toks[1], &u) || !parse_vid(toks[2], &v)) {
        throw IoError("dimacs: malformed vertex id", line_no);
      }
      if (u == 0 || v == 0) throw IoError("dimacs: ids are 1-indexed", line_no);
      if (u > n || v > n) {
        throw IoError("dimacs: vertex id out of range (n = " + std::to_string(n) + ")",
                      line_no);
      }
      Edge e;
      e.u = u - 1;
      e.v = v - 1;
      if (!parse_weight(toks[3], &e.w)) {
        throw IoError("dimacs: malformed or overflowing weight '" + toks[3] + "'",
                      line_no);
      }
      if (e.w <= 0) {
        throw IoError("dimacs: nonpositive weight " + toks[3], line_no);
      }
      edges.push_back(e);
    } else {
      throw IoError("dimacs: unknown line kind '" + toks[0] + "'", line_no);
    }
  }
  if (!have_problem) throw IoError("dimacs: missing problem line", line_no + 1);
  if (edges.size() != m) {
    throw IoError("dimacs: truncated (problem line declared " + std::to_string(m) +
                      " arcs, got " + std::to_string(edges.size()) + ")",
                  line_no + 1);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_dimacs(in);
}

void write_delta(std::ostream& out, const GraphDelta& d) {
  for (const Edge& e : d.insert) {
    out << "+ " << e.u << " " << e.v;
    if (e.w != 1) out << " " << e.w;
    out << "\n";
  }
  for (const Edge& e : d.remove) {
    out << "- " << e.u << " " << e.v << "\n";
  }
}

void write_delta_file(const std::string& path, const GraphDelta& d) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_delta(out, d);
}

GraphDelta read_delta(std::istream& in) {
  GraphDelta d;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> toks = split_ws(line);
    if (toks.empty() || toks[0][0] == '#') continue;
    Edge e;
    if (toks[0] == "+") {
      if (toks.size() != 3 && toks.size() != 4) {
        throw IoError("delta: malformed insert (want '+ u v [w]', got '" + line +
                          "')",
                      line_no);
      }
      if (!parse_vid(toks[1], &e.u) || !parse_vid(toks[2], &e.v)) {
        throw IoError("delta: malformed vertex id", line_no);
      }
      e.w = 1;
      if (toks.size() == 4) {
        if (!parse_weight(toks[3], &e.w)) {
          throw IoError("delta: malformed or overflowing weight '" + toks[3] + "'",
                        line_no);
        }
        if (e.w <= 0) {
          throw IoError("delta: nonpositive weight " + toks[3] +
                            " (edge weights must be > 0)",
                        line_no);
        }
      }
      d.insert.push_back(e);
    } else if (toks[0] == "-") {
      if (toks.size() != 3) {
        throw IoError("delta: malformed removal (want '- u v', got '" + line + "')",
                      line_no);
      }
      if (!parse_vid(toks[1], &e.u) || !parse_vid(toks[2], &e.v)) {
        throw IoError("delta: malformed vertex id", line_no);
      }
      e.w = 1;
      d.remove.push_back(e);
    } else {
      throw IoError("delta: unknown line kind '" + toks[0] +
                        "' (want '+', '-', or '#')",
                    line_no);
    }
  }
  return d;
}

GraphDelta read_delta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_delta(in);
}

namespace {

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64_le(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

double get_f64_le(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::size_t write_delta_binary(std::vector<std::uint8_t>& out, const GraphDelta& d) {
  const std::size_t start = out.size();
  put_u32_le(out, static_cast<std::uint32_t>(d.insert.size()));
  put_u32_le(out, static_cast<std::uint32_t>(d.remove.size()));
  for (const Edge& e : d.insert) {
    put_u32_le(out, e.u);
    put_u32_le(out, e.v);
    put_f64_le(out, e.w);
  }
  for (const Edge& e : d.remove) {
    put_u32_le(out, e.u);
    put_u32_le(out, e.v);
  }
  return out.size() - start;
}

std::size_t read_delta_binary(const std::uint8_t* data, std::size_t len,
                              GraphDelta* out) {
  std::size_t off = 0;
  auto need = [&](std::size_t n, const char* what) {
    if (len - off < n) throw IoError(std::string("binary delta: truncated ") + what, off);
  };
  need(8, "header");
  const std::uint32_t n_ins = get_u32_le(data + off);
  const std::uint32_t n_rem = get_u32_le(data + off + 4);
  off += 8;
  out->insert.clear();
  out->remove.clear();
  out->insert.reserve(n_ins);
  out->remove.reserve(n_rem);
  for (std::uint32_t i = 0; i < n_ins; ++i) {
    need(16, "insert");
    Edge e;
    e.u = static_cast<vid>(get_u32_le(data + off));
    e.v = static_cast<vid>(get_u32_le(data + off + 4));
    e.w = get_f64_le(data + off + 8);
    off += 16;
    if (!(e.w > 0) || e.w != e.w) {
      throw IoError("binary delta: nonpositive or NaN insert weight", off);
    }
    out->insert.push_back(e);
  }
  for (std::uint32_t i = 0; i < n_rem; ++i) {
    need(8, "remove");
    Edge e;
    e.u = static_cast<vid>(get_u32_le(data + off));
    e.v = static_cast<vid>(get_u32_le(data + off + 4));
    e.w = 1;
    off += 8;
    out->remove.push_back(e);
  }
  return off;
}

}  // namespace parsh
