#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace parsh {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.undirected_edges()) {
    out << e.u << " " << e.v << " " << e.w << "\n";
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_edge_list(out, g);
}

Graph read_edge_list(std::istream& in) {
  vid n = 0;
  eid m = 0;
  if (!(in >> n >> m)) throw std::runtime_error("edge list: bad header");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (eid i = 0; i < m; ++i) {
    Edge e;
    if (!(in >> e.u >> e.v >> e.w)) throw std::runtime_error("edge list: bad edge line");
    edges.push_back(e);
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_edge_list(in);
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  vid n = 0;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char kind;
    ls >> kind;
    if (kind == 'c') continue;
    if (kind == 'p') {
      std::string sp;
      eid m;
      ls >> sp >> n >> m;
      edges.reserve(m);
    } else if (kind == 'a') {
      Edge e;
      ls >> e.u >> e.v >> e.w;
      if (e.u == 0 || e.v == 0) throw std::runtime_error("dimacs: ids are 1-indexed");
      --e.u;
      --e.v;
      edges.push_back(e);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return read_dimacs(in);
}

}  // namespace parsh
