#include "graph/graph.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace parsh {

namespace {

/// Directed arc used during construction.
struct Arc {
  vid u, v;
  weight_t w;
};

}  // namespace

Graph build_csr(vid n, std::vector<Edge>&& arcs_in, bool dedup, bool any_weighted) {
  // `arcs_in` holds directed arcs (u=src stored in Edge::u).
  std::vector<Arc> arcs(arcs_in.size());
  parallel_for(0, arcs_in.size(), [&](std::size_t i) {
    arcs[i] = {arcs_in[i].u, arcs_in[i].v, arcs_in[i].w};
  });
  arcs_in.clear();
  parallel_sort(arcs, [](const Arc& a, const Arc& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  if (dedup) {
    auto last = std::unique(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
      return a.u == b.u && a.v == b.v;  // sorted by weight, so first kept = min
    });
    arcs.erase(last, arcs.end());
  }
  Graph g;
  g.n_ = n;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<eid> counts(n, 0);
  for (const Arc& a : arcs) ++counts[a.u];
  for (vid v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + counts[v];
  g.targets_.resize(arcs.size());
  if (any_weighted) g.weights_.resize(arcs.size());
  parallel_for(0, arcs.size(), [&](std::size_t i) {
    g.targets_[i] = arcs[i].v;
    if (any_weighted) g.weights_[i] = arcs[i].w;
  });
  return g;
}

namespace {

std::vector<Edge> make_arcs(std::vector<Edge>& edges, bool symmetrize, bool* any_weighted) {
  *any_weighted = false;
  for (const Edge& e : edges) {
    if (e.w != weight_t{1}) {
      *any_weighted = true;
      break;
    }
  }
  std::vector<Edge> arcs;
  arcs.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;  // drop self loops
    arcs.push_back(e);
    if (symmetrize) arcs.push_back({e.v, e.u, e.w});
  }
  return arcs;
}

}  // namespace

Graph Graph::from_edges(vid n, std::vector<Edge> edges, bool symmetrize) {
  bool any_weighted = false;
  auto arcs = make_arcs(edges, symmetrize, &any_weighted);
  return build_csr(n, std::move(arcs), /*dedup=*/true, any_weighted);
}

Graph Graph::from_edges_keep_parallel(vid n, std::vector<Edge> edges, bool symmetrize) {
  bool any_weighted = false;
  auto arcs = make_arcs(edges, symmetrize, &any_weighted);
  return build_csr(n, std::move(arcs), /*dedup=*/false, any_weighted);
}

weight_t Graph::min_weight() const {
  if (num_arcs() == 0) return 0;
  if (!weighted()) return 1;
  weight_t lo = weights_[0];
  for (weight_t w : weights_) lo = std::min(lo, w);
  return lo;
}

weight_t Graph::max_weight() const {
  if (num_arcs() == 0) return 0;
  if (!weighted()) return 1;
  weight_t hi = weights_[0];
  for (weight_t w : weights_) hi = std::max(hi, w);
  return hi;
}

std::vector<Edge> Graph::undirected_edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (vid u = 0; u < n_; ++u) {
    for (eid e = begin(u); e < end(u); ++e) {
      vid v = target(e);
      if (u < v) out.push_back({u, v, weight(e)});
    }
  }
  return out;
}

Graph Graph::with_extra_edges(const std::vector<Edge>& extra) const {
  std::vector<Edge> edges = undirected_edges();
  edges.insert(edges.end(), extra.begin(), extra.end());
  bool was_weighted = weighted();
  for (const Edge& e : extra) {
    if (e.w != weight_t{1}) was_weighted = true;
  }
  Graph g = from_edges(n_, std::move(edges), /*symmetrize=*/true);
  if (was_weighted && !g.weighted()) {
    g.weights_.assign(g.targets_.size(), weight_t{1});
  }
  return g;
}

bool Graph::validate() const {
  if (offsets_.size() != static_cast<std::size_t>(n_) + 1) return false;
  if (offsets_.front() != 0 || offsets_.back() != targets_.size()) return false;
  if (!weights_.empty() && weights_.size() != targets_.size()) return false;
  for (vid v = 0; v < n_; ++v) {
    if (offsets_[v] > offsets_[v + 1]) return false;
    for (eid e = begin(v); e < end(v); ++e) {
      if (targets_[e] >= n_) return false;
      if (targets_[e] == v) return false;  // self loop
      if (e + 1 < end(v) && targets_[e] > targets_[e + 1]) return false;  // sorted
      if (weight(e) <= 0) return false;
    }
  }
  // Symmetry: every arc (u,v,w) must have a matching (v,u,w).
  for (vid u = 0; u < n_; ++u) {
    for (eid e = begin(u); e < end(u); ++e) {
      vid v = target(e);
      bool found = false;
      for (eid f = begin(v); f < end(v); ++f) {
        if (target(f) == u && weight(f) == weight(e)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace parsh
