#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"

namespace parsh {

namespace {

/// Directed arc used during construction.
struct Arc {
  vid u, v;
  weight_t w;
};

[[noreturn]] void corrupt_adjacency(vid u, std::size_t chunk,
                                    const char* what) {
  throw std::runtime_error("corrupt compressed adjacency at vertex " +
                           std::to_string(u) + " chunk " +
                           std::to_string(chunk) + ": " + what);
}

}  // namespace

Graph build_csr(vid n, std::vector<Edge>&& arcs_in, bool dedup, bool any_weighted) {
  // `arcs_in` holds directed arcs (u=src stored in Edge::u).
  std::vector<Arc> arcs(arcs_in.size());
  parallel_for(0, arcs_in.size(), [&](std::size_t i) {
    arcs[i] = {arcs_in[i].u, arcs_in[i].v, arcs_in[i].w};
  });
  arcs_in.clear();
  parallel_sort(arcs, [](const Arc& a, const Arc& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  if (dedup) {
    // Keep the first arc of every (u,v) group: sorted by weight, so the
    // survivor carries the minimum weight — same as std::unique, but as a
    // parallel pack.
    auto kept = pack_values<Arc>(
        arcs.size(),
        [&](std::size_t i) {
          return i == 0 || arcs[i].u != arcs[i - 1].u ||
                 arcs[i].v != arcs[i - 1].v;
        },
        [&](std::size_t i) { return arcs[i]; });
    arcs = std::move(kept);
  }
  const std::size_t m = arcs.size();

  // Offsets by boundary detection: offsets[v] is the index of the first
  // arc with source >= v. Each entry is written exactly once, with a value
  // that depends only on the sorted arc array — identical at any worker
  // count.
  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  if (m > 0) {
    parallel_for(0, m, [&](std::size_t i) {
      const vid u = arcs[i].u;
      if (i == 0) {
        for (vid v = 1; v <= u; ++v) offsets[v] = 0;
      } else if (arcs[i - 1].u != u) {
        for (vid v = arcs[i - 1].u + 1; v <= u; ++v) offsets[v] = i;
      }
      if (i + 1 == m) {
        for (vid v = u; v < n; ++v) offsets[static_cast<std::size_t>(v) + 1] = m;
      }
    });
  }

  std::vector<vid> targets(m);
  std::vector<weight_t> weights(any_weighted ? m : 0);
  parallel_for(0, m, [&](std::size_t i) {
    targets[i] = arcs[i].v;
    if (any_weighted) weights[i] = arcs[i].w;
  });

  Graph g;
  g.n_ = n;
  g.storage_.offsets = ArrayHandle<eid>::adopt(std::move(offsets));
  g.storage_.targets = ArrayHandle<vid>::adopt(std::move(targets));
  if (any_weighted)
    g.storage_.weights = ArrayHandle<weight_t>::adopt(std::move(weights));
  return g;
}

namespace {

std::vector<Edge> make_arcs(std::vector<Edge>& edges, bool symmetrize, bool* any_weighted) {
  const std::size_t m = edges.size();
  *any_weighted =
      parallel_count(m, [&](std::size_t i) { return edges[i].w != weight_t{1}; }) > 0;
  // Drop self loops with a parallel pack, then scatter each survivor (and
  // its reverse when symmetrizing) to a fixed slot.
  auto keep = pack_indices(m, [&](std::size_t i) { return edges[i].u != edges[i].v; });
  const std::size_t k = keep.size();
  std::vector<Edge> arcs(symmetrize ? 2 * k : k);
  parallel_for(0, k, [&](std::size_t i) {
    const Edge e = edges[keep[i]];
    if (symmetrize) {
      arcs[2 * i] = e;
      arcs[2 * i + 1] = {e.v, e.u, e.w};
    } else {
      arcs[i] = e;
    }
  });
  return arcs;
}

}  // namespace

Graph Graph::from_edges(vid n, std::vector<Edge> edges, bool symmetrize) {
  bool any_weighted = false;
  auto arcs = make_arcs(edges, symmetrize, &any_weighted);
  return build_csr(n, std::move(arcs), /*dedup=*/true, any_weighted);
}

Graph Graph::from_edges_keep_parallel(vid n, std::vector<Edge> edges, bool symmetrize) {
  bool any_weighted = false;
  auto arcs = make_arcs(edges, symmetrize, &any_weighted);
  return build_csr(n, std::move(arcs), /*dedup=*/false, any_weighted);
}

weight_t Graph::min_weight() const {
  if (num_arcs() == 0) return 0;
  if (!weighted()) return 1;
  const weight_t* w = storage_.weights.data();
  return -parallel_reduce_max<weight_t>(
      storage_.weights.size(), [&](std::size_t i) { return -w[i]; }, -w[0]);
}

weight_t Graph::max_weight() const {
  if (num_arcs() == 0) return 0;
  if (!weighted()) return 1;
  const weight_t* w = storage_.weights.data();
  return parallel_reduce_max<weight_t>(
      storage_.weights.size(), [&](std::size_t i) { return w[i]; }, w[0]);
}

std::vector<Edge> Graph::undirected_edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (vid u = 0; u < n_; ++u) {
    for_arcs(u, 0, degree(u), [](vid) {}, [&](eid e, vid v) {
      if (u < v) out.push_back({u, v, weight(e)});
    });
  }
  return out;
}

Graph Graph::with_extra_edges(const std::vector<Edge>& extra) const {
  std::vector<Edge> edges = undirected_edges();
  edges.insert(edges.end(), extra.begin(), extra.end());
  bool was_weighted = weighted();
  for (const Edge& e : extra) {
    if (e.w != weight_t{1}) was_weighted = true;
  }
  Graph g = from_edges(n_, std::move(edges), /*symmetrize=*/true);
  if (was_weighted && !g.weighted()) {
    g.storage_.weights = ArrayHandle<weight_t>::adopt(
        std::vector<weight_t>(g.num_arcs(), weight_t{1}));
  }
  return g;
}

std::size_t Graph::decode_adjacency_chunk(vid u, std::size_t chunk, vid* out) const {
  const GraphStorage& st = storage_;
  const std::size_t deg = degree(u);
  const std::uint64_t local_chunks = st.chunk_start[u + 1] - st.chunk_start[u];
  if (chunk >= local_chunks) corrupt_adjacency(u, chunk, "chunk index out of range");
  const std::size_t count = std::min(kAdjChunk, deg - chunk * kAdjChunk);
  const std::uint64_t gc = st.chunk_start[u] + chunk;
  const std::uint64_t byte_lo = st.chunk_bytes[gc];
  const std::uint64_t byte_hi = st.chunk_bytes[gc + 1];
  if (byte_lo > byte_hi || byte_hi > st.stream.size())
    corrupt_adjacency(u, chunk, "chunk byte range out of bounds");
  const std::uint8_t* p = st.stream.data() + byte_lo;
  const std::uint8_t* end = st.stream.data() + byte_hi;
  std::uint64_t cur = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t val = 0;
    if (!varint_decode(p, end, &val))
      corrupt_adjacency(u, chunk, "truncated varint");
    cur = (i == 0) ? val : cur + val;  // first is absolute, rest are gaps
    if (cur >= n_) corrupt_adjacency(u, chunk, "target out of range");
    out[i] = static_cast<vid>(cur);
  }
  if (p != end) corrupt_adjacency(u, chunk, "trailing bytes in chunk");
  return count;
}

Graph Graph::compress_adjacency() const {
  if (compressed() && storage_.targets.empty()) return *this;
  assert(has_flat_adjacency());
  const vid n = n_;
  const vid* tgt = storage_.targets.data();

  // Chunk index: chunk_start[v] = global id of v's first chunk.
  std::vector<eid> chunk_start(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(0, n, [&](std::size_t v) {
    chunk_start[v] = (degree(static_cast<vid>(v)) + kAdjChunk - 1) / kAdjChunk;
  });
  const std::uint64_t total_chunks = exclusive_scan_inplace(chunk_start);

  // Pass 1: per-chunk encoded sizes (into what becomes the offset array).
  std::vector<std::uint64_t> chunk_bytes(total_chunks + 1, 0);
  parallel_for(0, n, [&](std::size_t vs) {
    const vid v = static_cast<vid>(vs);
    const eid base = begin(v);
    const std::size_t deg = degree(v);
    for (std::size_t lo = 0, c = 0; lo < deg; lo += kAdjChunk, ++c) {
      const std::size_t hi = std::min(deg, lo + kAdjChunk);
      std::size_t bytes = varint_size(tgt[base + lo]);
      for (std::size_t j = lo + 1; j < hi; ++j) {
        // CSR adjacency is sorted by construction; gap encoding depends on it.
        assert(tgt[base + j] >= tgt[base + j - 1]);
        bytes += varint_size(tgt[base + j] - tgt[base + j - 1]);
      }
      chunk_bytes[chunk_start[v] + c] = bytes;
    }
  });
  const std::uint64_t stream_len = exclusive_scan_inplace(chunk_bytes);

  // Pass 2: encode each chunk at its now-known stream offset.
  std::vector<std::uint8_t> stream(stream_len);
  parallel_for(0, n, [&](std::size_t vs) {
    const vid v = static_cast<vid>(vs);
    const eid base = begin(v);
    const std::size_t deg = degree(v);
    for (std::size_t lo = 0, c = 0; lo < deg; lo += kAdjChunk, ++c) {
      const std::size_t hi = std::min(deg, lo + kAdjChunk);
      std::size_t pos = chunk_bytes[chunk_start[v] + c];
      auto emit = [&](std::uint32_t x) {
        while (x >= 0x80u) {
          stream[pos++] = static_cast<std::uint8_t>(x) | 0x80u;
          x >>= 7;
        }
        stream[pos++] = static_cast<std::uint8_t>(x);
      };
      emit(tgt[base + lo]);
      for (std::size_t j = lo + 1; j < hi; ++j)
        emit(tgt[base + j] - tgt[base + j - 1]);
    }
  });

  Graph g = *this;  // shares offsets and weights
  g.storage_.targets.reset();
  g.storage_.chunk_start = ArrayHandle<eid>::adopt(std::move(chunk_start));
  g.storage_.chunk_bytes =
      ArrayHandle<std::uint64_t>::adopt(std::move(chunk_bytes));
  g.storage_.stream = ArrayHandle<std::uint8_t>::adopt(std::move(stream));
  return g;
}

Graph Graph::decompress_adjacency() const {
  if (has_flat_adjacency()) {
    Graph g = *this;
    g.storage_.chunk_start.reset();
    g.storage_.chunk_bytes.reset();
    g.storage_.stream.reset();
    return g;
  }
  std::vector<vid> targets(num_arcs());
  std::atomic<bool> bad{false};
  parallel_for(0, n_, [&](std::size_t vs) {
    const vid v = static_cast<vid>(vs);
    const eid base = begin(v);
    const std::size_t deg = degree(v);
    vid buf[kAdjChunk];
    // Exceptions must not unwind out of a parallel region; flag and rethrow
    // after the join.
    try {
      for (std::size_t lo = 0, c = 0; lo < deg; lo += kAdjChunk, ++c) {
        const std::size_t count = decode_adjacency_chunk(v, c, buf);
        for (std::size_t j = 0; j < count; ++j) targets[base + lo + j] = buf[j];
      }
    } catch (const std::exception&) {
      bad.store(true, std::memory_order_relaxed);
    }
  });
  if (bad.load()) throw std::runtime_error("corrupt compressed adjacency stream");
  Graph g = *this;
  g.storage_.targets = ArrayHandle<vid>::adopt(std::move(targets));
  g.storage_.chunk_start.reset();
  g.storage_.chunk_bytes.reset();
  g.storage_.stream.reset();
  return g;
}

bool Graph::validate() const {
  const GraphStorage& st = storage_;
  if (st.offsets.size() != static_cast<std::size_t>(n_) + 1) return false;
  if (st.offsets[0] != 0) return false;
  const eid m = st.offsets.back();
  if (!st.targets.empty() && st.targets.size() != m) return false;
  if (st.targets.empty() && m != 0 && !compressed()) return false;
  if (!st.weights.empty() && st.weights.size() != m) return false;
  if (compressed()) {
    if (st.chunk_start.size() != static_cast<std::size_t>(n_) + 1) return false;
    if (st.chunk_start[0] != 0) return false;
    if (st.chunk_bytes.size() != st.chunk_start.back() + 1) return false;
    if (st.chunk_bytes.back() != st.stream.size()) return false;
    for (vid v = 0; v < n_; ++v) {
      const eid want = (end(v) - begin(v) + kAdjChunk - 1) / kAdjChunk;
      if (st.chunk_start[v + 1] - st.chunk_start[v] != want) return false;
    }
  }
  for (vid v = 0; v < n_; ++v) {
    if (st.offsets[v] > st.offsets[v + 1]) return false;
  }
  try {
    for (vid v = 0; v < n_; ++v) {
      bool ok = true;
      vid prev = 0;
      bool first = true;
      for_arcs(v, 0, degree(v), [](vid) {}, [&](eid e, vid t) {
        if (t >= n_ || t == v) ok = false;            // range / self loop
        if (!first && t < prev) ok = false;           // sorted
        if (weight(e) <= 0) ok = false;
        prev = t;
        first = false;
      });
      if (!ok) return false;
    }
    // Symmetry: every arc (u,v,w) must have a matching (v,u,w). Adjacency
    // is sorted, so the reverse scan can stop once targets pass u.
    for (vid u = 0; u < n_; ++u) {
      bool ok = true;
      for_arcs(u, 0, degree(u), [](vid) {}, [&](eid e, vid v) {
        const weight_t w = weight(e);
        bool found = false;
        scan_arcs(v, [](vid) {}, [&](eid f, vid t) {
          if (t == u && weight(f) == w) found = true;
          return found || t > u;
        });
        if (!found) ok = false;
      });
      if (!ok) return false;
    }
  } catch (const std::exception&) {
    return false;  // corrupt compressed stream
  }
  return true;
}

}  // namespace parsh
