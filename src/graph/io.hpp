// Graph serialization: a simple whitespace edge-list format and DIMACS
// shortest-path (.gr) files, so examples can load external datasets.
//
// Readers are strict: a malformed line, an out-of-range vertex id, a
// negative/zero/overflowing weight, or a file that ends before the
// declared edge count all throw IoError carrying the 1-based line number
// where parsing stopped — external datasets are exactly where silent
// misparses turn into wrong benchmark numbers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace parsh {

/// Typed parse failure: what went wrong and on which input line. Derives
/// from std::runtime_error so pre-existing catch sites keep working;
/// what() already includes the line number.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based line number of the offending (or missing) line.
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Write "u v w" lines (one per undirected edge) preceded by "n m".
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

/// Read the format produced by write_edge_list.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Read a DIMACS .gr file ("p sp n m" header, "a u v w" arc lines,
/// 1-indexed). Arcs are symmetrized.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

/// Write an edge delta as text: "+ u v w" per insert (the weight is
/// omitted when it is 1), "- u v" per removal. '#' starts a comment line.
void write_delta(std::ostream& out, const GraphDelta& d);
void write_delta_file(const std::string& path, const GraphDelta& d);

/// Read the format produced by write_delta. Strict like the other
/// readers (IoError with the line number); endpoint ids are only checked
/// for vid-range syntax here — Graph::apply_delta validates them against
/// the target graph's vertex count.
GraphDelta read_delta(std::istream& in);
GraphDelta read_delta_file(const std::string& path);

}  // namespace parsh
