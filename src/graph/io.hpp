// Graph serialization: a simple whitespace edge-list format and DIMACS
// shortest-path (.gr) files, so examples can load external datasets.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace parsh {

/// Write "u v w" lines (one per undirected edge) preceded by "n m".
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

/// Read the format produced by write_edge_list.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Read a DIMACS .gr file ("p sp n m" header, "a u v w" arc lines,
/// 1-indexed). Arcs are symmetrized.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

}  // namespace parsh
