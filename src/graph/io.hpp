// Graph serialization: a simple whitespace edge-list format and DIMACS
// shortest-path (.gr) files, so examples can load external datasets.
//
// Readers are strict: a malformed line, an out-of-range vertex id, a
// negative/zero/overflowing weight, or a file that ends before the
// declared edge count all throw IoError carrying the 1-based line number
// where parsing stopped — external datasets are exactly where silent
// misparses turn into wrong benchmark numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace parsh {

/// Typed parse failure: what went wrong and on which input line. Derives
/// from std::runtime_error so pre-existing catch sites keep working;
/// what() already includes the line number.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// 1-based line number of the offending (or missing) line.
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Write "u v w" lines (one per undirected edge) preceded by "n m".
void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

/// Read the format produced by write_edge_list.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Read a DIMACS .gr file ("p sp n m" header, "a u v w" arc lines,
/// 1-indexed). Arcs are symmetrized.
Graph read_dimacs(std::istream& in);
Graph read_dimacs_file(const std::string& path);

/// Write an edge delta as text: "+ u v w" per insert (the weight is
/// omitted when it is 1), "- u v" per removal. '#' starts a comment line.
void write_delta(std::ostream& out, const GraphDelta& d);
void write_delta_file(const std::string& path, const GraphDelta& d);

/// Read the format produced by write_delta. Strict like the other
/// readers (IoError with the line number); endpoint ids are only checked
/// for vid-range syntax here — Graph::apply_delta validates them against
/// the target graph's vertex count.
GraphDelta read_delta(std::istream& in);
GraphDelta read_delta_file(const std::string& path);

/// Binary sibling of write_delta, for embedding deltas in binary records
/// (the server's WAL). Little-endian fixed-width framing:
///   n_insert u32, n_remove u32,
///   n_insert * {u u32, v u32, w f64},  n_remove * {u u32, v u32}
/// Weights ride as IEEE-754 bit patterns — unlike the text format this
/// round-trips exactly, which replay bit-identity depends on. Appends to
/// `out` and returns the number of bytes appended.
std::size_t write_delta_binary(std::vector<std::uint8_t>& out, const GraphDelta& d);

/// Decode the format produced by write_delta_binary, starting at
/// data[0], consuming at most `len` bytes. Strict: a truncated buffer, a
/// non-finite / non-positive weight, or counts pointing past `len` throw
/// IoError (the "line" is the byte offset where decoding stopped).
/// Returns the number of bytes consumed.
std::size_t read_delta_binary(const std::uint8_t* data, std::size_t len, GraphDelta* out);

}  // namespace parsh
