// Graph storage backends: shared immutable array handles over either heap
// vectors or mmap'ed file regions.
//
// A Graph owns its CSR arrays through ArrayHandle<T>: a raw (pointer, size)
// view plus a shared_ptr keeping the backing storage alive. Heap-backed
// handles adopt a std::vector; file-backed handles share one MappedFile
// across every section cut from it. Copying a handle (and therefore a
// Graph) shares the backing — O(1), no deep copy — which is what makes
// Graph::as_unweighted / map_weights cheap and lets one mmap'ed .pcsr file
// serve any number of Graph values without duplicating gigabytes.
//
// The compressed adjacency sections (delta-varint gap streams, decoded in
// FrontierRelaxer's stolen ranges; see graph.hpp::for_arcs) also live here
// as plain handles: storage knows bytes, Graph knows the encoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace parsh {

/// Read-only (or scratch read-write) memory-mapped file, RAII. One
/// MappedFile is typically shared by several ArrayHandles, each viewing a
/// section of it; the mapping unmaps when the last handle drops.
class MappedFile {
 public:
  /// Map `path` read-only. Throws std::runtime_error on open/map failure.
  /// Empty files map to a null region of size 0.
  static std::shared_ptr<MappedFile> open_readonly(const std::string& path);

  /// Create (truncating) `path` at `bytes` and map it read-write: the
  /// scratch backing for the streamed CSR builder. Throws on failure.
  static std::shared_ptr<MappedFile> create_readwrite(const std::string& path,
                                                      std::size_t bytes);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(addr_);
  }
  /// Writable base; null for read-only mappings.
  [[nodiscard]] std::uint8_t* mutable_data() {
    return writable_ ? static_cast<std::uint8_t*>(addr_) : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  MappedFile() = default;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool writable_ = false;
  std::string path_;
};

/// Immutable typed array view + shared ownership of whatever backs it.
/// Default-constructed handles are empty (data() == nullptr, size() == 0).
template <typename T>
class ArrayHandle {
 public:
  ArrayHandle() = default;

  /// Take ownership of a vector's buffer (the heap backend).
  static ArrayHandle adopt(std::vector<T>&& v) {
    auto keep = std::make_shared<std::vector<T>>(std::move(v));
    ArrayHandle h;
    h.data_ = keep->data();
    h.size_ = keep->size();
    h.owner_ = std::move(keep);
    return h;
  }

  /// View `count` elements at `data` inside `file`, sharing the mapping.
  /// The caller (the .pcsr loader) has already validated that the range
  /// lies inside the file and is suitably aligned for T.
  static ArrayHandle view(std::shared_ptr<const MappedFile> file, const T* data,
                          std::size_t count) {
    ArrayHandle h;
    h.data_ = data;
    h.size_ = count;
    h.owner_ = std::move(file);
    return h;
  }

  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void reset() { *this = ArrayHandle(); }

  /// True iff both handles view the same memory (shared, not equal-valued)
  /// — the assertion the storage-sharing tests pin O(1) copies with.
  [[nodiscard]] bool shares(const ArrayHandle& other) const {
    return data_ == other.data_ && size_ == other.size_;
  }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<const void> owner_;
};

/// The arrays one Graph is backed by. `offsets` is always present (size
/// n+1); exactly one adjacency representation is:
///  * flat: `targets` (size offsets[n]), today's O(1)-random-access form;
///  * compressed: `chunk_start` (n+1 cumulative chunk counts),atomically
///    with `chunk_bytes` (total_chunks+1 byte offsets) and `stream` (the
///    delta-varint gap bytes) — decoded chunkwise by Graph::for_arcs.
/// `weights` is empty for unit-weight graphs and always flat otherwise
/// (size offsets[n], indexed by arc id in both representations, so
/// Graph::weight stays O(1) even on compressed adjacency).
struct GraphStorage {
  ArrayHandle<eid> offsets;
  ArrayHandle<vid> targets;
  ArrayHandle<weight_t> weights;
  ArrayHandle<eid> chunk_start;
  ArrayHandle<std::uint64_t> chunk_bytes;
  ArrayHandle<std::uint8_t> stream;
};

/// Neighbors per compressed-adjacency chunk. Each chunk opens with its
/// first target as an absolute varint followed by gap varints, so a stolen
/// edge range can start decoding at any chunk boundary without replaying
/// the whole vertex.
inline constexpr std::size_t kAdjChunk = 64;

/// LEB128-style varint append (7 bits per byte, high bit = continue).
inline void varint_append(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Encoded size of one varint, in bytes.
inline std::size_t varint_size(std::uint32_t v) {
  std::size_t bytes = 1;
  while (v >= 0x80u) {
    v >>= 7;
    ++bytes;
  }
  return bytes;
}

/// Bounds-checked varint decode: reads at most 5 bytes from [p, end),
/// advances p. Returns false (leaving *out unspecified) if the stream ends
/// mid-value or overflows 32 bits — corrupt input, never UB.
inline bool varint_decode(const std::uint8_t*& p, const std::uint8_t* end,
                          std::uint32_t* out) {
  std::uint32_t v = 0;
  int shift = 0;
  while (p < end && shift < 35) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint32_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift == 28 && (byte >> 4) != 0) return false;  // > 32 bits
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace parsh
