#include "graph/digest.hpp"

namespace parsh {

std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = kFnv64Offset;
  const vid n = g.num_vertices();
  h = fnv1a_u64(h, n);
  const bool weighted = g.weighted();
  for (vid u = 0; u < n; ++u) {
    h = fnv1a_u64(h, g.degree(u));
    g.for_arcs(u, 0, g.degree(u), [](vid) {}, [&](eid e, vid v) {
      h = fnv1a_u64(h, v);
      if (weighted) h = fnv1a_f64(h, g.weight(e));
    });
  }
  return h;
}

}  // namespace parsh
