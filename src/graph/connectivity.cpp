#include "graph/connectivity.hpp"

#include <atomic>

#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Hook-and-compress: repeatedly hook each vertex's label to the minimum
/// label among its neighbours, then pointer-jump until labels are roots.
/// O(m log n) work, O(log^2 n) rounds — the classic PRAM scheme ([SDB14]
/// achieves linear work with the same clustering used in this paper; the
/// simple variant suffices as a substrate here).
std::vector<vid> label_propagate(const Graph& g,
                                 const std::vector<char>* keep_arc) {
  const vid n = g.num_vertices();
  std::vector<std::atomic<vid>> label(n);
  parallel_for(0, n, [&](std::size_t v) { label[v].store(static_cast<vid>(v)); });
  bool changed = true;
  while (changed) {
    changed = false;
    std::atomic<bool> any{false};
    // Hook: adopt the minimum neighbour label.
    parallel_for(0, n, [&](std::size_t vi) {
      const vid v = static_cast<vid>(vi);
      vid mine = label[v].load(std::memory_order_relaxed);
      for (eid e = g.begin(v); e < g.end(v); ++e) {
        if (keep_arc && !(*keep_arc)[e]) continue;
        vid lu = label[g.target(e)].load(std::memory_order_relaxed);
        if (lu < mine) {
          if (atomic_write_min(&label[v], lu)) any.store(true, std::memory_order_relaxed);
          mine = label[v].load(std::memory_order_relaxed);
        }
      }
    });
    wd::add_round();
    wd::add_work(g.num_arcs());
    // Compress: pointer jumping.
    bool jumped = true;
    while (jumped) {
      std::atomic<bool> j{false};
      parallel_for(0, n, [&](std::size_t vi) {
        const vid v = static_cast<vid>(vi);
        vid l = label[v].load(std::memory_order_relaxed);
        vid ll = label[l].load(std::memory_order_relaxed);
        if (ll < l) {
          label[v].store(ll, std::memory_order_relaxed);
          j.store(true, std::memory_order_relaxed);
        }
      });
      wd::add_round();
      jumped = j.load();
    }
    changed = any.load();
  }
  std::vector<vid> out(n);
  parallel_for(0, n, [&](std::size_t v) { out[v] = label[v].load(); });
  return out;
}

/// Relabel arbitrary labels to [0, k) ordered by smallest member vertex.
std::vector<vid> densify(std::vector<vid> raw) {
  const vid n = static_cast<vid>(raw.size());
  std::vector<vid> remap(n, kNoVertex);
  vid next = 0;
  for (vid v = 0; v < n; ++v) {
    if (remap[raw[v]] == kNoVertex) remap[raw[v]] = next++;
  }
  for (vid v = 0; v < n; ++v) raw[v] = remap[raw[v]];
  return raw;
}

}  // namespace

std::vector<vid> connected_components(const Graph& g) {
  return densify(label_propagate(g, nullptr));
}

vid num_components(const Graph& g) {
  auto comp = connected_components(g);
  vid num = 0;
  for (vid c : comp) num = std::max(num, c + 1);
  return num;
}

std::vector<vid> connected_components_filtered(const Graph& g,
                                               const std::vector<char>& keep_arc) {
  return densify(label_propagate(g, &keep_arc));
}

}  // namespace parsh
