// Structural digests for recovery verification.
//
// graph_digest folds every vertex's degree, adjacency order, targets and
// weight bit patterns into one FNV-1a hash — representation-independent
// (flat and compressed adjacency of the same graph digest identically,
// because both are walked through for_arcs), which is what lets the
// crash-recovery harness compare a recovered graph against its
// uninterrupted twin with a single u64 instead of a full array diff.
// The fold helpers are exposed so callers can chain further state (query
// results, sequence tables) onto the same running hash.
#pragma once

#include <cstdint>
#include <cstring>

#include "graph/graph.hpp"

namespace parsh {

inline constexpr std::uint64_t kFnv64Offset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ULL;

/// Fold one u64 into a running FNV-1a hash, byte by little-endian byte.
[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnv64Prime;
  }
  return h;
}

/// Fold a double's IEEE-754 bit pattern (exact, no rounding ambiguity).
[[nodiscard]] inline std::uint64_t fnv1a_f64(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_u64(h, bits);
}

/// Digest of a graph's logical content: n, then per vertex the degree and
/// each arc's (target, weight-bits) in adjacency order. Equal digests on
/// graphs this size are equality for all practical purposes; the
/// recovery tests additionally compare query results.
[[nodiscard]] std::uint64_t graph_digest(const Graph& g);

}  // namespace parsh
