// Induced subgraphs and quotient (contracted) graphs.
//
// The hopset recursion (Algorithm 4) descends into induced subgraphs of
// small clusters; the weighted spanner (Algorithm 3) and the Appendix B
// weight decomposition contract components and continue on the quotient
// graph G/H (self loops removed, parallel edges merged keeping the
// shortest — Section 2's convention).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// An induced subgraph together with the mapping back to the host graph.
struct Subgraph {
  Graph graph;
  /// original_id[i] = host-graph vertex corresponding to local vertex i.
  std::vector<vid> original_id;
};

/// Induced subgraph on `vertices` (each < g.num_vertices(), no
/// duplicates). Local ids follow the order of `vertices`.
Subgraph induced_subgraph(const Graph& g, const std::vector<vid>& vertices);

/// One induced subgraph per cluster, given a cluster label per vertex
/// (labels dense in [0, num_clusters)). Returns them ordered by label.
/// Single pass over the host graph — O(n + m) work total.
std::vector<Subgraph> induced_subgraphs_by_label(const Graph& g,
                                                 const std::vector<vid>& label,
                                                 vid num_clusters);

/// A quotient graph and the mapping from host vertices to quotient ids.
struct QuotientGraph {
  Graph graph;
  /// component[v] = quotient vertex of host vertex v.
  std::vector<vid> component;
};

/// Contract each label class of `label` (dense in [0, num_components)) to
/// a single vertex; drops intra-class edges and keeps the minimum-weight
/// edge between any two classes.
QuotientGraph quotient_graph(const Graph& g, const std::vector<vid>& label,
                             vid num_components);

}  // namespace parsh
