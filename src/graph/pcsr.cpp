#include "graph/pcsr.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parsh {

namespace {

constexpr char kMagic[8] = {'p', 'a', 'r', 's', 'h', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagWeighted = 1u << 0;
constexpr std::uint32_t kFlagCompressed = 1u << 1;
constexpr std::uint32_t kKnownFlags = kFlagWeighted | kFlagCompressed;
constexpr std::size_t kPage = 4096;          // header size and section alignment
constexpr std::size_t kSectionCount = 6;     // offsets targets weights cs cb stream
constexpr std::size_t kTableOff = 40;
constexpr std::size_t kHeaderChecksumOff = kTableOff + kSectionCount * 24;  // 184

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t h = kFnvBasis) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint32_t rd_u32(const std::uint8_t* d, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, d + off, sizeof v);
  return v;
}

std::uint64_t rd_u64(const std::uint8_t* d, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, d + off, sizeof v);
  return v;
}

void wr_u32(std::uint8_t* d, std::size_t off, std::uint32_t v) {
  std::memcpy(d + off, &v, sizeof v);
}

void wr_u64(std::uint8_t* d, std::size_t off, std::uint64_t v) {
  std::memcpy(d + off, &v, sizeof v);
}

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = kFnvBasis;
};

struct ParsedHeader {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  Section sec[kSectionCount];
};

enum SectionId {
  kSecOffsets = 0,
  kSecTargets = 1,
  kSecWeights = 2,
  kSecChunkStart = 3,
  kSecChunkBytes = 4,
  kSecStream = 5,
};

/// All the always-on O(1) validation: header checksum, flags, section
/// geometry, and the handful of boundary words that tie the sections
/// together. Nothing here reads a whole section.
ParsedHeader parse_and_check(const std::uint8_t* d, std::uint64_t fsize) {
  if (fsize < kPage) throw PcsrError("file too small for header page", fsize);
  if (std::memcmp(d, kMagic, sizeof kMagic) != 0)
    throw PcsrError("bad magic (not a .pcsr file)", 0);

  ParsedHeader h;
  h.version = rd_u32(d, 8);
  if (h.version != kVersion)
    throw PcsrError("unsupported version " + std::to_string(h.version), 8);
  h.flags = rd_u32(d, 12);
  if ((h.flags & ~kKnownFlags) != 0)
    throw PcsrError("unknown flag bits", 12);
  h.n = rd_u64(d, 16);
  h.arcs = rd_u64(d, 24);
  if (rd_u64(d, 32) != kSectionCount)
    throw PcsrError("bad section count", 32);
  if (fnv1a(d, kHeaderChecksumOff) != rd_u64(d, kHeaderChecksumOff))
    throw PcsrError("header checksum mismatch", kHeaderChecksumOff);

  if (h.n >= kNoVertex)
    throw PcsrError("vertex count out of range", 16);
  if (h.arcs > (std::uint64_t{1} << 61))
    throw PcsrError("arc count out of range", 24);

  for (std::size_t s = 0; s < kSectionCount; ++s) {
    h.sec[s].offset = rd_u64(d, kTableOff + s * 24);
    h.sec[s].bytes = rd_u64(d, kTableOff + s * 24 + 8);
    h.sec[s].checksum = rd_u64(d, kTableOff + s * 24 + 16);
  }

  // Geometry: present sections are page-aligned, in table order, inside
  // the file, and non-overlapping; absent sections are all-zero.
  std::uint64_t prev_end = kPage;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const Section& sec = h.sec[s];
    if (sec.bytes == 0) {
      if (sec.offset != 0)
        throw PcsrError("empty section with nonzero offset", kTableOff + s * 24);
      continue;
    }
    if (sec.offset % kPage != 0)
      throw PcsrError("section offset not page-aligned", sec.offset);
    if (sec.offset < prev_end)
      throw PcsrError("sections overlap or are out of order", sec.offset);
    if (sec.bytes > fsize || sec.offset > fsize - sec.bytes)
      throw PcsrError("section extends past end of file", sec.offset);
    prev_end = sec.offset + sec.bytes;
  }

  // Expected sizes follow from (n, arcs, flags).
  const bool weighted = (h.flags & kFlagWeighted) != 0;
  const bool compressed = (h.flags & kFlagCompressed) != 0;
  if (h.sec[kSecOffsets].bytes != (h.n + 1) * sizeof(eid))
    throw PcsrError("offsets section size does not match vertex count",
                    kTableOff + kSecOffsets * 24);
  if (h.sec[kSecWeights].bytes != (weighted ? h.arcs * sizeof(weight_t) : 0))
    throw PcsrError("weights section size does not match header",
                    kTableOff + kSecWeights * 24);
  if (!compressed) {
    if (h.sec[kSecTargets].bytes != h.arcs * sizeof(vid))
      throw PcsrError("targets section size does not match arc count",
                      kTableOff + kSecTargets * 24);
    for (std::size_t s = kSecChunkStart; s <= kSecStream; ++s) {
      if (h.sec[s].bytes != 0)
        throw PcsrError("compressed sections present without flag",
                        kTableOff + s * 24);
    }
  } else {
    if (h.sec[kSecTargets].bytes != 0)
      throw PcsrError("flat targets present in compressed file",
                      kTableOff + kSecTargets * 24);
    if (h.sec[kSecChunkStart].bytes != (h.n + 1) * sizeof(eid))
      throw PcsrError("chunk_start section size does not match vertex count",
                      kTableOff + kSecChunkStart * 24);
    if (h.sec[kSecChunkBytes].bytes < sizeof(std::uint64_t) ||
        h.sec[kSecChunkBytes].bytes % sizeof(std::uint64_t) != 0)
      throw PcsrError("chunk_bytes section malformed",
                      kTableOff + kSecChunkBytes * 24);
  }

  // Boundary words: offsets[0] == 0, offsets[n] == arcs; the chunk index
  // endpoints must agree with the stream length.
  const std::uint64_t off0 = rd_u64(d, h.sec[kSecOffsets].offset);
  const std::uint64_t offn =
      rd_u64(d, h.sec[kSecOffsets].offset + h.n * sizeof(eid));
  if (off0 != 0)
    throw PcsrError("offsets[0] != 0", h.sec[kSecOffsets].offset);
  if (offn != h.arcs)
    throw PcsrError("offsets[n] disagrees with header arc count",
                    h.sec[kSecOffsets].offset + h.n * sizeof(eid));
  if (compressed) {
    const std::uint64_t chunks =
        h.sec[kSecChunkBytes].bytes / sizeof(std::uint64_t) - 1;
    const std::uint64_t cs0 = rd_u64(d, h.sec[kSecChunkStart].offset);
    const std::uint64_t csn =
        rd_u64(d, h.sec[kSecChunkStart].offset + h.n * sizeof(eid));
    if (cs0 != 0)
      throw PcsrError("chunk_start[0] != 0", h.sec[kSecChunkStart].offset);
    if (csn != chunks)
      throw PcsrError("chunk_start[n] disagrees with chunk_bytes size",
                      h.sec[kSecChunkStart].offset + h.n * sizeof(eid));
    const std::uint64_t cb0 = rd_u64(d, h.sec[kSecChunkBytes].offset);
    const std::uint64_t cbn =
        rd_u64(d, h.sec[kSecChunkBytes].offset + chunks * sizeof(std::uint64_t));
    if (cb0 != 0)
      throw PcsrError("chunk_bytes[0] != 0", h.sec[kSecChunkBytes].offset);
    if (cbn != h.sec[kSecStream].bytes)
      throw PcsrError("chunk_bytes end disagrees with stream size",
                      h.sec[kSecChunkBytes].offset + chunks * sizeof(std::uint64_t));
  }
  return h;
}

}  // namespace

void write_pcsr_file(const std::string& path, const Graph& g,
                     const PcsrWriteOptions& opt) {
  // Convert once up front if a compressed file was asked for; everything
  // below just streams whatever representation `src` holds.
  Graph converted;
  const Graph* src = &g;
  if (opt.compress && !g.compressed()) {
    converted = g.compress_adjacency();
    src = &converted;
  }
  const GraphStorage& st = src->storage();
  const bool weighted = src->weighted();
  const bool compressed = src->compressed();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw PcsrError("cannot open '" + path + "' for writing", 0);

  const std::vector<char> zeros(kPage, 0);
  out.write(zeros.data(), kPage);  // header placeholder

  Section sec[kSectionCount];
  std::uint64_t pos = kPage;
  auto emit = [&](std::size_t id, const void* data, std::uint64_t bytes) {
    if (bytes == 0) return;
    const std::uint64_t aligned = (pos + kPage - 1) / kPage * kPage;
    if (aligned > pos) out.write(zeros.data(), aligned - pos);
    sec[id].offset = aligned;
    sec[id].bytes = bytes;
    sec[id].checksum = fnv1a(data, bytes);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    pos = aligned + bytes;
  };

  emit(kSecOffsets, st.offsets.data(), st.offsets.size() * sizeof(eid));
  emit(kSecTargets, st.targets.data(), st.targets.size() * sizeof(vid));
  emit(kSecWeights, st.weights.data(), st.weights.size() * sizeof(weight_t));
  emit(kSecChunkStart, st.chunk_start.data(), st.chunk_start.size() * sizeof(eid));
  emit(kSecChunkBytes, st.chunk_bytes.data(),
       st.chunk_bytes.size() * sizeof(std::uint64_t));
  emit(kSecStream, st.stream.data(), st.stream.size());

  std::uint8_t header[kPage] = {};
  std::memcpy(header, kMagic, sizeof kMagic);
  wr_u32(header, 8, kVersion);
  wr_u32(header, 12, (weighted ? kFlagWeighted : 0u) |
                         (compressed ? kFlagCompressed : 0u));
  wr_u64(header, 16, src->num_vertices());
  wr_u64(header, 24, src->num_arcs());
  wr_u64(header, 32, kSectionCount);
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    wr_u64(header, kTableOff + s * 24, sec[s].offset);
    wr_u64(header, kTableOff + s * 24 + 8, sec[s].bytes);
    wr_u64(header, kTableOff + s * 24 + 16, sec[s].checksum);
  }
  wr_u64(header, kHeaderChecksumOff, fnv1a(header, kHeaderChecksumOff));

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(header), kPage);
  out.flush();
  if (!out) throw PcsrError("write to '" + path + "' failed", pos);
}

Graph load_pcsr_file(const std::string& path, const PcsrLoadOptions& opt) {
  std::shared_ptr<MappedFile> file = MappedFile::open_readonly(path);
  const std::uint8_t* d = file->data();
  const ParsedHeader h = parse_and_check(d, file->size());

  if (opt.verify_checksums) {
    for (std::size_t s = 0; s < kSectionCount; ++s) {
      if (h.sec[s].bytes == 0) continue;
      if (fnv1a(d + h.sec[s].offset, h.sec[s].bytes) != h.sec[s].checksum)
        throw PcsrError("section checksum mismatch", h.sec[s].offset);
    }
  }

  auto take = [&](std::size_t id, auto* tag) {
    using T = std::remove_pointer_t<decltype(tag)>;
    if (h.sec[id].bytes == 0) return ArrayHandle<T>{};
    return ArrayHandle<T>::view(
        file, reinterpret_cast<const T*>(d + h.sec[id].offset),
        h.sec[id].bytes / sizeof(T));
  };

  GraphStorage st;
  st.offsets = take(kSecOffsets, static_cast<eid*>(nullptr));
  st.targets = take(kSecTargets, static_cast<vid*>(nullptr));
  st.weights = take(kSecWeights, static_cast<weight_t*>(nullptr));
  st.chunk_start = take(kSecChunkStart, static_cast<eid*>(nullptr));
  st.chunk_bytes = take(kSecChunkBytes, static_cast<std::uint64_t*>(nullptr));
  st.stream = take(kSecStream, static_cast<std::uint8_t*>(nullptr));
  return Graph::from_storage(static_cast<vid>(h.n), std::move(st));
}

PcsrInfo read_pcsr_info(const std::string& path) {
  std::shared_ptr<MappedFile> file = MappedFile::open_readonly(path);
  const ParsedHeader h = parse_and_check(file->data(), file->size());
  PcsrInfo info;
  info.version = h.version;
  info.weighted = (h.flags & kFlagWeighted) != 0;
  info.compressed = (h.flags & kFlagCompressed) != 0;
  info.num_vertices = h.n;
  info.num_arcs = h.arcs;
  info.file_bytes = file->size();
  info.adjacency_bytes =
      info.compressed ? h.sec[kSecChunkBytes].bytes + h.sec[kSecStream].bytes
                      : h.sec[kSecTargets].bytes;
  return info;
}

void stream_edges_to_pcsr(const std::string& path, vid n, eid num_edges,
                          const std::function<Edge(eid)>& edge_of,
                          const StreamCsrOptions& opt) {
  // Pass A: per-vertex arc counts (each undirected edge lands twice) and
  // the weighted bit — same detection order as Graph::from_edges: weights
  // are inspected before self loops are dropped.
  std::unique_ptr<std::atomic<eid>[]> cursor(new std::atomic<eid>[n]);
  parallel_for(0, n, [&](std::size_t v) {
    cursor[v].store(0, std::memory_order_relaxed);
  });
  std::atomic<bool> any_weighted{false};
  parallel_for(0, num_edges, [&](std::size_t i) {
    const Edge e = edge_of(static_cast<eid>(i));
    if (e.w != weight_t{1}) any_weighted.store(true, std::memory_order_relaxed);
    if (e.u == e.v) return;
    cursor[e.u].fetch_add(1, std::memory_order_relaxed);
    cursor[e.v].fetch_add(1, std::memory_order_relaxed);
  });
  const bool weighted = any_weighted.load();

  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  parallel_for(0, n, [&](std::size_t v) {
    offsets[v] = cursor[v].load(std::memory_order_relaxed);
  });
  const eid arcs_max = exclusive_scan_inplace(offsets);

  // The arc arrays live in an mmap'ed scratch file, not on the heap —
  // that is the whole point of the streamed builder.
  const std::size_t slash = path.find_last_of('/');
  const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string tmp = opt.tmp_dir.empty()
                              ? path + ".scratch"
                              : opt.tmp_dir + "/" + base + ".scratch";
  const std::uint64_t tgt_bytes = arcs_max * sizeof(vid);
  const std::uint64_t wgt_off = (tgt_bytes + 7) / 8 * 8;
  const std::uint64_t total_bytes =
      weighted ? wgt_off + arcs_max * sizeof(weight_t) : tgt_bytes;
  {
    std::shared_ptr<MappedFile> scratch =
        MappedFile::create_readwrite(tmp, total_bytes);
    vid* tgt = reinterpret_cast<vid*>(scratch->mutable_data());
    weight_t* wgt =
        weighted ? reinterpret_cast<weight_t*>(scratch->mutable_data() + wgt_off)
                 : nullptr;

    // Pass B: regenerate every edge and scatter both arc directions to
    // slots claimed off per-vertex atomic cursors. Slot order is
    // schedule-dependent; pass C canonicalizes it.
    parallel_for(0, n, [&](std::size_t v) {
      cursor[v].store(0, std::memory_order_relaxed);
    });
    parallel_for(0, num_edges, [&](std::size_t i) {
      const Edge e = edge_of(static_cast<eid>(i));
      if (e.u == e.v) return;
      const eid s1 =
          offsets[e.u] + cursor[e.u].fetch_add(1, std::memory_order_relaxed);
      tgt[s1] = e.v;
      if (wgt) wgt[s1] = e.w;
      const eid s2 =
          offsets[e.v] + cursor[e.v].fetch_add(1, std::memory_order_relaxed);
      tgt[s2] = e.u;
      if (wgt) wgt[s2] = e.w;
    });

    // Pass C: per-vertex sort by (target, weight) and dedup keeping the
    // first — exactly build_csr's min-weight merge — giving a result
    // independent of the scatter order above.
    std::vector<eid> final_deg(static_cast<std::size_t>(n) + 1, 0);
    parallel_for(0, n, [&](std::size_t v) {
      const eid lo = offsets[v], hi = offsets[v + 1];
      const std::size_t deg = hi - lo;
      if (deg == 0) return;
      eid k = 0;
      if (!weighted) {
        std::sort(tgt + lo, tgt + hi);
        k = static_cast<eid>(std::unique(tgt + lo, tgt + hi) - (tgt + lo));
      } else {
        std::vector<std::pair<vid, weight_t>> adj(deg);
        for (std::size_t j = 0; j < deg; ++j) adj[j] = {tgt[lo + j], wgt[lo + j]};
        std::sort(adj.begin(), adj.end());
        for (std::size_t j = 0; j < deg; ++j) {
          if (k > 0 && adj[j].first == tgt[lo + k - 1]) continue;
          tgt[lo + k] = adj[j].first;
          wgt[lo + k] = adj[j].second;
          ++k;
        }
      }
      final_deg[v] = k;
    });

    std::vector<eid> final_off = final_deg;
    const eid arcs = exclusive_scan_inplace(final_off);

    // Pass D: left-compact in place. final_off[v] <= offsets[v] for every
    // v, so walking vertices in increasing order never overwrites arcs
    // that are still pending — but it must stay sequential.
    for (vid v = 0; v < n; ++v) {
      const eid src = offsets[v], dst = final_off[v], k = final_deg[v];
      if (k == 0 || src == dst) continue;
      std::memmove(tgt + dst, tgt + src, k * sizeof(vid));
      if (wgt) std::memmove(wgt + dst, wgt + src, k * sizeof(weight_t));
    }

    GraphStorage st;
    st.offsets = ArrayHandle<eid>::adopt(std::move(final_off));
    st.targets = ArrayHandle<vid>::view(scratch, tgt, arcs);
    if (weighted) st.weights = ArrayHandle<weight_t>::view(scratch, wgt, arcs);
    const Graph g = Graph::from_storage(n, std::move(st));
    write_pcsr_file(path, g, {opt.compress});
  }  // unmap the scratch before removing it
  std::remove(tmp.c_str());
}

}  // namespace parsh
