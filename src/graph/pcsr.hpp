// .pcsr: the on-disk binary CSR format.
//
// Layout (all integers little-endian, file offsets from byte 0):
//
//   [0, 4096)  header page
//     0:   8-byte magic "parshCSR"
//     8:   u32 version (currently 1)
//     12:  u32 flags — bit 0: weighted, bit 1: compressed adjacency
//     16:  u64 n (vertex count)
//     24:  u64 num_arcs (directed arcs, 2x undirected edges)
//     32:  u64 section count (always 6)
//     40:  6 x {u64 offset, u64 bytes, u64 fnv1a} section table, in order:
//            offsets, targets, weights, chunk_start, chunk_bytes, stream
//     184: u64 FNV-1a checksum of header bytes [0, 184)
//   then each present section, page-aligned (4096), in table order.
//
// Absent sections (weights of an unweighted graph; targets of a compressed
// graph; the chunk sections of a flat graph) have offset = bytes = 0.
//
// load_pcsr_file mmaps the file and builds a Graph of ArrayHandle views
// into the mapping — zero-copy, O(1) warm-up: only the header page and a
// handful of boundary words are touched, the arrays fault in lazily as
// algorithms walk them. The header checksum and all structural O(1)
// invariants are always verified; full per-section checksums are opt-in
// (PcsrLoadOptions::verify_checksums) since they read the whole file.
// Every failure throws PcsrError with the offending byte offset — the
// binary sibling of the text readers' IoError.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace parsh {

/// Error in a .pcsr file: what() describes the problem, offset() is the
/// byte position it was detected at (0 when not tied to one position).
class PcsrError : public std::runtime_error {
 public:
  PcsrError(const std::string& message, std::uint64_t offset)
      : std::runtime_error("pcsr offset " + std::to_string(offset) + ": " +
                           message),
        offset_(offset) {}

  [[nodiscard]] std::uint64_t offset() const { return offset_; }

 private:
  std::uint64_t offset_;
};

struct PcsrWriteOptions {
  /// Write the adjacency delta-varint compressed (converting if needed).
  bool compress = false;
};

struct PcsrLoadOptions {
  /// Also verify the per-section FNV-1a checksums (reads the whole file).
  bool verify_checksums = false;
};

/// Header summary, as read by tools/graph_convert and the tests.
struct PcsrInfo {
  std::uint32_t version = 0;
  bool weighted = false;
  bool compressed = false;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t adjacency_bytes = 0;  // targets or chunk index + stream
};

/// Stream `g` to `path`. Works from any backing (heap, mmap, compressed);
/// with opt.compress the flat adjacency is converted on the way out.
void write_pcsr_file(const std::string& path, const Graph& g,
                     const PcsrWriteOptions& opt = {});

/// mmap `path` and wrap it as a Graph without copying any array.
Graph load_pcsr_file(const std::string& path, const PcsrLoadOptions& opt = {});

/// Read and validate just the header (O(1)).
PcsrInfo read_pcsr_info(const std::string& path);

struct StreamCsrOptions {
  bool compress = false;
  /// Directory for the scratch scatter file; default: next to `path`.
  std::string tmp_dir;
};

/// Build a .pcsr at `path` from an edge generator without materializing
/// the edge list: edge_of(i) must be a pure function of i (the counter-
/// based Rng convention), and is called a few times per edge across the
/// count/scatter passes. Self loops are dropped, both arc directions are
/// emitted, parallel edges are merged keeping the minimum weight — the
/// exact from_edges semantics, so streaming a generator to disk and
/// loading it back is bit-identical to building the same edges in memory.
/// Peak heap is O(n); the arc arrays live in an mmap'ed scratch file that
/// is removed on success.
void stream_edges_to_pcsr(const std::string& path, vid n, eid num_edges,
                          const std::function<Edge(eid)>& edge_of,
                          const StreamCsrOptions& opt = {});

}  // namespace parsh
