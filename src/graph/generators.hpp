// Synthetic graph generators.
//
// The paper's algorithms are evaluated analytically; this reproduction
// exercises them on standard synthetic families. Every generator is
// deterministic in its seed. Weight models are applied separately so any
// topology can be combined with any weight distribution.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace parsh {

/// Simple path 0-1-...-n-1.
Graph make_path(vid n);

/// Cycle on n vertices.
Graph make_cycle(vid n);

/// Star: vertex 0 joined to all others.
Graph make_star(vid n);

/// Complete graph K_n (use small n only).
Graph make_complete(vid n);

/// Complete binary tree on n vertices (vertex i has children 2i+1, 2i+2).
Graph make_binary_tree(vid n);

/// rows x cols 2D grid (4-neighbour). Road-network-like topology.
Graph make_grid(vid rows, vid cols);

/// rows x cols 2D torus (grid with wraparound).
Graph make_torus(vid rows, vid cols);

/// Erdős–Rényi-style G(n, m): m distinct uniform random edges (self loops
/// and duplicates resolved by resampling deterministic in `seed`).
Graph make_random_graph(vid n, eid m, std::uint64_t seed);

/// RMAT / Kronecker-style skewed-degree graph with ~m edges. Parameters
/// (a,b,c) follow the usual convention; defaults give the Graph500 mix.
/// Social-network-like topology.
Graph make_rmat(vid n, eid m, std::uint64_t seed, double a = 0.57, double b = 0.19,
                double c = 0.19);

/// Heavy-tailed RMAT preset: (a,b,c) = (0.72, 0.12, 0.12), a much more
/// skewed quadrant mix than the Graph500 defaults, concentrating degree
/// mass on a few hub vertices. The stress input for the degree-aware
/// work-stealing rounds (a frontier holding one hub carries most of the
/// round's edges).
Graph make_rmat_heavy(vid n, eid m, std::uint64_t seed);

/// Hub-and-spoke skew generator: vertices [0, hubs) form a ring, and every
/// other vertex attaches to one seed-deterministic hub, giving `hubs`
/// vertices of expected degree ~(n - hubs) / hubs and everyone else degree
/// <= 3. The most extreme frontier skew a connected graph can show (a star
/// is the hubs = 1 special case); deterministic in `seed`.
Graph make_hubs(vid n, vid hubs, std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edges between
/// pairs at distance <= radius, weighted by Euclidean distance (scaled so
/// the minimum weight is >= 1). Mesh-like topology.
Graph make_geometric(vid n, double radius, std::uint64_t seed);

/// A long path with `extra` random chords. Worst-case-ish input for
/// hopsets (shortest paths have many hops); used by the Figure 3 demo.
Graph make_path_with_chords(vid n, eid extra, std::uint64_t seed);

/// d-dimensional hypercube on 2^dim vertices (diameter = dim).
Graph make_hypercube(int dim);

/// Random d-regular-ish graph via the configuration model (duplicate and
/// self-loop stubs dropped, so degrees are <= d). Expander-like topology.
Graph make_random_regular(vid n, vid d, std::uint64_t seed);

/// Barbell: two cliques of size k joined by a path of length bridge.
/// Classic worst case for cut-based heuristics.
Graph make_barbell(vid k, vid bridge);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
Graph make_caterpillar(vid spine, vid legs);

// --- Streamed-to-disk variants -------------------------------------------
//
// These emit a .pcsr file directly (graph/pcsr.hpp) without materializing
// an edge list: edges are regenerated from the counter-based Rng stream in
// each build pass and the arc arrays live in an mmap'ed scratch file, so a
// 50M+ edge RMAT builds with O(n) heap. The result is bit-identical to
// writing the corresponding in-memory generator output (same dedup and
// min-weight-merge semantics), which the tests pin.

/// Stream make_rmat(n, m, seed, a, b, c) to `path` as .pcsr.
void stream_rmat_pcsr(const std::string& path, vid n, eid m, std::uint64_t seed,
                      double a = 0.57, double b = 0.19, double c = 0.19,
                      bool compress = false);

/// Stream make_rmat_heavy(n, m, seed) to `path` as .pcsr.
void stream_rmat_heavy_pcsr(const std::string& path, vid n, eid m,
                            std::uint64_t seed, bool compress = false);

/// Stream make_grid(rows, cols) to `path` as .pcsr.
void stream_grid_pcsr(const std::string& path, vid rows, vid cols,
                      bool compress = false);

// --- Weight models -------------------------------------------------------

/// Assign integer weights uniform in [lo, hi].
Graph with_uniform_weights(const Graph& g, std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t seed);

/// Assign integer weights log-uniform in [1, ratio]: exercises the
/// bucketing in the weighted spanner (U = ratio) and the weight classes in
/// Appendix B.
Graph with_log_uniform_weights(const Graph& g, double ratio, std::uint64_t seed);

/// Connect the graph by adding one unit edge between consecutive
/// components (components ordered by smallest vertex id). Generators can
/// produce disconnected graphs; benches that measure distances use this.
Graph ensure_connected(const Graph& g);

}  // namespace parsh
