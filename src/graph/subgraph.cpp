#include "graph/subgraph.hpp"

#include "parallel/parallel_for.hpp"

namespace parsh {

Subgraph induced_subgraph(const Graph& g, const std::vector<vid>& vertices) {
  std::vector<vid> local(g.num_vertices(), kNoVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local[vertices[i]] = static_cast<vid>(i);
  }
  std::vector<Edge> edges;
  for (vid u_local = 0; u_local < vertices.size(); ++u_local) {
    const vid u = vertices[u_local];
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      const vid v_local = local[v];
      if (v_local == kNoVertex || v_local <= u_local) continue;
      edges.push_back({u_local, v_local, g.weight(e)});
    }
  }
  Subgraph out;
  out.graph = Graph::from_edges(static_cast<vid>(vertices.size()), std::move(edges));
  out.original_id = vertices;
  return out;
}

std::vector<Subgraph> induced_subgraphs_by_label(const Graph& g,
                                                 const std::vector<vid>& label,
                                                 vid num_clusters) {
  const vid n = g.num_vertices();
  // Bucket vertices by label (stable in vertex order → deterministic).
  std::vector<std::vector<vid>> members(num_clusters);
  for (vid v = 0; v < n; ++v) members[label[v]].push_back(v);
  std::vector<Subgraph> out(num_clusters);
  parallel_for_grain(0, num_clusters, 1, [&](std::size_t c) {
    out[c] = induced_subgraph(g, members[c]);
  });
  return out;
}

QuotientGraph quotient_graph(const Graph& g, const std::vector<vid>& label,
                             vid num_components) {
  std::vector<Edge> edges;
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      if (u >= v) continue;
      const vid cu = label[u], cv = label[v];
      if (cu == cv) continue;  // self loop in the quotient — drop
      edges.push_back({cu, cv, g.weight(e)});
    }
  }
  QuotientGraph out;
  out.graph = Graph::from_edges(num_components, std::move(edges));  // dedup keeps min w
  out.component = label;
  return out;
}

}  // namespace parsh
