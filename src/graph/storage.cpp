#include "graph/storage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace parsh {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::shared_ptr<MappedFile> MappedFile::open_readonly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      fail("cannot mmap", path);
    }
  }
  ::close(fd);  // the mapping keeps its own reference

  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->addr_ = addr;
  file->size_ = size;
  file->writable_ = false;
  file->path_ = path;
  return file;
}

std::shared_ptr<MappedFile> MappedFile::create_readwrite(
    const std::string& path, std::size_t bytes) {
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail("cannot create", path);

  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    fail("cannot size", path);
  }

  void* addr = nullptr;
  if (bytes > 0) {
    addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      fail("cannot mmap", path);
    }
  }
  ::close(fd);

  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->addr_ = addr;
  file->size_ = bytes;
  file->writable_ = true;
  file->path_ = path;
  return file;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
}

}  // namespace parsh
