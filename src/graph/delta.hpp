// Batched graph mutations: GraphDelta + Graph::apply_delta.
//
// A delta is a batch of undirected edge operations against an immutable
// CSR graph: inserts (which double as reweights when the edge already
// exists) and removals. apply_delta merges the batch into a NEW Graph —
// the input is never mutated, which is what lets the serving layer keep
// answering queries from the old snapshot while the new one is built
// (see sssp/dynamic_approx.hpp).
//
// Semantics, chosen to match Graph::from_edges so an incrementally
// maintained graph is indistinguishable from one rebuilt from scratch:
//   * removals apply before inserts — an edge in both lists ends up
//     present, at the insert's weight;
//   * duplicate inserts of the same {u,v} merge keeping the minimum
//     weight (the from_edges parallel-edge convention);
//   * self loops, removals of absent edges, and inserts that restate the
//     current weight are no-ops (counted, not errors);
//   * endpoints must lie in [0, n) — the vertex set is fixed; a delta
//     referencing v >= n throws std::invalid_argument, as does a
//     non-positive insert weight (CSR invariant).
//
// Storage sharing: the result reuses every GraphStorage handle the batch
// did not invalidate. An all-no-op delta returns the input's handles
// unchanged (O(1), ArrayHandle::shares observable); a reweight-only
// delta (no arcs added or removed) shares offsets, targets and the
// compressed-adjacency sections and materializes only a new weights
// array; a structural delta rebuilds the adjacency via a parallel
// per-vertex merge (count pass, exclusive scan, fill pass — every write
// slot-fixed, so the arrays are identical at any worker count) and
// re-encodes the compressed form iff the input carried one. All three
// paths work identically on heap-backed and mmap-backed storage; the new
// graph never aliases mutated sections of the old one.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

/// A batch of undirected edge operations. `insert` entries insert or
/// reweight {u,v} to weight w; `remove` entries delete {u,v} if present
/// (their weight field is ignored).
struct GraphDelta {
  std::vector<Edge> insert;
  std::vector<Edge> remove;

  [[nodiscard]] bool empty() const { return insert.empty() && remove.empty(); }
};

/// One undirected edge whose presence or weight actually changed, with
/// u < v. A weight of 0 encodes "absent" on that side (weights are
/// strictly positive, so 0 is unambiguous).
struct EdgeChange {
  vid u = 0;
  vid v = 0;
  weight_t w_old = 0;  ///< 0 = edge absent before the delta
  weight_t w_new = 0;  ///< 0 = edge absent after the delta

  friend bool operator==(const EdgeChange&, const EdgeChange&) = default;
};

/// apply_delta's result: the new graph plus the effective change set the
/// incremental hopset rebuild keys its dirty-region tracking off.
struct DeltaResult {
  Graph graph;
  /// Edges that actually changed, sorted by (u, v); no-ops excluded.
  std::vector<EdgeChange> changes;
  /// Sorted unique endpoints of `changes` — the delta's touched vertices.
  std::vector<vid> touched;
  std::uint64_t inserted = 0;    ///< edges absent before, present after
  std::uint64_t removed = 0;     ///< edges present before, absent after
  std::uint64_t reweighted = 0;  ///< present on both sides, weight changed
  std::uint64_t noops = 0;       ///< operations with no effect
};

}  // namespace parsh
