// Parallel comparison sort (blocked merge sort). Used by the CSR builder
// (sorting edge lists) and by the weighted spanner's bucket grouping.
#pragma once

#include <algorithm>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace parsh {

namespace detail {

template <typename It, typename Cmp>
void merge_sort_rec(It begin, It end, typename std::iterator_traits<It>::value_type* buf,
                    Cmp cmp, int levels) {
  const auto n = static_cast<std::size_t>(end - begin);
  if (levels <= 0 || n < 8192) {
    std::sort(begin, end, cmp);
    return;
  }
  It mid = begin + static_cast<std::ptrdiff_t>(n / 2);
  parallel_invoke([&] { merge_sort_rec(begin, mid, buf, cmp, levels - 1); },
                  [&] { merge_sort_rec(mid, end, buf + n / 2, cmp, levels - 1); });
  std::merge(begin, mid, mid, end, buf, cmp);
  std::copy(buf, buf + n, begin);
}

}  // namespace detail

/// Sort `v` with comparator `cmp`, splitting the work across threads.
/// Stable within each leaf (std::sort) but not globally stable.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  if (v.size() < 8192 || num_workers() == 1) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  std::vector<T> buf(v.size());
  int levels = 0;
  for (int w = num_workers(); (1 << levels) < w; ++levels) {
  }
  detail::merge_sort_rec(v.begin(), v.end(), buf.data(), cmp, levels + 1);
}

}  // namespace parsh
