// Shared-memory loop parallelism. The PRAM algorithms in this library are
// expressed as synchronous rounds of flat data-parallel loops; this header
// provides the loop primitive, backed by OpenMP when available and falling
// back to a plain sequential loop otherwise (the semantics are identical —
// iterations must be independent).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#ifdef PARSH_HAVE_OPENMP
#include <omp.h>
#endif

namespace parsh {

// ---- nested-parallelism diagnostics -----------------------------------------
//
// parallel_for / parallel_for_grain / parallel_invoke guard on
// omp_in_parallel(): reached from inside an existing parallel region (a
// persistent team, a pool fan-out) they run sequentially, because nested
// OpenMP regions are disabled. That is the correct *semantics*, but it is
// also how a forgotten conversion to the team path silently serializes a
// hot loop. These hooks make it observable: every such silent
// serialization bumps nested_sequential_calls(), and tests exercising a
// code path that must never fall through (the persistent-team drain loops
// route every phase through Team::loop) can turn the event into a hard
// abort with assert_on_nested_sequential(true).

namespace detail {
inline std::atomic<std::uint64_t> g_nested_sequential{0};
inline std::atomic<bool> g_nested_sequential_abort{false};

inline void note_nested_sequential() {
  g_nested_sequential.fetch_add(1, std::memory_order_relaxed);
  if (g_nested_sequential_abort.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "parsh: parallel_for reached from inside a parallel region "
                 "(silent sequential fallback) while "
                 "assert_on_nested_sequential is armed\n");
    std::abort();
  }
}
}  // namespace detail

/// Times a parallel loop large enough to go parallel ran sequentially
/// only because it was reached from inside an existing parallel region.
/// Cumulative and process-global (relaxed; a debug/diagnostic counter).
inline std::uint64_t nested_sequential_calls() {
  return detail::g_nested_sequential.load(std::memory_order_relaxed);
}

/// Abort (with a message) on the next nested-sequential fallback. Test
/// hook: arm it around a region that must have no unconverted loops.
inline void assert_on_nested_sequential(bool on) {
  detail::g_nested_sequential_abort.store(on, std::memory_order_relaxed);
}

/// Number of worker threads the runtime will use for parallel loops.
inline int num_workers() {
#ifdef PARSH_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

#ifdef PARSH_HAVE_OPENMP
namespace detail {
/// Threads a compute-bound fork actually profits from:
/// min(omp_get_max_threads(), omp_get_num_procs()). Oversubscribing the
/// affinity mask (OMP_NUM_THREADS above the processor count) turns the
/// join barrier of every data-parallel loop into context-switch churn;
/// the cap changes scheduling only, never which iterations run.
inline int fork_width() {
  const int procs = omp_get_num_procs();
  const int want = omp_get_max_threads();
  return want < procs ? want : procs;
}
}  // namespace detail
#endif

/// Index of the calling worker in [0, num_workers()). 0 outside parallel
/// regions; inside a parallel_for body it identifies the executing thread,
/// so per-worker scratch indexed by it is race-free.
inline int worker_id() {
#ifdef PARSH_HAVE_OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Per-worker uint64 accumulator for tallies taken inside parallel loops
/// (work counters, winner counts). One cache-line-padded slot per worker,
/// so the hot-path add never contends or false-shares; drain() sums and
/// resets from sequential context.
class WorkerCounter {
 public:
  WorkerCounter() : slots_(static_cast<std::size_t>(num_workers())) {}

  /// Add from inside a parallel region (race-free per worker).
  void add(std::uint64_t v) { slots_[static_cast<std::size_t>(worker_id())].v += v; }

  /// Sum all slots and reset them. Call between parallel regions only.
  std::uint64_t drain() {
    std::uint64_t total = 0;
    for (Slot& s : slots_) {
      total += s.v;
      s.v = 0;
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::uint64_t v = 0;
  };
  std::vector<Slot> slots_;
};

/// Below this iteration count, parallel_for runs sequentially: spawning
/// threads for tiny loops costs more than it saves.
inline constexpr std::size_t kParallelGrain = 2048;

/// Apply `f(i)` for every i in [begin, end). Iterations must not depend on
/// each other. `f` is taken by value per thread.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F f) {
  if (end <= begin) return;
#ifdef PARSH_HAVE_OPENMP
  if (end - begin >= kParallelGrain && omp_get_max_threads() > 1) {
    if (omp_in_parallel()) {
      detail::note_nested_sequential();
    } else if (const int nt = detail::fork_width(); nt > 1) {
      const auto b = static_cast<std::int64_t>(begin);
      const auto e = static_cast<std::int64_t>(end);
#pragma omp parallel for schedule(static) num_threads(nt)
      for (std::int64_t i = b; i < e; ++i) f(static_cast<std::size_t>(i));
      return;
    }
  }
#endif
  for (std::size_t i = begin; i < end; ++i) f(i);
}

/// parallel_for with an explicit grain size: `grain` is both the minimum
/// iteration count worth going parallel for and the dynamic chunk handed
/// to each worker. grain=1 parallelizes even tiny loops whose iterations
/// are individually heavy (per-center BFS, per-worker buffer moves).
template <typename F>
void parallel_for_grain(std::size_t begin, std::size_t end, std::size_t grain, F f) {
  if (end <= begin) return;
#ifdef PARSH_HAVE_OPENMP
  if (end - begin >= grain && omp_get_max_threads() > 1) {
    if (omp_in_parallel()) {
      detail::note_nested_sequential();
    } else if (const int nt = detail::fork_width(); nt > 1) {
      const auto b = static_cast<std::int64_t>(begin);
      const auto e = static_cast<std::int64_t>(end);
      const auto chunk = static_cast<std::int64_t>(grain == 0 ? 1 : grain);
#pragma omp parallel for schedule(dynamic, chunk) num_threads(nt)
      for (std::int64_t i = b; i < e; ++i) f(static_cast<std::size_t>(i));
      return;
    }
  }
#endif
  for (std::size_t i = begin; i < end; ++i) f(i);
}

/// Run two independent tasks, potentially in parallel (fork-join). Used by
/// the recursive hopset construction to descend into sibling clusters.
template <typename F1, typename F2>
void parallel_invoke(F1 f1, F2 f2) {
#ifdef PARSH_HAVE_OPENMP
  if (omp_get_max_threads() > 1 && omp_in_parallel()) {
    detail::note_nested_sequential();
  }
  if (detail::fork_width() > 1 && !omp_in_parallel()) {
#pragma omp parallel sections num_threads(2)
    {
#pragma omp section
      f1();
#pragma omp section
      f2();
    }
    return;
  }
#endif
  f1();
  f2();
}

}  // namespace parsh
