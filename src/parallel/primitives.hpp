// Flat data-parallel building blocks: reduce, exclusive scan (prefix sum),
// pack/filter, and counting. These are the PRAM primitives every algorithm
// in the paper is built from; all are O(n) work and O(log n) depth in the
// abstract model (implemented as blocked two-pass loops).
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace parsh {

namespace detail {
inline std::size_t num_blocks(std::size_t n, std::size_t block) {
  return (n + block - 1) / block;
}
inline constexpr std::size_t kScanBlock = 4096;
}  // namespace detail

/// Best-effort read prefetch with low temporal locality — the relax inner
/// loops peek a few edges ahead so the random per-target state reads
/// overlap the sequential CSR stream. A no-op where unsupported.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

/// How many edges ahead the relax bodies prefetch per-target state.
inline constexpr std::size_t kPrefetchAhead = 8;

/// Sum-reduce `f(i)` over [0, n).
template <typename T, typename F>
T parallel_reduce_sum(std::size_t n, F f) {
  if (n == 0) return T{};
  const std::size_t nb = detail::num_blocks(n, detail::kScanBlock);
  std::vector<T> partial(nb, T{});
  parallel_for(0, nb, [&](std::size_t b) {
    std::size_t lo = b * detail::kScanBlock;
    std::size_t hi = std::min(n, lo + detail::kScanBlock);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += f(i);
    partial[b] = acc;
  });
  T total{};
  for (const T& p : partial) total += p;
  return total;
}

/// Max-reduce `f(i)` over [0, n); returns `identity` for empty ranges.
template <typename T, typename F>
T parallel_reduce_max(std::size_t n, F f, T identity) {
  if (n == 0) return identity;
  const std::size_t nb = detail::num_blocks(n, detail::kScanBlock);
  std::vector<T> partial(nb, identity);
  parallel_for(0, nb, [&](std::size_t b) {
    std::size_t lo = b * detail::kScanBlock;
    std::size_t hi = std::min(n, lo + detail::kScanBlock);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) {
      T v = f(i);
      if (acc < v) acc = v;
    }
    partial[b] = acc;
  });
  T total = identity;
  for (const T& p : partial) {
    if (total < p) total = p;
  }
  return total;
}

/// Exclusive prefix sum of `values` in place; returns the grand total.
/// values[i] becomes sum of the original values[0..i).
template <typename T>
T exclusive_scan_inplace(std::vector<T>& values) {
  const std::size_t n = values.size();
  if (n == 0) return T{};
  const std::size_t nb = detail::num_blocks(n, detail::kScanBlock);
  std::vector<T> block_sum(nb, T{});
  parallel_for(0, nb, [&](std::size_t b) {
    std::size_t lo = b * detail::kScanBlock;
    std::size_t hi = std::min(n, lo + detail::kScanBlock);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += values[i];
    block_sum[b] = acc;
  });
  T running{};
  for (std::size_t b = 0; b < nb; ++b) {
    T next = running + block_sum[b];
    block_sum[b] = running;
    running = next;
  }
  parallel_for(0, nb, [&](std::size_t b) {
    std::size_t lo = b * detail::kScanBlock;
    std::size_t hi = std::min(n, lo + detail::kScanBlock);
    T acc = block_sum[b];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = acc + values[i];
      values[i] = acc;
      acc = next;
    }
  });
  return running;
}

/// Keep index i iff pred(i); returns the surviving indices in order.
template <typename Pred>
std::vector<std::size_t> pack_indices(std::size_t n, Pred pred) {
  std::vector<std::size_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1 : 0; });
  std::vector<std::size_t> offsets = flags;
  std::size_t total = exclusive_scan_inplace(offsets);
  std::vector<std::size_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = i;
  });
  return out;
}

/// Pack values: out contains f(i) for every i passing pred, in index order.
template <typename T, typename Pred, typename F>
std::vector<T> pack_values(std::size_t n, Pred pred, F f) {
  std::vector<std::size_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1 : 0; });
  std::vector<std::size_t> offsets = flags;
  std::size_t total = exclusive_scan_inplace(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = f(i);
  });
  return out;
}

/// Count the i in [0, n) with pred(i).
template <typename Pred>
std::size_t parallel_count(std::size_t n, Pred pred) {
  return parallel_reduce_sum<std::size_t>(
      n, [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; });
}

}  // namespace parsh
