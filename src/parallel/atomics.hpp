// CAS-loop atomic combining operations (the CRCW PRAM "priority write").
// EST clustering and the round-synchronous SSSP routines resolve concurrent
// writes to the same vertex with these, plus the packed 64-bit
// (quantized key, via) priority word that lets a (key, via) lexicographic
// min-reduce run as a single atomic_write_min instead of three
// barrier-separated phases.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

#include "util/types.hpp"

namespace parsh {

/// Atomically set *addr = min(*addr, value). Returns true iff this call
/// strictly lowered the stored value (i.e. the caller "won").
///
/// Memory-ordering semantics: all operations are memory_order_relaxed.
/// The CAS loop still makes the VALUE exact — after any set of concurrent
/// calls, *addr holds the minimum of its prior value and every written
/// value, because a CAS only succeeds against the currently stored word
/// and only replaces it with something smaller. What relaxed ordering
/// does NOT provide is inter-thread visibility of *other* locations; the
/// round-synchronous consumers never need it mid-round (each round's
/// reduce phases are separated by parallel_for joins, whose barriers
/// publish every write before the next phase reads). Use these only under
/// that round-barrier discipline.
template <typename T>
bool atomic_write_min(std::atomic<T>* addr, T value) {
  T cur = addr->load(std::memory_order_relaxed);
  while (value < cur) {
    if (addr->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically set *addr = max(*addr, value). Returns true iff this call
/// strictly raised the stored value.
template <typename T>
bool atomic_write_max(std::atomic<T>* addr, T value) {
  T cur = addr->load(std::memory_order_relaxed);
  while (value > cur) {
    if (addr->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Compare-and-swap convenience: set *addr = desired iff *addr == expected.
template <typename T>
bool atomic_cas(std::atomic<T>* addr, T expected, T desired) {
  return addr->compare_exchange_strong(expected, desired, std::memory_order_relaxed);
}

// ---- packed (quantized key, via) priority word ------------------------------
//
// A round-synchronous CRCW min-reduce over (key, via) pairs — key a
// non-negative double, via a vertex id, ties toward the smaller via — can be
// collapsed into ONE atomic_write_min per proposal when both halves fit one
// 64-bit word: high 40 bits the quantized key, low 24 bits the via. The
// quantization must be *exactly* order-isomorphic to double comparison or
// the packed winner could differ from the three-phase winner; we get that
// for free from IEEE-754: for non-negative finite doubles the raw bit
// pattern, read as an unsigned integer, is strictly monotone in the value.
// Within one engine round every key lies in [t, t+1) (t = the bucket key),
// so the ULP offset  bits(key) - bits(double(t))  is an injective, monotone
// image of the key. It fits 40 bits iff [t, t+1) holds at most 2^40
// representable doubles, i.e. once t >= 2^12 (spacing >= 2^-40) — exactly
// the regime Klein-Subramanian weight rounding pushes keys into. Rounds
// whose key range does not fit fall back to the three-phase reduce.

/// Bits of the packed word reserved for the via vertex id.
inline constexpr int kPackedViaBits = 24;
/// Largest packable real via id is kPackedNoVia - 1; kNoVertex maps to
/// kPackedNoVia so a self-start proposal still loses via-ties to any
/// relayed proposal, matching atomic_write_min on raw vids.
inline constexpr std::uint64_t kPackedNoVia = (std::uint64_t{1} << kPackedViaBits) - 1;
/// Quantized keys must stay below 2^40 so (qkey << 24 | via) fits 64 bits.
inline constexpr std::uint64_t kPackedKeyLimit = std::uint64_t{1} << 40;
/// "No proposal yet" — larger than every real packed word except the one
/// degenerate (max qkey, kPackedNoVia) self-start word, which is unique per
/// vertex per round and therefore harmless.
inline constexpr std::uint64_t kPackedInf = ~std::uint64_t{0};

/// Order-preserving unsigned image of a non-negative finite double.
inline std::uint64_t double_order_bits(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

/// True iff every double in [lo, hi) quantizes (as a ULP offset from lo)
/// into < 2^40 values, i.e. the packed word can carry any key in the
/// interval. `lo` and `hi` must be the exact (integer-valued, < 2^53)
/// interval bounds — the callers derive them from integer bucket
/// arithmetic, so no rounding slips a key below `lo`. This is the general
/// form shared by every (key, via) / (dist, parent) round: est_cluster's
/// unit-width rounds [t, t+1) and delta-stepping's width-delta buckets
/// [b*delta, (b+1)*delta) both fit once lo/width >= 2^12 (spacing of
/// doubles at lo is lo * 2^-52, so the interval holds ~2^52 * width / lo
/// representable values).
inline bool packed_interval_fits(double lo, double hi) {
  if (!(lo >= 0) || !(hi > lo) || hi >= 9007199254740992.0 /* 2^53 */) {
    return false;
  }
  return double_order_bits(hi) - double_order_bits(lo) <= kPackedKeyLimit;
}

/// The unit-width special case: every double in round `round_key`'s
/// interval [t, t+1) fits, i.e. t >= 2^12. The t < 2^52 guard keeps
/// double(t) exact and the interval well-formed.
inline bool packed_round_fits(std::uint64_t round_key) {
  if (round_key >= (std::uint64_t{1} << 52)) return false;
  return packed_interval_fits(static_cast<double>(round_key),
                              static_cast<double>(round_key) + 1.0);
}

/// Pack (key, via) for a round whose base word is `base_bits` =
/// double_order_bits(double(round_key)). Requires packed_round_fits(round)
/// and via < kPackedNoVia (or via == kNoVertex).
///
/// Exact ordering semantics of atomic_write_min on the packed word: the
/// unsigned integer order of pack_key_via(k1, b, v1) vs
/// pack_key_via(k2, b, v2) (same round base b) equals the lexicographic
/// order of (k1, v1) vs (k2, v2) with doubles compared as reals and
/// kNoVertex ordered after every real via id. Three ingredients, each
/// exact — no rounding is involved anywhere:
///  * key major: the quantized key occupies the high 40 bits, so any key
///    difference dominates any via difference;
///  * key order: for non-negative finite doubles, bit_cast<uint64> is
///    strictly monotone in the value, so qkey = bits(key) - base_bits
///    preserves real order exactly (injective: distinct keys in the
///    round's interval get distinct qkeys, given packed_interval_fits);
///  * via minor: equal keys produce equal high bits, leaving integer
///    order of the low 24 bits = via order, with kNoVertex mapped to the
///    all-ones kPackedNoVia (ordered last, losing ties to any real via —
///    matching atomic_write_min on raw vids in the three-phase path).
/// Hence one atomic_write_min per proposal computes exactly the
/// (key, via) lexicographic argmin the three-phase reduce computes, which
/// is why the two paths are bit-identical.
inline std::uint64_t pack_key_via(double key, std::uint64_t base_bits, vid via) {
  const std::uint64_t qkey = double_order_bits(key) - base_bits;
  const std::uint64_t packed_via = via == kNoVertex ? kPackedNoVia : via;
  return (qkey << kPackedViaBits) | packed_via;
}

}  // namespace parsh
