// CAS-loop atomic combining operations (the CRCW PRAM "priority write").
// EST clustering and the round-synchronous SSSP routines resolve concurrent
// writes to the same vertex with these.
#pragma once

#include <atomic>

namespace parsh {

/// Atomically set *addr = min(*addr, value). Returns true iff this call
/// strictly lowered the stored value (i.e. the caller "won").
template <typename T>
bool atomic_write_min(std::atomic<T>* addr, T value) {
  T cur = addr->load(std::memory_order_relaxed);
  while (value < cur) {
    if (addr->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically set *addr = max(*addr, value). Returns true iff this call
/// strictly raised the stored value.
template <typename T>
bool atomic_write_max(std::atomic<T>* addr, T value) {
  T cur = addr->load(std::memory_order_relaxed);
  while (value > cur) {
    if (addr->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Compare-and-swap convenience: set *addr = desired iff *addr == expected.
template <typename T>
bool atomic_cas(std::atomic<T>* addr, T expected, T desired) {
  return addr->compare_exchange_strong(expected, desired, std::memory_order_relaxed);
}

}  // namespace parsh
