// Persistent-team round execution.
//
// The round-synchronous drivers (est_cluster's proposal loop,
// delta_stepping's bucket loop, level-synchronous BFS, hop-limited
// Bellman-Ford) used to execute every per-round phase — priority-write
// min-reduce, winner settlement, frontier expansion, staging flush — as its
// own OpenMP `parallel for`. That is one fork + one join per phase, ~5 per
// round, hundreds of rounds per run: at small round sizes the fork/join
// overhead dominates and multi-threaded runs LOSE to one thread (the
// `speedup_vs_1t < 1` rows in BENCH_est_cluster.json before this change).
//
// Team replaces that with ONE parallel region for the whole drain loop:
//
//   Team::drive(persistent, [&](Team& team) {
//     while (...) {            // sequential control flow, thread 0 only
//       team.loop(0, n, grain, body);   // one barrier-separated stage
//       ...                    // pop / scan / sort between stages
//     }
//   });
//
// Thread 0 runs the driver's sequential control flow; the other region
// threads park in a serve loop and execute stages the driver publishes.
// A stage is a dynamically-chunked for-loop (workers claim `grain`-sized
// chunks from a shared cursor — the same work-stealing the fork-join path
// got from `schedule(dynamic, chunk)`), followed by a completion barrier:
// loop() returns only after every chunk ran, so stages are exactly the
// barrier-separated phases of the fork-join formulation, minus the
// per-phase thread fork/join.
//
// Synchronization is three std::atomics (stage sequence, chunk cursor,
// completion count) with acquire/release pairing — every write a stage
// body makes happens-before the driver's code after loop(), and every
// driver write before loop() happens-before the bodies. Idle workers spin
// briefly and then futex-park (std::atomic::wait), so an oversubscribed
// machine degrades to roughly sequential speed instead of thrashing.
//
// Modes, all producing bit-identical consumer output (the consumers only
// run order-independent CRCW reduces / first-writer claims inside stages):
//  * persistent = true, >1 worker available, not already inside a parallel
//    region: the real thing described above.
//  * persistent = false (the workspaces' force_fork_join test hook): no
//    region is opened; loop() falls back to parallel_for_grain, i.e. the
//    historical fork-join-per-phase behavior.
//  * one worker, OpenMP absent, or already nested inside a parallel region
//    (a pool fan-out, the hopset recursion): driver runs inline and
//    loop() degenerates to a plain sequential loop — the outer layer owns
//    the parallelism.
//
// Nested parallel_for calls from inside the region silently serialize
// (OpenMP nesting is off); that is detected by nested_sequential_calls()
// in parallel_for.hpp — drivers must route every phase through
// Team::loop, and the determinism tests arm assert_on_nested_sequential
// to keep it that way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>

#include "parallel/parallel_for.hpp"

namespace parsh {

class Team {
 public:
  Team() = default;
  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// How loop() schedules its iterations.
  enum class Mode {
    kSequential,  ///< plain loop on the calling thread (1 worker, nested
                  ///< inside an outer parallel region, or more workers
                  ///< configured than processors exist)
    kForkJoin,    ///< parallel_for_grain per stage — the historical
                  ///< per-phase fork-join (the force_fork_join hook)
    kPersistent,  ///< stages served by the parked worker team
  };

  /// Run `driver(team)` with a persistent worker team when `persistent`
  /// is set and the runtime can actually provide one (OpenMP, >1 thread,
  /// not already inside a parallel region); otherwise inline.
  ///
  /// The team is sized min(omp_get_max_threads(), omp_get_num_procs()):
  /// a barrier-synchronized compute team never benefits from more workers
  /// than processors, and oversubscribing one (OMP_NUM_THREADS above the
  /// affinity mask) turns every stage barrier into context-switch churn.
  /// The cap changes scheduling only — consumer output is thread-count-
  /// invariant by the determinism contract.
  template <typename Driver>
  static void drive(bool persistent, Driver&& driver) {
    Team team;
#ifdef PARSH_HAVE_OPENMP
    if (!persistent) {
      // The force_fork_join hook: the historical per-phase fork-join.
      team.mode_ = Mode::kForkJoin;
      driver(team);
      return;
    }
    const int forced = forced_width_ref_();
    int cap = forced > 0 ? forced : detail::fork_width();
    // Never wider than num_workers(): every consumer sizes its per-worker
    // scratch (engine staging, winner lists, WorkerCounter slots) by
    // omp_get_max_threads(), and the num_threads clause below would
    // otherwise override it.
    if (cap > omp_get_max_threads()) cap = omp_get_max_threads();
    if (cap > 1 && !omp_in_parallel()) {
      std::exception_ptr error;
#pragma omp parallel num_threads(cap)
      {
        if (omp_get_thread_num() == 0) {
          // The region may have been granted fewer threads than asked.
          team.nthreads_ = omp_get_num_threads();
          team.mode_ = team.nthreads_ > 1 ? Mode::kPersistent : Mode::kSequential;
          try {
            driver(team);
          } catch (...) {
            error = std::current_exception();
          }
          team.shutdown_();
        } else {
          team.serve_();
        }
      }
      if (error) std::rethrow_exception(error);
      return;
    }
#endif
    (void)persistent;
    driver(team);
  }

  /// True when a real worker team is parked behind this object (stages
  /// will run across threads). False in every inline/fork-join mode.
  [[nodiscard]] bool persistent() const { return mode_ == Mode::kPersistent; }

  /// Test hook: force the persistent team width (0 = automatic,
  /// min(omp_get_max_threads(), omp_get_num_procs())). Lets the stage
  /// machinery be exercised with real workers even on machines with
  /// fewer processors than the test wants threads (the unit and TSan
  /// suites pin 4). Always clamped to omp_get_max_threads(), which sizes
  /// every consumer's per-worker scratch — callers that want a wide team
  /// must raise the OpenMP thread count too (at_threads in the tests).
  /// Scheduling only — output is width-invariant.
  static void force_width(int width) { forced_width_ref_() = width; }

  /// Threads in the team (1 in the inline modes).
  [[nodiscard]] int size() const { return nthreads_ > 1 ? nthreads_ : 1; }

  /// One barrier-separated stage: apply `f(i)` for i in [begin, end),
  /// iterations independent, distributed over the team in `grain`-sized
  /// dynamically-claimed chunks. Returns after ALL iterations completed
  /// (their writes visible to the caller). Call from the driver thread
  /// only; `grain` is also the cutoff below which the stage runs inline
  /// on the driver (waking workers for a handful of items costs more than
  /// the items). Outside a persistent team this is parallel_for_grain —
  /// the historical fork-join phase.
  template <typename F>
  void loop(std::size_t begin, std::size_t end, std::size_t grain, F f) {
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    if (mode_ == Mode::kSequential) {
      // One worker (or nested inside an outer parallel region, or the
      // configured thread count exceeds the machine): a plain loop, with
      // no fork the runtime would have to serialize anyway.
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    if (mode_ == Mode::kForkJoin) {
      parallel_for_grain(begin, end, grain, f);
      return;
    }
    if (end - begin <= grain) {
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    stage_fn_ = [](void* ctx, std::size_t lo, std::size_t hi) {
      F& body = *static_cast<F*>(ctx);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    };
    stage_ctx_ = &f;
    stage_end_ = end;
    stage_grain_ = grain;
    cursor_.store(begin, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    seq_.fetch_add(1, std::memory_order_release);  // publish the stage
    seq_.notify_all();                             // wake parked workers
    run_stage_();                                  // the driver works too
    // Completion barrier: spin (the stages are short and the driver is
    // usually last to finish its own chunks), yielding so an
    // oversubscribed machine still makes progress.
    const int expected = nthreads_ - 1;
    for (int spins = 0; done_.load(std::memory_order_acquire) != expected;) {
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      } else {
        cpu_relax_();
      }
    }
  }

 private:
  /// Spins before the driver's completion wait / a worker's stage wait
  /// backs off (yield / futex-park respectively).
  static constexpr int kSpinsBeforeYield = 256;

  static int& forced_width_ref_() {
    static int width = 0;
    return width;
  }

  static void cpu_relax_() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  /// Claim and run chunks of the published stage until the cursor passes
  /// the end. Runs on every team thread, driver included.
  void run_stage_() {
    const auto fn = stage_fn_;
    void* const ctx = stage_ctx_;
    const std::size_t end = stage_end_;
    const std::size_t grain = stage_grain_;
    for (;;) {
      const std::size_t lo = cursor_.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      fn(ctx, lo, hi);
    }
  }

  /// Worker loop: wait for a stage (or shutdown), run it, report done.
  void serve_() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::uint64_t cur = seq_.load(std::memory_order_acquire);
      if (cur == seen) {
        if (stop_.load(std::memory_order_acquire)) return;
        // Brief spin (a new stage usually follows within the sequential
        // part of one round), then futex-park until seq_ moves.
        bool changed = false;
        for (int i = 0; i < kSpinsBeforeYield; ++i) {
          if (seq_.load(std::memory_order_acquire) != seen ||
              stop_.load(std::memory_order_acquire)) {
            changed = true;
            break;
          }
          cpu_relax_();
        }
        if (!changed) seq_.wait(seen, std::memory_order_acquire);
        continue;
      }
      seen = cur;
      if (stop_.load(std::memory_order_acquire)) return;
      run_stage_();
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  /// Driver side, after the drain loop: release the workers. The stop
  /// flag is published by the same release-increment of seq_ the workers
  /// acquire, so a woken worker always observes it.
  void shutdown_() {
    if (nthreads_ <= 1) return;
    stop_.store(true, std::memory_order_release);
    seq_.fetch_add(1, std::memory_order_release);
    seq_.notify_all();
  }

  int nthreads_ = 1;
  Mode mode_ = Mode::kSequential;
  std::atomic<std::uint64_t> seq_{0};   // stage sequence number
  std::atomic<bool> stop_{false};       // drain loop finished
  std::atomic<std::size_t> cursor_{0};  // next unclaimed iteration
  std::atomic<int> done_{0};            // workers finished with the stage
  // Current stage (plain fields: published via seq_'s release increment).
  void (*stage_fn_)(void*, std::size_t, std::size_t) = nullptr;
  void* stage_ctx_ = nullptr;
  std::size_t stage_end_ = 0;
  std::size_t stage_grain_ = 1;
};

}  // namespace parsh
