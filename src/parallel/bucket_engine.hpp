// Bucketed parallel frontier engine: a delta-stepping-style circular
// calendar over integer keys.
//
// Every round-synchronous algorithm in this library shares one control
// shape: items carry an integer "time" key, the least pending key is
// processed as one synchronous round, and the round's expansion emits items
// into the same or strictly later keys. EST clustering (proposals keyed by
// floor(start + dist)), level-synchronous BFS (levels), delta-stepping
// (distance buckets) and the Dial search of weighted BFS are all instances.
// This engine owns that shape once so the consumers stay thin:
//
//  * a circular calendar of `span` open buckets (key modulo span), plus an
//    ordered overflow store for keys beyond the window — memory stays
//    proportional to the items pending, not to the key range, which matters
//    after Klein-Subramanian weight rounding blows up the range;
//  * per-worker staging buffers so expansions running under parallel_for
//    emit with plain push_backs instead of locks (push_from_worker); the
//    buffers are compacted into the calendar with an exclusive-scan concat
//    at round boundaries (flush), never a serial per-item append race;
//  * one pop_round == one synchronous round, counted for the work/depth
//    instrumentation story.
//
// Keys must never fall behind the engine's current base (the key of the
// last popped round): all consumers emit at key + w with w >= 0.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"

namespace parsh {

/// Sentinel returned by min_key / pop_round when the engine is drained.
inline constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

namespace detail {

/// Occupancy bookkeeping for the circular calendar window: which slot each
/// in-window key maps to, how many items each slot holds, and where the
/// least nonempty slot lives. Non-template (items live in BucketEngine) so
/// the cursor/rebase logic compiles once and is unit-testable on its own.
class CalendarIndex {
 public:
  explicit CalendarIndex(std::size_t span);

  [[nodiscard]] std::size_t span() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t base_key() const { return base_; }
  [[nodiscard]] bool window_empty() const { return in_window_items_ == 0; }

  /// True iff `key` lands in the open window [base, base + span).
  [[nodiscard]] bool in_window(std::uint64_t key) const {
    return key >= base_ && key - base_ < span();
  }

  /// Calendar slot of an in-window key.
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    assert(in_window(key));
    return (cursor_ + static_cast<std::size_t>(key - base_)) % span();
  }

  /// Record `count` items placed in `key`'s slot (key must be in window).
  void note_push(std::uint64_t key, std::size_t count = 1);

  /// Key of the least nonempty in-window bucket, or kNoBucket if the
  /// window is empty.
  [[nodiscard]] std::uint64_t min_in_window() const;

  /// Empty `key`'s slot and advance the window so `key` becomes the base
  /// (earlier, empty slots rotate to the far end). Returns the number of
  /// items that were pending in the slot.
  std::size_t take(std::uint64_t key);

  /// Rotate an empty window forward so `key` becomes the base. Used when
  /// the calendar drains and the engine refills it from overflow.
  void rebase(std::uint64_t key);

  /// Return to the initial state (base 0, all slots empty). Used by
  /// BucketEngine::reset() so one engine serves many runs.
  void reset();

 private:
  std::uint64_t base_ = 0;           // key of the slot under the cursor
  std::size_t cursor_ = 0;           // slot index of base_
  std::size_t in_window_items_ = 0;  // total items across all slots
  std::vector<std::size_t> counts_;  // items per slot
};

}  // namespace detail

/// The engine proper. `Item` is the per-frontier payload (a vertex id, an
/// EST proposal, ...); it must be cheaply movable.
template <typename Item>
class BucketEngine {
 public:
  struct Options {
    /// Open calendar slots. Keys >= base + span overflow into an ordered
    /// side store and migrate into the window when it drains; a span a
    /// little beyond the common edge weight keeps overflow off the hot
    /// path without paying for the full key range.
    std::size_t span = 64;
  };

  explicit BucketEngine(Options opt = {})
      : index_(opt.span),
        calendar_(index_.span()),
        staging_(static_cast<std::size_t>(num_workers())),
        offset_scratch_(staging_.size()) {}

  /// Push from sequential context (seeding, single-threaded consumers).
  void push(std::uint64_t key, Item item) { place_(key, std::move(item)); }

  /// Push from inside a parallel expansion: lands in the calling worker's
  /// staging buffer; visible after the next flush()/min_key()/pop_round().
  void push_from_worker(std::uint64_t key, Item item) {
    std::vector<Staged>& buf = staging_[static_cast<std::size_t>(worker_id())];
    if (buf.size() == buf.capacity()) note_alloc_();
    buf.emplace_back(key, std::move(item));
  }

  /// Empty the engine without releasing any buffer capacity: slots,
  /// staging buffers and merge scratch keep their allocations, the window
  /// returns to base 0. One engine instance can then serve a whole
  /// sequence of runs (the iterated quotient-graph drivers) with warm runs
  /// doing no heap allocation at all — tracked by alloc_events().
  void reset() {
    for (std::vector<Item>& slot : calendar_) slot.clear();
    for (std::vector<Staged>& buf : staging_) buf.clear();
    overflow_.clear();
    index_.reset();
    // The worker count may have been raised (omp_set_num_threads) since
    // construction; push_from_worker indexes staging_ by worker_id(), so
    // grow the per-worker state to match before the next run.
    const auto workers = static_cast<std::size_t>(num_workers());
    if (workers > staging_.size()) {
      staging_.resize(workers);
      offset_scratch_.resize(workers);
    }
  }

  /// Rotate the (empty) window so `key` becomes its first bucket. Call
  /// right after reset() when the consumer knows its keys start near
  /// `key`, so the initial frontier does not straddle the window end.
  void start_at(std::uint64_t key) {
    assert(index_.window_empty() && overflow_.empty() &&
           "start_at requires an empty engine");
    index_.rebase(key);
  }

  /// Heap-allocation events observed so far: staging/slot/merge-scratch
  /// capacity growth and overflow-store inserts. Cumulative across
  /// reset(); warm reuse is exactly "this counter stopped moving".
  [[nodiscard]] std::uint64_t alloc_events() const {
    return alloc_events_.load(std::memory_order_relaxed);
  }


  /// Compact the per-worker staging buffers into the calendar: an
  /// exclusive scan over buffer sizes + parallel move into one contiguous
  /// block, then a single ordered placement pass (no comparisons, no map
  /// lookups for in-window keys).
  void flush() {
    const std::size_t workers = staging_.size();
    std::size_t nonempty = 0;
    std::size_t last = 0;
    std::vector<std::size_t>& offset = offset_scratch_;
    for (std::size_t t = 0; t < workers; ++t) {
      offset[t] = staging_[t].size();
      if (offset[t] != 0) {
        ++nonempty;
        last = t;
      }
    }
    if (nonempty == 0) return;
    if (nonempty == 1) {
      // Single producer (sequential run, or one worker did all the
      // emitting): place straight from its buffer, skipping the concat.
      for (Staged& s : staging_[last]) place_(s.first, std::move(s.second));
      staging_[last].clear();
      return;
    }
    const std::size_t total = exclusive_scan_inplace(offset);
    if (total > merge_scratch_.capacity()) note_alloc_();
    merge_scratch_.resize(total);
    parallel_for_grain(0, workers, 1, [&](std::size_t t) {
      std::size_t at = offset[t];
      for (Staged& s : staging_[t]) merge_scratch_[at++] = std::move(s);
      staging_[t].clear();
    });
    for (Staged& s : merge_scratch_) place_(s.first, std::move(s.second));
    merge_scratch_.clear();
  }

  /// Key of the least pending bucket (staged pushes included), or
  /// kNoBucket when the engine is fully drained.
  std::uint64_t min_key() {
    flush();
    drain_overflow_into_window_();
    // After the drain every overflow key is >= base + span, i.e. beyond
    // any in-window key, so the two stores are consulted in order.
    if (!index_.window_empty()) return index_.min_in_window();
    if (!overflow_.empty()) return overflow_.begin()->first;
    return kNoBucket;
  }

  /// Pop the least pending bucket into `out` (replacing its contents);
  /// returns the bucket's key, or kNoBucket when drained. One pop is one
  /// synchronous round.
  std::uint64_t pop_round(std::vector<Item>& out) {
    const std::uint64_t key = min_key();
    if (key == kNoBucket) {
      out.clear();
      return kNoBucket;
    }
    if (!index_.in_window(key)) refill_from_overflow_(key);
    std::vector<Item>& slot = calendar_[index_.slot_of(key)];
    // Move the items, keep the buffer: each slot's capacity stays put as
    // a per-slot high-water mark, so a warm run whose per-bucket demand
    // never exceeds a previous run's reallocates nothing (buffer-stealing
    // would shuffle capacities between slots and regrow them every run).
    if (slot.size() > out.capacity()) note_alloc_();
    out.resize(slot.size());
    std::move(slot.begin(), slot.end(), out.begin());
    slot.clear();
    index_.take(key);
    ++rounds_;
    return key;
  }

  /// Synchronous rounds popped so far.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Open calendar slots (the configured span).
  [[nodiscard]] std::size_t span() const { return index_.span(); }

  /// Total items ever pushed (staged + placed); a work proxy for benches.
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

 private:
  using Staged = std::pair<std::uint64_t, Item>;

  void place_(std::uint64_t key, Item item) {
    ++pushed_;
    if (!index_.in_window(key)) {
      if (key < index_.base_key()) {
        // Consumer contract violation (emitting into the past); clamp so
        // the item is still processed rather than silently lost.
        assert(false && "BucketEngine: key below current base");
        key = index_.base_key();
      } else {
        auto [it, inserted] = overflow_.try_emplace(key);
        if (inserted || it->second.size() == it->second.capacity()) note_alloc_();
        it->second.push_back(std::move(item));
        return;
      }
    }
    std::vector<Item>& slot = calendar_[index_.slot_of(key)];
    if (slot.size() == slot.capacity()) note_alloc_();
    slot.push_back(std::move(item));
    index_.note_push(key);
  }

  /// Items that overflowed an earlier window position fall inside the
  /// window once it advances past their key; fold them into the calendar
  /// so bucket order stays monotone (an overflow key must never be served
  /// after a larger in-window key).
  void drain_overflow_into_window_() {
    auto it = overflow_.begin();
    while (it != overflow_.end() && index_.in_window(it->first)) {
      const std::size_t migrated = it->second.size();
      std::vector<Item>& slot = calendar_[index_.slot_of(it->first)];
      if (slot.capacity() == 0) {
        // Never grown before: adopt the overflow node's buffer outright.
        slot = std::move(it->second);
      } else {
        // Keep the slot's established capacity (it is this slot's demand
        // high-water mark); append instead of replacing the buffer.
        for (Item& x : it->second) {
          if (slot.size() == slot.capacity()) note_alloc_();
          slot.push_back(std::move(x));
        }
      }
      index_.note_push(it->first, migrated);
      it = overflow_.erase(it);
    }
  }

  /// The window drained but overflow has pending keys: rotate the window
  /// to start at the least overflow key and migrate every now-in-window
  /// overflow bucket into the calendar.
  void refill_from_overflow_(std::uint64_t key) {
    index_.rebase(key);
    drain_overflow_into_window_();
  }

  /// Record one heap-allocation event. Staging growth happens inside
  /// parallel expansions, so the counter is a relaxed atomic; events are
  /// rare (amortized growth), so contention is immaterial.
  void note_alloc_() { alloc_events_.fetch_add(1, std::memory_order_relaxed); }

  detail::CalendarIndex index_;
  std::vector<std::vector<Item>> calendar_;  // circular, index_.span() slots
  std::map<std::uint64_t, std::vector<Item>> overflow_;
  std::vector<std::vector<Staged>> staging_;  // one buffer per worker
  std::vector<std::size_t> offset_scratch_;   // flush(): per-worker sizes/offsets
  std::vector<Staged> merge_scratch_;         // flush(): multi-producer concat
  std::uint64_t rounds_ = 0;
  std::uint64_t pushed_ = 0;
  std::atomic<std::uint64_t> alloc_events_{0};
};

}  // namespace parsh
