// Bucketed parallel frontier engine: a delta-stepping-style circular
// calendar over integer keys.
//
// Every round-synchronous algorithm in this library shares one control
// shape: items carry an integer "time" key, the least pending key is
// processed as one synchronous round, and the round's expansion emits items
// into the same or strictly later keys. EST clustering (proposals keyed by
// floor(start + dist)), level-synchronous BFS (levels), delta-stepping
// (distance buckets) and the Dial search of weighted BFS are all instances.
// This engine owns that shape once so the consumers stay thin:
//
//  * a circular calendar of `span` open buckets (key modulo span), plus an
//    ordered overflow store for keys beyond the window — memory stays
//    proportional to the items pending, not to the key range, which matters
//    after Klein-Subramanian weight rounding blows up the range;
//  * per-worker staging buffers so expansions running under parallel_for
//    emit with plain push_backs instead of locks (push_from_worker); the
//    buffers are compacted into the calendar with an exclusive-scan concat
//    at round boundaries (flush), never a serial per-item append race;
//  * one pop_round == one synchronous round, counted for the work/depth
//    instrumentation story; flush/min_key/pop_round take an optional
//    TeamLike so their internal parallel move runs as a stage of the
//    caller's persistent team (parallel/team.hpp) instead of a fork-join;
//  * a degree-aware FrontierRelaxer that schedules one round's edge
//    relaxations adaptively: bounded EDGE ranges dynamically claimed by
//    the team's workers (a skewed frontier — one hub vertex carrying most
//    of the round's edges — still spreads across all workers), a
//    whole-vertex stage for mid-size rounds, and a sequential fast path
//    (one worker, plain writes, direct pushes) below
//    kSequentialRoundEdges.
//
// Keys must never fall behind the engine's current base (the key of the
// last popped round): all consumers emit at key + w with w >= 0.
//
// Reuse / allocation guarantees (the contract the workspace layers build
// on; see docs/ARCHITECTURE.md):
//  * reset() empties the engine but releases NO buffer capacity — calendar
//    slots keep their per-slot high-water capacity, staging buffers and
//    the merge scratch keep theirs, and the relaxer keeps its prefix-sum
//    scratch. A warm run whose per-bucket demand nowhere exceeds a
//    previous run's performs zero heap allocations inside the engine.
//  * alloc_events() counts every heap allocation the engine ever makes
//    (staging/slot/merge growth, overflow-store node inserts), cumulative
//    across reset(). "Warm reuse" is exactly "this counter stopped
//    moving" — the property the *Warm* tests pin on 1M-edge RMAT graphs.
//  * The only per-run allocations that survive warm reuse are overflow
//    map nodes, for runs whose key spread exceeds the calendar span.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "util/types.hpp"

namespace parsh {

/// Sentinel returned by min_key / pop_round when the engine is drained.
inline constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

namespace detail {

/// Index of the first frontier vertex whose edge range intersects the
/// chunk starting at global edge offset `e0`, given the exclusive degree
/// prefix sums `prefix` (size `frontier + 1`). Requires e0 < prefix.back().
std::size_t chunk_first_vertex(const std::vector<std::size_t>& prefix,
                               std::size_t frontier, std::size_t e0);

/// Occupancy bookkeeping for the circular calendar window: which slot each
/// in-window key maps to, how many items each slot holds, and where the
/// least nonempty slot lives. Non-template (items live in BucketEngine) so
/// the cursor/rebase logic compiles once and is unit-testable on its own.
class CalendarIndex {
 public:
  explicit CalendarIndex(std::size_t span);

  [[nodiscard]] std::size_t span() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t base_key() const { return base_; }
  [[nodiscard]] bool window_empty() const { return in_window_items_ == 0; }

  /// True iff `key` lands in the open window [base, base + span).
  [[nodiscard]] bool in_window(std::uint64_t key) const {
    return key >= base_ && key - base_ < span();
  }

  /// Calendar slot of an in-window key.
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    assert(in_window(key));
    return (cursor_ + static_cast<std::size_t>(key - base_)) % span();
  }

  /// Record `count` items placed in `key`'s slot (key must be in window).
  void note_push(std::uint64_t key, std::size_t count = 1);

  /// Key of the least nonempty in-window bucket, or kNoBucket if the
  /// window is empty. Not const: maintains the rotating next-nonempty
  /// hint, so repeated calls resume where the previous scan stopped
  /// instead of rescanning all `span` slots from the cursor every round.
  [[nodiscard]] std::uint64_t min_in_window();

  /// Empty `key`'s slot and advance the window so `key` becomes the base
  /// (earlier, empty slots rotate to the far end). Returns the number of
  /// items that were pending in the slot.
  std::size_t take(std::uint64_t key);

  /// Rotate an empty window forward so `key` becomes the base. Used when
  /// the calendar drains and the engine refills it from overflow.
  void rebase(std::uint64_t key);

  /// Return to the initial state (base 0, all slots empty). Used by
  /// BucketEngine::reset() so one engine serves many runs.
  void reset();

 private:
  std::uint64_t base_ = 0;           // key of the slot under the cursor
  std::size_t cursor_ = 0;           // slot index of base_
  std::size_t in_window_items_ = 0;  // total items across all slots
  std::vector<std::size_t> counts_;  // items per slot
  std::size_t next_hint_ = 0;        // offsets below this are known empty
};

}  // namespace detail

/// The engine proper. `Item` is the per-frontier payload (a vertex id, an
/// EST proposal, ...); it must be cheaply movable.
template <typename Item>
class BucketEngine {
 public:
  struct Options {
    /// Open calendar slots. Keys >= base + span overflow into an ordered
    /// side store and migrate into the window when it drains; a span a
    /// little beyond the common edge weight keeps overflow off the hot
    /// path without paying for the full key range.
    std::size_t span = 64;
  };

  explicit BucketEngine(Options opt = {})
      : index_(opt.span),
        calendar_(index_.span()),
        staging_(static_cast<std::size_t>(num_workers())),
        offset_scratch_(staging_.size()) {}

  /// Push from sequential context (seeding, single-threaded consumers).
  void push(std::uint64_t key, Item item) { place_(key, std::move(item)); }

  /// Push from inside a parallel expansion: lands in the calling worker's
  /// staging buffer; visible after the next flush()/min_key()/pop_round().
  void push_from_worker(std::uint64_t key, Item item) {
    std::vector<Staged>& buf = staging_[static_cast<std::size_t>(worker_id())];
    if (buf.size() == buf.capacity()) note_alloc_();
    buf.emplace_back(key, std::move(item));
  }

  /// Empty the engine without releasing any buffer capacity: slots,
  /// staging buffers and merge scratch keep their allocations, the window
  /// returns to base 0. One engine instance can then serve a whole
  /// sequence of runs (the iterated quotient-graph drivers) with warm runs
  /// doing no heap allocation at all — tracked by alloc_events().
  void reset() {
    for (std::vector<Item>& slot : calendar_) slot.clear();
    for (std::vector<Staged>& buf : staging_) buf.clear();
    overflow_.clear();
    index_.reset();
    // The worker count may have been raised (omp_set_num_threads) since
    // construction; push_from_worker indexes staging_ by worker_id(), so
    // grow the per-worker state to match before the next run.
    const auto workers = static_cast<std::size_t>(num_workers());
    if (workers > staging_.size()) {
      staging_.resize(workers);
      offset_scratch_.resize(workers);
    }
  }

  /// Rotate the (empty) window so `key` becomes its first bucket. Call
  /// right after reset() when the consumer knows its keys start near
  /// `key`, so the initial frontier does not straddle the window end.
  void start_at(std::uint64_t key) {
    assert(index_.window_empty() && overflow_.empty() &&
           "start_at requires an empty engine");
    index_.rebase(key);
  }

  /// Heap-allocation events observed so far: staging/slot/merge-scratch
  /// capacity growth and overflow-store inserts. Cumulative across
  /// reset(); warm reuse is exactly "this counter stopped moving".
  [[nodiscard]] std::uint64_t alloc_events() const {
    return alloc_events_.load(std::memory_order_relaxed);
  }


  /// Compact the per-worker staging buffers into the calendar: an
  /// exclusive scan over buffer sizes + parallel move into one contiguous
  /// block, then a single ordered placement pass (no comparisons, no map
  /// lookups for in-window keys). The fork-join form; inside a persistent
  /// team pass the team so the move stage runs across it.
  void flush() {
    flush_moved_([&](std::size_t workers, auto&& move_one) {
      parallel_for_grain(0, workers, 1, move_one);
    });
  }

  /// flush() with the multi-producer move running as one stage of
  /// `team` (a parsh::Team or anything with its loop() signature).
  template <typename TeamLike>
  void flush(TeamLike& team) {
    flush_moved_([&](std::size_t workers, auto&& move_one) {
      team.loop(0, workers, 1, move_one);
    });
  }

  /// Key of the least pending bucket (staged pushes included), or
  /// kNoBucket when the engine is fully drained.
  std::uint64_t min_key() {
    flush();
    return min_key_flushed_();
  }

  /// min_key() with the staging flush staged on `team`.
  template <typename TeamLike>
  std::uint64_t min_key(TeamLike& team) {
    flush(team);
    return min_key_flushed_();
  }

  /// Pop the least pending bucket into `out` (replacing its contents);
  /// returns the bucket's key, or kNoBucket when drained. One pop is one
  /// synchronous round.
  std::uint64_t pop_round(std::vector<Item>& out) {
    flush();
    return pop_flushed_(out);
  }

  /// pop_round() with the staging flush staged on `team`.
  template <typename TeamLike>
  std::uint64_t pop_round(TeamLike& team, std::vector<Item>& out) {
    flush(team);
    return pop_flushed_(out);
  }

  /// Synchronous rounds popped so far.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

  /// Open calendar slots (the configured span).
  [[nodiscard]] std::size_t span() const { return index_.span(); }

  /// Total items ever pushed (staged + placed); a work proxy for benches.
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

 private:
  using Staged = std::pair<std::uint64_t, Item>;

  /// The flush body, parameterized over how the multi-producer move loop
  /// is scheduled (fork-join parallel_for_grain vs a persistent-team
  /// stage — same iterations either way).
  template <typename MoveLoop>
  void flush_moved_(MoveLoop&& move_loop) {
    const std::size_t workers = staging_.size();
    std::size_t nonempty = 0;
    std::size_t last = 0;
    std::vector<std::size_t>& offset = offset_scratch_;
    for (std::size_t t = 0; t < workers; ++t) {
      offset[t] = staging_[t].size();
      if (offset[t] != 0) {
        ++nonempty;
        last = t;
      }
    }
    if (nonempty == 0) return;
    if (nonempty == 1) {
      // Single producer (sequential run, or one worker did all the
      // emitting): place straight from its buffer, skipping the concat.
      for (Staged& s : staging_[last]) place_(s.first, std::move(s.second));
      staging_[last].clear();
      return;
    }
    const std::size_t total = exclusive_scan_inplace(offset);
    if (total > merge_scratch_.capacity()) note_alloc_();
    merge_scratch_.resize(total);
    move_loop(workers, [&](std::size_t t) {
      std::size_t at = offset[t];
      for (Staged& s : staging_[t]) merge_scratch_[at++] = std::move(s);
      staging_[t].clear();
    });
    for (Staged& s : merge_scratch_) place_(s.first, std::move(s.second));
    merge_scratch_.clear();
  }

  /// min_key after the staging buffers were flushed.
  std::uint64_t min_key_flushed_() {
    drain_overflow_into_window_();
    // After the drain every overflow key is >= base + span, i.e. beyond
    // any in-window key, so the two stores are consulted in order.
    if (!index_.window_empty()) return index_.min_in_window();
    if (!overflow_.empty()) return overflow_.begin()->first;
    return kNoBucket;
  }

  /// pop_round after the staging buffers were flushed.
  std::uint64_t pop_flushed_(std::vector<Item>& out) {
    const std::uint64_t key = min_key_flushed_();
    if (key == kNoBucket) {
      out.clear();
      return kNoBucket;
    }
    if (!index_.in_window(key)) refill_from_overflow_(key);
    std::vector<Item>& slot = calendar_[index_.slot_of(key)];
    // Move the items, keep the buffer: each slot's capacity stays put as
    // a per-slot high-water mark, so a warm run whose per-bucket demand
    // never exceeds a previous run's reallocates nothing (buffer-stealing
    // would shuffle capacities between slots and regrow them every run).
    if (slot.size() > out.capacity()) note_alloc_();
    out.resize(slot.size());
    std::move(slot.begin(), slot.end(), out.begin());
    slot.clear();
    index_.take(key);
    ++rounds_;
    return key;
  }

  void place_(std::uint64_t key, Item item) {
    ++pushed_;
    if (!index_.in_window(key)) {
      if (key < index_.base_key()) {
        // Consumer contract violation (emitting into the past); clamp so
        // the item is still processed rather than silently lost.
        assert(false && "BucketEngine: key below current base");
        key = index_.base_key();
      } else {
        auto [it, inserted] = overflow_.try_emplace(key);
        if (inserted || it->second.size() == it->second.capacity()) note_alloc_();
        it->second.push_back(std::move(item));
        return;
      }
    }
    std::vector<Item>& slot = calendar_[index_.slot_of(key)];
    if (slot.size() == slot.capacity()) note_alloc_();
    slot.push_back(std::move(item));
    index_.note_push(key);
  }

  /// Items that overflowed an earlier window position fall inside the
  /// window once it advances past their key; fold them into the calendar
  /// so bucket order stays monotone (an overflow key must never be served
  /// after a larger in-window key).
  void drain_overflow_into_window_() {
    auto it = overflow_.begin();
    while (it != overflow_.end() && index_.in_window(it->first)) {
      const std::size_t migrated = it->second.size();
      std::vector<Item>& slot = calendar_[index_.slot_of(it->first)];
      if (slot.capacity() == 0) {
        // Never grown before: adopt the overflow node's buffer outright.
        slot = std::move(it->second);
      } else {
        // Keep the slot's established capacity (it is this slot's demand
        // high-water mark); append instead of replacing the buffer.
        for (Item& x : it->second) {
          if (slot.size() == slot.capacity()) note_alloc_();
          slot.push_back(std::move(x));
        }
      }
      index_.note_push(it->first, migrated);
      it = overflow_.erase(it);
    }
  }

  /// The window drained but overflow has pending keys: rotate the window
  /// to start at the least overflow key and migrate every now-in-window
  /// overflow bucket into the calendar.
  void refill_from_overflow_(std::uint64_t key) {
    index_.rebase(key);
    drain_overflow_into_window_();
  }

  /// Record one heap-allocation event. Staging growth happens inside
  /// parallel expansions, so the counter is a relaxed atomic; events are
  /// rare (amortized growth), so contention is immaterial.
  void note_alloc_() { alloc_events_.fetch_add(1, std::memory_order_relaxed); }

  detail::CalendarIndex index_;
  std::vector<std::vector<Item>> calendar_;  // circular, index_.span() slots
  std::map<std::uint64_t, std::vector<Item>> overflow_;
  std::vector<std::vector<Staged>> staging_;  // one buffer per worker
  std::vector<std::size_t> offset_scratch_;   // flush(): per-worker sizes/offsets
  std::vector<Staged> merge_scratch_;         // flush(): multi-producer concat
  std::uint64_t rounds_ = 0;
  std::uint64_t pushed_ = 0;
  std::atomic<std::uint64_t> alloc_events_{0};
};

/// Adaptive degree-aware work distribution for one round's edge
/// relaxations, with direction-optimized (push/pull) dense rounds.
///
/// The synchronous-round consumers all share one expansion shape: for each
/// frontier vertex, visit its adjacency and emit proposals. Handing whole
/// vertices to workers breaks down on skewed frontiers — on a power-law
/// graph one hub vertex can carry most of the round's edges, serializing
/// the round behind a single worker. relax() instead splits the round's
/// total edge work into bounded ranges of ~kEdgeGrain edges (an exclusive
/// prefix sum over the frontier degrees locates each range's vertices) and
/// runs them as one dynamically-claimed stage of the caller's Team — each
/// worker takes the next unclaimed range as it goes idle, so a hub's
/// adjacency is relaxed by many workers at once. Rounds whose edge total
/// is at most the caller's seq_threshold instead run entirely on the
/// driver thread through a dedicated sequential body (plain writes,
/// direct calendar pushes — the adaptive sequential round fast path; see
/// docs/ARCHITECTURE.md "Round scheduling").
///
/// Direction optimization (Beamer-style push/pull switching): the
/// frontier-aware overload of relax() additionally compares the round's
/// frontier edge total against a configurable fraction of m (and a
/// profitability floor of n/2 — see kPullFloorDivisor). Above both the
/// round runs PULL: the frontier is materialized as a dense bitmap and
/// every *candidate* vertex scans its own (symmetric) adjacency for
/// frontier neighbours, computing the winning proposal locally and
/// emitting at most one item through the normal staging path — exactly
/// the rounds where the frontier covers most of the graph, cutting both
/// edge examinations (BFS stops at the first frontier hit) and proposal
/// traffic (one emission per candidate instead of one per edge).
/// Hysteresis (enter high, exit lower) keeps the direction from
/// thrashing across consecutive similar-sized rounds; the decision
/// depends only on the (deterministic) round totals, never the schedule.
///
/// Determinism contract: relax() only changes HOW the per-edge body calls
/// are scheduled, never the resulting argmin — every frontier edge is
/// visited exactly once on the push paths, and the pull body emits a
/// proposal multiset whose per-vertex (key, via) minima are identical to
/// the push multiset's (the suppressed proposals are strict losers of the
/// very reduction that resolves them; see docs/ARCHITECTURE.md "Round
/// scheduling"). The path choice depends only on (frontier, degrees,
/// threshold, m, direction state), never on the schedule. All consumers
/// resolve concurrent writes with the order-independent CRCW min-reduces
/// in parallel/atomics.hpp (their sequential bodies computing the same
/// argmin with plain writes), so output is bit-identical across
/// sequential / vertex-grain / edge-grain / pull scheduling and across
/// thread counts (pinned by tests/test_work_stealing.cpp,
/// tests/test_direction_optimizing.cpp and the TeamRounds suite, via the
/// force_vertex_grain / force_push / force_pull hooks).
///
/// Reuse: the prefix-sum scratch and the frontier bitmap are grown
/// monotonically and never shrunk (warm calls allocate nothing);
/// alloc_events() counts scratch growth exactly like BucketEngine's.
/// Not thread-safe across concurrent relax() calls: one relaxer per call
/// chain, owned by the workspaces alongside their engines.
class FrontierRelaxer {
 public:
  FrontierRelaxer() {
    // Env seam for CI's pull-forced ctest lane (like OMP_NUM_THREADS):
    // defaults every direction decision to pull so the dense path runs
    // even on test graphs too small to trip the threshold organically.
    // Explicit force_push()/force_pull() calls override it.
    if (const char* e = std::getenv("PARSH_FORCE_PULL");
        e != nullptr && e[0] != '\0' && e[0] != '0') {
      force_pull_ = true;
    }
  }

  /// Target edges per stolen range. Small enough that a 10^5-degree hub
  /// splits across every worker, large enough that the per-range queue
  /// traffic (one dynamic-schedule dequeue) stays amortized.
  static constexpr std::size_t kEdgeGrain = 2048;
  /// Frontier chunk handed to a worker on the whole-vertex path (the
  /// pre-existing grain of the consumers' expansion loops).
  static constexpr std::size_t kVertexGrain = 64;
  /// Default adaptive threshold: a round whose frontier edge total is at
  /// most this runs entirely on one worker (the sequential fast path —
  /// plain writes, direct calendar pushes). Equal to kEdgeGrain: below
  /// one stolen range the parallel path could not split the work anyway,
  /// so the fast path only removes overhead, never parallelism.
  static constexpr std::size_t kSequentialRoundEdges = kEdgeGrain;

  /// Direction-switch thresholds, as divisors of m: enter pull when a
  /// round's frontier edge total reaches m / kPullEnterDivisor, and stay
  /// in pull mode until it drops below m / kPullExitDivisor (hysteresis:
  /// the exit bound is lower than the entry bound, so a frontier
  /// oscillating around the entry threshold does not thrash direction).
  static constexpr std::uint64_t kPullEnterDivisor = 20;
  static constexpr std::uint64_t kPullExitDivisor = 64;
  /// Profitability floor for pull, as a divisor of n: a pull round pays a
  /// Theta(n) candidate sweep no matter how small the frontier, so both
  /// the enter and stay conditions additionally require the round's edge
  /// total to reach n / kPullFloorDivisor (the same shape as the
  /// vertex-count terms in Ligra's/GAPBS's direction conditions). Dense
  /// frontiers on sparse graphs — e.g. a settled star's rim pointing back
  /// at its hub, where the edge total clears m/20 but a candidate sweep
  /// over all n costs more than pushing the stale edges — stay push.
  static constexpr std::uint64_t kPullFloorDivisor = 2;
  /// Frontier chunk per dynamically-claimed iteration of the bitmap
  /// set/clear stages.
  static constexpr std::size_t kBitGrain = 2048;

  /// What relax() decided for one round: the frontier's total edge count
  /// (from the degree prefix scan), whether the round ran on the
  /// sequential fast path, and whether it ran pull.
  struct RoundPlan {
    std::size_t edges = 0;
    bool sequential = false;
    bool pull = false;
  };

  /// Test hook mirroring the workspaces' force_three_phase: always take
  /// the (parallel) whole-vertex path — no stolen edge ranges and no
  /// sequential fast path. Takes precedence over the direction hooks.
  void force_vertex_grain(bool on) { force_vertex_grain_ = on; }

  /// Direction hooks mirroring force_vertex_grain: pin every
  /// direction-capable round to push / to pull regardless of the
  /// edge-fraction heuristic (push-vs-pull bit-equality tests, and the
  /// PARSH_FORCE_PULL CI lane). Forcing one direction clears the other;
  /// an explicit force_push(true) beats the env default.
  void force_push(bool on) {
    force_push_ = on;
    if (on) force_pull_ = false;
  }
  void force_pull(bool on) {
    force_pull_ = on;
    if (on) force_push_ = false;
  }

  /// Reset the direction hysteresis for a fresh run (drivers call this
  /// once per run so one run's dense tail never bleeds pull mode into the
  /// next run's sparse head).
  void begin_run() { pull_mode_ = false; }

  /// Tuning/test seam for the hysteresis divisors: enter pull at edge
  /// total >= m / enter_div, leave below m / exit_div. exit_div >=
  /// enter_div keeps the exit bound at or below the entry bound.
  void set_pull_divisors(std::uint64_t enter_div, std::uint64_t exit_div) {
    assert(enter_div != 0 && exit_div >= enter_div);
    pull_enter_div_ = enter_div;
    pull_exit_div_ = exit_div;
  }

  /// Rounds scheduled as stolen edge ranges / as whole vertices /
  /// entirely on one worker via the sequential fast path / as pull
  /// (bitmap) rounds (cumulative; diagnostics and tests). Every relax()
  /// call lands in exactly one.
  [[nodiscard]] std::uint64_t edge_grain_rounds() const { return edge_grain_rounds_; }
  [[nodiscard]] std::uint64_t vertex_grain_rounds() const { return vertex_grain_rounds_; }
  [[nodiscard]] std::uint64_t sequential_rounds() const { return sequential_rounds_; }
  [[nodiscard]] std::uint64_t pull_rounds() const { return pull_rounds_; }
  /// Edges examined by pull-round candidate scans (cumulative; the
  /// direction heuristic's payoff is this growing slower than the pushed
  /// frontier edge totals it replaced).
  [[nodiscard]] std::uint64_t pull_edges_scanned() const { return pull_edges_scanned_; }

  /// True iff `u` is in the current pull round's frontier bitmap. Valid
  /// only inside a pull body.
  [[nodiscard]] bool in_frontier(vid u) const {
    return (bitmap_[u >> 6].load(std::memory_order_relaxed) >> (u & 63)) & 1u;
  }
  /// Best-effort prefetch of u's bitmap word (pull inner loops peek a few
  /// edges ahead so the random bitmap reads overlap the CSR stream).
  void prefetch_frontier_bit(vid u) const { prefetch_read(&bitmap_[u >> 6]); }

  /// Heap-allocation events in the prefix/scan scratch so far (cumulative;
  /// a warm round over a frontier no larger than already seen adds none).
  [[nodiscard]] std::uint64_t alloc_events() const { return alloc_events_; }

  /// Bench hook: while `sink` is non-null, every relax() appends its
  /// round's frontier edge total (the per-round histogram the scaling
  /// bench records so the adaptive threshold stays tunable from data).
  void record_round_edges(std::vector<std::size_t>* sink) { round_edges_sink_ = sink; }

  /// Visit every out-edge of a frontier of `frontier` vertices:
  /// `degree_of(i)` is frontier vertex i's edge count, and each body must
  /// process frontier vertex i's local edge offsets [lo, hi) — consumers
  /// map them onto the CSR as g.begin(u) + lo. Ranges never split an edge
  /// and cover each edge exactly once.
  ///
  /// The round is scheduled adaptively, all choices depending only on
  /// (frontier, degrees, seq_threshold) — never on the schedule — so the
  /// plan and the counters are deterministic:
  ///  * edge total <= seq_threshold: `seq_body` runs for every frontier
  ///    vertex on the calling thread. It may use plain (non-atomic)
  ///    writes and direct engine pushes — no other thread touches shared
  ///    state during the round. Pass seq_threshold = 0 to disable (the
  ///    workspaces' force_parallel_rounds hook).
  ///  * otherwise `par_body` runs inside `team` stages (one stolen-range
  ///    stage above kEdgeGrain, a whole-vertex stage below) and must only
  ///    write through atomics / per-worker state.
  /// Both bodies must perform the same per-edge effect; every consumer
  /// funnels concurrent effects through order-independent CRCW reduces,
  /// so which body ran is unobservable in the output (the determinism
  /// contract, docs/ARCHITECTURE.md).
  ///
  /// Call from the driver thread, between rounds.
  template <typename TeamLike, typename Deg, typename SeqBody, typename ParBody>
  RoundPlan relax(TeamLike& team, std::size_t frontier, std::size_t seq_threshold,
                  Deg&& degree_of, SeqBody&& seq_body, ParBody&& par_body) {
    if (frontier == 0) return {0, false};
    if (force_vertex_grain_) {
      // Test-only path: plain degree pass for the total (the scan does
      // not run here), then the parallel whole-vertex schedule.
      std::size_t total = 0;
      for (std::size_t i = 0; i < frontier; ++i) {
        total += static_cast<std::size_t>(degree_of(i));
      }
      record_(total);
      ++vertex_grain_rounds_;
      team.loop(0, frontier, kVertexGrain, [&](std::size_t i) {
        par_body(i, std::size_t{0}, static_cast<std::size_t>(degree_of(i)));
      });
      return {total, false};
    }
    const std::size_t total = scan_degrees_(team, frontier, degree_of);
    record_(total);
    return push_round_(team, frontier, total, seq_threshold, seq_body, par_body);
  }

  /// Direction-aware relax(): the same contract as above, plus the pull
  /// alternative. `frontier` holds the round's vertex ids (the bitmap is
  /// built from them), `num_vertices`/`num_arcs` describe the graph the
  /// round runs on, and `pull_body(v)` is the candidate scan: examine v's
  /// (symmetric) adjacency, compute v's winning proposal over frontier
  /// neighbours (`in_frontier(u)` tests membership) with the SAME argmin
  /// tie-breaks the push reduce applies, emit it through push_from_worker,
  /// and return the number of edges it examined. It runs inside team
  /// stages and must only write through atomics / per-worker state.
  ///
  /// Direction is decided from the (deterministic) edge total before the
  /// sequential fast path, so a dense round never falls into the
  /// sequential push body just because a caller passed a big threshold.
  template <typename TeamLike, typename Deg, typename SeqBody, typename ParBody,
            typename PullBody>
  RoundPlan relax(TeamLike& team, const std::vector<vid>& frontier,
                  std::size_t num_vertices, std::uint64_t num_arcs,
                  std::size_t seq_threshold, Deg&& degree_of, SeqBody&& seq_body,
                  ParBody&& par_body, PullBody&& pull_body) {
    if (frontier.empty()) return {0, false, false};
    if (force_vertex_grain_) {
      // The vertex-grain test seam pins the push scheduler outright.
      return relax(team, frontier.size(), seq_threshold, degree_of, seq_body,
                   par_body);
    }
    const std::size_t total = scan_degrees_(team, frontier.size(), degree_of);
    record_(total);
    if (decide_direction_(total, num_vertices, num_arcs)) {
      ++pull_rounds_;
      run_pull_(team, frontier, num_vertices, pull_body);
      return {total, false, true};
    }
    return push_round_(team, frontier.size(), total, seq_threshold, seq_body,
                       par_body);
  }

 private:
  /// The push scheduling tail shared by both relax() overloads: prefix_
  /// already holds the frontier's degree scan and `total` its sum.
  template <typename TeamLike, typename SeqBody, typename ParBody>
  RoundPlan push_round_(TeamLike& team, std::size_t frontier, std::size_t total,
                        std::size_t seq_threshold, SeqBody& seq_body,
                        ParBody& par_body) {
    // seq_threshold == 0 disables the fast path outright (the
    // force_parallel_rounds hook) — even for empty rounds.
    if (seq_threshold != 0 && total <= seq_threshold) {
      // The adaptive sequential fast path: one worker, no staging, no
      // atomics needed by the body.
      ++sequential_rounds_;
      for (std::size_t i = 0; i < frontier; ++i) {
        const std::size_t deg = prefix_[i + 1] - prefix_[i];
        if (deg != 0) seq_body(i, std::size_t{0}, deg);
      }
      return {total, true};
    }
    if (total <= kEdgeGrain) {
      // One range's worth of edges: the split cannot help, and the
      // whole-vertex path skips the chunk queue.
      ++vertex_grain_rounds_;
      team.loop(0, frontier, kVertexGrain, [&](std::size_t i) {
        par_body(i, std::size_t{0}, prefix_[i + 1] - prefix_[i]);
      });
      return {total, false};
    }
    ++edge_grain_rounds_;
    const std::size_t chunks = (total + kEdgeGrain - 1) / kEdgeGrain;
    team.loop(0, chunks, 1, [&](std::size_t c) {
      const std::size_t e0 = c * kEdgeGrain;
      const std::size_t e1 = std::min(total, e0 + kEdgeGrain);
      std::size_t i = detail::chunk_first_vertex(prefix_, frontier, e0);
      for (; i < frontier && prefix_[i] < e1; ++i) {
        const std::size_t lo = e0 > prefix_[i] ? e0 - prefix_[i] : 0;
        const std::size_t hi = std::min(e1, prefix_[i + 1]) - prefix_[i];
        if (lo < hi) par_body(i, lo, hi);
      }
    });
    return {total, false};
  }

 private:
  void record_(std::size_t total) {
    if (round_edges_sink_ != nullptr) round_edges_sink_->push_back(total);
  }

  /// Fill prefix_ with the exclusive prefix sums of the frontier degrees
  /// (prefix_[frontier] = total, returned). A blocked two-pass scan over
  /// reused scratch: unlike exclusive_scan_inplace, a warm call allocates
  /// nothing. Block loops are team stages (grain 1: each iteration is a
  /// whole kBlock-element block, heavy enough to stage even for a handful
  /// of blocks).
  template <typename TeamLike, typename Deg>
  std::size_t scan_degrees_(TeamLike& team, std::size_t frontier, Deg& degree_of) {
    if (frontier + 1 > prefix_.capacity()) ++alloc_events_;
    prefix_.resize(frontier + 1);
    constexpr std::size_t kBlock = 4096;
    const std::size_t nb = (frontier + kBlock - 1) / kBlock;
    if (nb > block_sum_.capacity()) ++alloc_events_;
    block_sum_.resize(nb);
    team.loop(0, nb, 1, [&](std::size_t b) {
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(frontier, lo + kBlock);
      std::size_t acc = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        prefix_[i] = degree_of(i);
        acc += prefix_[i];
      }
      block_sum_[b] = acc;
    });
    std::size_t running = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t next = running + block_sum_[b];
      block_sum_[b] = running;
      running = next;
    }
    team.loop(0, nb, 1, [&](std::size_t b) {
      const std::size_t lo = b * kBlock;
      const std::size_t hi = std::min(frontier, lo + kBlock);
      std::size_t acc = block_sum_[b];
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t next = acc + prefix_[i];
        prefix_[i] = acc;
        acc = next;
      }
    });
    prefix_[frontier] = running;
    return running;
  }

  /// Hysteresis state machine for the push/pull decision, then the force
  /// overrides. The state advances on EVERY direction-capable round (the
  /// forces only mask the outcome), so lifting a force mid-run leaves the
  /// same state an unforced run would have — and the inputs (round edge
  /// totals, m) are schedule-independent, so the decision is bit-stable
  /// across thread counts.
  bool decide_direction_(std::size_t total, std::size_t num_vertices,
                         std::uint64_t num_arcs) {
    // The n/kPullFloorDivisor term gates both conditions identically: it
    // is a hard profitability floor (below it the candidate sweep cannot
    // pay for itself), not part of the hysteresis band.
    const std::uint64_t floor =
        static_cast<std::uint64_t>(num_vertices) / kPullFloorDivisor;
    const std::uint64_t enter = std::max<std::uint64_t>(
        std::max<std::uint64_t>(1, num_arcs / pull_enter_div_), floor);
    const std::uint64_t exit = std::max<std::uint64_t>(
        std::max<std::uint64_t>(1, num_arcs / pull_exit_div_), floor);
    if (num_arcs == 0) {
      pull_mode_ = false;
    } else if (!pull_mode_) {
      pull_mode_ = total >= enter;
    } else {
      pull_mode_ = total >= exit;
    }
    if (force_push_) return false;
    if (force_pull_) return true;
    return pull_mode_;
  }

  /// One pull round: set the frontier bitmap, run the candidate scan over
  /// all vertices, clear the bitmap (touching only the set words, so the
  /// clear costs O(frontier), not O(n)). All three loops are team stages —
  /// never nested parallel_for — so the round works identically inside a
  /// persistent team and under the fork-join shim.
  template <typename TeamLike, typename PullBody>
  void run_pull_(TeamLike& team, const std::vector<vid>& frontier,
                 std::size_t num_vertices, PullBody& pull_body) {
    const std::size_t words = (num_vertices + 63) / 64;
    if (words > bitmap_.size()) {
      // atomic<uint64_t> is not movable: growth is a fresh vector (counted
      // like every other scratch growth), zeroed in parallel. Monotone, so
      // warm rounds on a same-size graph allocate nothing.
      ++alloc_events_;
      bitmap_ = std::vector<std::atomic<std::uint64_t>>(words);
      team.loop(0, words, std::size_t{4096},
                [&](std::size_t w) { bitmap_[w].store(0, std::memory_order_relaxed); });
    }
    const auto workers = static_cast<std::size_t>(num_workers());
    if (workers > pull_tally_workers_) {
      // Worker count raised since the tally was sized (it slots per
      // worker at construction); rebuild it to match.
      pull_tally_ = WorkerCounter();
      pull_tally_workers_ = workers;
    }
    team.loop(0, frontier.size(), kBitGrain, [&](std::size_t i) {
      const vid u = frontier[i];
      bitmap_[u >> 6].fetch_or(std::uint64_t{1} << (u & 63),
                               std::memory_order_relaxed);
    });
    team.loop(0, num_vertices, kVertexGrain, [&](std::size_t v) {
      pull_tally_.add(pull_body(static_cast<vid>(v)));
    });
    team.loop(0, frontier.size(), kBitGrain, [&](std::size_t i) {
      bitmap_[frontier[i] >> 6].store(0, std::memory_order_relaxed);
    });
    pull_edges_scanned_ += pull_tally_.drain();
  }

  std::vector<std::size_t> prefix_;     // exclusive degree prefix sums
  std::vector<std::size_t> block_sum_;  // scan scratch
  std::vector<std::atomic<std::uint64_t>> bitmap_;  // pull-round frontier bits
  WorkerCounter pull_tally_;            // per-worker pull edge-scan counts
  std::size_t pull_tally_workers_ = static_cast<std::size_t>(num_workers());
  std::vector<std::size_t>* round_edges_sink_ = nullptr;  // bench histogram
  std::uint64_t edge_grain_rounds_ = 0;
  std::uint64_t vertex_grain_rounds_ = 0;
  std::uint64_t sequential_rounds_ = 0;
  std::uint64_t pull_rounds_ = 0;
  std::uint64_t pull_edges_scanned_ = 0;
  std::uint64_t pull_enter_div_ = kPullEnterDivisor;
  std::uint64_t pull_exit_div_ = kPullExitDivisor;
  std::uint64_t alloc_events_ = 0;
  bool pull_mode_ = false;
  bool force_vertex_grain_ = false;
  bool force_push_ = false;
  bool force_pull_ = false;
};

}  // namespace parsh
