// Work/depth instrumentation.
//
// The paper's evaluation (Figures 1 and 2) compares algorithms by PRAM
// *work* (total operations) and *depth* (longest chain of dependent
// rounds). Wall-clock time on a fixed machine cannot exhibit those columns,
// so every round-synchronous algorithm in this library reports into these
// counters: one `round` per synchronous step, and `work` units for edges or
// vertices touched. Benches print them next to wall time; the *shape* of
// the paper's tables (who does asymptotically less work, whose depth scales
// with k vs n^γ) is reproduced through them.
//
// Counters are process-global and thread-safe. Scoped trackers snapshot a
// region. Instrumentation overhead is a couple of relaxed atomics per
// round, negligible next to the graph traversal itself.
#pragma once

#include <atomic>
#include <cstdint>

namespace parsh {
namespace wd {

struct Counters {
  std::uint64_t work = 0;    ///< operations performed (edges/vertices touched)
  std::uint64_t rounds = 0;  ///< synchronous rounds executed (depth proxy)
};

namespace detail {
inline std::atomic<std::uint64_t> g_work{0};
inline std::atomic<std::uint64_t> g_rounds{0};
}  // namespace detail

/// Record `units` of work (e.g. edges relaxed in a round).
inline void add_work(std::uint64_t units) {
  detail::g_work.fetch_add(units, std::memory_order_relaxed);
}

/// Record one synchronous round (one unit of depth).
inline void add_round(std::uint64_t count = 1) {
  detail::g_rounds.fetch_add(count, std::memory_order_relaxed);
}

/// Current global counters.
inline Counters snapshot() {
  return {detail::g_work.load(std::memory_order_relaxed),
          detail::g_rounds.load(std::memory_order_relaxed)};
}

/// Zero the global counters.
inline void reset() {
  detail::g_work.store(0, std::memory_order_relaxed);
  detail::g_rounds.store(0, std::memory_order_relaxed);
}

/// Measures the work/rounds accumulated during its lifetime.
class Region {
 public:
  Region() : start_(snapshot()) {}
  [[nodiscard]] Counters delta() const {
    Counters now = snapshot();
    return {now.work - start_.work, now.rounds - start_.rounds};
  }

 private:
  Counters start_;
};

}  // namespace wd
}  // namespace parsh
