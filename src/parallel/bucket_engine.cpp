#include "parallel/bucket_engine.hpp"

#include <algorithm>

namespace parsh {
namespace detail {

std::size_t chunk_first_vertex(const std::vector<std::size_t>& prefix,
                               std::size_t frontier, std::size_t e0) {
  // Greatest i with prefix[i] <= e0: that vertex's range [prefix[i],
  // prefix[i+1]) is the first that can intersect [e0, ...). prefix[0] == 0
  // <= e0 guarantees the subtraction is safe; zero-degree vertices collapse
  // to empty ranges the caller skips.
  assert(prefix.size() > frontier && e0 < prefix[frontier]);
  const auto it = std::upper_bound(prefix.begin(),
                                   prefix.begin() + static_cast<std::ptrdiff_t>(frontier + 1),
                                   e0);
  return static_cast<std::size_t>(it - prefix.begin()) - 1;
}

CalendarIndex::CalendarIndex(std::size_t span)
    : counts_(span == 0 ? 1 : span, 0), next_hint_(counts_.size()) {}

void CalendarIndex::note_push(std::uint64_t key, std::size_t count) {
  // A push below the cached next-nonempty hint invalidates it; lowering
  // the hint to the pushed offset keeps the "everything before the hint
  // is empty" invariant exact (no fallback rescan ever needed).
  const auto d = static_cast<std::size_t>(key - base_);
  if (d < next_hint_) next_hint_ = d;
  counts_[slot_of(key)] += count;
  in_window_items_ += count;
}

std::uint64_t CalendarIndex::min_in_window() {
  if (in_window_items_ == 0) return kNoBucket;
  // Rotating next-nonempty hint: every offset before next_hint_ is known
  // empty (note_push lowers it, take/rebase shift it), so successive
  // rounds resume the scan where the last one stopped instead of paying
  // O(span) from the cursor every time — the per-round overhead that
  // dominates once weight rounding blows up the key range.
  for (std::size_t d = next_hint_; d < span(); ++d) {
    if (counts_[(cursor_ + d) % span()] != 0) {
      next_hint_ = d;
      return base_ + d;
    }
  }
  return kNoBucket;  // unreachable: in_window_items_ > 0 and the hint is exact
}

std::size_t CalendarIndex::take(std::uint64_t key) {
  const std::size_t slot = slot_of(key);
  const std::size_t taken = counts_[slot];
  counts_[slot] = 0;
  in_window_items_ -= taken;
  // Slide the window so `key` is the base: the slots for keys before `key`
  // are empty (pop order is monotone) and rotate to the window's far end.
  // The hint shifts with the base; the just-emptied slot extends it by one.
  const auto k = static_cast<std::size_t>(key - base_);
  next_hint_ = next_hint_ > k ? next_hint_ - k : 1;
  cursor_ = slot;
  base_ = key;
  return taken;
}

void CalendarIndex::rebase(std::uint64_t key) {
  assert(in_window_items_ == 0 && "rebase requires a drained window");
  assert(key >= base_ && "the window never moves backwards");
  // Keep cursor ≡ base (mod span): slot_of(k) is then always k % span,
  // so a key reuses the same physical slot (and its grown buffer) across
  // overflow refills and across engine reuse — take() preserves this
  // invariant too, since it sets cursor to the popped key's slot.
  cursor_ = static_cast<std::size_t>(key % span());
  base_ = key;
  next_hint_ = span();  // drained window: every offset is known empty
}

void CalendarIndex::reset() {
  base_ = 0;
  cursor_ = 0;
  in_window_items_ = 0;
  std::fill(counts_.begin(), counts_.end(), 0);
  next_hint_ = span();
}

}  // namespace detail
}  // namespace parsh
