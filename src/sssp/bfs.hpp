// Level-synchronous parallel breadth-first search ([UY91]-style).
//
// Used for unweighted distances (clique edges in the hopset construction)
// and as the unit-weight query substrate. Each level is one synchronous
// round; rounds are recorded in the work/depth counters.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

inline constexpr vid kUnreachedHops = kNoVertex;

struct BfsResult {
  /// Hop distance per vertex (kUnreachedHops if unreachable).
  std::vector<vid> dist;
  /// BFS-tree parent (kNoVertex for sources / unreached).
  std::vector<vid> parent;
  /// Number of levels explored (depth proxy).
  vid rounds = 0;
};

/// BFS from one source. `max_levels` truncates the search (used when the
/// caller knows a diameter bound, as in the hopset recursion).
BfsResult bfs(const Graph& g, vid source, vid max_levels = kNoVertex);

/// Workspace form: the frontier engine and claim stamps live in `ws`, so
/// iterated callers pay no per-call engine construction. Same output.
BfsResult bfs(const Graph& g, vid source, vid max_levels, SsspWorkspace& ws);

/// Multi-source BFS: dist is the hop distance to the nearest source, and
/// `owner` identifies which source claimed each vertex (min source index
/// wins ties deterministically).
struct MultiBfsResult {
  std::vector<vid> dist;
  std::vector<vid> owner;  ///< index into `sources`, kNoVertex if unreached
  vid rounds = 0;
};
MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources,
                         vid max_levels = kNoVertex);
MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources,
                         vid max_levels, SsspWorkspace& ws);

}  // namespace parsh
