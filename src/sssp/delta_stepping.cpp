#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/sort.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta) {
  const vid n = g.num_vertices();
  DeltaSteppingResult r;
  r.dist.assign(n, kInfWeight);
  if (n == 0) return r;
  if (delta <= 0) {
    const double avg_deg =
        g.num_vertices() ? static_cast<double>(g.num_arcs()) / g.num_vertices() : 1.0;
    delta = std::max<weight_t>(1.0, g.max_weight() / std::max(1.0, avg_deg));
  }
  auto bucket_of = [&](weight_t d) { return static_cast<std::uint64_t>(d / delta); };

  std::vector<std::atomic<weight_t>> dist(n);
  parallel_for(0, n, [&](std::size_t v) {
    dist[v].store(kInfWeight, std::memory_order_relaxed);
  });
  // Edges-relaxed tally, per-worker so the per-edge hot path never
  // touches a contended atomic.
  WorkerCounter relaxed;

  // Relax u's edges selected by `take`; winners of the atomic min-write
  // re-enter the calendar at their new bucket.
  BucketEngine<vid> engine({.span = 64});
  auto relax_edges = [&](const std::vector<vid>& frontier, auto take) {
    parallel_for_grain(0, frontier.size(), 64, [&](std::size_t i) {
      const vid u = frontier[i];
      const weight_t du = dist[u].load(std::memory_order_relaxed);
      std::uint64_t count = 0;
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const weight_t w = g.weight(e);
        if (!take(w)) continue;
        const vid v = g.target(e);
        const weight_t nd = du + w;
        ++count;
        if (atomic_write_min(&dist[v], nd)) {
          engine.push_from_worker(bucket_of(nd), v);
        }
      }
      relaxed.add(count);
    });
  };

  dist[source].store(0, std::memory_order_relaxed);
  engine.push(0, source);
  std::vector<vid> frontier;
  std::uint64_t b;
  while ((b = engine.min_key()) != kNoBucket) {
    std::vector<vid> settled;  // all vertices finalized in this bucket
    // Light relaxations (w <= delta) may re-enter this bucket; iterate
    // until it is drained.
    while (engine.min_key() == b) {
      engine.pop_round(frontier);
      ++r.phases;
      wd::add_round();
      // A vertex is queued once per distance improvement; only entries
      // whose current distance still lands in this bucket are active.
      std::vector<vid> active = pack_values<vid>(
          frontier.size(),
          [&](std::size_t i) {
            return bucket_of(dist[frontier[i]].load(std::memory_order_relaxed)) == b;
          },
          [&](std::size_t i) { return frontier[i]; });
      settled.insert(settled.end(), active.begin(), active.end());
      relax_edges(active, [&](weight_t w) { return w <= delta; });
    }
    // Heavy relaxations (w > delta) go to strictly later buckets; done
    // once per settled vertex.
    parallel_sort(settled);
    settled.erase(std::unique(settled.begin(), settled.end()), settled.end());
    std::vector<vid> final_in_b = pack_values<vid>(
        settled.size(),
        [&](std::size_t i) {
          return bucket_of(dist[settled[i]].load(std::memory_order_relaxed)) == b;
        },
        [&](std::size_t i) { return settled[i]; });
    relax_edges(final_in_b, [&](weight_t w) { return w > delta; });
    // Work charged per bucket is the relaxations *this bucket* performed.
    const std::uint64_t in_bucket = relaxed.drain();
    r.relaxations += in_bucket;
    wd::add_work(in_bucket);
  }
  parallel_for(0, n, [&](std::size_t v) {
    r.dist[v] = dist[v].load(std::memory_order_relaxed);
  });
  return r;
}

}  // namespace parsh
