#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta) {
  SsspWorkspace ws;
  return delta_stepping(g, source, delta, ws);
}

DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta,
                                   SsspWorkspace& ws) {
  const vid n = g.num_vertices();
  DeltaSteppingResult r;
  r.dist.assign(n, kInfWeight);
  r.parent.assign(n, kNoVertex);
  if (n == 0) return r;
  require_vertex(g, source, "delta_stepping");
  if (delta <= 0) {
    const double avg_deg =
        g.num_vertices() ? static_cast<double>(g.num_arcs()) / g.num_vertices() : 1.0;
    delta = std::max<weight_t>(1.0, g.max_weight() / std::max(1.0, avg_deg));
  }
  // Integer bucket width. Bucketing by truncation puts every key of a
  // popped bucket b in the EXACT real interval [b*udelta, (b+1)*udelta)
  // — floor(nd) in [b*ud, (b+1)*ud) implies nd in the same half-open
  // interval for any real nd — which is what lets the packed rounds
  // derive exact interval bounds from integer arithmetic (a real-valued
  // delta would round b*delta and could put a key below the packed base).
  const auto udelta = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(delta));
  auto bucket_of = [&](weight_t d) { return static_cast<std::uint64_t>(d) / udelta; };

  ws.begin_run_(n);
  ws.ensure_reduce_(n);
  BucketEngine<SsspProposal>& engine = ws.proposal_engine_;
  engine.reset();

  std::vector<std::atomic<weight_t>>& dist = ws.dist_;
  std::vector<vid>& parent = ws.parent_;
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  std::vector<std::atomic<weight_t>>& best_key = ws.best_key_;
  std::vector<std::atomic<vid>>& best_via = ws.best_via_;
  std::vector<std::atomic<std::uint64_t>>& best_packed = ws.best_packed_;
  std::vector<std::vector<vid>>& newly_local = ws.newly_local_;
  std::vector<std::vector<vid>>& touched_local = ws.touched_local_;
  std::vector<vid>& newly = ws.newly_;
  std::vector<SsspProposal>& props = ws.props_;
  std::vector<vid>& settled = ws.improved_;   // per-bucket settled list
  std::vector<vid>& final_in_b = ws.frontier_;  // heavy-relax source list
  WorkerCounter& tally = ws.tally_;
  const std::size_t workers = newly_local.size();

  auto dist_of = [&](vid v) { return dist[v].load(std::memory_order_relaxed); };

  // The packed fast path needs every parent id representable in 24 bits
  // (kPackedNoVia is reserved for kNoVertex).
  const bool via_packs = !ws.force_three_phase_ &&
                         static_cast<std::uint64_t>(n) <= kPackedNoVia;

  // A round below this many items (proposals for the reduce, frontier
  // edges for the relax) runs entirely on one worker: plain writes, no
  // atomics, direct calendar pushes, no barriers. The decision depends
  // only on the (deterministic) round contents, so the counters match at
  // every thread count; both paths compute the same (dist, parent)
  // argmin, so the output is bit-identical.
  const std::size_t seq_threshold =
      ws.force_parallel_rounds_ ? 0 : FrontierRelaxer::kSequentialRoundEdges;
  // Per-stage chunk for the proposal-indexed phases below.
  constexpr std::size_t kStageGrain = 512;

  // Settle the round's per-vertex winner (p won the (dist, parent)
  // priority write for p.v). The stamp CAS admits one of possibly several
  // exact duplicates (parallel edges of equal weight carry identical
  // (v, via, dist)), so the settled state is schedule-independent either
  // way. Stale winners (v already at a smaller distance) fall through.
  auto settle = [&](const SsspProposal& p, std::uint64_t round_id) {
    std::uint64_t seen = stamp[p.v].load(std::memory_order_relaxed);
    if (seen == round_id) return;
    if (!stamp[p.v].compare_exchange_strong(seen, round_id,
                                            std::memory_order_relaxed)) {
      return;
    }
    const weight_t old = dist_of(p.v);
    if (p.dist >= old) return;
    dist[p.v].store(p.dist, std::memory_order_relaxed);
    parent[p.v] = p.via;
    const auto w = static_cast<std::size_t>(worker_id());
    detail::push_counted(newly_local[w], p.v, ws.scratch_allocs_);
    if (old == kInfWeight) {
      detail::push_counted(touched_local[w], p.v, ws.scratch_allocs_);
    }
  };
  // The sequential-round form: plain relaxed loads/stores (one worker
  // owns the whole round), winners straight into `newly`, first touches
  // straight into the touched list. Same settled state as the CAS form.
  auto settle_seq = [&](const SsspProposal& p, std::uint64_t round_id) {
    if (stamp[p.v].load(std::memory_order_relaxed) == round_id) return;
    stamp[p.v].store(round_id, std::memory_order_relaxed);
    const weight_t old = dist_of(p.v);
    if (p.dist >= old) return;
    dist[p.v].store(p.dist, std::memory_order_relaxed);
    parent[p.v] = p.via;
    detail::push_counted(newly, p.v, ws.scratch_allocs_);
    if (old == kInfWeight) {
      detail::push_counted(ws.touched_, p.v, ws.scratch_allocs_);
    }
  };

  engine.push(0, {source, kNoVertex, 0});

  // One persistent parallel region for the whole bucket loop; every
  // phase below is a barrier-separated Team stage (force_fork_join pins
  // the historical per-phase fork-join scheduling instead).
  Team::drive(!ws.force_fork_join_, [&](Team& team) {
    // Resolve the popped bucket's proposals (one synchronous round of the
    // CRCW priority write), settle the winners, and concatenate the
    // newly-improved vertices into `newly`. Two equivalent reduction
    // strategies, chosen per bucket:
    //  * packed fast path — the bucket's keys quantize order-exactly into
    //    40 bits, so (dist, parent) fuses into one 64-bit word and the
    //    reduce is a single atomic_write_min pass;
    //  * three-phase fallback — min dist, then min parent at that dist,
    //    then settle, barrier-separated.
    // Both compute the same argmin, so the output is bit-identical — and
    // each has a sequential-round form performing the same passes with
    // plain writes when the bucket is below the threshold.
    auto reduce_round = [&](bool packed, std::uint64_t base_bits) {
      std::uint64_t live = 0;
      const bool seq_round = props.size() <= seq_threshold;
      if (seq_round) {
        newly.clear();
        if (packed) {
          for (const SsspProposal& p : props) {
            if (p.dist >= dist_of(p.v)) continue;  // stale proposal
            ++live;
            const std::uint64_t word = pack_key_via(p.dist, base_bits, p.via);
            if (word < best_packed[p.v].load(std::memory_order_relaxed)) {
              best_packed[p.v].store(word, std::memory_order_relaxed);
            }
          }
          if (live != 0) {
            ++ws.packed_rounds_;
            ++ws.sequential_rounds_;
            const std::uint64_t round_id = ws.next_stamp_();
            for (const SsspProposal& p : props) {
              if (best_packed[p.v].load(std::memory_order_relaxed) ==
                  pack_key_via(p.dist, base_bits, p.via)) {
                settle_seq(p, round_id);
              }
            }
          }
          for (const SsspProposal& p : props) {
            best_packed[p.v].store(kPackedInf, std::memory_order_relaxed);
          }
        } else {
          for (const SsspProposal& p : props) {
            if (p.dist >= dist_of(p.v)) continue;  // stale proposal
            ++live;
            if (p.dist < best_key[p.v].load(std::memory_order_relaxed)) {
              best_key[p.v].store(p.dist, std::memory_order_relaxed);
            }
          }
          if (live != 0) {
            ++ws.fallback_rounds_;
            ++ws.sequential_rounds_;
            for (const SsspProposal& p : props) {
              if (p.dist == best_key[p.v].load(std::memory_order_relaxed) &&
                  p.via < best_via[p.v].load(std::memory_order_relaxed)) {
                best_via[p.v].store(p.via, std::memory_order_relaxed);
              }
            }
            const std::uint64_t round_id = ws.next_stamp_();
            for (const SsspProposal& p : props) {
              if (p.dist == best_key[p.v].load(std::memory_order_relaxed) &&
                  p.via == best_via[p.v].load(std::memory_order_relaxed)) {
                settle_seq(p, round_id);
              }
            }
          }
          for (const SsspProposal& p : props) {
            best_key[p.v].store(kInfWeight, std::memory_order_relaxed);
            best_via[p.v].store(kNoVertex, std::memory_order_relaxed);
          }
        }
        wd::add_work(live);
        return;
      }
      if (packed) {
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const SsspProposal& p = props[i];
          if (p.dist >= dist_of(p.v)) return;  // stale proposal
          tally.add(1);
          atomic_write_min(&best_packed[p.v], pack_key_via(p.dist, base_bits, p.via));
        });
        live = tally.drain();
        if (live != 0) {
          ++ws.packed_rounds_;
          ++ws.team_rounds_;
          const std::uint64_t round_id = ws.next_stamp_();
          team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
            const SsspProposal& p = props[i];
            if (best_packed[p.v].load(std::memory_order_relaxed) ==
                pack_key_via(p.dist, base_bits, p.via)) {
              settle(p, round_id);
            }
          });
        }
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          best_packed[props[i].v].store(kPackedInf, std::memory_order_relaxed);
        });
      } else {
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          const SsspProposal& p = props[i];
          if (p.dist >= dist_of(p.v)) return;  // stale proposal
          tally.add(1);
          atomic_write_min(&best_key[p.v], p.dist);
        });
        live = tally.drain();
        if (live != 0) {
          ++ws.fallback_rounds_;
          ++ws.team_rounds_;
          team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
            const SsspProposal& p = props[i];
            if (p.dist == best_key[p.v].load(std::memory_order_relaxed)) {
              atomic_write_min(&best_via[p.v], p.via);
            }
          });
          const std::uint64_t round_id = ws.next_stamp_();
          team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
            const SsspProposal& p = props[i];
            if (p.dist == best_key[p.v].load(std::memory_order_relaxed) &&
                p.via == best_via[p.v].load(std::memory_order_relaxed)) {
              settle(p, round_id);
            }
          });
        }
        // Reset the scratch minima (touched vertices only).
        team.loop(0, props.size(), kStageGrain, [&](std::size_t i) {
          best_key[props[i].v].store(kInfWeight, std::memory_order_relaxed);
          best_via[props[i].v].store(kNoVertex, std::memory_order_relaxed);
        });
      }
      wd::add_work(live);
      // Concatenate the per-worker winner lists with an exclusive scan,
      // and fold the first-touch lists into the workspace's touched set.
      std::vector<std::size_t>& offset = ws.offset_;
      for (std::size_t t = 0; t < workers; ++t) offset[t] = newly_local[t].size();
      const std::size_t settled_now = exclusive_scan_inplace(offset);
      if (settled_now > newly.capacity()) {
        ws.scratch_allocs_.fetch_add(1, std::memory_order_relaxed);
      }
      newly.resize(settled_now);
      team.loop(0, workers, 1, [&](std::size_t t) {
        std::copy(newly_local[t].begin(), newly_local[t].end(),
                  newly.begin() + offset[t]);
        newly_local[t].clear();
      });
      for (std::size_t t = 0; t < workers; ++t) {
        for (vid v : touched_local[t]) {
          detail::push_counted(ws.touched_, v, ws.scratch_allocs_);
        }
        touched_local[t].clear();
      }
    };

    // Relax the out-edges of `frontier` selected by `take`; improving
    // proposals enter the calendar at their new bucket. The push filter
    // reads distances that only change at settle barriers, so the
    // proposal multiset of every round is schedule-independent — which is
    // also what makes the adaptive degree-aware scheduling safe: the
    // relaxer either repartitions the same edge set into stolen ranges
    // across the team (hubs split across workers) or, below the
    // threshold, runs it on this thread with direct calendar pushes; the
    // per-bucket (dist, parent) min-reduce is order-independent, so the
    // output and the relaxation counter are bit-identical across all of
    // it and across thread counts.
    auto relax_edges = [&](const std::vector<vid>& frontier, std::uint64_t b,
                           auto take) {
      // One body, two emission routes: the sequential round places
      // straight into the calendar, the parallel round stages per worker.
      auto scan_with = [&](auto push) {
        return [&, push](std::size_t i, std::size_t lo, std::size_t hi) {
          const vid u = frontier[i];
          const weight_t du = dist_of(u);
          std::uint64_t count = 0;
          g.for_arcs(
              u, lo, hi,
              [&](vid ahead) { prefetch_read(&dist[ahead]); },
              [&](eid e, vid v) {
                const weight_t w = g.weight(e);
                if (!take(w)) return;
                const weight_t nd = du + w;
                ++count;
                if (nd < dist_of(v)) {
                  push(bucket_of(nd), SsspProposal{v, u, nd});
                }
              });
          tally.add(count);
        };
      };
      // Pull candidate scan. A vertex already at or below the bucket's
      // real lower bound cannot be improved by this round (every frontier
      // distance is >= b*udelta and weights are positive, so any proposal
      // exceeds the floor); everything else scans its own (symmetric,
      // equal-mirror-weight) adjacency and emits at most its lexicographic
      // (dist, via) minimum over frontier neighbours — exactly the winner
      // the push multiset's reduce would have settled, with nd = dist(u)+w
      // the same double operation, so the result is bit-identical. The
      // suppressed proposals are strict losers of that very reduce.
      // Relaxation accounting differs by design: push counts take-passing
      // edges, pull counts emitted winners — both schedule-deterministic,
      // but cross-direction comparisons must use distances, not counters.
      const weight_t floor_dist = static_cast<weight_t>(b * udelta);
      auto pull_scan = [&](vid v) -> std::size_t {
        const weight_t dv = dist_of(v);
        if (dv <= floor_dist) return 0;
        const std::size_t deg = g.degree(v);
        weight_t bd = dv;
        vid bu = kNoVertex;
        g.for_arcs(
            v, 0, deg,
            [&](vid ahead) { ws.relaxer_.prefetch_frontier_bit(ahead); },
            [&](eid e, vid u) {
              const weight_t w = g.weight(e);
              if (!take(w)) return;
              if (!ws.relaxer_.in_frontier(u)) return;
              const weight_t nd = dist_of(u) + w;
              if (nd < bd || (nd == bd && bu != kNoVertex && u < bu)) {
                bd = nd;
                bu = u;
              }
            });
        if (bu != kNoVertex) {
          engine.push_from_worker(bucket_of(bd), SsspProposal{v, bu, bd});
          tally.add(1);
        }
        return deg;
      };
      ws.relaxer_.relax(
          team, frontier, g.num_vertices(), g.num_arcs(), seq_threshold,
          [&](std::size_t i) { return static_cast<std::size_t>(g.degree(frontier[i])); },
          scan_with([&](std::uint64_t bb, SsspProposal p) { engine.push(bb, p); }),
          scan_with([&](std::uint64_t bb, SsspProposal p) {
            engine.push_from_worker(bb, p);
          }),
          pull_scan);
      if (!g.has_flat_adjacency()) ++ws.compressed_rounds_;
      const std::uint64_t relaxed = tally.drain();
      r.relaxations += relaxed;
      wd::add_work(relaxed);
    };

    std::uint64_t b;
    while ((b = engine.min_key(team)) != kNoBucket) {
      settled.clear();
      // Packed eligibility for this bucket: exact interval bounds from
      // the integer bucket arithmetic (see bucket_of above).
      const double lo = static_cast<double>(b * udelta);
      const double hi = static_cast<double>((b + 1) * udelta);
      const bool packed = via_packs && packed_interval_fits(lo, hi);
      const std::uint64_t base_bits = packed ? double_order_bits(lo) : 0;
      // Light relaxations (w <= delta) may re-enter this bucket; iterate
      // until it is drained.
      while (engine.min_key(team) == b) {
        engine.pop_round(team, props);
        ++r.phases;
        wd::add_round();
        reduce_round(packed, base_bits);
        for (vid v : newly) detail::push_counted(settled, v, ws.scratch_allocs_);
        relax_edges(newly, b, [&](weight_t w) { return w <= delta; });
      }
      // Heavy relaxations (w > delta) go to strictly later buckets; done
      // once per settled vertex.
      std::sort(settled.begin(), settled.end());
      settled.erase(std::unique(settled.begin(), settled.end()), settled.end());
      final_in_b.clear();
      for (vid v : settled) {
        if (bucket_of(dist_of(v)) == b) {
          detail::push_counted(final_in_b, v, ws.scratch_allocs_);
        }
      }
      relax_edges(final_in_b, b, [&](weight_t w) { return w > delta; });
    }
  });
  settled.clear();
  final_in_b.clear();

  // Copy the settled state out through the touched list (the workspace
  // keeps its buffers and the dist-infinity invariant machinery intact).
  const std::vector<vid>& touched = ws.touched_;
  parallel_for_grain(0, touched.size(), 512, [&](std::size_t i) {
    const vid v = touched[i];
    r.dist[v] = dist_of(v);
    r.parent[v] = parent[v];
  });
  return r;
}

}  // namespace parsh
