#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/work_depth.hpp"

namespace parsh {

DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta) {
  const vid n = g.num_vertices();
  DeltaSteppingResult r;
  r.dist.assign(n, kInfWeight);
  if (n == 0) return r;
  if (delta <= 0) {
    const double avg_deg =
        g.num_vertices() ? static_cast<double>(g.num_arcs()) / g.num_vertices() : 1.0;
    delta = std::max<weight_t>(1.0, g.max_weight() / std::max(1.0, avg_deg));
  }
  std::vector<std::vector<vid>> buckets;
  auto bucket_of = [&](weight_t d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto put = [&](vid v, weight_t d) {
    std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };
  r.dist[source] = 0;
  put(source, 0);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::vector<vid> settled;  // all vertices finalized in this bucket
    while (!buckets[b].empty()) {
      std::vector<vid> frontier;
      frontier.swap(buckets[b]);
      ++r.phases;
      wd::add_round();
      std::vector<vid> active;
      active.reserve(frontier.size());
      for (vid v : frontier) {
        if (bucket_of(r.dist[v]) == b) active.push_back(v);
      }
      settled.insert(settled.end(), active.begin(), active.end());
      // Light relaxations (w <= delta) may re-enter this bucket.
      for (vid u : active) {
        for (eid e = g.begin(u); e < g.end(u); ++e) {
          const weight_t w = g.weight(e);
          if (w > delta) continue;
          const vid v = g.target(e);
          const weight_t nd = r.dist[u] + w;
          ++r.relaxations;
          if (nd < r.dist[v]) {
            r.dist[v] = nd;
            put(v, nd);
          }
        }
      }
    }
    // Heavy relaxations (w > delta) go to strictly later buckets; done
    // once per settled vertex.
    std::sort(settled.begin(), settled.end());
    settled.erase(std::unique(settled.begin(), settled.end()), settled.end());
    for (vid u : settled) {
      if (bucket_of(r.dist[u]) != b) continue;
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const weight_t w = g.weight(e);
        if (w <= delta) continue;
        const vid v = g.target(e);
        const weight_t nd = r.dist[u] + w;
        ++r.relaxations;
        if (nd < r.dist[v]) {
          r.dist[v] = nd;
          put(v, nd);
        }
      }
    }
    wd::add_work(r.relaxations);
  }
  return r;
}

}  // namespace parsh
