#include "sssp/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace parsh {

namespace {

struct QItem {
  weight_t d;
  vid v;
  bool operator>(const QItem& o) const { return d > o.d; }
};

SsspResult dijkstra_impl(const Graph& g, vid source, weight_t limit, vid target) {
  const vid n = g.num_vertices();
  SsspResult r;
  r.dist.assign(n, kInfWeight);
  r.parent.assign(n, kNoVertex);
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  r.dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    if (u == target) break;
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      const weight_t nd = d + g.weight(e);
      if (nd > limit) continue;
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        r.parent[v] = u;
        pq.push({nd, v});
      }
    }
  }
  return r;
}

}  // namespace

SsspResult dijkstra(const Graph& g, vid source) {
  return dijkstra_impl(g, source, kInfWeight, kNoVertex);
}

SsspResult dijkstra_limited(const Graph& g, vid source, weight_t limit) {
  return dijkstra_impl(g, source, limit, kNoVertex);
}

weight_t st_distance(const Graph& g, vid s, vid t) {
  if (s == t) return 0;
  return dijkstra_impl(g, s, kInfWeight, t).dist[t];
}

std::vector<vid> extract_path(const std::vector<vid>& parent, vid s, vid t) {
  std::vector<vid> path;
  vid cur = t;
  while (cur != kNoVertex) {
    path.push_back(cur);
    if (cur == s) break;
    cur = parent[cur];
  }
  if (path.empty() || path.back() != s) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace parsh
