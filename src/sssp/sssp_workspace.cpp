#include "sssp/sssp_workspace.hpp"

#include <algorithm>

#include "parallel/atomics.hpp"

namespace parsh {

SsspWorkspace::SsspWorkspace()
    : frontier_engine_({.span = 256}),
      proposal_engine_({.span = 256}),
      newly_local_(static_cast<std::size_t>(num_workers())),
      touched_local_(static_cast<std::size_t>(num_workers())),
      offset_(static_cast<std::size_t>(num_workers())) {}

void SsspWorkspace::ensure_vertices_(vid n) {
  // The worker count may have been raised since construction (the engines
  // handle their own staging in reset()); the per-worker winner lists and
  // scan scratch are indexed by worker_id() and must cover it too.
  const auto workers = static_cast<std::size_t>(num_workers());
  if (workers > newly_local_.size()) {
    newly_local_.resize(workers);
    touched_local_.resize(workers);
    offset_.resize(workers);
    tally_ = WorkerCounter();
  }
  if (static_cast<std::size_t>(n) <= vertex_capacity_) return;
  ++grow_events_;
  // Geometric headroom: iterated callers whose graphs creep upwards pay
  // O(log n) reallocations, not one per new high-water mark.
  const std::size_t cap = std::max<std::size_t>(n, 2 * vertex_capacity_);
  parent_.resize(cap);
  owner_.resize(cap);
  // std::atomic is immovable, so the atomic arrays are reconstructed at
  // the new size; the rebuild restores the invariants the runs rely on
  // (dist all-infinite, stamps all below any handed-out stamp).
  dist_ = std::vector<std::atomic<weight_t>>(cap);
  stamp_ = std::vector<std::atomic<std::uint64_t>>(cap);
  parallel_for(0, cap, [&](std::size_t v) {
    dist_[v].store(kInfWeight, std::memory_order_relaxed);
    stamp_[v].store(0, std::memory_order_relaxed);
  });
  // The previous touched list pointed into the discarded array; the fresh
  // one is already all-infinite.
  touched_.clear();
  vertex_capacity_ = cap;
}

void SsspWorkspace::ensure_reduce_(vid n) {
  if (static_cast<std::size_t>(n) <= reduce_capacity_) return;
  ++grow_events_;
  const std::size_t cap =
      std::max<std::size_t>({static_cast<std::size_t>(n), 2 * reduce_capacity_,
                             vertex_capacity_});
  best_key_ = std::vector<std::atomic<weight_t>>(cap);
  best_via_ = std::vector<std::atomic<vid>>(cap);
  best_packed_ = std::vector<std::atomic<std::uint64_t>>(cap);
  // Invariant: the reduce scratch always reads "no proposal" outside a
  // round (rounds reset the entries they touched), so runs never pay an
  // O(n) scratch wipe.
  parallel_for(0, cap, [&](std::size_t v) {
    best_key_[v].store(kInfWeight, std::memory_order_relaxed);
    best_via_[v].store(kNoVertex, std::memory_order_relaxed);
    best_packed_[v].store(kPackedInf, std::memory_order_relaxed);
  });
  reduce_capacity_ = cap;
}

void SsspWorkspace::begin_run_(vid n) {
  ensure_vertices_(n);
  relaxer_.begin_run();  // fresh direction hysteresis per run
  // Restore the dist-infinity invariant for whatever the previous run
  // touched (ensure_vertices_ cleared the list if the arrays were
  // rebuilt, in which case they are already all-infinite).
  parallel_for_grain(0, touched_.size(), 512, [&](std::size_t i) {
    dist_[touched_[i]].store(kInfWeight, std::memory_order_relaxed);
  });
  touched_.clear();
}

}  // namespace parsh
