// Reusable traversal workspace for the SSSP family.
//
// Every traversal driver in src/sssp/ — level-synchronous BFS, the Dial
// search of weighted BFS, delta-stepping, hop-limited Bellman-Ford and the
// Theorem 1.2 query engine's per-scale sweeps — shares one storage shape:
// a bucketed frontier engine plus per-vertex (dist, parent) state. Before
// this layer each call heap-allocated that state from scratch, which the
// two hot call loops pay for repeatedly: ApproxShortestPaths runs one
// sweep per distance scale per query, and the hopset build fans out one
// weighted BFS per large-cluster center. SsspWorkspace owns the state
// once, mirroring EstClusterWorkspace (PR 2) for the clustering side:
//
//  * two bucket engines (a vid engine for BFS levels / Dial buckets, a
//    proposal engine for delta-stepping's (v, via, dist) relaxations),
//    reset-but-never-shrunk across calls;
//  * per-vertex dist / parent / owner arrays with a touched-vertex list:
//    the invariant "dist == kInfWeight except for vertices touched by the
//    last run" is restored lazily at the next run's start, so a run that
//    reaches few vertices (a distance-capped query sweep) costs O(touched)
//    workspace maintenance, not O(n);
//  * a generation-stamp array for the claim steps (BFS's per-level claim
//    — membership first-writer-wins, parents by min-via argmin —
//    delta-stepping's per-round settle dedup): stamps are monotone
//    across runs, so no run ever re-initializes them;
//  * the (dist, parent) CRCW min-reduce scratch — three-phase atomics and
//    the packed 64-bit word — shared with the packed/fallback round
//    counters and the force_three_phase test seam, exactly as PR 2's
//    clustering workspace.
//
// Results of a run stay readable in place (dist_of / parent_of / touched)
// until the next run on the same workspace begins. Not thread-safe across
// concurrent driver calls: one workspace per call chain. For parallel
// fan-outs (the hopset's per-center weighted BFS, batched queries) use
// SsspWorkspacePool, which keeps one workspace per OpenMP worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "util/deadline.hpp"

namespace parsh {

/// A relaxation in flight: "v can be reached through via at distance
/// dist". The payload of the workspace's proposal engine; popped buckets
/// are resolved per vertex by lexicographic (dist, via) minimum, which is
/// what makes the parent tree schedule-independent.
struct SsspProposal {
  vid v;
  vid via;
  weight_t dist;
};

struct BfsResult;
struct MultiBfsResult;
struct DeltaSteppingResult;
struct WeightedBfsResult;
struct MultiWeightedBfsResult;
struct HopLimitedStats;

namespace detail {

/// push_back that records capacity growth in the workspace's allocation
/// counter (relaxed atomic: growth can happen inside parallel regions).
template <typename T>
inline void push_counted(std::vector<T>& buf, T value,
                         std::atomic<std::uint64_t>& allocs) {
  if (buf.size() == buf.capacity()) {
    allocs.fetch_add(1, std::memory_order_relaxed);
  }
  buf.push_back(std::move(value));
}

}  // namespace detail

class SsspWorkspace {
 public:
  SsspWorkspace();

  /// The per-round scheduling knobs a driver's drain loop needs, snapshot
  /// from the workspace hooks (round_hooks_() below): whether to open a
  /// persistent team, the adaptive sequential-round threshold (0 when
  /// force_parallel_rounds is set), and where to count the decisions.
  struct RoundHooks {
    bool force_fork_join = false;
    std::size_t seq_threshold = 0;
    std::uint64_t* sequential_rounds = nullptr;
    std::uint64_t* team_rounds = nullptr;
    std::uint64_t* compressed_rounds = nullptr;
  };

  /// Heap-allocation events inside the workspace so far: both engines'
  /// counters plus the relaxer's prefix-scratch growth plus per-vertex
  /// array growth plus scratch-buffer capacity growth. Cumulative across
  /// runs; a warm run that fits every buffer leaves this unchanged — the
  /// guarantee the query-server tests pin.
  [[nodiscard]] std::uint64_t alloc_events() const {
    return frontier_engine_.alloc_events() + proposal_engine_.alloc_events() +
           relaxer_.alloc_events() + grow_events_ +
           scratch_allocs_.load(std::memory_order_relaxed);
  }
  /// Times the per-vertex arrays had to grow (once per high-water n).
  [[nodiscard]] std::uint64_t array_grow_events() const { return grow_events_; }
  /// (dist, parent) rounds resolved by the packed-word fast path / the
  /// three-phase fallback (cumulative; diagnostics and tests).
  [[nodiscard]] std::uint64_t packed_rounds() const { return packed_rounds_; }
  [[nodiscard]] std::uint64_t fallback_rounds() const { return fallback_rounds_; }

  /// Test hook: force the three-phase reduce even when a round's keys
  /// would fit the packed word (packed-vs-fallback equivalence tests).
  void force_three_phase(bool on) { force_three_phase_ = on; }

  /// Test hook mirroring force_three_phase: run the drain loops with the
  /// historical fork-join-per-phase scheduling instead of one persistent
  /// parallel region (team-vs-fork-join equivalence tests; bit-identical
  /// by the Team contract, parallel/team.hpp).
  void force_fork_join(bool on) { force_fork_join_ = on; }

  /// Test hook mirroring force_fork_join: disable the adaptive sequential
  /// round fast path, so every round runs through the parallel phases
  /// even below the threshold (sequential-vs-parallel-round equivalence
  /// tests; bit-identical by the determinism contract).
  void force_parallel_rounds(bool on) { force_parallel_rounds_ = on; }

  /// Rounds executed entirely on one worker via the adaptive sequential
  /// fast path / through the parallel (team or fork-join) phases
  /// (cumulative; deterministic in the inputs and hooks, independent of
  /// thread count). The Dial search is deliberately sequential per search
  /// and counts toward neither.
  [[nodiscard]] std::uint64_t sequential_rounds() const { return sequential_rounds_; }
  [[nodiscard]] std::uint64_t team_rounds() const { return team_rounds_; }

  /// Relax rounds whose adjacency was decoded from the delta-varint
  /// compressed representation (zero on flat graphs). The observable for
  /// the compressed-vs-flat equivalence tests, mirroring pull_rounds:
  /// outputs are bit-identical, this counter proves the compressed decode
  /// actually ran.
  [[nodiscard]] std::uint64_t compressed_rounds() const {
    return compressed_rounds_;
  }

  /// Test hook mirroring force_three_phase: schedule every relax round as
  /// whole vertices, disabling the degree-aware stolen edge ranges and
  /// the sequential fast path (for edge-grain-vs-vertex-grain equivalence
  /// tests; bit-identical by the FrontierRelaxer contract).
  void force_vertex_grain(bool on) { relaxer_.force_vertex_grain(on); }
  /// Relax rounds scheduled as stolen edge ranges / whole vertices
  /// (cumulative; diagnostics and tests).
  [[nodiscard]] std::uint64_t edge_grain_rounds() const {
    return relaxer_.edge_grain_rounds();
  }
  [[nodiscard]] std::uint64_t vertex_grain_rounds() const {
    return relaxer_.vertex_grain_rounds();
  }

  /// Direction hooks mirroring force_vertex_grain: pin every
  /// direction-capable relax round to push / to pull regardless of the
  /// edge-fraction heuristic (push-vs-pull equivalence tests; bit-identical
  /// by the FrontierRelaxer contract). Forcing one clears the other.
  void force_push(bool on) { relaxer_.force_push(on); }
  void force_pull(bool on) { relaxer_.force_pull(on); }
  /// Relax rounds run in pull (bitmap) mode, and the edges their candidate
  /// scans examined (cumulative; diagnostics, tests and benches).
  [[nodiscard]] std::uint64_t pull_rounds() const { return relaxer_.pull_rounds(); }
  [[nodiscard]] std::uint64_t pull_edges_scanned() const {
    return relaxer_.pull_edges_scanned();
  }

  /// Distance settled by the last run (kInfWeight if the run did not
  /// reach v). Valid until the next run on this workspace begins.
  [[nodiscard]] weight_t dist_of(vid v) const {
    return dist_[v].load(std::memory_order_relaxed);
  }
  /// Tree parent settled by the last run (kNoVertex for sources and
  /// unreached vertices). Meaningful after the drivers that settle
  /// parents — weighted BFS and delta-stepping; a hop-limited sweep
  /// settles distances only, and plain BFS writes parents straight into
  /// its result.
  [[nodiscard]] vid parent_of(vid v) const {
    return dist_of(v) == kInfWeight ? kNoVertex : parent_[v];
  }
  /// Vertices the last run reached, in no particular order. Iterating
  /// this instead of [0, n) is what keeps distance-capped sweeps (the
  /// query engine's out-of-scale searches) sublinear per call.
  [[nodiscard]] const std::vector<vid>& touched() const { return touched_; }

 private:
  friend BfsResult bfs(const Graph&, vid, vid, SsspWorkspace&);
  friend MultiBfsResult multi_bfs(const Graph&, const std::vector<vid>&, vid,
                                  SsspWorkspace&);
  friend DeltaSteppingResult delta_stepping(const Graph&, vid, weight_t,
                                            SsspWorkspace&);
  friend WeightedBfsResult weighted_bfs(const Graph&, vid, weight_t,
                                        SsspWorkspace&);
  friend MultiWeightedBfsResult multi_weighted_bfs(const Graph&,
                                                   const std::vector<vid>&,
                                                   weight_t, SsspWorkspace&);
  friend HopLimitedStats hop_limited_sssp(const Graph&, vid, std::uint64_t,
                                          bool, weight_t, SsspWorkspace&,
                                          const Deadline&);
  friend std::uint64_t hops_to_approx(const Graph&, vid, vid, weight_t, double,
                                      std::uint64_t);

  /// Grow the per-vertex base arrays (dist/parent/owner/stamp) to hold n
  /// vertices; geometric headroom, never shrunk. Newly (re)built entries
  /// restore the dist-infinity and stamp-zero invariants.
  void ensure_vertices_(vid n);
  /// Grow the (dist, parent) min-reduce scratch (three-phase atomics +
  /// packed words); only delta-stepping pays for these.
  void ensure_reduce_(vid n);
  /// Start a run over n vertices: grow arrays, restore the dist-infinity
  /// invariant for the previous run's touched vertices, clear the touched
  /// list. O(touched_prev) when nothing grows.
  void begin_run_(vid n);
  /// Fresh stamp, strictly larger than every stamp ever handed out by
  /// this workspace (run claims and per-round settle claims share the
  /// counter, so monotonicity is global).
  std::uint64_t next_stamp_() { return ++stamp_counter_; }

  /// Snapshot the round-scheduling hooks for a driver's drain loop.
  RoundHooks round_hooks_() {
    return {force_fork_join_,
            force_parallel_rounds_ ? 0 : FrontierRelaxer::kSequentialRoundEdges,
            &sequential_rounds_, &team_rounds_, &compressed_rounds_};
  }

  BucketEngine<vid> frontier_engine_;            // BFS levels, Dial buckets
  BucketEngine<SsspProposal> proposal_engine_;   // delta-stepping relaxations
  FrontierRelaxer relaxer_;                      // degree-aware relax scheduling
  // Per-vertex state (sized to the high-water n; only [0, n) touched).
  std::vector<std::atomic<weight_t>> dist_;
  std::vector<vid> parent_;
  std::vector<vid> owner_;                       // multi-source claim owner
  std::vector<std::atomic<std::uint64_t>> stamp_;
  std::vector<std::atomic<weight_t>> best_key_;             // three-phase scratch
  std::vector<std::atomic<vid>> best_via_;                  // three-phase scratch
  std::vector<std::atomic<std::uint64_t>> best_packed_;     // packed-word scratch
  // Per-run / per-round scratch independent of n.
  std::vector<vid> touched_;                     // vertices reached by last run
  std::vector<std::vector<vid>> newly_local_;    // per-worker settle winners
  std::vector<std::vector<vid>> touched_local_;  // per-worker first touches
  std::vector<vid> newly_;                       // concatenated winners
  std::vector<std::size_t> offset_;              // winner-concat scan
  std::vector<SsspProposal> props_;              // popped proposal bucket
  std::vector<vid> frontier_;                    // popped vid bucket / BF frontier
  std::vector<vid> improved_;                    // BF winners, settled lists
  std::vector<weight_t> frontier_dist_;          // per-round frontier snapshot (BF)
  WorkerCounter tally_;
  std::size_t vertex_capacity_ = 0;
  std::size_t reduce_capacity_ = 0;
  std::uint64_t stamp_counter_ = 0;
  std::uint64_t grow_events_ = 0;
  std::atomic<std::uint64_t> scratch_allocs_{0};
  std::uint64_t packed_rounds_ = 0;
  std::uint64_t fallback_rounds_ = 0;
  std::uint64_t sequential_rounds_ = 0;
  std::uint64_t team_rounds_ = 0;
  std::uint64_t compressed_rounds_ = 0;
  bool force_three_phase_ = false;
  bool force_fork_join_ = false;
  bool force_parallel_rounds_ = false;
};

/// One SsspWorkspace per OpenMP worker, for parallel fan-outs whose
/// iterations each run a sequential traversal: the hopset's per-center
/// weighted BFS, Cohen-baseline landmark searches, batched queries.
/// Workspaces live in a deque so growing the pool never moves (immovable)
/// existing workspaces.
///
/// Two access modes, not to be mixed concurrently:
///  * worker-affine (`local()`): inside an OpenMP fan-out, each worker
///    indexes its own slot — no locking, the historical mode;
///  * serving (`checkout()`/Lease): external threads (the query server's
///    std::thread workers) borrow a workspace from a free list under a
///    mutex, with a Deadline bounding how long they are willing to wait.
///    A pool smaller than the worker count is a deliberate admission
///    surface: a checkout that cannot be satisfied within its budget
///    returns an empty Lease and the caller sheds the batch instead of
///    queueing unboundedly.
class SsspWorkspacePool {
 public:
  SsspWorkspacePool() { prepare(); }

  /// Ensure one workspace per current worker. Must be called from
  /// sequential context (the pool grows if omp_set_num_threads raised the
  /// worker count since construction).
  void prepare() {
    const auto workers = static_cast<std::size_t>(num_workers());
    while (pool_.size() < workers) pool_.emplace_back();
  }

  /// The calling worker's workspace (race-free inside parallel regions
  /// provided prepare() ran since the last worker-count change).
  SsspWorkspace& local() { return pool_[static_cast<std::size_t>(worker_id())]; }

  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  [[nodiscard]] SsspWorkspace& at(std::size_t i) { return pool_[i]; }

  /// Sum of alloc_events() across the pool.
  [[nodiscard]] std::uint64_t alloc_events() const {
    std::uint64_t total = 0;
    for (const SsspWorkspace& ws : pool_) total += ws.alloc_events();
    return total;
  }

  /// An exclusively borrowed workspace (serving mode). Returns it to the
  /// free list on destruction; an empty lease means the budget ran out.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        index_ = other.index_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return pool_ != nullptr; }
    SsspWorkspace& operator*() { return pool_->at(index_); }
    SsspWorkspace* operator->() { return &pool_->at(index_); }

    void release() {
      if (pool_ != nullptr) pool_->checkin_(index_);
      pool_ = nullptr;
    }

   private:
    friend class SsspWorkspacePool;
    Lease(SsspWorkspacePool* pool, std::size_t index) : pool_(pool), index_(index) {}
    SsspWorkspacePool* pool_ = nullptr;
    std::size_t index_ = 0;
  };

  /// Size the pool for serving mode: exactly `count` workspaces on the
  /// free list. Call from one thread with no leases outstanding, before
  /// any checkout() — typically once at server start.
  void prepare_serving(std::size_t count) {
    if (count == 0) count = 1;
    while (pool_.size() < count) pool_.emplace_back();
    std::lock_guard<std::mutex> lock(mu_);
    free_.clear();
    for (std::size_t i = 0; i < count; ++i) free_.push_back(i);
  }

  /// Borrow a workspace, waiting until one is free or `deadline` expires
  /// (empty Lease). Wall-clock deadlines bound the wait exactly;
  /// check-based ones are re-polled every few milliseconds.
  [[nodiscard]] Lease checkout(const Deadline& deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!free_.empty()) {
        const std::size_t index = free_.back();
        free_.pop_back();
        return Lease(this, index);
      }
      if (deadline.expired()) return Lease();
      free_cv_.wait_for(lock, std::chrono::milliseconds(
                                  deadline.remaining_ms_clamped(5)));
    }
  }

  /// Workspaces currently on the serving free list (diagnostics).
  [[nodiscard]] std::size_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  void checkin_(std::size_t index) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(index);
    }
    free_cv_.notify_one();
  }

  std::deque<SsspWorkspace> pool_;
  mutable std::mutex mu_;
  std::condition_variable free_cv_;
  std::vector<std::size_t> free_;  // serving-mode free list (indices)
};

}  // namespace parsh
