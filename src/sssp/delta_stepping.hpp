// Delta-stepping SSSP (Meyer & Sanders). Included as an additional
// parallel shortest-path substrate: Figure 2's comparison is about how
// much machinery a parallel SSSP needs — delta-stepping is the practical
// non-hopset contender, so the benches report it alongside the
// hopset-based query engine.
//
// The relaxation conflicts are resolved per bucket round by a CRCW-style
// (dist, parent) priority write — the lexicographic minimum wins — so
// both the distances AND the shortest-path tree are bit-identical at
// every thread count. Rounds whose bucket interval quantizes into the
// packed 64-bit word (bucket index >= 2^12; see atomics.hpp) fuse the
// three-phase min-reduce into a single atomic_write_min per proposal.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

struct DeltaSteppingResult {
  std::vector<weight_t> dist;
  /// Shortest-path-tree parent (kNoVertex at the source / unreached):
  /// among the relaxations achieving dist[v], the winner of the
  /// (dist, parent) priority write — deterministic in (g, source, delta).
  std::vector<vid> parent;
  std::uint64_t phases = 0;       ///< bucket phases (depth proxy)
  std::uint64_t relaxations = 0;  ///< edges relaxed (work proxy)
};

/// SSSP with bucket width `delta`. delta <= 0 picks a heuristic
/// (max_weight / average degree, clamped to >= 1). The effective width is
/// floor(delta): integer bucket boundaries are what make the packed
/// (dist, parent) rounds exact.
DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta = 0);

/// Workspace form: the proposal engine, per-vertex arrays and the
/// (dist, parent) reduce scratch live in `ws`; warm calls on graphs no
/// larger than already seen allocate nothing. Same output.
DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta,
                                   SsspWorkspace& ws);

}  // namespace parsh
