// Delta-stepping SSSP (Meyer & Sanders). Included as an additional
// parallel shortest-path substrate: Figure 2's comparison is about how
// much machinery a parallel SSSP needs — delta-stepping is the practical
// non-hopset contender, so the benches report it alongside the
// hopset-based query engine.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct DeltaSteppingResult {
  std::vector<weight_t> dist;
  std::uint64_t phases = 0;       ///< bucket phases (depth proxy)
  std::uint64_t relaxations = 0;  ///< edges relaxed (work proxy)
};

/// SSSP with bucket width `delta`. delta <= 0 picks a heuristic
/// (max_weight / average degree, clamped to >= 1).
DeltaSteppingResult delta_stepping(const Graph& g, vid source, weight_t delta = 0);

}  // namespace parsh
