#include "sssp/dynamic_approx.hpp"

#include <chrono>
#include <utility>

#include "hopset/weighted_hopset.hpp"

namespace parsh {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DynamicApproxShortestPaths::DynamicApproxShortestPaths(Graph g, Params params,
                                                       std::uint64_t initial_epoch)
    : params_(params), n_(g.num_vertices()) {
  // Normalize once; rebuilds must see the exact parameter set epoch 0 was
  // built with or bit-identity across epochs is off the table.
  if (params_.hopset.zeta <= 0) params_.hopset.zeta = params_.epsilon / 2.0;
  WeightedHopset hs =
      build_weighted_hopset(g, params_.hopset, cluster_ws_, build_pool_);
  ApproxShortestPaths engine(n_, std::move(hs), params_);
  snap_ = std::make_shared<const Snapshot>(std::move(g), std::move(engine),
                                           initial_epoch);
  update_seq_.store(initial_epoch, std::memory_order_relaxed);
  published_epoch_.store(initial_epoch, std::memory_order_relaxed);
}

std::shared_ptr<const DynamicApproxShortestPaths::Snapshot>
DynamicApproxShortestPaths::snapshot() const {
  std::lock_guard<std::mutex> lk(snap_mu_);
  return snap_;
}

DynamicApproxShortestPaths::ApplyResult DynamicApproxShortestPaths::apply(
    const GraphDelta& delta,
    const std::function<void(const ApplyResult&)>& pre_publish) {
  std::lock_guard<std::mutex> lk(update_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::shared_ptr<const Snapshot> old = snapshot();

  // Validate-then-accept: apply_delta throws on bad endpoints/weights
  // before the update is counted, so a rejected batch leaves no trace.
  DeltaResult dr = old->graph.apply_delta(delta);
  update_seq_.fetch_add(1, std::memory_order_relaxed);
  rebuild_in_progress_.store(true, std::memory_order_relaxed);

  ApplyResult res;
  res.inserted = dr.inserted;
  res.removed = dr.removed;
  res.reweighted = dr.reweighted;
  res.noops = dr.noops;

  WeightedHopset hs;
  if (force_full_.load(std::memory_order_relaxed)) {
    for (const HopsetScale& s : old->engine.hopset().scales) {
      res.hopset.total_clusters += std::max<vid>(s.top_clusters, 1);
    }
    hs = build_weighted_hopset(dr.graph, params_.hopset, cluster_ws_,
                               build_pool_);
    res.hopset.full_rebuild = true;
    res.hopset.total_scales = hs.scales.size();
    res.hopset.dirty_scales = hs.scales.size();
    res.hopset.dirty_clusters = res.hopset.total_clusters;
  } else {
    hs = rebuild_weighted_hopset(dr.graph, params_.hopset,
                                 old->engine.hopset(), dr.changes, cluster_ws_,
                                 build_pool_, &res.hopset);
  }
  auto snap = std::make_shared<const Snapshot>(
      std::move(dr.graph), ApproxShortestPaths(n_, std::move(hs), params_),
      old->epoch + 1);
  res.epoch = snap->epoch;
  // rebuild_ms is pinned here, before the write-ahead seam, so the value
  // the durability layer logs IS the value the caller (and any duplicate
  // retry answered from the log) sees — one canonical result per epoch.
  res.rebuild_ms = ms_since(t0);

  // The write-ahead seam: the snapshot is complete but unpublished and
  // uncounted. A throwing pre_publish (WAL append/fsync failure) unwinds
  // the accepted-update counter and discards the snapshot — no reader
  // ever saw the epoch, so the failed update leaves no trace.
  if (pre_publish) {
    try {
      pre_publish(res);
    } catch (...) {
      update_seq_.fetch_sub(1, std::memory_order_relaxed);
      rebuild_in_progress_.store(false, std::memory_order_relaxed);
      throw;
    }
  }

  // The last instant before readers can see the snapshot. Fault injection
  // stalls here to widen the swap window.
  if (swap_hook_) swap_hook_();

  {
    std::lock_guard<std::mutex> pub(snap_mu_);
    snap_ = snap;
  }
  published_epoch_.store(snap->epoch, std::memory_order_relaxed);
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  if (res.hopset.full_rebuild) {
    full_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  }
  last_rebuild_ms_.store(res.rebuild_ms, std::memory_order_relaxed);
  rebuild_in_progress_.store(false, std::memory_order_relaxed);
  return res;
}

}  // namespace parsh
