// End-to-end (1+eps)-approximate shortest-path engine (Theorem 1.2).
//
// Preprocessing: Klein-Subramanian rounding per distance scale + the
// Algorithm 4 hopset on each rounded graph (build_weighted_hopset).
// Query: for each scale, a hop-budgeted round-synchronous search over the
// rounded graph-plus-hopset ([KS97]'s reduction: given an
// (eps, h, m')-hopset, a (1+eps)-approximate distance takes O(h) rounds of
// O(m) work). The smallest consistent scale answers; every scale's answer
// is a valid upper bound, so the engine returns the minimum seen.
//
// Works for unweighted graphs too (they are the single-scale special
// case).
//
// Serving: every per-scale sweep runs on an SsspWorkspace, so a
// long-lived server thread reuses one workspace across requests and warm
// queries perform zero traversal-engine heap allocations. query_batch is
// the request-batch form: sequential over one workspace, or parallel
// across a workspace pool (one workspace per OpenMP worker).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "hopset/weighted_hopset.hpp"
#include "sssp/sssp_workspace.hpp"
#include "util/deadline.hpp"

namespace parsh {

class ApproxShortestPaths {
 public:
  struct Params {
    double epsilon = 0.25;  ///< end-to-end approximation target
    WeightedHopsetParams hopset;  ///< scale/rounding/hopset knobs
    /// Safety factor on the Lemma 4.2 hop budget (Markov slack).
    double hop_slack = 2.0;
    /// Hard cap on per-scale query rounds.
    std::uint64_t max_hops = 1u << 14;
  };

  /// Preprocess g (positive weights; integer not required — rounding
  /// handles it). Deterministic in (g, params).
  ApproxShortestPaths(const Graph& g, Params params);

  /// Wrap a hopset the caller already built (the incremental-rebuild path
  /// of DynamicApproxShortestPaths). `params` must be the exact,
  /// already-normalized parameter set that built `hopset` — unlike the
  /// graph ctor, no zeta defaulting is applied, so an engine assembled
  /// this way is bit-identical to one built from the graph with the same
  /// normalized params.
  ApproxShortestPaths(vid n, WeightedHopset hopset, Params params);

  struct QueryResult {
    weight_t estimate = kInfWeight;  ///< (1+eps)-approximate distance
    std::uint64_t rounds = 0;        ///< hop rounds executed (depth proxy)
    std::uint64_t relaxations = 0;   ///< edges relaxed (work proxy)
    std::size_t scale_used = 0;      ///< index of the answering scale
    /// The deadline expired before every scheduled scale finished. The
    /// estimate is whatever the completed rounds settled — still a valid
    /// upper bound when finite (rounded-up weights), but the (1+eps)
    /// stretch target is no longer guaranteed.
    bool deadline_exceeded = false;
    /// Served from a degraded tier (skip_scales > 0 actually skipped
    /// scales); see QueryOptions for the tier's stretch contract.
    bool degraded = false;
  };

  /// Per-query serving knobs. Defaults reproduce the plain query exactly.
  struct QueryOptions {
    /// Cooperative cancellation budget, polled between scales and between
    /// hop rounds inside each scale. On expiry the query unwinds with a
    /// partial, deadline_exceeded-flagged answer instead of blocking.
    Deadline deadline = Deadline::never();
    /// Graceful degradation tier: skip the `skip_scales` finest distance
    /// scales (clamped so at least one scale is always served). Skipped
    /// fine scales are where short-range accuracy and most out-of-scale
    /// round cost live, so tier t trades precision on short distances for
    /// a cheaper query. Stretch contract of tier t (see degraded_slack()):
    /// a query whose matching scale is still served keeps the (1+eps)
    /// target; one whose distance D falls below the finest served scale's
    /// band is answered by that scale with
    ///   estimate <= (1+eps) * D + degraded_slack() * d_first
    /// where d_first is the finest served scale's lower bound.
    std::size_t skip_scales = 0;
  };

  /// Approximate dist(s, t).
  [[nodiscard]] QueryResult query(vid s, vid t) const;
  /// Workspace form: all traversal state lives in `ws`; warm calls
  /// allocate nothing. Results are identical to the plain form.
  [[nodiscard]] QueryResult query(vid s, vid t, SsspWorkspace& ws) const;
  /// Serving form: deadline-checked, degradable. With default options
  /// this is exactly the workspace form.
  [[nodiscard]] QueryResult query(vid s, vid t, SsspWorkspace& ws,
                                  const QueryOptions& opts) const;

  /// An s-t request batch, answered in order. The workspace overload runs
  /// the batch sequentially through one workspace (the deterministic-reuse
  /// path a single server thread uses); the pool overload fans the batch
  /// out across workers, one workspace each.
  using QueryPair = std::pair<vid, vid>;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs) const;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs, SsspWorkspace& ws) const;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs, SsspWorkspacePool& pool) const;
  /// Serving form: the batch shares one budget. The deadline is also
  /// checked between requests — once it expires, the remaining requests
  /// return immediately as deadline_exceeded partials (estimate infinite)
  /// rather than blocking the worker on work nobody will wait for.
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs, SsspWorkspace& ws,
      const QueryOptions& opts) const;

  /// Batch form: approximate distances from s to every vertex (one
  /// hop-budgeted sweep per scale; unreachable stays kInfWeight). This is
  /// the "single-source" reading of Theorem 1.2 — same rounds as one
  /// query, answers for all targets.
  struct AllResult {
    std::vector<weight_t> estimate;
    std::uint64_t rounds = 0;
    std::uint64_t relaxations = 0;
  };
  [[nodiscard]] AllResult query_all(vid s) const;
  [[nodiscard]] AllResult query_all(vid s, SsspWorkspace& ws) const;

  [[nodiscard]] const WeightedHopset& hopset() const { return hopset_; }
  [[nodiscard]] std::uint64_t preprocessing_rounds() const { return hopset_.rounds; }

  /// Number of distance scales a query can be degraded across (the max
  /// meaningful QueryOptions::skip_scales is num_scales() - 1).
  [[nodiscard]] std::size_t num_scales() const { return hopset_.scales.size(); }

  /// The additive-slack coefficient of the degraded-tier stretch bound:
  /// answering a query of true distance D from a scale with lower bound d
  /// (instead of its finer matching scale) costs at most
  ///   estimate <= (1+eps) * D + degraded_slack() * d.
  /// Derivation: the scale's rounding granularity is w_hat = zeta * d / k
  /// (Lemma 5.2), the query walks paths of at most hop_slack * k + 2 hops,
  /// and each hop rounds up by < w_hat — so the additive term is bounded
  /// by (hop_slack * k + 2) * w_hat * (1 + eps) ~= zeta * hop_slack *
  /// (1 + eps) * d; the extra (1+eps) factor absorbs the hopset's own
  /// multiplicative stretch on the rounded graph.
  [[nodiscard]] double degraded_slack() const {
    return params_.hopset.zeta * params_.hop_slack * (1.0 + params_.epsilon) +
           2.0 * params_.hopset.zeta / std::max(1.0, hopset_.k_hops);
  }

 private:
  void init_hop_budgets_();

  Params params_;
  vid n_ = 0;
  WeightedHopset hopset_;
  std::vector<std::uint64_t> hop_budget_;  ///< per scale
};

}  // namespace parsh
