// End-to-end (1+eps)-approximate shortest-path engine (Theorem 1.2).
//
// Preprocessing: Klein-Subramanian rounding per distance scale + the
// Algorithm 4 hopset on each rounded graph (build_weighted_hopset).
// Query: for each scale, a hop-budgeted round-synchronous search over the
// rounded graph-plus-hopset ([KS97]'s reduction: given an
// (eps, h, m')-hopset, a (1+eps)-approximate distance takes O(h) rounds of
// O(m) work). The smallest consistent scale answers; every scale's answer
// is a valid upper bound, so the engine returns the minimum seen.
//
// Works for unweighted graphs too (they are the single-scale special
// case).
//
// Serving: every per-scale sweep runs on an SsspWorkspace, so a
// long-lived server thread reuses one workspace across requests and warm
// queries perform zero traversal-engine heap allocations. query_batch is
// the request-batch form: sequential over one workspace, or parallel
// across a workspace pool (one workspace per OpenMP worker).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hopset/weighted_hopset.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

class ApproxShortestPaths {
 public:
  struct Params {
    double epsilon = 0.25;  ///< end-to-end approximation target
    WeightedHopsetParams hopset;  ///< scale/rounding/hopset knobs
    /// Safety factor on the Lemma 4.2 hop budget (Markov slack).
    double hop_slack = 2.0;
    /// Hard cap on per-scale query rounds.
    std::uint64_t max_hops = 1u << 14;
  };

  /// Preprocess g (positive weights; integer not required — rounding
  /// handles it). Deterministic in (g, params).
  ApproxShortestPaths(const Graph& g, Params params);

  struct QueryResult {
    weight_t estimate = kInfWeight;  ///< (1+eps)-approximate distance
    std::uint64_t rounds = 0;        ///< hop rounds executed (depth proxy)
    std::uint64_t relaxations = 0;   ///< edges relaxed (work proxy)
    std::size_t scale_used = 0;      ///< index of the answering scale
  };

  /// Approximate dist(s, t).
  [[nodiscard]] QueryResult query(vid s, vid t) const;
  /// Workspace form: all traversal state lives in `ws`; warm calls
  /// allocate nothing. Results are identical to the plain form.
  [[nodiscard]] QueryResult query(vid s, vid t, SsspWorkspace& ws) const;

  /// An s-t request batch, answered in order. The workspace overload runs
  /// the batch sequentially through one workspace (the deterministic-reuse
  /// path a single server thread uses); the pool overload fans the batch
  /// out across workers, one workspace each.
  using QueryPair = std::pair<vid, vid>;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs) const;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs, SsspWorkspace& ws) const;
  [[nodiscard]] std::vector<QueryResult> query_batch(
      const std::vector<QueryPair>& pairs, SsspWorkspacePool& pool) const;

  /// Batch form: approximate distances from s to every vertex (one
  /// hop-budgeted sweep per scale; unreachable stays kInfWeight). This is
  /// the "single-source" reading of Theorem 1.2 — same rounds as one
  /// query, answers for all targets.
  struct AllResult {
    std::vector<weight_t> estimate;
    std::uint64_t rounds = 0;
    std::uint64_t relaxations = 0;
  };
  [[nodiscard]] AllResult query_all(vid s) const;
  [[nodiscard]] AllResult query_all(vid s, SsspWorkspace& ws) const;

  [[nodiscard]] const WeightedHopset& hopset() const { return hopset_; }
  [[nodiscard]] std::uint64_t preprocessing_rounds() const { return hopset_.rounds; }

 private:
  Params params_;
  vid n_ = 0;
  WeightedHopset hopset_;
  std::vector<std::uint64_t> hop_budget_;  ///< per scale
};

}  // namespace parsh
