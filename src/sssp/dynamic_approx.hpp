// Epoch-swapped dynamic serving for the approximate-SSSP engine.
//
// DynamicApproxShortestPaths wraps ApproxShortestPaths behind an
// immutable-snapshot swap: queries run against whatever snapshot they
// grabbed, updates build a NEW snapshot off to the side and publish it
// atomically. Nothing a reader holds is ever mutated — the snapshot owns
// its Graph (storage handles pin mmap-backed files alive) and its engine,
// and shared_ptr keeps it breathing until the last in-flight batch drops
// it. That is the whole concurrency story:
//
//   * apply() runs on the caller's thread, serialized by an update mutex
//     (batches are ordered; there is one rebuild at a time).
//   * The swap is a shared_ptr store under a second, tiny mutex; readers
//     copy the pointer under the same mutex. The mutex release/acquire
//     pair is the happens-before edge that makes every byte of the new
//     snapshot (built before the store) visible to every reader that
//     observes the new pointer — no atomics on the snapshot itself, and
//     nothing for TSan to complain about.
//   * Counters are relaxed atomics: they feed metrics, not control flow.
//
// The rebuild is incremental: Graph::apply_delta reports the effective
// change set, and rebuild_weighted_hopset recomputes only the distance
// scales that can see a changed edge, reusing the rest of the previous
// hopset wholesale (O(1) handle copies). The result is bit-identical to a
// from-scratch build — tests/test_dynamic.cpp holds a randomized
// differential harness to that claim. `force_full_rebuild` bypasses the
// dirty-region path so the harness can compare organic vs forced runs.
//
// Staleness: a query batch served from epoch E while updates_started() is
// already past E saw a graph older than the newest accepted update. The
// server reports that per response (the epoch field) and in aggregate
// (stale_batches); it is the price of never blocking queries on rebuilds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "cluster/est_cluster.hpp"
#include "graph/delta.hpp"
#include "sssp/approx_query.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

class DynamicApproxShortestPaths {
 public:
  using Params = ApproxShortestPaths::Params;

  /// One immutable serving epoch: the graph (its storage handles keep any
  /// mmap backing alive) and the engine built from it. Snapshots are only
  /// ever read once published.
  struct Snapshot {
    Graph graph;
    ApproxShortestPaths engine;
    std::uint64_t epoch = 0;

    Snapshot(Graph g, ApproxShortestPaths e, std::uint64_t ep)
        : graph(std::move(g)), engine(std::move(e)), epoch(ep) {}
  };

  /// What one apply() did (also the payload of the server's
  /// UpdateResponse).
  struct ApplyResult {
    std::uint64_t epoch = 0;      ///< epoch the new snapshot serves as
    double rebuild_ms = 0;        ///< delta merge + hopset rebuild + engine
    HopsetRebuildStats hopset;    ///< dirty/total scales and clusters
    std::uint64_t inserted = 0, removed = 0, reweighted = 0, noops = 0;
  };

  /// Build the first snapshot from g. Params are normalized here once
  /// (the zeta defaulting the static engine's ctor does) so every later
  /// rebuild sees the identical parameter set. `initial_epoch` seats the
  /// epoch counter: 0 for a fresh engine, the checkpoint's epoch when the
  /// durability layer rebuilds an engine from a recovered graph (hopset
  /// state is a pure function of (graph, params, seed) — the PR 9
  /// differential harness pins from-scratch == incremental — so replaying
  /// the WAL tail from here reproduces the uninterrupted snapshots
  /// bit-identically).
  DynamicApproxShortestPaths(Graph g, Params params, std::uint64_t initial_epoch = 0);

  /// The current published snapshot. Hold the returned pointer for the
  /// whole batch: every answer in a batch then comes from one epoch, and
  /// the backing storage outlives any concurrent swap or file unlink.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;

  /// Apply one update batch: merge the delta, rebuild dirty scales (or
  /// everything under force_full_rebuild), publish the new snapshot.
  /// Serialized internally; queries are never blocked. Throws
  /// std::invalid_argument (bad endpoints / weights) without publishing.
  ApplyResult apply(const GraphDelta& delta) { return apply(delta, nullptr); }

  /// apply() with a write-ahead seam: `pre_publish` runs on the applying
  /// thread after the new snapshot is fully built but BEFORE anything is
  /// published or counted — the point where the durability layer appends
  /// and fsyncs the WAL record, so an acknowledged update is on disk
  /// before any reader can observe its epoch. The ApplyResult it receives
  /// is final (epoch, rebuild stats, effect counts). If it throws, the
  /// new snapshot is discarded, every counter is rolled back, and the
  /// exception propagates: a durability failure leaves the engine exactly
  /// as if the apply never happened.
  ApplyResult apply(const GraphDelta& delta,
                    const std::function<void(const ApplyResult&)>& pre_publish);

  /// Epoch of the published snapshot (0 until the first apply lands).
  [[nodiscard]] std::uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_relaxed);
  }
  /// Updates accepted so far (>= epoch(); greater while a rebuild runs).
  [[nodiscard]] std::uint64_t updates_started() const {
    return update_seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool rebuild_in_progress() const {
    return rebuild_in_progress_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t full_rebuilds() const {
    return full_rebuilds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double last_rebuild_ms() const {
    return last_rebuild_ms_.load(std::memory_order_relaxed);
  }

  /// Staleness accounting: the server calls this once per served batch
  /// with the epoch the batch's snapshot carried. A batch is stale when a
  /// newer update had already been accepted when it was served; returns
  /// that verdict so the caller can count it on its own side too.
  bool note_batch_served(std::uint64_t served_epoch) {
    batches_served_.fetch_add(1, std::memory_order_relaxed);
    if (update_seq_.load(std::memory_order_relaxed) > served_epoch) {
      stale_batches_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  [[nodiscard]] std::uint64_t batches_served() const {
    return batches_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stale_batches() const {
    return stale_batches_.load(std::memory_order_relaxed);
  }

  /// Test hook: make every apply() rebuild all scales from scratch. The
  /// differential harness requires forced and organic runs to agree.
  void set_force_full_rebuild(bool on) {
    force_full_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool force_full_rebuild() const {
    return force_full_.load(std::memory_order_relaxed);
  }

  /// Invoked on the apply() thread after the new snapshot is fully built,
  /// immediately before it is published — the fault-injection seam at the
  /// swap boundary (the server wires the FaultInjector's swap site here).
  void set_swap_hook(std::function<void()> hook) { swap_hook_ = std::move(hook); }

  [[nodiscard]] vid num_vertices() const { return n_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// The rebuild's warm workspaces, exposed for the determinism suite's
  /// forced-seam matrix (push/pull, team/fork-join hooks live on these).
  [[nodiscard]] EstClusterWorkspace& cluster_workspace() { return cluster_ws_; }
  [[nodiscard]] SsspWorkspacePool& build_pool() { return build_pool_; }

 private:
  Params params_;
  vid n_ = 0;

  mutable std::mutex snap_mu_;  ///< guards snap_ (publish + read)
  std::shared_ptr<const Snapshot> snap_;
  std::mutex update_mu_;  ///< serializes apply()

  /// Warm across batches: the incremental-rebuild half of the
  /// workspace-reuse story (queries reuse through the server's pool).
  EstClusterWorkspace cluster_ws_;
  SsspWorkspacePool build_pool_;

  std::function<void()> swap_hook_;

  std::atomic<std::uint64_t> update_seq_{0};
  std::atomic<std::uint64_t> published_epoch_{0};
  std::atomic<bool> rebuild_in_progress_{false};
  std::atomic<bool> force_full_{false};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> full_rebuilds_{0};
  std::atomic<std::uint64_t> batches_served_{0};
  std::atomic<std::uint64_t> stale_batches_{0};
  std::atomic<double> last_rebuild_ms_{0};
};

}  // namespace parsh
