#include "sssp/hop_limited.hpp"

#include <algorithm>

#include "graph/validation.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// One frontier-driven Bellman-Ford round over the workspace arrays:
/// relax out-edges of `frontier` into `dist`, leaving the improved
/// vertices (deduped, sorted) in `improved`. Relaxations stay sequential:
/// in-round chaining (an improvement feeding a later frontier member's
/// relaxation) is part of the driver's established semantics, and the
/// workspace's parallelism budget is spent across queries instead
/// (SsspWorkspacePool). First touches are recorded so the workspace can
/// restore its dist-infinity invariant lazily.
struct BellmanFordRefs {
  std::vector<std::atomic<weight_t>>& dist;
  std::vector<vid>& touched;
  std::vector<vid>& frontier;
  std::vector<vid>& improved;
  std::atomic<std::uint64_t>& allocs;
};

void relax_round(const Graph& g, BellmanFordRefs& r, std::uint64_t* relaxations,
                 weight_t dist_limit) {
  auto dist_of = [&](vid v) { return r.dist[v].load(std::memory_order_relaxed); };
  std::uint64_t touched_work = 0;
  r.improved.clear();
  for (vid u : r.frontier) {
    const weight_t du = dist_of(u);
    touched_work += g.degree(u);
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      const weight_t nd = du + g.weight(e);
      const weight_t dv = dist_of(v);
      if (nd < dv && nd <= dist_limit) {
        if (dv == kInfWeight) detail::push_counted(r.touched, v, r.allocs);
        r.dist[v].store(nd, std::memory_order_relaxed);
        detail::push_counted(r.improved, v, r.allocs);
      }
    }
  }
  *relaxations += touched_work;
  wd::add_work(touched_work);
  wd::add_round();
  // Dedup (a vertex may be improved via several frontier members).
  std::sort(r.improved.begin(), r.improved.end());
  r.improved.erase(std::unique(r.improved.begin(), r.improved.end()),
                   r.improved.end());
  std::swap(r.frontier, r.improved);
}

}  // namespace

HopLimitedStats hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                 bool stop_early, weight_t dist_limit,
                                 SsspWorkspace& ws) {
  require_vertex(g, source, "hop_limited_sssp");
  ws.begin_run_(g.num_vertices());
  BellmanFordRefs r{ws.dist_, ws.touched_, ws.frontier_, ws.improved_,
                    ws.scratch_allocs_};
  r.dist[source].store(0, std::memory_order_relaxed);
  detail::push_counted(r.touched, source, r.allocs);
  r.frontier.clear();
  detail::push_counted(r.frontier, source, r.allocs);
  // stop_early is kept for API symmetry: an empty frontier means nothing
  // can ever improve again, so the loop exits there either way (a
  // non-early run differs only in that callers budget h for it).
  (void)stop_early;
  HopLimitedStats stats;
  for (std::uint64_t round = 0; round < h; ++round) {
    if (r.frontier.empty()) break;  // nothing more can ever improve
    relax_round(g, r, &stats.relaxations, dist_limit);
    ++stats.rounds;
  }
  r.frontier.clear();
  return stats;
}

HopLimitedResult hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                  bool stop_early, weight_t dist_limit) {
  SsspWorkspace ws;
  const HopLimitedStats stats =
      hop_limited_sssp(g, source, h, stop_early, dist_limit, ws);
  HopLimitedResult r;
  r.rounds = stats.rounds;
  r.relaxations = stats.relaxations;
  r.dist.assign(g.num_vertices(), kInfWeight);
  for (vid v : ws.touched()) r.dist[v] = ws.dist_of(v);
  return r;
}

std::uint64_t hops_to_approx(const Graph& g, vid s, vid t, weight_t true_dist,
                             double eps, std::uint64_t h_cap) {
  if (s == t) return 0;
  SsspWorkspace ws;
  ws.begin_run_(g.num_vertices());
  BellmanFordRefs r{ws.dist_, ws.touched_, ws.frontier_, ws.improved_,
                    ws.scratch_allocs_};
  r.dist[s].store(0, std::memory_order_relaxed);
  detail::push_counted(r.touched, s, r.allocs);
  r.frontier.clear();
  detail::push_counted(r.frontier, s, r.allocs);
  const weight_t goal = (1.0 + eps) * true_dist;
  std::uint64_t relaxations = 0;
  for (std::uint64_t h = 1; h <= h_cap; ++h) {
    if (r.frontier.empty()) return h_cap;  // converged without reaching goal
    relax_round(g, r, &relaxations, kInfWeight);
    if (ws.dist_of(t) <= goal) return h;
  }
  return h_cap;
}

}  // namespace parsh
