#include "sssp/hop_limited.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/parallel_for.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// One frontier-driven Bellman-Ford round: relax out-edges of `frontier`
/// into `dist`, collecting improved vertices. Returns improved set.
std::vector<vid> relax_round(const Graph& g, const std::vector<vid>& frontier,
                             std::vector<weight_t>& dist, std::uint64_t* relaxations,
                             weight_t dist_limit = kInfWeight) {
  std::vector<std::vector<vid>> local(frontier.size());
  std::uint64_t touched = 0;
  // NOTE: per-iteration vectors keep this deterministic and race-free; a
  // vertex improved by two frontier members appears twice and is deduped
  // by the dist check in the next round (harmless).
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const vid u = frontier[i];
    touched += g.degree(u);
    for (eid e = g.begin(u); e < g.end(u); ++e) {
      const vid v = g.target(e);
      const weight_t nd = dist[u] + g.weight(e);
      if (nd < dist[v] && nd <= dist_limit) {
        dist[v] = nd;
        local[i].push_back(v);
      }
    }
  }
  *relaxations += touched;
  wd::add_work(touched);
  wd::add_round();
  std::vector<vid> improved;
  for (auto& l : local) improved.insert(improved.end(), l.begin(), l.end());
  // Dedup (a vertex may be improved via several frontier members).
  std::sort(improved.begin(), improved.end());
  improved.erase(std::unique(improved.begin(), improved.end()), improved.end());
  return improved;
}

}  // namespace

HopLimitedResult hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                  bool stop_early, weight_t dist_limit) {
  HopLimitedResult r;
  r.dist.assign(g.num_vertices(), kInfWeight);
  r.dist[source] = 0;
  std::vector<vid> frontier{source};
  for (std::uint64_t round = 0; round < h; ++round) {
    if (frontier.empty() && stop_early) break;
    if (frontier.empty()) break;  // nothing more can ever improve
    frontier = relax_round(g, frontier, r.dist, &r.relaxations, dist_limit);
    ++r.rounds;
  }
  return r;
}

std::uint64_t hops_to_approx(const Graph& g, vid s, vid t, weight_t true_dist,
                             double eps, std::uint64_t h_cap) {
  std::vector<weight_t> dist(g.num_vertices(), kInfWeight);
  dist[s] = 0;
  const weight_t goal = (1.0 + eps) * true_dist;
  if (s == t) return 0;
  std::vector<vid> frontier{s};
  std::uint64_t relaxations = 0;
  for (std::uint64_t h = 1; h <= h_cap; ++h) {
    if (frontier.empty()) return h_cap;  // converged without reaching goal
    frontier = relax_round(g, frontier, dist, &relaxations);
    if (dist[t] <= goal) return h;
  }
  return h_cap;
}

}  // namespace parsh
