#include "sssp/hop_limited.hpp"

#include <algorithm>
#include <atomic>

#include "graph/validation.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// The workspace pieces one Bellman-Ford round needs (built inside the
/// friend entry points; this helper itself is not a friend).
struct BellmanFordRefs {
  std::vector<std::atomic<weight_t>>& dist;
  std::vector<vid>& touched;
  std::vector<vid>& frontier;
  std::vector<vid>& improved;
  std::vector<weight_t>& frontier_dist;          // round-start snapshot
  std::vector<std::vector<vid>>& newly_local;    // per-worker improvers
  std::vector<std::vector<vid>>& touched_local;  // per-worker first touches
  std::vector<std::size_t>& offset;              // concat scan scratch
  FrontierRelaxer& relaxer;
  std::atomic<std::uint64_t>& allocs;
};

/// One frontier-driven Bellman-Ford round: relax the out-edges of
/// `frontier` into `dist`, leaving the improved vertices (deduped,
/// sorted) as the next frontier. Rounds are barrier-separated: every
/// relaxation reads the frontier distances as they stood at the START of
/// the round (snapshot below), so after round h every vertex holds the
/// exact minimum-weight <=h-hop distance — independent of schedule and
/// thread count. (The pre-team code chained in-round improvements on one
/// thread; that order-dependent shortcut is exactly what cannot
/// parallelize deterministically, so the chained semantics became this
/// barrier-separated stage.) Edge work is one adaptive relaxer round:
/// stolen ranges across the persistent team, or — below the threshold —
/// one worker with plain writes. First touches are recorded so the
/// workspace can restore its dist-infinity invariant lazily.
template <typename TeamLike>
void relax_round(const Graph& g, BellmanFordRefs& r, TeamLike& team,
                 const SsspWorkspace::RoundHooks& hooks,
                 std::uint64_t* relaxations, weight_t dist_limit) {
  auto dist_of = [&](vid v) { return r.dist[v].load(std::memory_order_relaxed); };
  // Snapshot the frontier's round-start distances: relaxations below may
  // lower dist[u] for a frontier member u mid-round (a short cross edge),
  // and the barrier-separated contract requires every proposal this round
  // to be based on the round-start value.
  if (r.frontier.size() > r.frontier_dist.capacity()) {
    r.allocs.fetch_add(1, std::memory_order_relaxed);
  }
  r.frontier_dist.resize(r.frontier.size());
  team.loop(0, r.frontier.size(), 512, [&](std::size_t i) {
    r.frontier_dist[i] = dist_of(r.frontier[i]);
  });
  r.improved.clear();
  const auto plan = r.relaxer.relax(
      team, r.frontier.size(), hooks.seq_threshold,
      [&](std::size_t i) { return static_cast<std::size_t>(g.degree(r.frontier[i])); },
      // Sequential round: one worker, plain relaxed loads/stores, direct
      // appends. A vertex may be improved several times (several frontier
      // members reach it); each strict improvement appends once and the
      // dedup below collapses them, matching the parallel path's set.
      [&](std::size_t i, std::size_t lo, std::size_t hi) {
        const vid u = r.frontier[i];
        const weight_t du = r.frontier_dist[i];
        g.for_arcs(u, lo, hi, [](vid) {}, [&](eid e, vid v) {
          const weight_t nd = du + g.weight(e);
          if (nd > dist_limit) return;
          const weight_t dv = dist_of(v);
          if (nd >= dv) return;
          r.dist[v].store(nd, std::memory_order_relaxed);
          if (dv == kInfWeight) detail::push_counted(r.touched, v, r.allocs);
          detail::push_counted(r.improved, v, r.allocs);
        });
      },
      // Parallel round: CRCW min via a CAS loop. The vertices appended
      // are exactly those whose round-start distance some proposal beat
      // (any successful CAS implies a strict improvement over the
      // round-start value), so the deduped set is schedule-independent;
      // the one CAS that observed infinity records the first touch.
      [&](std::size_t i, std::size_t lo, std::size_t hi) {
        const vid u = r.frontier[i];
        const weight_t du = r.frontier_dist[i];
        g.for_arcs(u, lo, hi, [](vid) {}, [&](eid e, vid v) {
          const weight_t nd = du + g.weight(e);
          if (nd > dist_limit) return;
          weight_t cur = r.dist[v].load(std::memory_order_relaxed);
          while (nd < cur) {
            if (r.dist[v].compare_exchange_weak(cur, nd,
                                                std::memory_order_relaxed)) {
              const auto w = static_cast<std::size_t>(worker_id());
              if (cur == kInfWeight) {
                detail::push_counted(r.touched_local[w], v, r.allocs);
              }
              detail::push_counted(r.newly_local[w], v, r.allocs);
              break;
            }
          }
        });
      });
  ++(plan.sequential ? *hooks.sequential_rounds : *hooks.team_rounds);
  if (!g.has_flat_adjacency()) ++*hooks.compressed_rounds;
  *relaxations += plan.edges;
  wd::add_work(plan.edges);
  wd::add_round();
  if (!plan.sequential) {
    // Concatenate the per-worker improver lists with an exclusive scan,
    // and fold the first-touch lists into the workspace's touched set.
    const std::size_t workers = r.newly_local.size();
    for (std::size_t t = 0; t < workers; ++t) r.offset[t] = r.newly_local[t].size();
    const std::size_t improved_now = exclusive_scan_inplace(r.offset);
    if (improved_now > r.improved.capacity()) {
      r.allocs.fetch_add(1, std::memory_order_relaxed);
    }
    r.improved.resize(improved_now);
    team.loop(0, workers, 1, [&](std::size_t t) {
      std::copy(r.newly_local[t].begin(), r.newly_local[t].end(),
                r.improved.begin() + r.offset[t]);
      r.newly_local[t].clear();
    });
    for (std::size_t t = 0; t < workers; ++t) {
      for (vid v : r.touched_local[t]) detail::push_counted(r.touched, v, r.allocs);
      r.touched_local[t].clear();
    }
  }
  // Dedup (a vertex may be improved via several frontier members; the
  // sort also makes the next frontier's order deterministic).
  std::sort(r.improved.begin(), r.improved.end());
  r.improved.erase(std::unique(r.improved.begin(), r.improved.end()),
                   r.improved.end());
  std::swap(r.frontier, r.improved);
}

}  // namespace

HopLimitedStats hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                 bool stop_early, weight_t dist_limit,
                                 SsspWorkspace& ws, const Deadline& deadline) {
  require_vertex(g, source, "hop_limited_sssp");
  ws.begin_run_(g.num_vertices());
  BellmanFordRefs r{ws.dist_,          ws.touched_,       ws.frontier_,
                    ws.improved_,      ws.frontier_dist_, ws.newly_local_,
                    ws.touched_local_, ws.offset_,        ws.relaxer_,
                    ws.scratch_allocs_};
  r.dist[source].store(0, std::memory_order_relaxed);
  detail::push_counted(r.touched, source, r.allocs);
  r.frontier.clear();
  detail::push_counted(r.frontier, source, r.allocs);
  // stop_early is kept for API symmetry: an empty frontier means nothing
  // can ever improve again, so the loop exits there either way (a
  // non-early run differs only in that callers budget h for it).
  (void)stop_early;
  HopLimitedStats stats;
  const SsspWorkspace::RoundHooks hooks = ws.round_hooks_();
  // The deadline is polled on the driver thread between rounds only — a
  // round is the unit of cancellation, so a partial run is always "the
  // first k rounds in full" and the settled distances are exact dist^k.
  const bool check_deadline = !deadline.never_expires();
  Team::drive(!hooks.force_fork_join, [&](Team& team) {
    for (std::uint64_t round = 0; round < h; ++round) {
      if (r.frontier.empty()) break;  // nothing more can ever improve
      if (check_deadline && deadline.expired()) {
        stats.deadline_hit = true;
        break;
      }
      relax_round(g, r, team, hooks, &stats.relaxations, dist_limit);
      ++stats.rounds;
    }
  });
  r.frontier.clear();
  // Each round swaps the frontier/improved buffers; restore the original
  // pairing after odd round counts so identical warm reruns (and the
  // other drivers sharing these scratch vectors) see the same per-buffer
  // capacities every time — the warm-reuse guarantee is byte-identical
  // behavior, not just amortized growth.
  if (stats.rounds % 2 != 0) std::swap(r.frontier, r.improved);
  return stats;
}

HopLimitedResult hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                  bool stop_early, weight_t dist_limit) {
  SsspWorkspace ws;
  const HopLimitedStats stats =
      hop_limited_sssp(g, source, h, stop_early, dist_limit, ws);
  HopLimitedResult r;
  r.rounds = stats.rounds;
  r.relaxations = stats.relaxations;
  r.dist.assign(g.num_vertices(), kInfWeight);
  for (vid v : ws.touched()) r.dist[v] = ws.dist_of(v);
  return r;
}

std::uint64_t hops_to_approx(const Graph& g, vid s, vid t, weight_t true_dist,
                             double eps, std::uint64_t h_cap) {
  if (s == t) return 0;
  SsspWorkspace ws;
  ws.begin_run_(g.num_vertices());
  BellmanFordRefs r{ws.dist_,          ws.touched_,       ws.frontier_,
                    ws.improved_,      ws.frontier_dist_, ws.newly_local_,
                    ws.touched_local_, ws.offset_,        ws.relaxer_,
                    ws.scratch_allocs_};
  r.dist[s].store(0, std::memory_order_relaxed);
  detail::push_counted(r.touched, s, r.allocs);
  r.frontier.clear();
  detail::push_counted(r.frontier, s, r.allocs);
  const weight_t goal = (1.0 + eps) * true_dist;
  std::uint64_t relaxations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t reached_at = h_cap;
  const SsspWorkspace::RoundHooks hooks = ws.round_hooks_();
  Team::drive(!hooks.force_fork_join, [&](Team& team) {
    for (std::uint64_t h = 1; h <= h_cap; ++h) {
      if (r.frontier.empty()) return;  // converged without reaching goal
      relax_round(g, r, team, hooks, &relaxations, kInfWeight);
      ++rounds;
      if (ws.dist_of(t) <= goal) {
        reached_at = h;
        return;
      }
    }
  });
  if (rounds % 2 != 0) std::swap(r.frontier, r.improved);  // see above
  return reached_at;
}

}  // namespace parsh
