// Sequential Dijkstra (binary heap). The exact-distance oracle every
// randomized routine is tested against, and the sequential baseline for
// Theorem 1.2's end-to-end comparison.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace parsh {

struct SsspResult {
  std::vector<weight_t> dist;  ///< kInfWeight if unreachable
  std::vector<vid> parent;     ///< kNoVertex for source / unreached
};

/// Exact single-source shortest paths. O((n + m) log n).
SsspResult dijkstra(const Graph& g, vid source);

/// Dijkstra truncated at distance `limit` (vertices farther than limit
/// stay at kInfWeight). Used by the greedy spanner baseline.
SsspResult dijkstra_limited(const Graph& g, vid source, weight_t limit);

/// Exact s-t distance (early-exit Dijkstra).
weight_t st_distance(const Graph& g, vid s, vid t);

/// Recover the path s -> t from a parent array (empty if unreachable).
std::vector<vid> extract_path(const std::vector<vid>& parent, vid s, vid t);

}  // namespace parsh
