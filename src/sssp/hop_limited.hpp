// Hop-limited shortest paths (round-synchronous Bellman–Ford).
//
// The defining quantity of a hopset (Definition 2.4) is dist^h: the
// lightest path using at most h edges. This module computes it exactly —
// each of the h rounds relaxes every edge once, so the PRAM depth is
// O(h log n) and work O(hm), matching the query stage of [KS97] that
// Theorems 1.2 / 4.4 plug hopsets into. It also measures the *effective*
// hop radius: the smallest h at which dist^h reaches a target value.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sssp/sssp_workspace.hpp"
#include "util/deadline.hpp"

namespace parsh {

struct HopLimitedResult {
  /// dist[v] = weight of the lightest path source->v with <= h edges.
  std::vector<weight_t> dist;
  /// Rounds actually executed (may be < h if distances converged early).
  std::uint64_t rounds = 0;
  /// Total edge relaxations performed (work proxy).
  std::uint64_t relaxations = 0;
};

/// Counters of one workspace-resident run (the distances stay in the
/// workspace: ws.dist_of / ws.touched()).
struct HopLimitedStats {
  std::uint64_t rounds = 0;
  std::uint64_t relaxations = 0;
  /// The deadline expired between rounds and the sweep stopped early. The
  /// workspace distances are still valid upper bounds on dist^h (every
  /// settled value is an achievable path weight) — just possibly looser
  /// than the full h rounds would have produced.
  bool deadline_hit = false;
};

/// Exact dist^h from `source` with at most `h` hops. If `stop_early` the
/// loop exits once no distance improves (making the result dist^n when the
/// graph converges faster — useful as an exact oracle). Vertices farther
/// than `dist_limit` are pruned: the Section 5 query engine passes each
/// scale's distance cap so out-of-scale searches die cheaply.
HopLimitedResult hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                  bool stop_early = true,
                                  weight_t dist_limit = kInfWeight);

/// Workspace form — the hot path of ApproxShortestPaths: distances are
/// left in `ws` (valid until its next run) instead of materializing an
/// n-vector, and warm calls whose reach fits the workspace's high-water
/// buffers perform zero heap allocations. Iterate ws.touched() to read
/// the reached set sparsely.
///
/// `deadline` is polled between rounds (cooperative cancellation — the
/// serving layer's per-request budget): on expiry the sweep returns with
/// deadline_hit set and whatever distances the completed rounds settled.
/// The default never-expiring deadline makes the check a flag test.
HopLimitedStats hop_limited_sssp(const Graph& g, vid source, std::uint64_t h,
                                 bool stop_early, weight_t dist_limit,
                                 SsspWorkspace& ws,
                                 const Deadline& deadline = Deadline::never());

/// The number of hops needed for the s-t distance to drop to within
/// (1+eps) of `true_dist`: runs rounds until
/// dist^h(s,t) <= (1+eps) * true_dist and returns that h
/// (or `h_cap` if the bound is not reached by then).
std::uint64_t hops_to_approx(const Graph& g, vid s, vid t, weight_t true_dist,
                             double eps, std::uint64_t h_cap);

}  // namespace parsh
