#include "sssp/approx_query.hpp"

#include <algorithm>
#include <cmath>

#include "hopset/hopset.hpp"
#include "sssp/hop_limited.hpp"

namespace parsh {

ApproxShortestPaths::ApproxShortestPaths(const Graph& g, Params params)
    : params_(params), n_(g.num_vertices()) {
  // The engine's epsilon splits between rounding distortion and hopset
  // distortion; default the sub-knobs off the top-level target unless the
  // caller overrode them.
  if (params_.hopset.zeta <= 0) params_.hopset.zeta = params_.epsilon / 2.0;
  hopset_ = build_weighted_hopset(g, params_.hopset);
  // Per-scale hop budget: the k the rounding was charged with (a path
  // using more hops than that would exceed the rounding's distortion
  // allowance anyway), capped by max_hops. The Lemma 4.2 bound is the
  // asymptotic version of the same quantity.
  hop_budget_.resize(hopset_.scales.size());
  for (std::size_t i = 0; i < hopset_.scales.size(); ++i) {
    hop_budget_[i] = std::min<std::uint64_t>(
        params_.max_hops,
        static_cast<std::uint64_t>(std::ceil(hopset_.k_hops * params_.hop_slack)) + 2);
  }
}

ApproxShortestPaths::QueryResult ApproxShortestPaths::query(vid s, vid t) const {
  QueryResult out;
  if (s == t) {
    out.estimate = 0;
    return out;
  }
  const double ratio =
      std::pow(static_cast<double>(std::max<vid>(n_, 2)), params_.hopset.eta);
  for (std::size_t i = 0; i < hopset_.scales.size(); ++i) {
    const HopsetScale& sc = hopset_.scales[i];
    // Only distances up to the scale's cap are this scale's business;
    // pruning there makes out-of-scale searches die after a few rounds.
    const weight_t dist_limit =
        sc.d * ratio * (1.0 + params_.epsilon) / sc.w_hat + 1.0;
    const HopLimitedResult r = hop_limited_sssp(sc.rounded, s, hop_budget_[i],
                                                /*stop_early=*/true, dist_limit);
    out.rounds += r.rounds;
    out.relaxations += r.relaxations;
    if (r.dist[t] == kInfWeight) continue;
    const weight_t est = r.dist[t] * sc.w_hat;
    if (est < out.estimate) {
      out.estimate = est;
      out.scale_used = i;
    }
    // The scale whose range contains the estimate is (1+eps)-accurate;
    // larger scales only get coarser. Stop once consistent.
    if (est <= sc.d * ratio * (1.0 + params_.epsilon)) break;
  }
  return out;
}

ApproxShortestPaths::AllResult ApproxShortestPaths::query_all(vid s) const {
  AllResult out;
  out.estimate.assign(n_, kInfWeight);
  if (n_ == 0) return out;
  out.estimate[s] = 0;
  const double ratio =
      std::pow(static_cast<double>(std::max<vid>(n_, 2)), params_.hopset.eta);
  for (std::size_t i = 0; i < hopset_.scales.size(); ++i) {
    const HopsetScale& sc = hopset_.scales[i];
    const weight_t dist_limit =
        sc.d * ratio * (1.0 + params_.epsilon) / sc.w_hat + 1.0;
    const HopLimitedResult r = hop_limited_sssp(sc.rounded, s, hop_budget_[i],
                                                /*stop_early=*/true, dist_limit);
    out.rounds += r.rounds;
    out.relaxations += r.relaxations;
    for (vid v = 0; v < n_; ++v) {
      if (r.dist[v] == kInfWeight) continue;
      out.estimate[v] = std::min(out.estimate[v], r.dist[v] * sc.w_hat);
    }
  }
  return out;
}

}  // namespace parsh
