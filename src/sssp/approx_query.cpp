#include "sssp/approx_query.hpp"

#include <algorithm>
#include <cmath>

#include "hopset/hopset.hpp"
#include "parallel/parallel_for.hpp"
#include "sssp/hop_limited.hpp"

namespace parsh {

ApproxShortestPaths::ApproxShortestPaths(const Graph& g, Params params)
    : params_(params), n_(g.num_vertices()) {
  // The engine's epsilon splits between rounding distortion and hopset
  // distortion; default the sub-knobs off the top-level target unless the
  // caller overrode them.
  if (params_.hopset.zeta <= 0) params_.hopset.zeta = params_.epsilon / 2.0;
  hopset_ = build_weighted_hopset(g, params_.hopset);
  init_hop_budgets_();
}

ApproxShortestPaths::ApproxShortestPaths(vid n, WeightedHopset hopset, Params params)
    : params_(params), n_(n), hopset_(std::move(hopset)) {
  init_hop_budgets_();
}

void ApproxShortestPaths::init_hop_budgets_() {
  // Per-scale hop budget: the k the rounding was charged with (a path
  // using more hops than that would exceed the rounding's distortion
  // allowance anyway), capped by max_hops. The Lemma 4.2 bound is the
  // asymptotic version of the same quantity.
  hop_budget_.resize(hopset_.scales.size());
  for (std::size_t i = 0; i < hopset_.scales.size(); ++i) {
    hop_budget_[i] = std::min<std::uint64_t>(
        params_.max_hops,
        static_cast<std::uint64_t>(std::ceil(hopset_.k_hops * params_.hop_slack)) + 2);
  }
}

ApproxShortestPaths::QueryResult ApproxShortestPaths::query(
    vid s, vid t, SsspWorkspace& ws, const QueryOptions& opts) const {
  QueryResult out;
  if (s == t) {
    out.estimate = 0;
    return out;
  }
  // Degraded tier: start at the requested scale, never past the last one
  // (some scale must answer). Skipping fine scales drops both their
  // short-range precision and their per-query round cost.
  const std::size_t first =
      hopset_.scales.empty()
          ? 0
          : std::min(opts.skip_scales, hopset_.scales.size() - 1);
  out.degraded = first > 0;
  const bool check_deadline = !opts.deadline.never_expires();
  const double ratio =
      std::pow(static_cast<double>(std::max<vid>(n_, 2)), params_.hopset.eta);
  for (std::size_t i = first; i < hopset_.scales.size(); ++i) {
    if (check_deadline && opts.deadline.expired()) {
      out.deadline_exceeded = true;
      break;
    }
    const HopsetScale& sc = hopset_.scales[i];
    // Only distances up to the scale's cap are this scale's business;
    // pruning there makes out-of-scale searches die after a few rounds.
    const weight_t dist_limit =
        sc.d * ratio * (1.0 + params_.epsilon) / sc.w_hat + 1.0;
    const HopLimitedStats r =
        hop_limited_sssp(sc.rounded, s, hop_budget_[i],
                         /*stop_early=*/true, dist_limit, ws, opts.deadline);
    out.rounds += r.rounds;
    out.relaxations += r.relaxations;
    // A deadline-cut sweep's distances are still valid upper bounds, so
    // fold this scale's (partial) answer in before unwinding.
    const weight_t dt = ws.dist_of(t);
    if (dt != kInfWeight) {
      const weight_t est = dt * sc.w_hat;
      if (est < out.estimate) {
        out.estimate = est;
        out.scale_used = i;
      }
      // The scale whose range contains the estimate is (1+eps)-accurate;
      // larger scales only get coarser. Stop once consistent.
      if (!r.deadline_hit && est <= sc.d * ratio * (1.0 + params_.epsilon)) break;
    }
    if (r.deadline_hit) {
      out.deadline_exceeded = true;
      break;
    }
  }
  return out;
}

ApproxShortestPaths::QueryResult ApproxShortestPaths::query(vid s, vid t,
                                                            SsspWorkspace& ws) const {
  return query(s, t, ws, QueryOptions{});
}

ApproxShortestPaths::QueryResult ApproxShortestPaths::query(vid s, vid t) const {
  SsspWorkspace ws;
  return query(s, t, ws);
}

std::vector<ApproxShortestPaths::QueryResult> ApproxShortestPaths::query_batch(
    const std::vector<QueryPair>& pairs, SsspWorkspace& ws) const {
  std::vector<QueryResult> out(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    out[i] = query(pairs[i].first, pairs[i].second, ws);
  }
  return out;
}

std::vector<ApproxShortestPaths::QueryResult> ApproxShortestPaths::query_batch(
    const std::vector<QueryPair>& pairs, SsspWorkspace& ws,
    const QueryOptions& opts) const {
  std::vector<QueryResult> out(pairs.size());
  const bool check_deadline = !opts.deadline.never_expires();
  bool expired = false;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Once the shared budget runs out, answer the rest of the batch
    // immediately: infinite partials, flagged, no traversal work.
    if (!expired && check_deadline && opts.deadline.expired()) expired = true;
    if (expired) {
      out[i].deadline_exceeded = true;
      out[i].degraded = opts.skip_scales > 0 && num_scales() > 1;
      continue;
    }
    out[i] = query(pairs[i].first, pairs[i].second, ws, opts);
  }
  return out;
}

std::vector<ApproxShortestPaths::QueryResult> ApproxShortestPaths::query_batch(
    const std::vector<QueryPair>& pairs, SsspWorkspacePool& pool) const {
  pool.prepare();
  std::vector<QueryResult> out(pairs.size());
  // One request per iteration: each worker serves its share of the batch
  // through its own workspace, so requests never contend and every answer
  // is the same as the sequential path's.
  parallel_for_grain(0, pairs.size(), 1, [&](std::size_t i) {
    out[i] = query(pairs[i].first, pairs[i].second, pool.local());
  });
  return out;
}

std::vector<ApproxShortestPaths::QueryResult> ApproxShortestPaths::query_batch(
    const std::vector<QueryPair>& pairs) const {
  SsspWorkspacePool pool;
  return query_batch(pairs, pool);
}

ApproxShortestPaths::AllResult ApproxShortestPaths::query_all(vid s,
                                                              SsspWorkspace& ws) const {
  AllResult out;
  out.estimate.assign(n_, kInfWeight);
  if (n_ == 0) return out;
  out.estimate[s] = 0;
  const double ratio =
      std::pow(static_cast<double>(std::max<vid>(n_, 2)), params_.hopset.eta);
  for (std::size_t i = 0; i < hopset_.scales.size(); ++i) {
    const HopsetScale& sc = hopset_.scales[i];
    const weight_t dist_limit =
        sc.d * ratio * (1.0 + params_.epsilon) / sc.w_hat + 1.0;
    const HopLimitedStats r = hop_limited_sssp(sc.rounded, s, hop_budget_[i],
                                               /*stop_early=*/true, dist_limit, ws);
    out.rounds += r.rounds;
    out.relaxations += r.relaxations;
    // Fold this scale in sparsely: only the vertices the sweep reached
    // can improve (the workspace's touched list), so a distance-capped
    // scale costs O(reached), not O(n).
    for (vid v : ws.touched()) {
      const weight_t est = ws.dist_of(v) * sc.w_hat;
      if (est < out.estimate[v]) out.estimate[v] = est;
    }
  }
  out.estimate[s] = 0;
  return out;
}

ApproxShortestPaths::AllResult ApproxShortestPaths::query_all(vid s) const {
  SsspWorkspace ws;
  return query_all(s, ws);
}

}  // namespace parsh
