#include "sssp/bfs.hpp"

#include <atomic>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Level-synchronous BFS on the workspace's frontier engine: levels are
/// consecutive bucket keys, and claimed children are emitted through the
/// engine's per-worker staging buffers (scan-compacted per round) instead
/// of a serial per-level concatenation. The engine must already hold the
/// seed frontier at key 0. The whole level loop runs inside ONE
/// persistent parallel region (parallel/team.hpp); each level's edge work
/// is one adaptive relaxer round — degree-aware stolen ranges across the
/// team so a hub on the frontier is scanned by many workers, or, below
/// the threshold, one worker with plain claims and direct calendar
/// pushes. `claim(v, via, level)` returns true if this thread settles v
/// (first writer wins); `claim_seq` is its single-writer form (plain
/// loads/stores, no CAS). The claimed SET per level is identical on
/// every path (every edge is still tried exactly once), only which claim
/// attempt wins can shift — exactly the freedom the first-writer-wins
/// contract already grants across thread counts.
template <typename Claim, typename ClaimSeq>
vid run_bfs(const Graph& g, SsspWorkspace::RoundHooks hooks,
            BucketEngine<vid>& engine, FrontierRelaxer& relaxer,
            std::vector<vid>& frontier, vid max_levels, Claim claim,
            ClaimSeq claim_seq) {
  vid level = 0;
  Team::drive(!hooks.force_fork_join, [&](Team& team) {
    std::uint64_t key;
    while ((key = engine.pop_round(team, frontier)) != kNoBucket) {
      if (level >= max_levels) break;
      ++level;
      wd::add_round();
      const vid next_level = static_cast<vid>(key) + 1;
      // One body, two (claim, emit) routes: plain single-writer claim +
      // direct calendar push sequentially, CAS claim + per-worker
      // staging in parallel stages.
      auto scan_with = [&](auto try_claim, auto push) {
        return [&, try_claim, push](std::size_t i, std::size_t lo, std::size_t hi) {
          const vid u = frontier[i];
          const eid base = g.begin(u);
          for (eid e = base + lo; e < base + hi; ++e) {
            const vid v = g.target(e);
            if (try_claim(v, u, next_level)) push(v);
          }
        };
      };
      const auto plan = relaxer.relax(
          team, frontier.size(), hooks.seq_threshold,
          [&](std::size_t i) { return static_cast<std::size_t>(g.degree(frontier[i])); },
          scan_with(claim_seq, [&](vid v) { engine.push(key + 1, v); }),
          scan_with(claim, [&](vid v) { engine.push_from_worker(key + 1, v); }));
      ++(plan.sequential ? *hooks.sequential_rounds : *hooks.team_rounds);
      wd::add_work(plan.edges);  // the relaxer's prefix scan summed degrees
    }
  });
  frontier.clear();
  return level;
}

}  // namespace

BfsResult bfs(const Graph& g, vid source, vid max_levels, SsspWorkspace& ws) {
  require_vertex(g, source, "bfs");
  const vid n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.parent.assign(n, kNoVertex);
  ws.begin_run_(n);
  // One fresh stamp claims the whole run: a vertex is settled iff its
  // stamp reached run_claim (stamps are monotone, so anything below is a
  // leftover from an earlier run and the array never needs wiping).
  const std::uint64_t run_claim = ws.next_stamp_();
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  r.dist[source] = 0;
  stamp[source].store(run_claim, std::memory_order_relaxed);
  engine.push(0, source);
  r.rounds = run_bfs(g, ws.round_hooks_(), engine, ws.relaxer_, ws.frontier_,
                     max_levels,
                     [&](vid v, vid via, vid level) {
                       std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
                       if (seen >= run_claim) return false;
                       if (!stamp[v].compare_exchange_strong(
                               seen, run_claim, std::memory_order_relaxed)) {
                         return false;
                       }
                       r.dist[v] = level;
                       r.parent[v] = via;
                       return true;
                     },
                     [&](vid v, vid via, vid level) {
                       if (stamp[v].load(std::memory_order_relaxed) >= run_claim) {
                         return false;
                       }
                       stamp[v].store(run_claim, std::memory_order_relaxed);
                       r.dist[v] = level;
                       r.parent[v] = via;
                       return true;
                     });
  return r;
}

BfsResult bfs(const Graph& g, vid source, vid max_levels) {
  SsspWorkspace ws;
  return bfs(g, source, max_levels, ws);
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources,
                         vid max_levels, SsspWorkspace& ws) {
  const vid n = g.num_vertices();
  MultiBfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.owner.assign(n, kNoVertex);
  ws.begin_run_(n);
  const std::uint64_t run_claim = ws.next_stamp_();
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  // Ties at level 0 (duplicate sources) resolve to the smaller index.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (stamp[s].load(std::memory_order_relaxed) >= run_claim) continue;
    stamp[s].store(run_claim, std::memory_order_relaxed);
    r.owner[s] = static_cast<vid>(i);
    r.dist[s] = 0;
    engine.push(0, s);
  }
  r.rounds = run_bfs(g, ws.round_hooks_(), engine, ws.relaxer_, ws.frontier_,
                     max_levels,
                     [&](vid v, vid via, vid level) {
                       std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
                       if (seen >= run_claim) return false;
                       if (!stamp[v].compare_exchange_strong(
                               seen, run_claim, std::memory_order_relaxed)) {
                         return false;
                       }
                       // via settled in an earlier level, so its owner is
                       // stable (the round barrier orders the write).
                       r.owner[v] = r.owner[via];
                       r.dist[v] = level;
                       return true;
                     },
                     [&](vid v, vid via, vid level) {
                       if (stamp[v].load(std::memory_order_relaxed) >= run_claim) {
                         return false;
                       }
                       stamp[v].store(run_claim, std::memory_order_relaxed);
                       r.owner[v] = r.owner[via];
                       r.dist[v] = level;
                       return true;
                     });
  return r;
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources, vid max_levels) {
  SsspWorkspace ws;
  return multi_bfs(g, sources, max_levels, ws);
}

}  // namespace parsh
