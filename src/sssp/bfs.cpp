#include "sssp/bfs.hpp"

#include <atomic>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Level-synchronous BFS on the workspace's frontier engine: levels are
/// consecutive bucket keys, and claimed children are emitted through the
/// engine's per-worker staging buffers (scan-compacted per round) instead
/// of a serial per-level concatenation. The engine must already hold the
/// seed frontier at key 0. `claim(v, via, level)` returns true if this
/// thread settles v (first writer wins). Each level's edge work is
/// scheduled degree-aware through the workspace relaxer, so a hub on the
/// frontier is scanned by many workers; the claimed SET per level is
/// unchanged (every edge is still tried exactly once), only which claim
/// attempt wins can shift — exactly the freedom the first-writer-wins
/// contract already grants across thread counts.
template <typename Claim>
vid run_bfs(const Graph& g, BucketEngine<vid>& engine, FrontierRelaxer& relaxer,
            std::vector<vid>& frontier, vid max_levels, Claim claim) {
  vid level = 0;
  std::uint64_t key;
  while ((key = engine.pop_round(frontier)) != kNoBucket) {
    if (level >= max_levels) break;
    ++level;
    wd::add_round();
    const vid next_level = static_cast<vid>(key) + 1;
    const std::size_t level_edges = relaxer.relax(
        frontier.size(),
        [&](std::size_t i) { return static_cast<std::size_t>(g.degree(frontier[i])); },
        [&](std::size_t i, std::size_t lo, std::size_t hi) {
          const vid u = frontier[i];
          const eid base = g.begin(u);
          for (eid e = base + lo; e < base + hi; ++e) {
            const vid v = g.target(e);
            if (claim(v, u, next_level)) engine.push_from_worker(key + 1, v);
          }
        });
    wd::add_work(level_edges);  // the relaxer's prefix scan already summed degrees
  }
  frontier.clear();
  return level;
}

}  // namespace

BfsResult bfs(const Graph& g, vid source, vid max_levels, SsspWorkspace& ws) {
  require_vertex(g, source, "bfs");
  const vid n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.parent.assign(n, kNoVertex);
  ws.begin_run_(n);
  // One fresh stamp claims the whole run: a vertex is settled iff its
  // stamp reached run_claim (stamps are monotone, so anything below is a
  // leftover from an earlier run and the array never needs wiping).
  const std::uint64_t run_claim = ws.next_stamp_();
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  r.dist[source] = 0;
  stamp[source].store(run_claim, std::memory_order_relaxed);
  engine.push(0, source);
  r.rounds = run_bfs(g, engine, ws.relaxer_, ws.frontier_, max_levels,
                     [&](vid v, vid via, vid level) {
                       std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
                       if (seen >= run_claim) return false;
                       if (!stamp[v].compare_exchange_strong(
                               seen, run_claim, std::memory_order_relaxed)) {
                         return false;
                       }
                       r.dist[v] = level;
                       r.parent[v] = via;
                       return true;
                     });
  return r;
}

BfsResult bfs(const Graph& g, vid source, vid max_levels) {
  SsspWorkspace ws;
  return bfs(g, source, max_levels, ws);
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources,
                         vid max_levels, SsspWorkspace& ws) {
  const vid n = g.num_vertices();
  MultiBfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.owner.assign(n, kNoVertex);
  ws.begin_run_(n);
  const std::uint64_t run_claim = ws.next_stamp_();
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  // Ties at level 0 (duplicate sources) resolve to the smaller index.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (stamp[s].load(std::memory_order_relaxed) >= run_claim) continue;
    stamp[s].store(run_claim, std::memory_order_relaxed);
    r.owner[s] = static_cast<vid>(i);
    r.dist[s] = 0;
    engine.push(0, s);
  }
  r.rounds = run_bfs(g, engine, ws.relaxer_, ws.frontier_, max_levels,
                     [&](vid v, vid via, vid level) {
                       std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
                       if (seen >= run_claim) return false;
                       if (!stamp[v].compare_exchange_strong(
                               seen, run_claim, std::memory_order_relaxed)) {
                         return false;
                       }
                       // via settled in an earlier level, so its owner is
                       // stable (the round barrier orders the write).
                       r.owner[v] = r.owner[via];
                       r.dist[v] = level;
                       return true;
                     });
  return r;
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources, vid max_levels) {
  SsspWorkspace ws;
  return multi_bfs(g, sources, max_levels, ws);
}

}  // namespace parsh
