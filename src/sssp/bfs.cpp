#include "sssp/bfs.hpp"

#include <atomic>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Shared frontier-expansion engine. `claim(v, via)` returns true if this
/// thread settles v (first writer wins).
template <typename Claim>
vid run_bfs(const Graph& g, std::vector<vid> frontier, vid max_levels, Claim claim) {
  vid level = 0;
  while (!frontier.empty() && level < max_levels) {
    ++level;
    // Expand: collect candidate (vertex claimed) children.
    std::vector<std::vector<vid>> local(frontier.size());
    std::size_t scanned = 0;
    parallel_for_grain(0, frontier.size(), 64, [&](std::size_t i) {
      const vid u = frontier[i];
      std::vector<vid>& mine = local[i];
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const vid v = g.target(e);
        if (claim(v, u, level)) mine.push_back(v);
      }
    });
    for (const auto& l : local) scanned += l.size();
    wd::add_round();
    std::vector<vid> next;
    next.reserve(scanned);
    for (auto& l : local) next.insert(next.end(), l.begin(), l.end());
    std::size_t touched = 0;
    for (vid u : frontier) touched += g.degree(u);
    wd::add_work(touched);
    frontier = std::move(next);
  }
  return level;
}

}  // namespace

BfsResult bfs(const Graph& g, vid source, vid max_levels) {
  require_vertex(g, source, "bfs");
  const vid n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.parent.assign(n, kNoVertex);
  std::vector<std::atomic<vid>> claimed(n);
  parallel_for(0, n, [&](std::size_t v) { claimed[v].store(kNoVertex); });
  r.dist[source] = 0;
  claimed[source].store(source);
  r.rounds = run_bfs(g, {source}, max_levels, [&](vid v, vid via, vid level) {
    vid expected = kNoVertex;
    if (claimed[v].compare_exchange_strong(expected, via)) {
      r.dist[v] = level;
      r.parent[v] = via;
      return true;
    }
    return false;
  });
  return r;
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources, vid max_levels) {
  const vid n = g.num_vertices();
  MultiBfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.owner.assign(n, kNoVertex);
  std::vector<std::atomic<vid>> owner(n);
  parallel_for(0, n, [&](std::size_t v) { owner[v].store(kNoVertex); });
  std::vector<vid> frontier;
  frontier.reserve(sources.size());
  // Ties at level 0 (duplicate sources) resolve to the smaller index.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (owner[s].load() == kNoVertex) {
      owner[s].store(static_cast<vid>(i));
      r.dist[s] = 0;
      frontier.push_back(s);
    }
  }
  r.rounds = run_bfs(g, std::move(frontier), max_levels, [&](vid v, vid via, vid level) {
    vid expected = kNoVertex;
    const vid via_owner = owner[via].load(std::memory_order_relaxed);
    if (owner[v].compare_exchange_strong(expected, via_owner)) {
      r.dist[v] = level;
      return true;
    }
    return false;
  });
  parallel_for(0, n, [&](std::size_t v) { r.owner[v] = owner[v].load(); });
  return r;
}

}  // namespace parsh
