#include "sssp/bfs.hpp"

#include <algorithm>
#include <atomic>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/team.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Workspace state one BFS run threads through the level loop (references
/// into the friend-accessible SsspWorkspace members, snapshot hooks, and
/// the run's base stamp).
struct BfsCtx {
  const Graph& g;
  SsspWorkspace::RoundHooks hooks;
  BucketEngine<vid>& engine;
  FrontierRelaxer& relaxer;
  std::vector<vid>& frontier;
  std::vector<std::vector<vid>>& newly_local;  // per-worker claim winners
  std::vector<vid>& newly;                     // concatenated winners
  std::vector<std::size_t>& offset;            // winner-concat scan scratch
  std::vector<std::atomic<std::uint64_t>>& stamp;
  std::vector<std::atomic<vid>>& best_via;  // per-round parent argmin
  std::atomic<std::uint64_t>& scratch_allocs;
  std::uint64_t run_base;  // stamp claiming the run; rounds stamp above it
};

/// Level-synchronous BFS on the workspace's frontier engine: levels are
/// consecutive bucket keys, and claimed children are emitted through the
/// engine's per-worker staging buffers (scan-compacted per round) instead
/// of a serial per-level concatenation. The engine must already hold the
/// seed frontier at key 0 (seeds stamped run_base). The whole level loop
/// runs inside ONE persistent parallel region (parallel/team.hpp); each
/// level's edge work is one adaptive relaxer round — degree-aware stolen
/// ranges, the sequential fast path, or (dense levels) a pull round where
/// unclaimed vertices scan their own adjacency for the frontier bitmap.
///
/// Parents are an ARGMIN, not a race: a round's claim attempts fold every
/// proposing neighbour into best_via[v] with a CRCW min-reduce, and only
/// after the relax barrier does the settle stage write (dist, parent) from
/// the per-vertex minimum — so the tree is bit-identical across thread
/// counts, schedules and directions (adjacency is sorted by target, so the
/// pull scan's first frontier hit IS the min via, making its early exit
/// exact). `finalize(v, level)` is that settle step: it must consume
/// best_via[v] and restore it to kNoVertex (the "no proposal" invariant).
template <typename NextStamp, typename Finalize>
vid run_bfs(BfsCtx ctx, vid max_levels, NextStamp next_stamp, Finalize finalize) {
  const Graph& g = ctx.g;
  std::vector<vid>& frontier = ctx.frontier;
  std::vector<std::atomic<std::uint64_t>>& stamp = ctx.stamp;
  std::vector<std::atomic<vid>>& best_via = ctx.best_via;
  const std::uint64_t run_base = ctx.run_base;
  vid level = 0;
  Team::drive(!ctx.hooks.force_fork_join, [&](Team& team) {
    std::uint64_t key;
    while ((key = ctx.engine.pop_round(team, frontier)) != kNoBucket) {
      if (level >= max_levels) break;
      ++level;
      wd::add_round();
      const vid next_level = static_cast<vid>(key) + 1;
      // One stamp per round: stamp[v] == round_id means "claimed this
      // round, best_via[v] is live"; run_base <= stamp[v] < round_id means
      // "settled in an earlier round of this run"; below run_base is a
      // leftover from an earlier run (stamps are globally monotone, so
      // the array never needs wiping).
      const std::uint64_t round_id = next_stamp();
      // Claim routes: CAS + atomic min in parallel stages, plain
      // single-writer loads/stores on the sequential fast path. Both
      // record every proposing via in best_via[v] and return true for
      // exactly one claimer (the one that emits v into the next level).
      auto claim = [&](vid v, vid via) -> bool {
        std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
        if (seen >= run_base && seen != round_id) return false;
        atomic_write_min(&best_via[v], via);
        if (seen == round_id) return false;
        return stamp[v].compare_exchange_strong(seen, round_id,
                                                std::memory_order_relaxed);
      };
      auto claim_seq = [&](vid v, vid via) -> bool {
        const std::uint64_t seen = stamp[v].load(std::memory_order_relaxed);
        if (seen >= run_base && seen != round_id) return false;
        if (seen == round_id) {
          if (via < best_via[v].load(std::memory_order_relaxed)) {
            best_via[v].store(via, std::memory_order_relaxed);
          }
          return false;
        }
        stamp[v].store(round_id, std::memory_order_relaxed);
        best_via[v].store(via, std::memory_order_relaxed);
        return true;
      };
      auto scan_with = [&](auto try_claim, auto record) {
        return [&, try_claim, record](std::size_t i, std::size_t lo,
                                      std::size_t hi) {
          const vid u = frontier[i];
          g.for_arcs(
              u, lo, hi,
              [&](vid ahead) { prefetch_read(&stamp[ahead]); },
              [&](eid, vid v) {
                if (try_claim(v, u)) record(v);
              });
        };
      };
      // Pull candidate scan: an unclaimed vertex takes the FIRST frontier
      // neighbour in its sorted adjacency — the min via, i.e. the same
      // argmin the push reduce computes — so it can stop scanning there.
      // Each vertex is scanned by exactly one worker, so plain stores
      // suffice; returns the edges examined (the pull_edges_scanned
      // payoff counter).
      auto pull_scan = [&](vid v) -> std::size_t {
        if (stamp[v].load(std::memory_order_relaxed) >= run_base) return 0;
        return g.scan_arcs(
            v,
            [&](vid ahead) { ctx.relaxer.prefetch_frontier_bit(ahead); },
            [&](eid, vid u) {
              if (!ctx.relaxer.in_frontier(u)) return false;
              best_via[v].store(u, std::memory_order_relaxed);
              stamp[v].store(round_id, std::memory_order_relaxed);
              ctx.engine.push_from_worker(key + 1, v);
              detail::push_counted(
                  ctx.newly_local[static_cast<std::size_t>(worker_id())], v,
                  ctx.scratch_allocs);
              return true;  // first frontier neighbour is the argmin via
            });
      };
      ctx.newly.clear();
      const auto plan = ctx.relaxer.relax(
          team, frontier, g.num_vertices(), g.num_arcs(),
          ctx.hooks.seq_threshold,
          [&](std::size_t i) {
            return static_cast<std::size_t>(g.degree(frontier[i]));
          },
          scan_with(claim_seq,
                    [&](vid v) {
                      ctx.engine.push(key + 1, v);
                      detail::push_counted(ctx.newly, v, ctx.scratch_allocs);
                    }),
          scan_with(claim,
                    [&](vid v) {
                      ctx.engine.push_from_worker(key + 1, v);
                      detail::push_counted(
                          ctx.newly_local[static_cast<std::size_t>(worker_id())],
                          v, ctx.scratch_allocs);
                    }),
          pull_scan);
      // Settle stage, after the relax barrier: every proposal of the
      // round is folded into best_via, so finalize reads the true minima.
      if (plan.sequential) {
        for (vid v : ctx.newly) finalize(v, next_level);
      } else {
        std::vector<std::size_t>& offset = ctx.offset;
        const std::size_t workers = ctx.newly_local.size();
        for (std::size_t t = 0; t < workers; ++t) {
          offset[t] = ctx.newly_local[t].size();
        }
        const std::size_t claimed = exclusive_scan_inplace(offset);
        if (claimed > ctx.newly.capacity()) {
          ctx.scratch_allocs.fetch_add(1, std::memory_order_relaxed);
        }
        ctx.newly.resize(claimed);
        team.loop(0, workers, 1, [&](std::size_t t) {
          std::copy(ctx.newly_local[t].begin(), ctx.newly_local[t].end(),
                    ctx.newly.begin() + offset[t]);
          ctx.newly_local[t].clear();
        });
        team.loop(0, ctx.newly.size(), std::size_t{512},
                  [&](std::size_t i) { finalize(ctx.newly[i], next_level); });
      }
      ++(plan.sequential ? *ctx.hooks.sequential_rounds : *ctx.hooks.team_rounds);
      if (!g.has_flat_adjacency()) ++*ctx.hooks.compressed_rounds;
      wd::add_work(plan.edges);  // the relaxer's prefix scan summed degrees
    }
  });
  frontier.clear();
  return level;
}

}  // namespace

BfsResult bfs(const Graph& g, vid source, vid max_levels, SsspWorkspace& ws) {
  require_vertex(g, source, "bfs");
  const vid n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.parent.assign(n, kNoVertex);
  ws.begin_run_(n);
  ws.ensure_reduce_(n);  // best_via_ backs the per-round parent argmin
  const std::uint64_t run_base = ws.next_stamp_();
  std::vector<std::atomic<vid>>& best_via = ws.best_via_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  r.dist[source] = 0;
  ws.stamp_[source].store(run_base, std::memory_order_relaxed);
  engine.push(0, source);
  BfsCtx ctx{g,
             ws.round_hooks_(),
             engine,
             ws.relaxer_,
             ws.frontier_,
             ws.newly_local_,
             ws.newly_,
             ws.offset_,
             ws.stamp_,
             best_via,
             ws.scratch_allocs_,
             run_base};
  r.rounds = run_bfs(
      ctx, max_levels, [&] { return ws.next_stamp_(); },
      [&](vid v, vid level) {
        r.dist[v] = level;
        r.parent[v] = best_via[v].load(std::memory_order_relaxed);
        best_via[v].store(kNoVertex, std::memory_order_relaxed);
      });
  return r;
}

BfsResult bfs(const Graph& g, vid source, vid max_levels) {
  SsspWorkspace ws;
  return bfs(g, source, max_levels, ws);
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources,
                         vid max_levels, SsspWorkspace& ws) {
  const vid n = g.num_vertices();
  MultiBfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.owner.assign(n, kNoVertex);
  ws.begin_run_(n);
  ws.ensure_reduce_(n);
  const std::uint64_t run_base = ws.next_stamp_();
  std::vector<std::atomic<vid>>& best_via = ws.best_via_;
  std::vector<std::atomic<std::uint64_t>>& stamp = ws.stamp_;
  BucketEngine<vid>& engine = ws.frontier_engine_;
  engine.reset();
  // Ties at level 0 (duplicate sources) resolve to the smaller index.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (stamp[s].load(std::memory_order_relaxed) >= run_base) continue;
    stamp[s].store(run_base, std::memory_order_relaxed);
    r.owner[s] = static_cast<vid>(i);
    r.dist[s] = 0;
    engine.push(0, s);
  }
  BfsCtx ctx{g,
             ws.round_hooks_(),
             engine,
             ws.relaxer_,
             ws.frontier_,
             ws.newly_local_,
             ws.newly_,
             ws.offset_,
             stamp,
             best_via,
             ws.scratch_allocs_,
             run_base};
  r.rounds = run_bfs(
      ctx, max_levels, [&] { return ws.next_stamp_(); },
      [&](vid v, vid level) {
        // via settled in an earlier level, so its owner is stable (the
        // round barrier orders the write).
        const vid via = best_via[v].load(std::memory_order_relaxed);
        r.owner[v] = r.owner[via];
        r.dist[v] = level;
        best_via[v].store(kNoVertex, std::memory_order_relaxed);
      });
  return r;
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources, vid max_levels) {
  SsspWorkspace ws;
  return multi_bfs(g, sources, max_levels, ws);
}

}  // namespace parsh
