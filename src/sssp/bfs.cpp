#include "sssp/bfs.hpp"

#include <atomic>

#include "graph/validation.hpp"
#include "parallel/atomics.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/primitives.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Level-synchronous BFS on the shared bucketed frontier engine: levels
/// are consecutive bucket keys, and claimed children are emitted through
/// the engine's per-worker staging buffers (scan-compacted per round)
/// instead of a serial per-level concatenation. `claim(v, via, level)`
/// returns true if this thread settles v (first writer wins).
template <typename Claim>
vid run_bfs(const Graph& g, std::vector<vid> frontier, vid max_levels, Claim claim) {
  BucketEngine<vid> engine({.span = 2});  // only levels k and k+1 are live
  for (vid v : frontier) engine.push(0, v);
  frontier.clear();
  vid level = 0;
  std::uint64_t key;
  while ((key = engine.pop_round(frontier)) != kNoBucket) {
    if (level >= max_levels) break;
    ++level;
    wd::add_round();
    wd::add_work(parallel_reduce_sum<std::uint64_t>(
        frontier.size(), [&](std::size_t i) { return g.degree(frontier[i]); }));
    const vid next_level = static_cast<vid>(key) + 1;
    parallel_for_grain(0, frontier.size(), 64, [&](std::size_t i) {
      const vid u = frontier[i];
      for (eid e = g.begin(u); e < g.end(u); ++e) {
        const vid v = g.target(e);
        if (claim(v, u, next_level)) engine.push_from_worker(key + 1, v);
      }
    });
  }
  return level;
}

}  // namespace

BfsResult bfs(const Graph& g, vid source, vid max_levels) {
  require_vertex(g, source, "bfs");
  const vid n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.parent.assign(n, kNoVertex);
  std::vector<std::atomic<vid>> claimed(n);
  parallel_for(0, n, [&](std::size_t v) { claimed[v].store(kNoVertex); });
  r.dist[source] = 0;
  claimed[source].store(source);
  r.rounds = run_bfs(g, {source}, max_levels, [&](vid v, vid via, vid level) {
    vid expected = kNoVertex;
    if (claimed[v].compare_exchange_strong(expected, via)) {
      r.dist[v] = level;
      r.parent[v] = via;
      return true;
    }
    return false;
  });
  return r;
}

MultiBfsResult multi_bfs(const Graph& g, const std::vector<vid>& sources, vid max_levels) {
  const vid n = g.num_vertices();
  MultiBfsResult r;
  r.dist.assign(n, kUnreachedHops);
  r.owner.assign(n, kNoVertex);
  std::vector<std::atomic<vid>> owner(n);
  parallel_for(0, n, [&](std::size_t v) { owner[v].store(kNoVertex); });
  std::vector<vid> frontier;
  frontier.reserve(sources.size());
  // Ties at level 0 (duplicate sources) resolve to the smaller index.
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (owner[s].load() == kNoVertex) {
      owner[s].store(static_cast<vid>(i));
      r.dist[s] = 0;
      frontier.push_back(s);
    }
  }
  r.rounds = run_bfs(g, std::move(frontier), max_levels, [&](vid v, vid via, vid level) {
    vid expected = kNoVertex;
    const vid via_owner = owner[via].load(std::memory_order_relaxed);
    if (owner[v].compare_exchange_strong(expected, via_owner)) {
      r.dist[v] = level;
      return true;
    }
    return false;
  });
  parallel_for(0, n, [&](std::size_t v) { r.owner[v] = owner[v].load(); });
  return r;
}

}  // namespace parsh
