// Weighted parallel BFS over integer weights (Dial bucket queue).
//
// Section 5 runs "weighted parallel BFS" after Klein–Subramanian rounding
// has made all weights small positive integers: the search advances one
// distance unit per synchronous round, so depth is proportional to the
// (rounded) radius, exactly as the paper analyses. Requires integer
// weights >= 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sssp/sssp_workspace.hpp"

namespace parsh {

struct WeightedBfsResult {
  std::vector<weight_t> dist;  ///< kInfWeight if unreached
  std::vector<vid> parent;
  std::uint64_t rounds = 0;  ///< buckets processed (depth proxy)
};

/// Weighted BFS from `source`; weights must be positive integers. The
/// search stops at distance `limit` (exclusive of farther vertices).
WeightedBfsResult weighted_bfs(const Graph& g, vid source,
                               weight_t limit = kInfWeight);

/// Workspace form for iterated callers (the hopset's per-center fan-out
/// runs one of these per large-cluster center, one workspace per worker):
/// the Dial calendar and the per-vertex arrays live in `ws`, warm calls
/// allocate nothing. Same output as the plain form.
WeightedBfsResult weighted_bfs(const Graph& g, vid source, weight_t limit,
                               SsspWorkspace& ws);

/// Multi-source variant: dist to the nearest source; `owner` gives the
/// index of the claiming source (smaller index wins exact ties).
struct MultiWeightedBfsResult {
  std::vector<weight_t> dist;
  std::vector<vid> owner;
  std::uint64_t rounds = 0;
};
MultiWeightedBfsResult multi_weighted_bfs(const Graph& g,
                                          const std::vector<vid>& sources,
                                          weight_t limit = kInfWeight);
MultiWeightedBfsResult multi_weighted_bfs(const Graph& g,
                                          const std::vector<vid>& sources,
                                          weight_t limit, SsspWorkspace& ws);

}  // namespace parsh
