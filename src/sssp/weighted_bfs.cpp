#include "sssp/weighted_bfs.hpp"

#include <cassert>
#include <cmath>
#include <span>

#include "graph/validation.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// The workspace state one Dial run needs, bundled so the anonymous
/// helper below stays out of SsspWorkspace's friend surface.
struct DialRefs {
  BucketEngine<vid>& buckets;
  std::vector<std::atomic<weight_t>>& dist;
  std::vector<vid>& parent;
  std::vector<vid>& owner;
  std::vector<vid>& touched;
  std::vector<vid>& bucket_buf;
  std::atomic<std::uint64_t>& allocs;
};

/// Dial-style bucketed search over integer weights, on the workspace's
/// shared frontier engine: the calendar window covers the common distance
/// values and the engine's overflow store absorbs far keys (after
/// Klein-Subramanian rounding the weight range can be large while the
/// frontier touches few distinct distances). Relaxations stay sequential —
/// the equal-distance owner tie-break below depends on processing order,
/// so this is the one traversal that does NOT adopt the degree-aware
/// FrontierRelaxer: its parallelism lives a level up, across sources /
/// centers via SsspWorkspacePool (the hopset fan-out, query batches),
/// where per-search skew cannot serialize other searches.
/// Each nonempty bucket is one synchronous round in the PRAM reading of
/// the weighted parallel BFS of Section 5. Results are left in the
/// workspace arrays (dist-infinity invariant: every improved vertex is
/// recorded in `touched`).
std::uint64_t run_dial(const Graph& g, DialRefs r, std::span<const vid> sources,
                       weight_t limit) {
  r.buckets.reset();
  auto dist_of = [&](vid v) { return r.dist[v].load(std::memory_order_relaxed); };
  auto set_dist = [&](vid v, weight_t d) {
    r.dist[v].store(d, std::memory_order_relaxed);
  };
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const vid s = sources[i];
    if (dist_of(s) != kInfWeight) continue;  // duplicate source
    set_dist(s, 0);
    r.parent[s] = kNoVertex;
    r.owner[s] = static_cast<vid>(i);
    detail::push_counted(r.touched, s, r.allocs);
    r.buckets.push(0, s);
  }
  std::uint64_t rounds = 0;
  std::vector<vid>& bucket = r.bucket_buf;
  std::uint64_t key;
  while ((key = r.buckets.pop_round(bucket)) != kNoBucket) {
    const auto d = static_cast<weight_t>(key);
    if (d > limit) break;
    // A vertex may be queued several times (re-inserted on improvement);
    // only entries matching their final distance are settled here.
    bool any_settled = false;
    std::uint64_t touched_work = 0;
    for (vid u : bucket) {
      if (dist_of(u) != d) continue;
      if (!any_settled) {
        any_settled = true;
        ++rounds;
        wd::add_round();
      }
      touched_work += g.degree(u);
      g.for_arcs(u, 0, g.degree(u), [](vid) {}, [&](eid e, vid v) {
        const weight_t w = g.weight(e);
        assert(w >= 1 && w == std::floor(w) && "weighted_bfs requires integer weights");
        const weight_t nd = d + w;
        if (nd > limit) return;
        const weight_t dv = dist_of(v);
        if (nd < dv) {
          if (dv == kInfWeight) detail::push_counted(r.touched, v, r.allocs);
          set_dist(v, nd);
          r.parent[v] = u;
          r.owner[v] = r.owner[u];
          r.buckets.push(static_cast<std::uint64_t>(nd), v);
        } else if (nd == dv && r.owner[u] < r.owner[v]) {
          // Deterministic tie-break: smaller source index wins. Safe
          // because w >= 1 puts v's bucket strictly after u's, so v has
          // not propagated yet.
          r.parent[v] = u;
          r.owner[v] = r.owner[u];
        }
      });
    }
    wd::add_work(touched_work);
  }
  bucket.clear();
  return rounds;
}

}  // namespace

WeightedBfsResult weighted_bfs(const Graph& g, vid source, weight_t limit,
                               SsspWorkspace& ws) {
  require_integer_weights(g, "weighted_bfs");
  require_vertex(g, source, "weighted_bfs");
  const vid n = g.num_vertices();
  ws.begin_run_(n);
  DialRefs refs{ws.frontier_engine_, ws.dist_, ws.parent_, ws.owner_,
                ws.touched_,         ws.frontier_, ws.scratch_allocs_};
  WeightedBfsResult r;
  r.rounds = run_dial(g, refs, std::span<const vid>(&source, 1), limit);
  if (!g.has_flat_adjacency()) ws.compressed_rounds_ += r.rounds;
  r.dist.assign(n, kInfWeight);
  r.parent.assign(n, kNoVertex);
  for (vid v : ws.touched()) {
    r.dist[v] = ws.dist_of(v);
    r.parent[v] = ws.parent_[v];
  }
  return r;
}

WeightedBfsResult weighted_bfs(const Graph& g, vid source, weight_t limit) {
  SsspWorkspace ws;
  return weighted_bfs(g, source, limit, ws);
}

MultiWeightedBfsResult multi_weighted_bfs(const Graph& g, const std::vector<vid>& sources,
                                          weight_t limit, SsspWorkspace& ws) {
  require_integer_weights(g, "multi_weighted_bfs");
  const vid n = g.num_vertices();
  ws.begin_run_(n);
  DialRefs refs{ws.frontier_engine_, ws.dist_, ws.parent_, ws.owner_,
                ws.touched_,         ws.frontier_, ws.scratch_allocs_};
  MultiWeightedBfsResult r;
  r.rounds = run_dial(g, refs, sources, limit);
  if (!g.has_flat_adjacency()) ws.compressed_rounds_ += r.rounds;
  r.dist.assign(n, kInfWeight);
  r.owner.assign(n, kNoVertex);
  for (vid v : ws.touched()) {
    r.dist[v] = ws.dist_of(v);
    r.owner[v] = ws.owner_[v];
  }
  return r;
}

MultiWeightedBfsResult multi_weighted_bfs(const Graph& g, const std::vector<vid>& sources,
                                          weight_t limit) {
  SsspWorkspace ws;
  return multi_weighted_bfs(g, sources, limit, ws);
}

}  // namespace parsh
