#include "sssp/weighted_bfs.hpp"

#include <cassert>
#include <cmath>

#include "graph/validation.hpp"
#include "parallel/bucket_engine.hpp"
#include "parallel/work_depth.hpp"

namespace parsh {

namespace {

/// Dial-style bucketed search over integer weights, on the shared bucketed
/// frontier engine: the calendar window covers the common distance values
/// and the engine's overflow store absorbs far keys (after
/// Klein-Subramanian rounding the weight range can be large while the
/// frontier touches few distinct distances). Relaxations stay sequential —
/// the equal-distance owner tie-break below depends on processing order.
/// Each nonempty bucket is one synchronous round in the PRAM reading of
/// the weighted parallel BFS of Section 5.
struct DialEngine {
  const Graph& g;
  std::vector<weight_t> dist;
  std::vector<vid> parent;
  std::vector<vid> owner;
  std::uint64_t rounds = 0;

  explicit DialEngine(const Graph& graph)
      : g(graph),
        dist(graph.num_vertices(), kInfWeight),
        parent(graph.num_vertices(), kNoVertex),
        owner(graph.num_vertices(), kNoVertex) {}

  void run(const std::vector<vid>& sources, weight_t limit) {
    BucketEngine<vid> buckets({.span = 128});
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const vid s = sources[i];
      if (dist[s] != kInfWeight) continue;  // duplicate source
      dist[s] = 0;
      owner[s] = static_cast<vid>(i);
      buckets.push(0, s);
    }
    std::vector<vid> bucket;
    std::uint64_t key;
    while ((key = buckets.pop_round(bucket)) != kNoBucket) {
      const auto d = static_cast<weight_t>(key);
      if (d > limit) break;
      // A vertex may be queued several times (re-inserted on improvement);
      // only entries matching their final distance are settled here.
      std::vector<vid> settled;
      settled.reserve(bucket.size());
      for (vid v : bucket) {
        if (dist[v] == d) settled.push_back(v);
      }
      if (settled.empty()) continue;
      ++rounds;
      wd::add_round();
      std::uint64_t touched = 0;
      for (vid u : settled) {
        touched += g.degree(u);
        for (eid e = g.begin(u); e < g.end(u); ++e) {
          const vid v = g.target(e);
          const weight_t w = g.weight(e);
          assert(w >= 1 && w == std::floor(w) && "weighted_bfs requires integer weights");
          const weight_t nd = dist[u] + w;
          if (nd > limit) continue;
          if (nd < dist[v]) {
            dist[v] = nd;
            parent[v] = u;
            owner[v] = owner[u];
            buckets.push(static_cast<std::uint64_t>(nd), v);
          } else if (nd == dist[v] && owner[u] < owner[v]) {
            // Deterministic tie-break: smaller source index wins. Safe
            // because w >= 1 puts v's bucket strictly after u's, so v has
            // not propagated yet.
            parent[v] = u;
            owner[v] = owner[u];
          }
        }
      }
      wd::add_work(touched);
    }
  }
};

}  // namespace

WeightedBfsResult weighted_bfs(const Graph& g, vid source, weight_t limit) {
  require_integer_weights(g, "weighted_bfs");
  require_vertex(g, source, "weighted_bfs");
  DialEngine eng(g);
  eng.run({source}, limit);
  return {std::move(eng.dist), std::move(eng.parent), eng.rounds};
}

MultiWeightedBfsResult multi_weighted_bfs(const Graph& g, const std::vector<vid>& sources,
                                          weight_t limit) {
  DialEngine eng(g);
  eng.run(sources, limit);
  return {std::move(eng.dist), std::move(eng.owner), eng.rounds};
}

}  // namespace parsh
