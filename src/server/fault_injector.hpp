// Seed-deterministic fault injection for the serving layer.
//
// The server's robustness tests need failures that are (a) realistic —
// torn frames, slow-loris writes, worker stalls, queue spikes, dropped
// connections — and (b) reproducible, so a failing recovery path replays
// under a debugger. Determinism despite a threaded server comes from
// per-site streams: each interrupt point (FaultSite) owns its own
// counter-based Rng stream, its own call counter, and its own trace, so
// the decision sequence at a site is a pure function of (seed, site,
// per-site call index). Cross-site thread interleaving cannot perturb any
// site's decisions — only the order traces from *different* sites would
// merge, which is why traces are kept per site rather than globally.
//
// Same seed + same per-site call counts => byte-identical traces,
// regardless of thread count. tests/test_server.cpp asserts exactly that.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "random/rng.hpp"

namespace parsh::server {

/// Interrupt points the server threads consult before acting.
enum class FaultSite : std::size_t {
  kWriteFrame = 0,  ///< before each outbound frame write
  kReadFrame = 1,   ///< before each inbound frame read
  kWorkerLoop = 2,  ///< before each batch the query worker executes
  kAdmission = 3,   ///< at each admission decision
  kSwap = 4,        ///< at the epoch-swap boundary, snapshot built but unpublished
  kWalAppend = 5,   ///< before each WAL record append (tear = torn tail on disk)
  kWalFsync = 6,    ///< before each WAL fsync (fail = durability failure)
  kCheckpointWrite = 7,   ///< before writing a checkpoint's graph/manifest bytes
  kCheckpointRename = 8,  ///< before the atomic rename publishing a checkpoint
};
inline constexpr std::size_t kNumFaultSites = 9;

[[nodiscard]] constexpr const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kWriteFrame: return "write";
    case FaultSite::kReadFrame: return "read";
    case FaultSite::kWorkerLoop: return "worker";
    case FaultSite::kAdmission: return "admission";
    case FaultSite::kSwap: return "swap";
    case FaultSite::kWalAppend: return "wal_append";
    case FaultSite::kWalFsync: return "wal_fsync";
    case FaultSite::kCheckpointWrite: return "ckpt_write";
    case FaultSite::kCheckpointRename: return "ckpt_rename";
  }
  return "?";
}

/// What the consulted site must do. Sites that cannot perform a kind
/// never receive it (the injector draws only site-appropriate kinds).
struct FaultAction {
  enum class Kind : std::uint8_t {
    kNone = 0,
    kTearWrite,       ///< write only `amount` bytes of the frame, then fail the stream
    kSlowWrite,       ///< slow-loris: dribble the frame in `amount`-byte chunks, `delay_us` apart
    kDropConnection,  ///< close the connection as if the peer vanished
    kStall,           ///< sleep `delay_us` before serving (a GC-pause stand-in)
    kQueueSpike,      ///< pretend `amount` phantom requests are queued ahead
    kFailOp,          ///< fail the durability operation (fsync/write/rename error)
  };
  Kind kind = Kind::kNone;
  std::uint64_t amount = 0;
  std::uint32_t delay_us = 0;

  [[nodiscard]] bool none() const { return kind == Kind::kNone; }
};

[[nodiscard]] constexpr const char* fault_kind_name(FaultAction::Kind kind) {
  switch (kind) {
    case FaultAction::Kind::kNone: return "none";
    case FaultAction::Kind::kTearWrite: return "tear";
    case FaultAction::Kind::kSlowWrite: return "slow";
    case FaultAction::Kind::kDropConnection: return "drop";
    case FaultAction::Kind::kStall: return "stall";
    case FaultAction::Kind::kQueueSpike: return "spike";
    case FaultAction::Kind::kFailOp: return "fail";
  }
  return "?";
}

/// Per-kind injection probabilities (0 disables a kind). Probabilities at
/// one site are tried in a fixed order against a single uniform draw, so
/// their sum at a site should stay <= 1.
struct FaultPlan {
  double tear_write = 0;       ///< at kWriteFrame
  double slow_write = 0;       ///< at kWriteFrame
  double drop_connection = 0;  ///< at kWriteFrame and kReadFrame
  double worker_stall = 0;     ///< at kWorkerLoop
  double queue_spike = 0;      ///< at kAdmission
  /// Stall between finishing a rebuild and publishing its snapshot — the
  /// widest version of the query-during-swap window the dynamic tests
  /// need sanitizer coverage on (at kSwap).
  double swap_stall = 0;
  /// Durability faults. A torn WAL append writes only a prefix of the
  /// record (the on-disk image a mid-append crash leaves) then fails the
  /// update; a failed fsync fails the update without publishing; failed
  /// checkpoint writes / renames abort the checkpoint and leave serving
  /// on the previous one. Recovery from all four is what
  /// tests/test_durability.cpp's differential harness pins.
  double wal_append_tear = 0;     ///< at kWalAppend (kind kTearWrite)
  double wal_fsync_fail = 0;      ///< at kWalFsync (kind kFailOp)
  double checkpoint_write_fail = 0;   ///< at kCheckpointWrite (kind kFailOp)
  double checkpoint_rename_fail = 0;  ///< at kCheckpointRename (kind kFailOp)
  std::uint32_t max_delay_us = 2000;  ///< cap on stall / slow-write pauses
  std::uint64_t max_spike = 64;       ///< cap on phantom queue depth
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultPlan plan);

  /// Consult the injector at `site`. Thread-safe; decisions at a site
  /// depend only on the site's own call index.
  FaultAction next(FaultSite site);

  /// Total non-kNone actions handed out so far.
  [[nodiscard]] std::uint64_t injected() const;

  /// The site's decision trace, one entry per next() call, e.g.
  /// "write/3:tear:17". Equal seeds and call counts yield equal traces.
  [[nodiscard]] std::vector<std::string> trace(FaultSite site) const;

  /// All site traces joined (site order, then call order) — the string
  /// the determinism tests compare across runs and thread counts.
  [[nodiscard]] std::string trace_string() const;

 private:
  struct Site {
    Rng rng;
    std::uint64_t count = 0;
    std::vector<std::string> trace;
  };

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::vector<Site> sites_;
  std::uint64_t injected_ = 0;
};

}  // namespace parsh::server
