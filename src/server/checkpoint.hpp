// Checkpoint/restore and the Durability coordinator.
//
// A checkpoint is two files, published in a fixed order that makes the
// pair atomic under crash-at-any-instant:
//
//   ckpt-<epoch:%016x>.pcsr      the snapshot's graph (write_pcsr_file)
//   ckpt-<epoch:%016x>.manifest  epoch + WAL position + the per-client
//                                exactly-once table, FNV-1a checksummed
//
// Both are written to `.tmp` names, fsynced, then renamed into place —
// graph first, manifest LAST. A checkpoint exists iff its manifest parses
// and checksums AND its graph loads (checksums verified), so a crash
// between any two steps leaves either the previous checkpoint (tmp files
// are ignored garbage) or a complete new one. Recovery picks the newest
// valid pair and falls back to older ones when the newest is corrupt,
// which is why the last kKeepCheckpoints checkpoints are retained and WAL
// segments are garbage-collected only below the OLDEST retained
// checkpoint — the fallback path still needs its replay range.
//
// The Durability coordinator owns the WalWriter, the exactly-once table
// and the dynamic engine, and is the single path every accepted update
// takes: dedup check -> engine apply with the WAL append in the
// pre-publish seam -> table update -> threshold checkpoint. Recovery
// (Durability::open) loads the newest valid checkpoint, replays the WAL
// tail through the same engine, and hands back a serving state
// bit-identical to an uninterrupted run's — the property
// tests/test_durability.cpp's kill-mid-batch harness pins.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "server/fault_injector.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/status.hpp"
#include "server/wal.hpp"
#include "sssp/dynamic_approx.hpp"

namespace parsh::server {

inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::size_t kManifestHeaderBytes = 8 + 4 + 4;  // magic+ver+rsvd

/// Exactly-once table entry: the last applied sequence for a client and
/// the verdict it was given, replayed verbatim on a duplicate retry.
struct ClientEntry {
  std::uint64_t sequence = 0;
  UpdateResponse result;  ///< id field 0; patched per delivery
};

/// client_id -> last applied entry. std::map so serialization order (and
/// therefore manifest bytes and digests over the table) is deterministic.
using ClientTable = std::map<std::uint64_t, ClientEntry>;

/// The checkpoint's metadata sidecar.
struct Manifest {
  std::uint64_t epoch = 0;            ///< snapshot epoch of the .pcsr twin
  std::uint64_t wal_first_epoch = 0;  ///< first epoch of the segment opened after this checkpoint
  ClientTable table;
};

[[nodiscard]] std::string checkpoint_graph_name(std::uint64_t epoch);
[[nodiscard]] std::string checkpoint_manifest_name(std::uint64_t epoch);
[[nodiscard]] bool parse_checkpoint_manifest_name(const std::string& name,
                                                  std::uint64_t* epoch);

/// Manifest codec (exposed for wal_inspect and the tests). Encoding
/// appends the checksummed image; decoding validates magic, version and
/// the trailing checksum.
void encode_manifest(std::vector<std::uint8_t>& out, const Manifest& m);
[[nodiscard]] Status decode_manifest(const std::uint8_t* data, std::size_t len,
                                     Manifest* out);
[[nodiscard]] Status read_manifest_file(const std::string& path, Manifest* out);

/// Deterministic crash seam for the atomicity tests: stop the checkpoint
/// writer cold after the named step, leaving the directory exactly as a
/// crash at that instant would (no cleanup, kUnavailable returned).
enum class CheckpointCrashStage : int {
  kNone = 0,
  kAfterGraphTemp,     ///< graph .tmp written+fsynced, nothing renamed
  kAfterGraphRename,   ///< graph final, manifest absent
  kAfterManifestTemp,  ///< manifest .tmp written+fsynced, not renamed
};

/// Write one checkpoint pair into `dir`. Consults kCheckpointWrite before
/// each file's bytes and kCheckpointRename before each rename (kFailOp
/// aborts with tmp cleanup; serving continues on the previous
/// checkpoint). `crash_after` is the test seam above.
[[nodiscard]] Status write_checkpoint(const std::string& dir, const Graph& g,
                                      const Manifest& m,
                                      FaultInjector* injector = nullptr,
                                      CheckpointCrashStage crash_after =
                                          CheckpointCrashStage::kNone);

/// The newest checkpoint in `dir` that is actually loadable.
struct LoadedCheckpoint {
  bool found = false;
  Manifest manifest;
  Graph graph;
  std::uint64_t rejected = 0;  ///< newer checkpoints skipped as corrupt
};
[[nodiscard]] Status load_newest_checkpoint(const std::string& dir,
                                            LoadedCheckpoint* out);

/// Drop checkpoints beyond the `keep` newest, then WAL segments wholly
/// below the oldest retained checkpoint's replay horizon. Never touches
/// the newest segment (the writer's append target).
void collect_checkpoint_garbage(const std::string& dir, std::size_t keep);

// ---- coordinator ------------------------------------------------------------

struct DurabilityOptions {
  std::string dir;  ///< created if missing
  WalOptions wal;
  /// Applied updates between automatic checkpoints; 0 = only explicit
  /// checkpoint_now() calls.
  std::uint64_t checkpoint_every = 0;
  std::size_t keep_checkpoints = 2;
};

/// What recovery did, for logs/metrics and the tests.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t rejected_checkpoints = 0;  ///< corrupt newer ones skipped
  std::uint64_t replayed = 0;              ///< WAL records re-applied
  std::uint64_t skipped = 0;               ///< records at/below the checkpoint
  std::uint64_t torn_bytes = 0;            ///< truncated from the tail segment
  std::uint64_t unreachable = 0;           ///< records stranded past mid-log damage
  double recovery_ms = 0;
};

class Durability {
 public:
  /// Open `opt.dir`, recover (checkpoint + WAL replay), build the engine.
  /// `base`/`params` seed the state when the directory holds no
  /// checkpoint — they must be the same every run (the WAL does not store
  /// the base graph).
  [[nodiscard]] static Status open(Graph base,
                                   DynamicApproxShortestPaths::Params params,
                                   DurabilityOptions opt,
                                   std::unique_ptr<Durability>* out);

  [[nodiscard]] DynamicApproxShortestPaths& engine() { return *engine_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return report_; }
  [[nodiscard]] const DurabilityOptions& options() const { return opt_; }

  /// The durable update path: dedup -> WAL-logged apply -> table ->
  /// threshold checkpoint. Fills `*resp` completely (status, flags,
  /// epoch, stats) and never throws; `resp->id` is left untouched for the
  /// caller to set. Serialized internally.
  void handle_update(const UpdateRequest& req, UpdateResponse* resp,
                     FaultInjector* injector = nullptr,
                     ServerMetrics* metrics = nullptr);

  /// Checkpoint the current snapshot now (also what the threshold path
  /// calls). kOk means a new checkpoint is fully published and old WAL
  /// segments are collected.
  [[nodiscard]] Status checkpoint_now(FaultInjector* injector = nullptr,
                                      ServerMetrics* metrics = nullptr);

  /// Copy of the exactly-once table (the differential harness compares
  /// these across recovered/uninterrupted twins).
  [[nodiscard]] ClientTable client_table() const;

  [[nodiscard]] std::uint64_t checkpoints_written() const;
  [[nodiscard]] std::uint64_t wal_records() const { return wal_.records_appended(); }

  /// Test seam: make the next checkpoint crash after the given stage.
  void set_checkpoint_crash_stage(CheckpointCrashStage s);

 private:
  Durability() = default;

  [[nodiscard]] Status checkpoint_locked_(FaultInjector* injector,
                                          ServerMetrics* metrics);

  DurabilityOptions opt_;
  std::unique_ptr<DynamicApproxShortestPaths> engine_;
  RecoveryReport report_;

  mutable std::mutex mu_;  ///< serializes updates, checkpoints, table reads
  ClientTable table_;
  WalWriter wal_;
  std::uint64_t since_checkpoint_ = 0;
  std::uint64_t checkpoints_ = 0;
  CheckpointCrashStage crash_stage_ = CheckpointCrashStage::kNone;
};

}  // namespace parsh::server
