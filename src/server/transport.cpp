#include "server/transport.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

namespace parsh::server {

namespace {

Status errno_status(const char* op) {
  std::string msg = op;
  msg += ": ";
  msg += std::strerror(errno);
  return Status::fail(StatusCode::kUnavailable, std::move(msg));
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Block until fd is ready for `events` or the deadline expires. Polls in
/// bounded slices so even Deadline::never() wakes periodically (the
/// caller's loop re-checks stop conditions between slices).
Status wait_ready(int fd, short events, const Deadline& deadline) {
  if (deadline.expired()) {
    return Status::fail(StatusCode::kDeadlineExceeded, "io deadline expired");
  }
  struct pollfd pfd{fd, events, 0};
  const int timeout_ms = deadline.remaining_ms_clamped(50);
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0 && errno != EINTR) return errno_status("poll");
  if (rc > 0 && (pfd.revents & (POLLERR | POLLNVAL))) {
    return Status::fail(StatusCode::kUnavailable, "poll: socket error");
  }
  // POLLHUP still allows draining buffered data; let read() see the EOF.
  return Status::success();
}

}  // namespace

// ---- FdStream ---------------------------------------------------------------

FdStream::FdStream(int fd) : fd_(fd) {
  if (fd_ >= 0 && !set_nonblocking(fd_)) {
    ::close(fd_);
    fd_ = -1;
  }
}

FdStream::~FdStream() { close(); }

FdStream::FdStream(FdStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FdStream& FdStream::operator=(FdStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FdStream::read_exact(std::uint8_t* buf, std::size_t n, const Deadline& deadline) {
  if (fd_ < 0) return Status::fail(StatusCode::kConnectionClosed, "read on closed stream");
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd_, buf + got, n - got);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      return Status::fail(StatusCode::kConnectionClosed, "peer closed mid-read");
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return errno_status("read");
    const Status s = wait_ready(fd_, POLLIN, deadline);
    if (!s.ok()) return s;
  }
  return Status::success();
}

Status FdStream::write_all(const std::uint8_t* buf, std::size_t n,
                           const Deadline& deadline) {
  if (fd_ < 0) return Status::fail(StatusCode::kConnectionClosed, "write on closed stream");
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing SIGPIPE.
    const ssize_t rc = ::send(fd_, buf + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::fail(StatusCode::kConnectionClosed, "peer closed mid-write");
    }
    if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return errno_status("send");
    const Status s = wait_ready(fd_, POLLOUT, deadline);
    if (!s.ok()) return s;
  }
  return Status::success();
}

Status FdStream::read_frame(Frame* out, const Deadline& deadline) {
  std::uint8_t header[kFrameHeaderBytes];
  Status s = read_exact(header, kFrameHeaderBytes, deadline);
  if (!s.ok()) return s;
  std::uint32_t payload_len = 0;
  s = parse_frame_header(header, &out->type, &payload_len);
  if (!s.ok()) return s;
  out->payload.resize(payload_len);
  return payload_len == 0 ? Status::success()
                          : read_exact(out->payload.data(), payload_len, deadline);
}

Status FdStream::write_frame(const std::vector<std::uint8_t>& bytes,
                             const Deadline& deadline, FaultInjector* injector) {
  if (injector != nullptr) {
    const FaultAction act = injector->next(FaultSite::kWriteFrame);
    switch (act.kind) {
      case FaultAction::Kind::kTearWrite: {
        const std::size_t n = act.amount < bytes.size() ? act.amount : bytes.size();
        (void)write_all(bytes.data(), n, deadline);
        shutdown_both();
        return Status::fail(StatusCode::kConnectionClosed, "injected torn write");
      }
      case FaultAction::Kind::kDropConnection:
        shutdown_both();
        return Status::fail(StatusCode::kConnectionClosed, "injected connection drop");
      case FaultAction::Kind::kSlowWrite: {
        // Dribble paced chunks for a while, then flush: bounds the total
        // injected delay so a slow-loris can't outlive every deadline.
        const std::size_t chunk = act.amount == 0 ? 1 : act.amount;
        std::size_t off = 0;
        for (int i = 0; i < 16 && off < bytes.size(); ++i) {
          const std::size_t n = chunk < bytes.size() - off ? chunk : bytes.size() - off;
          const Status s = write_all(bytes.data() + off, n, deadline);
          if (!s.ok()) return s;
          off += n;
          std::this_thread::sleep_for(std::chrono::microseconds(act.delay_us));
        }
        return off < bytes.size()
                   ? write_all(bytes.data() + off, bytes.size() - off, deadline)
                   : Status::success();
      }
      case FaultAction::Kind::kNone:
      case FaultAction::Kind::kStall:
      case FaultAction::Kind::kQueueSpike:
      case FaultAction::Kind::kFailOp:
        break;  // not write-site kinds
    }
  }
  return write_all(bytes.data(), bytes.size(), deadline);
}

void ignore_sigpipe() {
  struct sigaction sa{};
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
}

// ---- socketpair -------------------------------------------------------------

Status make_socketpair(FdStream* a, FdStream* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return errno_status("socketpair");
  }
  *a = FdStream(fds[0]);
  *b = FdStream(fds[1]);
  if (!a->valid() || !b->valid()) {
    return Status::fail(StatusCode::kInternal, "socketpair: nonblocking setup failed");
  }
  return Status::success();
}

// ---- TCP --------------------------------------------------------------------

TcpListener::~TcpListener() { close(); }

Status TcpListener::listen_loopback(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = errno_status("bind");
    close();
    return s;
  }
  if (::listen(fd_, 64) != 0) {
    const Status s = errno_status("listen");
    close();
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = errno_status("getsockname");
    close();
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(fd_)) {
    close();
    return Status::fail(StatusCode::kInternal, "listener: nonblocking setup failed");
  }
  return Status::success();
}

Status TcpListener::accept(FdStream* out, const Deadline& deadline) {
  if (fd_ < 0) return Status::fail(StatusCode::kUnavailable, "listener closed");
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = FdStream(cfd);
      return out->valid()
                 ? Status::success()
                 : Status::fail(StatusCode::kInternal, "accept: nonblocking setup failed");
    }
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ECONNABORTED) {
      return errno_status("accept");
    }
    if (deadline.expired()) {
      return Status::fail(StatusCode::kDeadlineExceeded, "accept deadline expired");
    }
    const Status s = wait_ready(fd_, POLLIN, deadline);
    if (!s.ok()) return s;
  }
}

void TcpListener::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status tcp_connect_loopback(std::uint16_t port, FdStream* out, const Deadline& deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return Status::fail(StatusCode::kInternal, "connect: nonblocking setup failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const Status s = errno_status("connect");
    ::close(fd);
    return s;
  }
  // Nonblocking connect completes when the socket turns writable.
  for (;;) {
    struct pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, deadline.remaining_ms_clamped(50));
    if (rc < 0 && errno != EINTR) {
      ::close(fd);
      return errno_status("poll");
    }
    if (rc > 0) break;
    if (deadline.expired()) {
      ::close(fd);
      return Status::fail(StatusCode::kDeadlineExceeded, "connect deadline expired");
    }
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    return Status::fail(StatusCode::kUnavailable,
                        std::string("connect: ") + std::strerror(err ? err : errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = FdStream(fd);
  return Status::success();
}

}  // namespace parsh::server
