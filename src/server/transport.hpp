// Byte-stream transport of the serving layer: nonblocking fds driven by
// poll(2) under a Deadline.
//
// Works identically over a TCP loopback socket and a Unix socketpair (the
// tests' transport), because both are just stream fds. All operations are
// deadline-bounded — nothing in the server can block forever on a slow or
// dead peer — and every failure surfaces as a typed Status; no errno
// escapes, no exception crosses this boundary.
//
// Thread/shutdown contract: one thread reads a stream while another may
// call shutdown_both() to interrupt it. shutdown(2) is used for the wakeup
// instead of close(2) deliberately: closing an fd another thread is
// polling races with fd-number reuse (a fresh accept could receive the
// same number and the poller would read the wrong connection). Only the
// owning thread (or the destructor, after joins) calls close().
#pragma once

#include <cstdint>
#include <vector>

#include "server/fault_injector.hpp"
#include "server/protocol.hpp"
#include "server/status.hpp"
#include "util/deadline.hpp"

namespace parsh::server {

/// A nonblocking stream fd with deadline-bounded exact-size io.
class FdStream {
 public:
  FdStream() = default;
  /// Take ownership of `fd` and switch it to O_NONBLOCK.
  explicit FdStream(int fd);
  ~FdStream();
  FdStream(FdStream&& other) noexcept;
  FdStream& operator=(FdStream&& other) noexcept;
  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Half-close both directions: a peer or co-thread blocked in poll wakes
  /// with EOF. Safe to call from a thread that does not own the stream.
  void shutdown_both();
  /// Release the fd. Owning-thread only (see the shutdown contract above).
  void close();

  /// Read exactly n bytes or fail: kConnectionClosed on EOF,
  /// kDeadlineExceeded when the budget runs out mid-read, kUnavailable on
  /// socket errors.
  [[nodiscard]] Status read_exact(std::uint8_t* buf, std::size_t n,
                                  const Deadline& deadline);
  /// Write exactly n bytes or fail (same taxonomy as read_exact).
  [[nodiscard]] Status write_all(const std::uint8_t* buf, std::size_t n,
                                 const Deadline& deadline);

  /// Read one validated frame (header checks per parse_frame_header, then
  /// the payload). A malformed header fails kInvalidArgument — the stream
  /// is desynchronized and must be closed by the caller.
  [[nodiscard]] Status read_frame(Frame* out, const Deadline& deadline);

  /// Write one encoded frame. When `injector` is non-null the kWriteFrame
  /// site is consulted first: a tear writes a prefix then fails the
  /// stream, a slow-loris dribbles the bytes in tiny paced chunks, a drop
  /// fails without writing. Injected failures return kConnectionClosed —
  /// indistinguishable from a real dead peer, which is the point.
  [[nodiscard]] Status write_frame(const std::vector<std::uint8_t>& bytes,
                                   const Deadline& deadline,
                                   FaultInjector* injector = nullptr);

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX stream pair (the in-process test transport).
[[nodiscard]] Status make_socketpair(FdStream* a, FdStream* b);

/// Ignore SIGPIPE process-wide (idempotent). MSG_NOSIGNAL covers send(2),
/// but a durable server also writes pipes and plain fds (WAL, checkpoint
/// temp files on weird mounts) where a dead reader would otherwise kill
/// the process; EPIPE through the Status taxonomy is the contract.
void ignore_sigpipe();

/// A loopback TCP listener (port 0 picks an ephemeral port).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] Status listen_loopback(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Accept one connection within the deadline (kDeadlineExceeded on
  /// timeout — callers poll in a loop so a stop flag gets checked).
  [[nodiscard]] Status accept(FdStream* out, const Deadline& deadline);
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a loopback listener within the deadline.
[[nodiscard]] Status tcp_connect_loopback(std::uint16_t port, FdStream* out,
                                          const Deadline& deadline);

}  // namespace parsh::server
