#include "server/admission.hpp"

#include <algorithm>
#include <cmath>

namespace parsh::server {

namespace {
/// EWMA smoothing: heavy enough to track load shifts within a few
/// batches, light enough that one outlier batch doesn't flip shedding.
constexpr double kEwmaAlpha = 0.2;
}  // namespace

AdmissionQueue::AdmissionQueue(AdmissionParams params, ServerMetrics* metrics,
                               FaultInjector* injector)
    : params_(params), metrics_(metrics), injector_(injector) {
  ewma_ms_ = params_.warm_ms_per_query_hint > 0 ? params_.warm_ms_per_query_hint : 0.5;
}

Status AdmissionQueue::offer(PendingRequest&& r, std::uint32_t* retry_after_ms) {
  *retry_after_ms = 0;
  // Phantom backlog from the fault plan folds into this one decision only
  // — a spike is a burst, not a level shift.
  std::uint64_t phantom = 0;
  if (injector_ != nullptr) {
    const FaultAction act = injector_->next(FaultSite::kAdmission);
    if (act.kind == FaultAction::Kind::kQueueSpike) phantom = act.amount;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (stopped_) {
    return Status::fail(StatusCode::kUnavailable, "server shutting down");
  }
  const std::size_t depth = queue_.size() - head_;
  const std::size_t arriving = r.req.pairs.size();
  const double budget_ms =
      r.req.deadline_ms > 0 ? static_cast<double>(r.req.deadline_ms)
                            : params_.default_deadline_ms;
  // Everything that must drain before this request's last query finishes.
  const double ahead = static_cast<double>(queued_queries_ + in_flight_queries_ +
                                           arriving + phantom);
  const double est_drain_ms =
      ahead * ewma_ms_ / static_cast<double>(std::max<std::size_t>(params_.workers, 1));
  const bool over_depth = depth + phantom >= params_.max_queue_depth;
  if (over_depth || est_drain_ms > budget_ms) {
    // Retry once roughly half the backlog has drained; always >= 1ms so a
    // literal-minded client cannot hot-loop.
    const double hint = std::min(1000.0, std::max(1.0, est_drain_ms * 0.5));
    *retry_after_ms = static_cast<std::uint32_t>(std::lround(hint));
    metrics_->bump(metrics_->requests_shed);
    return Status::fail(StatusCode::kResourceExhausted,
                        over_depth ? "admission queue full"
                                   : "backlog exceeds request deadline");
  }
  queued_queries_ += arriving;
  queue_.push_back(std::move(r));
  metrics_->bump(metrics_->requests_admitted);
  lock.unlock();
  work_cv_.notify_one();
  return Status::success();
}

std::size_t AdmissionQueue::batch_target_locked() const {
  const double per_query = std::max(ewma_ms_, 1e-3);
  const double target = params_.batch_budget_ms / per_query;
  const auto t = static_cast<std::size_t>(std::max(1.0, target));
  return std::min(t, params_.max_batch);
}

bool AdmissionQueue::take_batch(std::vector<PendingRequest>* out,
                                std::size_t* skip_scales) {
  out->clear();
  *skip_scales = 0;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [&] { return stopped_ || head_ < queue_.size(); });
  if (head_ == queue_.size()) return false;  // stopped and drained

  // Degradation tier decided per dispatch from queue pressure at pop
  // time, so the server sheds precision before it sheds requests.
  const std::size_t depth = queue_.size() - head_;
  if (params_.degrade_at_fraction < 1.0 &&
      static_cast<double>(depth) >=
          params_.degrade_at_fraction * static_cast<double>(params_.max_queue_depth)) {
    *skip_scales = params_.degrade_skip_scales;
  }

  const std::size_t target = batch_target_locked();
  std::size_t queries = 0;
  while (head_ < queue_.size() && (out->empty() || queries < target)) {
    queries += queue_[head_].req.pairs.size();
    out->push_back(std::move(queue_[head_]));
    ++head_;
  }
  queued_queries_ -= std::min(queued_queries_, queries);
  in_flight_queries_ += queries;
  // Compact once the dead prefix dominates (amortized O(1) per pop).
  if (head_ > 64 && head_ * 2 >= queue_.size()) {
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return true;
}

void AdmissionQueue::finish_batch(std::size_t queries, double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_queries_ -= std::min(in_flight_queries_, queries);
  if (queries > 0 && elapsed_ms >= 0) {
    const double per_query = elapsed_ms / static_cast<double>(queries);
    ewma_ms_ = (1.0 - kEwmaAlpha) * ewma_ms_ + kEwmaAlpha * per_query;
  }
}

void AdmissionQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  work_cv_.notify_all();
}

double AdmissionQueue::ewma_ms_per_query() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_ms_;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() - head_;
}

}  // namespace parsh::server
