// Lock-free server counters, snapshotted onto the wire StatsSnapshot.
//
// Counters are relaxed atomics: they are monotone tallies read for
// reporting, never for synchronization, so no ordering is needed and the
// hot serving paths pay one uncontended RMW per event.
#pragma once

#include <atomic>
#include <cstdint>

#include "server/protocol.hpp"

namespace parsh::server {

struct ServerMetrics {
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> invalid_frames{0};
  std::atomic<std::uint64_t> requests_admitted{0};
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> queries_ok{0};
  std::atomic<std::uint64_t> queries_deadline_exceeded{0};
  std::atomic<std::uint64_t> queries_out_of_range{0};
  std::atomic<std::uint64_t> queries_degraded{0};
  std::atomic<std::uint64_t> batches_served{0};
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> pool_checkout_timeouts{0};
  std::atomic<std::uint64_t> updates_applied{0};
  std::atomic<std::uint64_t> updates_rejected{0};
  std::atomic<std::uint64_t> stale_batches{0};
  std::atomic<std::uint64_t> updates_deduped{0};
  std::atomic<std::uint64_t> wal_records{0};
  std::atomic<std::uint64_t> wal_fsyncs{0};
  std::atomic<std::uint64_t> checkpoints_written{0};
  std::atomic<std::uint64_t> wal_failures{0};
  std::atomic<std::uint64_t> recovered_updates{0};

  void bump(std::atomic<std::uint64_t>& c, std::uint64_t by = 1) {
    c.fetch_add(by, std::memory_order_relaxed);
  }

  [[nodiscard]] StatsSnapshot snapshot(std::uint64_t faults_injected) const {
    StatsSnapshot s;
    s.frames_received = frames_received.load(std::memory_order_relaxed);
    s.invalid_frames = invalid_frames.load(std::memory_order_relaxed);
    s.requests_admitted = requests_admitted.load(std::memory_order_relaxed);
    s.requests_shed = requests_shed.load(std::memory_order_relaxed);
    s.queries_ok = queries_ok.load(std::memory_order_relaxed);
    s.queries_deadline_exceeded =
        queries_deadline_exceeded.load(std::memory_order_relaxed);
    s.queries_out_of_range = queries_out_of_range.load(std::memory_order_relaxed);
    s.queries_degraded = queries_degraded.load(std::memory_order_relaxed);
    s.batches_served = batches_served.load(std::memory_order_relaxed);
    s.connections_opened = connections_opened.load(std::memory_order_relaxed);
    s.connections_closed = connections_closed.load(std::memory_order_relaxed);
    s.faults_injected = faults_injected;
    s.pool_checkout_timeouts = pool_checkout_timeouts.load(std::memory_order_relaxed);
    s.updates_applied = updates_applied.load(std::memory_order_relaxed);
    s.updates_rejected = updates_rejected.load(std::memory_order_relaxed);
    s.stale_batches = stale_batches.load(std::memory_order_relaxed);
    s.updates_deduped = updates_deduped.load(std::memory_order_relaxed);
    s.wal_records = wal_records.load(std::memory_order_relaxed);
    s.wal_fsyncs = wal_fsyncs.load(std::memory_order_relaxed);
    s.checkpoints_written = checkpoints_written.load(std::memory_order_relaxed);
    s.wal_failures = wal_failures.load(std::memory_order_relaxed);
    s.recovered_updates = recovered_updates.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace parsh::server
